"""Tests for the device-memory placement constraint (GPU memory bound)."""

from dataclasses import replace

import pytest

from repro.hetsim.device import GpuDevice, HashWork, default_cpu, default_gpu
from repro.hetsim.pipeline import WorkPlacementError, simulate_step
from repro.hetsim.transfer import memory_cached_disk


def big_work(table_bytes):
    return HashWork(n_kmers=1000, ops=3000, probes=30, inserts=300,
                    table_bytes=table_bytes, in_bytes=1000, out_bytes=500)


class TestFits:
    def test_gpu_fits_small(self):
        assert default_gpu().fits(big_work(1 << 20))

    def test_gpu_rejects_oversized_table(self):
        assert not default_gpu().fits(big_work(13 << 30))

    def test_cpu_always_fits(self):
        assert default_cpu().fits(big_work(1 << 40))

    def test_custom_memory(self):
        small_gpu = replace(default_gpu(), memory_bytes=1 << 20)
        assert not small_gpu.fits(big_work(2 << 20))


class TestPlacement:
    def test_cpu_takes_what_gpu_cannot(self):
        small_gpu = replace(default_gpu(), memory_bytes=1 << 20)
        works = [big_work(1 << 16) for _ in range(5)] + [big_work(2 << 20)]
        sim = simulate_step(works, [default_cpu(), small_gpu],
                            memory_cached_disk())
        # The oversized partition (ticket 5) must be on the CPU.
        assert 5 in sim.usage["cpu"].partitions
        assert 5 not in sim.usage[small_gpu.name].partitions

    def test_no_device_fits_raises(self):
        small_gpu = replace(default_gpu(), memory_bytes=1 << 20)
        with pytest.raises(WorkPlacementError, match="increase n_partitions"):
            simulate_step([big_work(2 << 20)], [small_gpu],
                          memory_cached_disk())

    def test_default_chr14_partitions_fit_k40(self):
        # The paper's default NP keeps every table far below 12 GB.
        gpu = default_gpu()
        assert gpu.fits(big_work(1 << 30))  # 1 GB table: fine

    def test_fitting_preserves_work_stealing(self):
        # When everything fits, placement equals plain work stealing:
        # two equal GPUs split evenly.
        works = [big_work(1 << 16) for _ in range(20)]
        sim = simulate_step(works, [GpuDevice(name="gpu0"),
                                    GpuDevice(name="gpu1")],
                            memory_cached_disk())
        a = len(sim.usage["gpu0"].partitions)
        b = len(sim.usage["gpu1"].partitions)
        assert abs(a - b) <= 1
