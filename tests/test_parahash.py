"""Tests for repro.core.parahash (end-to-end driver) and config."""

import pytest

from repro.core.config import BIG_GENOME_CONFIG, MEDIUM_GENOME_CONFIG, ParaHashConfig
from repro.core.parahash import ParaHash, build_debruijn_graph
from repro.graph.build import build_reference_graph
from repro.graph.validate import assert_graphs_equal, validate_full_graph


class TestConfig:
    def test_defaults_match_paper(self):
        cfg = ParaHashConfig()
        assert cfg.k == 27
        assert cfg.p == 11
        assert cfg.sizing.lam == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            ParaHashConfig(k=0)
        with pytest.raises(ValueError):
            ParaHashConfig(k=64)  # two words hold at most 63 bases
        with pytest.raises(ValueError):
            ParaHashConfig(k=45, p=32)  # minimizers stay one-word
        with pytest.raises(ValueError):
            ParaHashConfig(k=11, p=12)
        with pytest.raises(ValueError):
            ParaHashConfig(n_partitions=0)
        with pytest.raises(ValueError):
            ParaHashConfig(n_input_pieces=0)
        with pytest.raises(ValueError):
            ParaHashConfig(n_threads=0)

    def test_with_(self):
        cfg = ParaHashConfig().with_(p=13, n_partitions=64)
        assert cfg.p == 13 and cfg.n_partitions == 64
        assert cfg.k == 27

    def test_presets(self):
        assert MEDIUM_GENOME_CONFIG.p == 11
        assert BIG_GENOME_CONFIG.p == 19


class TestEndToEnd:
    def test_in_memory_equals_reference(self, genomic_batch):
        cfg = ParaHashConfig(k=15, p=7, n_partitions=8, n_input_pieces=3)
        result = ParaHash(cfg).build_graph(genomic_batch)
        ref = build_reference_graph(genomic_batch, 15)
        assert_graphs_equal(result.graph, ref, "in-memory")
        validate_full_graph(result.graph, genomic_batch)

    def test_disk_backed_equals_reference(self, genomic_batch, tmp_path):
        cfg = ParaHashConfig(k=15, p=7, n_partitions=4, n_input_pieces=2)
        result = ParaHash(cfg).build_graph(genomic_batch, workdir=tmp_path)
        ref = build_reference_graph(genomic_batch, 15)
        assert_graphs_equal(result.graph, ref, "disk-backed")
        assert result.partition_bytes > 0
        assert result.timings.io_seconds >= 0

    def test_coprocessed_equals_reference(self, genomic_batch):
        cfg = ParaHashConfig(k=15, p=7, n_partitions=8, n_threads=3)
        result = ParaHash(cfg).build_graph(genomic_batch)
        ref = build_reference_graph(genomic_batch, 15)
        assert_graphs_equal(result.graph, ref, "coprocessed")
        assert len(result.worker_records) == 3
        total = sum(len(r.partitions) for r in result.worker_records.values())
        assert total == len(result.subgraphs)

    def test_result_accounting(self, genomic_batch):
        cfg = ParaHashConfig(k=15, p=7, n_partitions=4)
        result = ParaHash(cfg).build_graph(genomic_batch)
        assert result.n_kmers == genomic_batch.n_kmers(15)
        assert result.hash_stats.ops > result.n_kmers  # edges add observations
        assert 0 < result.hash_stats.lock_reduction < 1
        d = result.describe()
        assert d["n_vertices"] == result.graph.n_vertices

    def test_partition_count_does_not_change_graph(self, genomic_batch):
        ref = build_reference_graph(genomic_batch, 15)
        for n_partitions in (1, 3, 16):
            got = build_debruijn_graph(genomic_batch, k=15, p=7,
                                       n_partitions=n_partitions)
            assert_graphs_equal(got, ref, f"np={n_partitions}")

    def test_minimizer_length_does_not_change_graph(self, genomic_batch):
        ref = build_reference_graph(genomic_batch, 15)
        for p in (3, 7, 15):
            got = build_debruijn_graph(genomic_batch, k=15, p=p, n_partitions=8)
            assert_graphs_equal(got, ref, f"p={p}")

    def test_input_piece_count_does_not_change_graph(self, genomic_batch):
        ref = build_reference_graph(genomic_batch, 15)
        for pieces in (1, 5):
            cfg = ParaHashConfig(k=15, p=7, n_partitions=4, n_input_pieces=pieces)
            result = ParaHash(cfg).build_graph(genomic_batch)
            assert_graphs_equal(result.graph, ref, f"pieces={pieces}")

    def test_duplicate_merge_claim(self, genomic_batch):
        # Table I style accounting: distinct + duplicates = all kmers.
        result = ParaHash(ParaHashConfig(k=15, p=7, n_partitions=4)).build_graph(
            genomic_batch
        )
        g = result.graph
        assert g.n_vertices + g.n_duplicate_vertices() == genomic_batch.n_kmers(15)

    def test_output_dir_writes_subgraph_files(self, genomic_batch, tmp_path):
        from repro.graph.merge import merge_disjoint
        from repro.graph.serialize import load_subgraphs

        cfg = ParaHashConfig(k=15, p=7, n_partitions=6)
        result = ParaHash(cfg).build_graph(genomic_batch,
                                           output_dir=tmp_path / "out")
        files = sorted((tmp_path / "out").glob("subgraph_*.phdbg"))
        assert len(files) == len(result.subgraphs)
        merged = merge_disjoint(load_subgraphs(files))
        assert_graphs_equal(merged, result.graph, "output-dir")

    def test_build_from_files(self, genomic_batch, tmp_path):
        # Shard the reads across three fastq files; streaming
        # construction must equal the in-memory build.
        from repro.dna.io import save_read_batch

        shards = []
        for i, piece in enumerate(genomic_batch.split(3)):
            path = tmp_path / f"shard_{i}.fastq"
            save_read_batch(path, piece)
            shards.append(path)
        cfg = ParaHashConfig(k=15, p=7, n_partitions=4)
        result = ParaHash(cfg).build_graph_from_files(
            shards, workdir=tmp_path / "work"
        )
        ref = build_reference_graph(genomic_batch, 15)
        assert_graphs_equal(result.graph, ref, "from-files")
        assert result.n_kmers == genomic_batch.n_kmers(15)

    def test_build_from_files_requires_input(self, tmp_path):
        with pytest.raises(ValueError):
            ParaHash(ParaHashConfig(k=15, p=7)).build_graph_from_files(
                [], workdir=tmp_path
            )

    def test_subgraphs_are_disjoint(self, genomic_batch):
        import numpy as np

        result = ParaHash(ParaHashConfig(k=15, p=7, n_partitions=8)).build_graph(
            genomic_batch
        )
        all_vertices = np.concatenate([g.vertices for g in result.subgraphs])
        assert np.unique(all_vertices).size == all_vertices.size
