"""Tests for repro.service.pool (multi-tenant lanes over one pool).

The pool tests patch ``repro.service.pool.run_task`` with a scriptable
fake *before* the workers fork, so the children inherit it — the same
monkeypatch-through-fork idiom the backend crash tests use.
"""

import multiprocessing as mp
import os
import threading
import time

import pytest

import repro.service.pool as pool_mod
from repro.service.pool import (
    LaneStalled,
    ServicePool,
    SessionCancelled,
    TasksFailed,
)

needs_fork = pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(),
    reason="fake-task injection monkeypatches the pool module, needs fork",
)

pytestmark = needs_fork


def _fake_run_task(task: dict) -> dict:
    kind = task.get("kind")
    if kind == "sleep":
        time.sleep(float(task["seconds"]))
        return {"slept": task["seconds"], "value": task.get("value")}
    if kind == "boom":
        raise RuntimeError("scripted task failure")
    if kind == "die":
        os._exit(43)
    return {"value": task.get("value")}


@pytest.fixture
def fake_tasks(monkeypatch):
    monkeypatch.setattr(pool_mod, "run_task", _fake_run_task)


class TestSessionBasics:
    def test_round_trip(self, fake_tasks):
        with ServicePool(n_workers=2, n_lanes=2) as pool:
            session = pool.open_session()
            try:
                session.submit([{"kind": "echo", "value": i}
                                for i in range(5)])
                results = session.wait(stall_timeout=30.0)
            finally:
                pool.release(session)
            assert sorted(r["value"] for r in results.values()) == [0, 1, 2,
                                                                    3, 4]

    def test_incremental_on_done(self, fake_tasks):
        seen = []
        with ServicePool(n_workers=2, n_lanes=1) as pool:
            session = pool.open_session()
            try:
                session.submit([{"kind": "echo", "value": i}
                                for i in range(4)])
                session.wait(stall_timeout=30.0,
                             on_done=lambda tid, r: seen.append(r["value"]))
            finally:
                pool.release(session)
        assert sorted(seen) == [0, 1, 2, 3]

    def test_task_error_contained_to_task(self, fake_tasks):
        """A raising task fails its session; the worker survives."""
        with ServicePool(n_workers=1, n_lanes=2) as pool:
            session = pool.open_session()
            try:
                session.submit([{"kind": "boom"}, {"kind": "echo",
                                                   "value": 9}])
                with pytest.raises(TasksFailed) as exc_info:
                    session.wait(stall_timeout=30.0)
                assert "scripted task failure" in str(exc_info.value)
            finally:
                pool.release(session)
            # the worker that ran "boom" is still serving
            session2 = pool.open_session()
            try:
                session2.submit([{"kind": "echo", "value": 1}])
                assert len(session2.wait(stall_timeout=30.0)) == 1
            finally:
                pool.release(session2)
            assert pool.n_worker_restarts == 0

    def test_lane_exhaustion_times_out(self, fake_tasks):
        with ServicePool(n_workers=1, n_lanes=1) as pool:
            session = pool.open_session()
            try:
                with pytest.raises(TimeoutError):
                    pool.open_session(timeout=0.05)
            finally:
                pool.release(session)
            # released lane is reusable
            session2 = pool.open_session(timeout=5.0)
            pool.release(session2)

    def test_weight_validation(self, fake_tasks):
        with ServicePool(n_workers=1, n_lanes=1) as pool:
            with pytest.raises(ValueError):
                pool.open_session(claim_weight=0)
            session = pool.open_session()
            try:
                with pytest.raises(ValueError):
                    session.set_weight(0)
            finally:
                pool.release(session)


class TestCancellation:
    def test_cancel_pending_work(self, fake_tasks):
        with ServicePool(n_workers=1, n_lanes=1) as pool:
            session = pool.open_session()
            session.submit([{"kind": "sleep", "seconds": 0.2}
                            for _ in range(8)])
            time.sleep(0.1)  # let a task start
            session.cancel()
            with pytest.raises(SessionCancelled):
                session.wait(stall_timeout=10.0)
            pool.release(session)
            # the lane serves the next tenant
            session2 = pool.open_session()
            try:
                session2.submit([{"kind": "echo", "value": 5}])
                results = session2.wait(stall_timeout=30.0)
                assert [r["value"] for r in results.values()] == [5]
            finally:
                pool.release(session2)

    def test_submit_after_cancel_rejected(self, fake_tasks):
        with ServicePool(n_workers=1, n_lanes=1) as pool:
            session = pool.open_session()
            session.cancel()
            with pytest.raises(SessionCancelled):
                session.submit([{"kind": "echo"}])
            pool.release(session)


class TestCrashContainment:
    def test_worker_death_fails_only_its_session(self, fake_tasks):
        """One job's worker-killing task must not touch its neighbor."""
        with ServicePool(n_workers=2, n_lanes=2) as pool:
            victim = pool.open_session()
            neighbor = pool.open_session()
            outcome = {}

            def drive_neighbor():
                neighbor.submit([{"kind": "sleep", "seconds": 0.05,
                                  "value": i} for i in range(6)])
                outcome["neighbor"] = neighbor.wait(stall_timeout=30.0)

            t = threading.Thread(target=drive_neighbor)
            t.start()
            try:
                victim.submit([{"kind": "die"}])
                with pytest.raises(TasksFailed) as exc_info:
                    victim.wait(stall_timeout=30.0)
                assert "died" in str(exc_info.value)
                t.join(timeout=30.0)
                assert not t.is_alive()
                assert len(outcome["neighbor"]) == 6
                assert pool.n_worker_restarts >= 1
            finally:
                pool.release(victim)
                pool.release(neighbor)

    def test_replacement_worker_serves(self, fake_tasks):
        with ServicePool(n_workers=1, n_lanes=1) as pool:
            session = pool.open_session()
            session.submit([{"kind": "die"}])
            with pytest.raises(TasksFailed):
                session.wait(stall_timeout=30.0)
            pool.release(session)
            session2 = pool.open_session()
            try:
                session2.submit([{"kind": "echo", "value": 1}])
                assert len(session2.wait(stall_timeout=30.0)) == 1
            finally:
                pool.release(session2)


class TestFairness:
    def test_claim_batches_follow_weights(self, fake_tasks):
        """Weight-2 tenants are served two tasks per worker visit."""
        with ServicePool(n_workers=2, n_lanes=2) as pool:
            heavy = pool.open_session(claim_weight=2)
            light = pool.open_session(claim_weight=1)
            try:
                tasks = [{"kind": "sleep", "seconds": 0.03, "value": i}
                         for i in range(10)]
                heavy.submit(tasks)
                light.submit(tasks)
                heavy.wait(stall_timeout=30.0)
                light.wait(stall_timeout=30.0)
                heavy_batches = [b["n_tasks"]
                                 for b in heavy.describe()["claim_batches"]]
                light_batches = [b["n_tasks"]
                                 for b in light.describe()["claim_batches"]]
            finally:
                pool.release(heavy)
                pool.release(light)
        assert all(b == 1 for b in light_batches)
        assert max(heavy_batches) == 2  # backlog served in weighted pairs
        assert sum(heavy_batches) == 10
        assert sum(light_batches) == 10

    def test_describe_exposes_weight(self, fake_tasks):
        with ServicePool(n_workers=1, n_lanes=1) as pool:
            session = pool.open_session(claim_weight=3)
            try:
                assert session.describe()["claim_weight"] == 3
                session.set_weight(5)
                assert session.describe()["claim_weight"] == 5
            finally:
                pool.release(session)


class TestStallDetection:
    def test_stall_raises_instead_of_hanging(self, fake_tasks):
        with ServicePool(n_workers=1, n_lanes=1) as pool:
            session = pool.open_session()
            try:
                session.submit([{"kind": "sleep", "seconds": 30.0}])
                with pytest.raises(LaneStalled):
                    session.wait(stall_timeout=0.3)
            finally:
                pool.release(session)


class TestPoolLifecycle:
    def test_describe(self, fake_tasks):
        with ServicePool(n_workers=2, n_lanes=3) as pool:
            doc = pool.describe()
            assert doc["n_workers"] == 2
            assert doc["free_lanes"] == 3
            session = pool.open_session()
            assert pool.describe()["busy_lanes"] == [session.lane_id]
            pool.release(session)

    def test_double_close_is_safe(self, fake_tasks):
        pool = ServicePool(n_workers=1, n_lanes=1).start()
        pool.close()
        pool.close()

    def test_validation(self):
        with pytest.raises(ValueError):
            ServicePool(n_workers=0)
        with pytest.raises(ValueError):
            ServicePool(n_lanes=0)
        with pytest.raises(RuntimeError):
            ServicePool(n_workers=1, n_lanes=1).open_session()
