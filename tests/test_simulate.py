"""Tests for repro.dna.simulate (genomes, reads, dataset profiles)."""

import numpy as np
import pytest

from repro.dna.simulate import (
    BUMBLEBEE_LIKE,
    HUMAN_CHR14_LIKE,
    PROFILES,
    TOY,
    DatasetProfile,
    random_genome,
    repetitive_genome,
    simulate_reads,
)


class TestGenome:
    def test_size_and_range(self):
        g = random_genome(1000, seed=1)
        assert g.size == 1000
        assert g.max() <= 3

    def test_deterministic(self):
        assert np.array_equal(random_genome(500, seed=7), random_genome(500, seed=7))

    def test_seed_changes_content(self):
        assert not np.array_equal(random_genome(500, seed=1), random_genome(500, seed=2))

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            random_genome(0)

    def test_repetitive_has_repeats(self):
        g = repetitive_genome(10_000, repeat_fraction=0.3, repeat_length=200, seed=3)
        # The template must appear more than once (exact duplicate windows).
        from repro.dna.kmer import kmers_from_reads

        kmers = kmers_from_reads(g.reshape(1, -1), 31)[0]
        _, counts = np.unique(kmers, return_counts=True)
        assert (counts > 1).any()

    def test_repeat_fraction_bounds(self):
        with pytest.raises(ValueError):
            repetitive_genome(100, repeat_fraction=1.0)


class TestReads:
    def test_shape(self):
        g = random_genome(500, seed=1)
        reads = simulate_reads(g, n_reads=20, read_length=50, seed=2)
        assert reads.n_reads == 20
        assert reads.read_length == 50

    def test_deterministic(self):
        g = random_genome(500, seed=1)
        a = simulate_reads(g, 30, 40, seed=5)
        b = simulate_reads(g, 30, 40, seed=5)
        assert np.array_equal(a.codes, b.codes)

    def test_error_free_reads_are_substrings(self):
        g = random_genome(300, seed=1)
        reads = simulate_reads(g, 50, 40, mean_errors=0.0, seed=2, both_strands=False)
        genome_str = "".join("ACGT"[c] for c in g)
        for s in reads.iter_strs():
            assert s in genome_str

    def test_both_strands_produces_rc_reads(self):
        g = random_genome(300, seed=1)
        reads = simulate_reads(g, 200, 40, mean_errors=0.0, seed=2, both_strands=True)
        genome_str = "".join("ACGT"[c] for c in g)
        forward = sum(s in genome_str for s in reads.iter_strs())
        assert 0 < forward < 200  # some reads are reverse-complemented

    def test_poisson_error_rate(self):
        # Mean substitutions per read should be close to lambda.
        g = random_genome(1000, seed=1)
        lam = 2.0
        n, length = 2000, 100
        clean = simulate_reads(g, n, length, mean_errors=0.0, seed=9, both_strands=False)
        dirty = simulate_reads(g, n, length, mean_errors=lam, seed=9, both_strands=False)
        diffs = (clean.codes != dirty.codes).sum()
        per_read = diffs / n
        # Collisions (two errors on one position) make this slightly low.
        assert lam * 0.85 <= per_read <= lam * 1.05

    def test_errors_change_base(self):
        g = random_genome(500, seed=1)
        clean = simulate_reads(g, 100, 60, mean_errors=0.0, seed=3, both_strands=False)
        dirty = simulate_reads(g, 100, 60, mean_errors=5.0, seed=3, both_strands=False)
        assert (clean.codes != dirty.codes).any()

    def test_read_longer_than_genome(self):
        g = random_genome(30, seed=1)
        with pytest.raises(ValueError):
            simulate_reads(g, 5, 31)

    def test_negative_params(self):
        g = random_genome(100, seed=1)
        with pytest.raises(ValueError):
            simulate_reads(g, -1, 50)
        with pytest.raises(ValueError):
            simulate_reads(g, 5, 50, mean_errors=-1)

    def test_zero_reads(self):
        g = random_genome(100, seed=1)
        reads = simulate_reads(g, 0, 50)
        assert reads.n_reads == 0


class TestProfiles:
    def test_builtin_profiles_registered(self):
        assert "human_chr14_like" in PROFILES
        assert "bumblebee_like" in PROFILES
        assert "toy" in PROFILES

    def test_n_reads_formula(self):
        p = DatasetProfile(name="x", genome_size=10_000, read_length=100,
                           coverage=30.0, mean_errors=1.0)
        assert p.n_reads == 3000
        assert p.total_bases == 300_000

    def test_read_lengths_match_paper(self):
        # Table I: Chr14 reads are 101 bp, Bumblebee 124 bp.
        assert HUMAN_CHR14_LIKE.read_length == 101
        assert BUMBLEBEE_LIKE.read_length == 124

    def test_size_ratio_preserved(self):
        # Bumblebee's graph is ~10x Chr14's; we keep a several-fold gap.
        assert BUMBLEBEE_LIKE.genome_size >= 3 * HUMAN_CHR14_LIKE.genome_size

    def test_scaled(self):
        half = HUMAN_CHR14_LIKE.scaled(0.5)
        assert half.genome_size == HUMAN_CHR14_LIKE.genome_size // 2
        with pytest.raises(ValueError):
            HUMAN_CHR14_LIKE.scaled(0)

    def test_generate_deterministic(self):
        g1, r1 = TOY.generate()
        g2, r2 = TOY.generate()
        assert np.array_equal(g1, g2)
        assert np.array_equal(r1.codes, r2.codes)

    def test_generate_reads_shape(self):
        reads = TOY.generate_reads()
        assert reads.n_reads == TOY.n_reads
        assert reads.read_length == TOY.read_length
