"""Process-backend tests: backend equivalence, crash safety, shared CAS.

The contract under test is the PR's acceptance criterion: the
``processes`` backend must produce graphs bit-identical to the
``serial`` backend, and a worker that dies mid-build must surface as a
clean error instead of hanging the parent.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core.config import BACKENDS, ParaHashConfig
from repro.core.hashtable import ConcurrentHashTable
from repro.core.parahash import ParaHash
from repro.dna.kmer import canonical_u64, kmers_from_reads
from repro.graph.dbg import N_SLOTS
from repro.parallel import (
    WorkerCrashed,
    WorkerFailed,
    concurrent_insert_processes,
    run_workers,
)

CFG = ParaHashConfig(k=21, p=9, n_partitions=16, n_input_pieces=4)


def assert_graphs_identical(a, b):
    assert a.k == b.k
    assert np.array_equal(a.vertices, b.vertices)
    assert np.array_equal(a.counts, b.counts)


# -- backend equivalence ----------------------------------------------------------


def test_all_backends_build_identical_graphs(genomic_batch):
    serial = ParaHash(CFG).build_graph(genomic_batch)
    threaded = ParaHash(
        CFG.with_(backend="threads", n_workers=2)
    ).build_graph(genomic_batch)
    procs = ParaHash(
        CFG.with_(backend="processes", n_workers=2)
    ).build_graph(genomic_batch)
    assert serial.graph.n_vertices > 0
    assert_graphs_identical(serial.graph, threaded.graph)
    assert_graphs_identical(serial.graph, procs.graph)


def test_process_backend_worker_counts_agree(clean_batch):
    serial = ParaHash(CFG).build_graph(clean_batch)
    for w in (1, 3):
        result = ParaHash(
            CFG.with_(backend="processes", n_workers=w)
        ).build_graph(clean_batch)
        assert_graphs_identical(serial.graph, result.graph)


def test_process_backend_disk_artifacts_match_serial(clean_batch, tmp_path):
    """workdir spill files + output_dir subgraphs are byte-identical."""
    outs = {}
    for backend in ("serial", "processes"):
        work = tmp_path / backend / "work"
        out = tmp_path / backend / "out"
        cfg = CFG if backend == "serial" else CFG.with_(
            backend="processes", n_workers=2
        )
        result = ParaHash(cfg).build_graph(
            clean_batch, workdir=work, output_dir=out
        )
        outs[backend] = (result, out)
    serial_result, serial_out = outs["serial"]
    procs_result, procs_out = outs["processes"]
    assert_graphs_identical(serial_result.graph, procs_result.graph)
    serial_files = sorted(p.name for p in serial_out.iterdir())
    assert serial_files == sorted(p.name for p in procs_out.iterdir())
    assert serial_files  # the run actually wrote subgraphs
    for name in serial_files:
        assert (serial_out / name).read_bytes() == (
            procs_out / name
        ).read_bytes()


def test_process_backend_reports_per_worker_records(genomic_batch):
    result = ParaHash(
        CFG.with_(backend="processes", n_workers=2)
    ).build_graph(genomic_batch)
    records = result.worker_records
    assert set(records) == {"proc0", "proc1"}
    assert sum(len(r.partitions) for r in records.values()) > 0
    assert all(r.items_processed > 0 for r in records.values())


# -- crash containment ------------------------------------------------------------


def _vanishing_worker(worker_id: int, victim: int):
    if worker_id == victim:
        os._exit(17)  # simulate a segfault / OOM kill: no result, no traceback
    time.sleep(0.05)
    return worker_id


def _raising_worker(worker_id: int, victim: int):
    if worker_id == victim:
        raise RuntimeError(f"worker {worker_id} exploded on purpose")
    time.sleep(0.05)
    return worker_id


def test_crashed_worker_surfaces_without_hanging():
    t0 = time.perf_counter()
    with pytest.raises(WorkerCrashed):
        run_workers(_vanishing_worker, 3, args=(1,), timeout=30.0)
    # The whole point: a vanished worker must not block until timeout.
    assert time.perf_counter() - t0 < 20.0


def test_raising_worker_carries_traceback():
    with pytest.raises(WorkerFailed) as excinfo:
        run_workers(_raising_worker, 3, args=(2,), timeout=30.0)
    assert "exploded on purpose" in str(excinfo.value)


def test_run_workers_rejects_bad_worker_count():
    with pytest.raises(ValueError):
        run_workers(_raising_worker, 0)


# -- cross-process state-transfer protocol ----------------------------------------


def test_cross_process_cas_matches_serial_insert(genomic_batch, rng):
    k = 21
    kmers = canonical_u64(kmers_from_reads(genomic_batch.codes, k), k)
    slots = rng.integers(0, N_SLOTS, size=kmers.size, dtype=np.int64)
    capacity = 1 << 14

    serial = ConcurrentHashTable(capacity=capacity, k=k)
    serial.insert_batch(kmers, slots)
    expected = serial.to_graph()

    graph, stats = concurrent_insert_processes(
        kmers, slots, k, capacity, n_workers=3
    )
    assert_graphs_identical(expected, graph)
    assert len(stats) == 3
    assert sum(s.ops for s in stats) == kmers.size


# -- big-k (k > 31): two-word shm tables end-to-end -------------------------------

BIGK_CFG = ParaHashConfig(k=45, p=15, n_partitions=16, n_input_pieces=4)


def test_bigk_processes_matches_serial_pipelined(genomic_batch):
    serial = ParaHash(BIGK_CFG).build_graph(genomic_batch)
    procs = ParaHash(
        BIGK_CFG.with_(backend="processes", n_workers=2, pipeline=True)
    ).build_graph(genomic_batch)
    assert serial.graph.n_vertices > 0
    assert serial.graph.equals(procs.graph)


def test_bigk_processes_matches_serial_barrier(clean_batch):
    serial = ParaHash(BIGK_CFG).build_graph(clean_batch)
    procs = ParaHash(
        BIGK_CFG.with_(backend="processes", n_workers=2, pipeline=False)
    ).build_graph(clean_batch)
    assert serial.graph.equals(procs.graph)


def test_bigk_processes_disk_artifacts_match_serial(clean_batch, tmp_path):
    """Big-k workdir + output_dir artifacts are byte-identical too."""
    outs = {}
    for backend in ("serial", "processes"):
        work = tmp_path / backend / "work"
        out = tmp_path / backend / "out"
        cfg = BIGK_CFG if backend == "serial" else BIGK_CFG.with_(
            backend="processes", n_workers=2
        )
        result = ParaHash(cfg).build_graph(
            clean_batch, workdir=work, output_dir=out
        )
        outs[backend] = (result, out)
    serial_result, serial_out = outs["serial"]
    procs_result, procs_out = outs["processes"]
    assert serial_result.graph.equals(procs_result.graph)
    serial_files = sorted(p.name for p in serial_out.iterdir())
    assert serial_files == sorted(p.name for p in procs_out.iterdir())
    assert serial_files
    for name in serial_files:
        assert (serial_out / name).read_bytes() == (
            procs_out / name
        ).read_bytes()


def test_bigk_processes_fallback_on_undersized_tables(clean_batch):
    """A breached Property-1 estimate regrows locally, graph unchanged."""
    from repro.core.estimator import SizingPolicy

    class Undersized(SizingPolicy):
        def capacity_for(self, n_kmers: int) -> int:
            return 32

    serial = ParaHash(BIGK_CFG).build_graph(clean_batch)
    for pipeline in (True, False):
        procs = ParaHash(BIGK_CFG.with_(
            backend="processes", n_workers=2, pipeline=pipeline,
            sizing=Undersized(),
        )).build_graph(clean_batch)
        assert serial.graph.equals(procs.graph)


def test_cross_process_cas_2w_matches_serial_insert(genomic_batch, rng):
    from repro.bigk import TwoWordHashTable, canonical2w_with_flip
    from repro.bigk.kmer2w import kmers2w_from_reads
    from repro.parallel import concurrent_insert_processes_2w

    k = 45
    hi, lo = kmers2w_from_reads(genomic_batch.codes, k)
    hi, lo, _ = canonical2w_with_flip(hi, lo, k)
    hi, lo = hi[:5000], lo[:5000]
    slots = rng.integers(0, N_SLOTS, size=hi.size, dtype=np.int64)
    capacity = 1 << 14

    serial = TwoWordHashTable(capacity, k)
    serial.insert_batch(hi, lo, slots)
    expected = serial.to_graph()

    graph, stats = concurrent_insert_processes_2w(
        hi, lo, slots, k, capacity, n_workers=3
    )
    assert expected.equals(graph)
    assert len(stats) == 3
    assert sum(s.ops for s in stats) == hi.size


def test_cross_process_cas_2w_rejects_small_k():
    with pytest.raises(ValueError):
        from repro.parallel import concurrent_insert_processes_2w

        concurrent_insert_processes_2w(
            np.zeros(1, dtype=np.uint64), np.zeros(1, dtype=np.uint64),
            np.zeros(1, dtype=np.int64), 21, 16, 1,
        )


# -- CI backend x k x layout x protocol matrix leg --------------------------------
#
# In CI the `matrix` suite runs this module with REPRO_MATRIX_K and
# REPRO_MATRIX_BACKEND set (k in {21, 45} x backend in {serial,
# threads, processes}), and the table-axes legs add REPRO_MATRIX_LAYOUT
# x REPRO_MATRIX_PROTOCOL ({flat, sharded} x {locked, lockfree});
# locally the acceptance-criterion cell (k=45 on the pipelined
# processes backend with the sharded layout and lock-free protocol)
# runs by default.

MATRIX_K = int(os.environ.get("REPRO_MATRIX_K", "45"))
MATRIX_BACKEND = os.environ.get("REPRO_MATRIX_BACKEND", "processes")
MATRIX_LAYOUT = os.environ.get("REPRO_MATRIX_LAYOUT", "sharded")
MATRIX_PROTOCOL = os.environ.get("REPRO_MATRIX_PROTOCOL", "lockfree")


def test_matrix_cell_cli_build_matches_serial(genomic_batch, tmp_path):
    """`repro build` at the (k, backend, layout, protocol) cell equals serial.

    The serial reference always builds flat/locked; the cell build uses
    the matrix layout and protocol, so every leg also asserts the
    cross-axes graph identity the sharded/lock-free refactor promises.
    """
    from repro.cli import main as cli_main
    from repro.dna.io import save_read_batch
    from repro.graph.compare import compare_graphs

    k, backend = MATRIX_K, MATRIX_BACKEND
    reads_file = tmp_path / "reads.fastq"
    save_read_batch(reads_file, genomic_batch, fmt="fastq")
    p = "9" if k <= 31 else "15"
    base = ["build", "--input", str(reads_file), "--k", str(k), "--p", p,
            "--partitions", "16"]
    serial_out = tmp_path / "serial.phdbg"
    assert cli_main(base + ["--backend", "serial",
                            "--output", str(serial_out)]) == 0
    cell_out = tmp_path / "cell.phdbg"
    argv = base + ["--backend", backend, "--output", str(cell_out),
                   "--table-layout", MATRIX_LAYOUT,
                   "--insert-protocol", MATRIX_PROTOCOL]
    if backend == "processes":
        argv += ["--workers", "2", "--pipeline"]
    elif backend == "threads":
        argv += ["--workers", "2"]
    assert cli_main(argv) == 0

    if k <= 31:
        from repro.graph.serialize import load_graph as load
    else:
        from repro.bigk import load_big_graph as load
    a, b = load(serial_out), load(cell_out)
    comparison = compare_graphs(a, b)
    assert comparison.jaccard == 1.0
    assert comparison.n_only_a == comparison.n_only_b == 0
    assert np.array_equal(a.counts, b.counts)


# -- configuration plumbing -------------------------------------------------------


def test_config_rejects_unknown_backend():
    with pytest.raises(ValueError):
        ParaHashConfig(k=21, p=9, backend="gpu")
    with pytest.raises(ValueError):
        ParaHashConfig(k=21, p=9, n_workers=-1)


def test_config_worker_resolution():
    assert "processes" in BACKENDS
    assert ParaHashConfig(k=21, p=9, n_workers=6).workers() == 6
    auto = ParaHashConfig(k=21, p=9).workers()
    assert auto == max(1, os.cpu_count() or 1)
