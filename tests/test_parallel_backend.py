"""Process-backend tests: backend equivalence, crash safety, shared CAS.

The contract under test is the PR's acceptance criterion: the
``processes`` backend must produce graphs bit-identical to the
``serial`` backend, and a worker that dies mid-build must surface as a
clean error instead of hanging the parent.
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.core.config import BACKENDS, ParaHashConfig
from repro.core.hashtable import ConcurrentHashTable
from repro.core.parahash import ParaHash
from repro.dna.kmer import canonical_u64, kmers_from_reads
from repro.graph.dbg import N_SLOTS
from repro.parallel import (
    WorkerCrashed,
    WorkerFailed,
    concurrent_insert_processes,
    run_workers,
)

CFG = ParaHashConfig(k=21, p=9, n_partitions=16, n_input_pieces=4)


def assert_graphs_identical(a, b):
    assert a.k == b.k
    assert np.array_equal(a.vertices, b.vertices)
    assert np.array_equal(a.counts, b.counts)


# -- backend equivalence ----------------------------------------------------------


def test_all_backends_build_identical_graphs(genomic_batch):
    serial = ParaHash(CFG).build_graph(genomic_batch)
    threaded = ParaHash(
        CFG.with_(backend="threads", n_workers=2)
    ).build_graph(genomic_batch)
    procs = ParaHash(
        CFG.with_(backend="processes", n_workers=2)
    ).build_graph(genomic_batch)
    assert serial.graph.n_vertices > 0
    assert_graphs_identical(serial.graph, threaded.graph)
    assert_graphs_identical(serial.graph, procs.graph)


def test_process_backend_worker_counts_agree(clean_batch):
    serial = ParaHash(CFG).build_graph(clean_batch)
    for w in (1, 3):
        result = ParaHash(
            CFG.with_(backend="processes", n_workers=w)
        ).build_graph(clean_batch)
        assert_graphs_identical(serial.graph, result.graph)


def test_process_backend_disk_artifacts_match_serial(clean_batch, tmp_path):
    """workdir spill files + output_dir subgraphs are byte-identical."""
    outs = {}
    for backend in ("serial", "processes"):
        work = tmp_path / backend / "work"
        out = tmp_path / backend / "out"
        cfg = CFG if backend == "serial" else CFG.with_(
            backend="processes", n_workers=2
        )
        result = ParaHash(cfg).build_graph(
            clean_batch, workdir=work, output_dir=out
        )
        outs[backend] = (result, out)
    serial_result, serial_out = outs["serial"]
    procs_result, procs_out = outs["processes"]
    assert_graphs_identical(serial_result.graph, procs_result.graph)
    serial_files = sorted(p.name for p in serial_out.iterdir())
    assert serial_files == sorted(p.name for p in procs_out.iterdir())
    assert serial_files  # the run actually wrote subgraphs
    for name in serial_files:
        assert (serial_out / name).read_bytes() == (
            procs_out / name
        ).read_bytes()


def test_process_backend_reports_per_worker_records(genomic_batch):
    result = ParaHash(
        CFG.with_(backend="processes", n_workers=2)
    ).build_graph(genomic_batch)
    records = result.worker_records
    assert set(records) == {"proc0", "proc1"}
    assert sum(len(r.partitions) for r in records.values()) > 0
    assert all(r.items_processed > 0 for r in records.values())


# -- crash containment ------------------------------------------------------------


def _vanishing_worker(worker_id: int, victim: int):
    if worker_id == victim:
        os._exit(17)  # simulate a segfault / OOM kill: no result, no traceback
    time.sleep(0.05)
    return worker_id


def _raising_worker(worker_id: int, victim: int):
    if worker_id == victim:
        raise RuntimeError(f"worker {worker_id} exploded on purpose")
    time.sleep(0.05)
    return worker_id


def test_crashed_worker_surfaces_without_hanging():
    t0 = time.perf_counter()
    with pytest.raises(WorkerCrashed):
        run_workers(_vanishing_worker, 3, args=(1,), timeout=30.0)
    # The whole point: a vanished worker must not block until timeout.
    assert time.perf_counter() - t0 < 20.0


def test_raising_worker_carries_traceback():
    with pytest.raises(WorkerFailed) as excinfo:
        run_workers(_raising_worker, 3, args=(2,), timeout=30.0)
    assert "exploded on purpose" in str(excinfo.value)


def test_run_workers_rejects_bad_worker_count():
    with pytest.raises(ValueError):
        run_workers(_raising_worker, 0)


# -- cross-process state-transfer protocol ----------------------------------------


def test_cross_process_cas_matches_serial_insert(genomic_batch, rng):
    k = 21
    kmers = canonical_u64(kmers_from_reads(genomic_batch.codes, k), k)
    slots = rng.integers(0, N_SLOTS, size=kmers.size, dtype=np.int64)
    capacity = 1 << 14

    serial = ConcurrentHashTable(capacity=capacity, k=k)
    serial.insert_batch(kmers, slots)
    expected = serial.to_graph()

    graph, stats = concurrent_insert_processes(
        kmers, slots, k, capacity, n_workers=3
    )
    assert_graphs_identical(expected, graph)
    assert len(stats) == 3
    assert sum(s.ops for s in stats) == kmers.size


# -- configuration plumbing -------------------------------------------------------


def test_config_rejects_unknown_backend():
    with pytest.raises(ValueError):
        ParaHashConfig(k=21, p=9, backend="gpu")
    with pytest.raises(ValueError):
        ParaHashConfig(k=21, p=9, n_workers=-1)


def test_config_worker_resolution():
    assert "processes" in BACKENDS
    assert ParaHashConfig(k=21, p=9, n_workers=6).workers() == 6
    auto = ParaHashConfig(k=21, p=9).workers()
    assert auto == max(1, os.cpu_count() or 1)
