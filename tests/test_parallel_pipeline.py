"""Pipelined process-backend tests (Step-1→Step-2 streaming).

The contract: the streaming driver — one pool, spill manifests over the
event channel, ready-queue partition claims — must produce graphs and
on-disk artifacts byte-identical to both the barrier driver and the
serial backend, keep crash containment (a dying Step-2 worker surfaces
as :class:`WorkerCrashed`, never a ready-queue hang), and pre-aggregation
must leave ``HashStats.lock_reduction`` untouched.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time

import numpy as np
import pytest

from repro.core.config import ParaHashConfig
from repro.core.parahash import ParaHash
from repro.core.subgraph import (
    block_observations,
    build_subgraph,
    preaggregate_observations,
)
from repro.core.hashtable import ConcurrentHashTable
from repro.msp.partitioner import partition_reads
from repro.parallel import WorkerCrashed, WorkerFailed, build_graph_processes
from repro.parallel import backend as backend_mod

CFG = ParaHashConfig(k=21, p=9, n_partitions=16, n_input_pieces=4)

needs_fork = pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(),
    reason="crash injection monkeypatches the worker module, needs fork",
)


def assert_graphs_identical(a, b):
    assert a.k == b.k
    assert np.array_equal(a.vertices, b.vertices)
    assert np.array_equal(a.counts, b.counts)


# -- equivalence ------------------------------------------------------------------


def test_pipelined_matches_serial_and_barrier(genomic_batch):
    serial = ParaHash(CFG.with_(pipeline=False)).build_graph(genomic_batch)
    barrier = ParaHash(
        CFG.with_(backend="processes", n_workers=2, pipeline=False)
    ).build_graph(genomic_batch)
    pipelined = ParaHash(
        CFG.with_(backend="processes", n_workers=2, pipeline=True)
    ).build_graph(genomic_batch)
    assert serial.graph.n_vertices > 0
    assert_graphs_identical(serial.graph, barrier.graph)
    assert_graphs_identical(serial.graph, pipelined.graph)
    assert pipelined.n_kmers == serial.n_kmers
    assert pipelined.n_superkmers == serial.n_superkmers


def test_pipelined_matches_across_worker_counts(clean_batch):
    serial = ParaHash(CFG).build_graph(clean_batch)
    for w in (1, 3):
        result = ParaHash(
            CFG.with_(backend="processes", n_workers=w, pipeline=True)
        ).build_graph(clean_batch)
        assert_graphs_identical(serial.graph, result.graph)


def test_pipelined_without_preaggregation_matches(clean_batch):
    serial = ParaHash(CFG).build_graph(clean_batch)
    result = ParaHash(
        CFG.with_(backend="processes", n_workers=2, pipeline=True,
                  preaggregate=False)
    ).build_graph(clean_batch)
    assert_graphs_identical(serial.graph, result.graph)


def test_pipelined_disk_artifacts_match_serial(clean_batch, tmp_path):
    """workdir partition files + output_dir subgraphs are byte-identical."""
    outs = {}
    for label, cfg in (
        ("serial", CFG),
        ("pipelined", CFG.with_(backend="processes", n_workers=2,
                                pipeline=True)),
    ):
        work = tmp_path / label / "work"
        out = tmp_path / label / "out"
        result = ParaHash(cfg).build_graph(
            clean_batch, workdir=work, output_dir=out
        )
        outs[label] = (result, work, out)
    serial_result, serial_work, serial_out = outs["serial"]
    pipe_result, pipe_work, pipe_out = outs["pipelined"]
    assert_graphs_identical(serial_result.graph, pipe_result.graph)
    out_files = sorted(p.name for p in serial_out.iterdir())
    assert out_files == sorted(p.name for p in pipe_out.iterdir())
    assert out_files
    for name in out_files:
        assert (serial_out / name).read_bytes() == (
            pipe_out / name
        ).read_bytes()
    # One canonical partition file per partition, empty ones included —
    # the disk-backed layouts must agree file-for-file.
    serial_parts = sorted(p.name for p in serial_work.glob("partition_*.phsk"))
    pipe_parts = sorted(p.name for p in pipe_work.glob("partition_*.phsk"))
    assert serial_parts == pipe_parts
    assert len(serial_parts) == CFG.n_partitions


def test_pipelined_worker_records_cover_both_steps(genomic_batch):
    result = ParaHash(
        CFG.with_(backend="processes", n_workers=2, pipeline=True)
    ).build_graph(genomic_batch)
    records = result.worker_records
    assert set(records) == {"proc0", "proc1"}
    assert sum(len(r.partitions) for r in records.values()) > 0
    assert all(r.items_processed > 0 for r in records.values())


def test_pipelined_empty_input(tmp_path):
    empty = __import__("repro.dna.reads", fromlist=["ReadBatch"]).ReadBatch(
        codes=np.zeros((0, 50), dtype=np.uint8)
    )
    result = ParaHash(
        CFG.with_(backend="processes", n_workers=2, pipeline=True)
    ).build_graph(empty)
    assert result.graph.n_vertices == 0


def test_calibrated_dispatch_matches_serial(clean_batch):
    serial = ParaHash(CFG).build_graph(clean_batch)
    result = ParaHash(
        CFG.with_(backend="processes", n_workers=2, pipeline=True,
                  calibrate=True)
    ).build_graph(clean_batch)
    assert_graphs_identical(serial.graph, result.graph)


def test_explicit_step2_weights(clean_batch):
    serial = ParaHash(CFG).build_graph(clean_batch)
    result = build_graph_processes(
        clean_batch, CFG.with_(backend="processes", n_workers=2),
        weights=[2, 1], step2_weights=[1, 3],
    )
    assert_graphs_identical(serial.graph, result.graph)
    with pytest.raises(ValueError):
        build_graph_processes(
            clean_batch, CFG.with_(backend="processes", n_workers=2),
            step2_weights=[1],
        )
    with pytest.raises(ValueError):
        build_graph_processes(
            clean_batch, CFG.with_(backend="processes", n_workers=2),
            step2_weights=[1, 0],
        )


# -- pre-aggregation --------------------------------------------------------------


def test_preaggregate_observations_counts(rng):
    v = np.array([7, 3, 7, 7, 3, 9], dtype=np.uint64)
    s = np.array([0, 1, 0, 2, 1, 0], dtype=np.int64)
    pv, ps, pc = preaggregate_observations(v, s)
    assert pv.tolist() == [3, 7, 7, 9]
    assert ps.tolist() == [1, 0, 2, 0]
    assert pc.tolist() == [2, 2, 1, 1]
    assert int(pc.sum()) == v.size


def test_preaggregate_observations_empty():
    empty_v = np.zeros(0, dtype=np.uint64)
    empty_s = np.zeros(0, dtype=np.int64)
    pv, ps, pc = preaggregate_observations(empty_v, empty_s)
    assert pv.size == ps.size == pc.size == 0


def test_counted_insert_batch_validation():
    table = ConcurrentHashTable(capacity=16, k=21)
    kmers = np.array([1, 2], dtype=np.uint64)
    slots = np.array([0, 0], dtype=np.int64)
    with pytest.raises(ValueError):
        table.insert_batch(kmers, slots, counts=np.array([1], dtype=np.int64))
    with pytest.raises(ValueError):
        table.insert_batch(kmers, slots,
                           counts=np.array([1, 0], dtype=np.int64))


def test_lock_reduction_unchanged_by_preaggregation(genomic_batch):
    """Acceptance criterion: Fig 10-style numbers stay honest.

    The metered protocol stats — ops, inserts, key locks, updates,
    count increments, and therefore ``lock_reduction`` exactly — must
    be identical whether observations hit the table one by one or
    pre-aggregated with counts.
    """
    parts = partition_reads(genomic_batch, CFG.k, CFG.p, CFG.n_partitions)
    checked = 0
    for block in parts.blocks:
        if not block.n_superkmers:
            continue
        plain = build_subgraph(block, preaggregate=False)
        agg = build_subgraph(block, preaggregate=True)
        assert_graphs_identical(plain.graph, agg.graph)
        assert agg.stats.ops == plain.stats.ops
        assert agg.stats.inserts == plain.stats.inserts
        assert agg.stats.key_locks == plain.stats.key_locks
        assert agg.stats.updates == plain.stats.updates
        assert agg.stats.count_increments == plain.stats.count_increments
        assert agg.stats.lock_reduction == plain.stats.lock_reduction
        checked += 1
    assert checked > 0


def test_preaggregation_shrinks_table_touches(genomic_batch):
    """The point of the kernel: duplicated inputs touch the table less."""
    parts = partition_reads(genomic_batch, CFG.k, CFG.p, CFG.n_partitions)
    block = max(parts.blocks, key=lambda b: b.total_kmers())
    v, s = block_observations(block)
    pv, ps, pc = preaggregate_observations(v, s)
    assert pv.size < v.size  # genomic coverage implies duplicates
    assert int(pc.sum()) == v.size


# -- crash containment ------------------------------------------------------------


def _exploding_step2(job, sizing, preaggregate):
    raise RuntimeError(f"step2 exploded on partition {job.partition}")


def _vanishing_step2(job, sizing, preaggregate):
    os._exit(23)  # simulate a segfault: no traceback, no result


@needs_fork
def test_dying_step2_worker_surfaces_workercrashed(genomic_batch, monkeypatch):
    """A vanished Step-2 worker must become WorkerCrashed, not a hang."""
    monkeypatch.setattr(backend_mod, "_process_step2_job", _vanishing_step2)
    t0 = time.perf_counter()
    with pytest.raises(WorkerCrashed):
        ParaHash(
            CFG.with_(backend="processes", n_workers=2, pipeline=True)
        ).build_graph(genomic_batch)
    assert time.perf_counter() - t0 < 60.0


@needs_fork
def test_raising_step2_worker_surfaces_workerfailed(genomic_batch, monkeypatch):
    monkeypatch.setattr(backend_mod, "_process_step2_job", _exploding_step2)
    with pytest.raises(WorkerFailed) as excinfo:
        ParaHash(
            CFG.with_(backend="processes", n_workers=2, pipeline=True)
        ).build_graph(genomic_batch)
    assert "step2 exploded" in str(excinfo.value)


def test_failing_merger_tears_down_pool(genomic_batch, monkeypatch):
    """An exception in the parent's merger must not strand workers."""

    def broken_finalize(self):
        raise RuntimeError("merger failed before publishing")

    monkeypatch.setattr(backend_mod._PipelineMerger, "_finalize_all",
                        broken_finalize)
    t0 = time.perf_counter()
    with pytest.raises(RuntimeError, match="merger failed"):
        ParaHash(
            CFG.with_(backend="processes", n_workers=2, pipeline=True)
        ).build_graph(genomic_batch)
    assert time.perf_counter() - t0 < 60.0


# -- calibration model ------------------------------------------------------------


def test_measure_host_rates_and_fit(genomic_batch):
    from repro.hetsim.device import (
        HashWork,
        MspWork,
        claim_weight,
        fitted_cpu,
        measure_host_rates,
        scaled_gpu,
    )

    cal = measure_host_rates(genomic_batch, CFG.k, CFG.p, CFG.n_partitions)
    assert cal.msp_bases_per_sec > 0
    assert cal.hash_ops_per_sec > 0
    assert cal.sample_bases > 0
    assert cal.sample_ops > 0

    cpu = fitted_cpu(cal, n_threads=1)
    assert cpu.hash_ops_per_sec == cal.hash_ops_per_sec
    gpu = scaled_gpu(cal)
    # The paper's GPU:CPU-thread ratios survive re-anchoring.
    assert gpu.hash_ops_per_sec / cpu.hash_ops_per_sec == pytest.approx(
        1.9e8 / 6.0e6
    )

    msp = MspWork(n_reads=100, n_bases=8000, n_superkmers=0,
                  in_bytes=8000, out_bytes=8000)
    hashw = HashWork(n_kmers=1000, ops=3000, probes=700, inserts=250,
                     table_bytes=1 << 16, in_bytes=1000, out_bytes=0)
    for device in (cpu, gpu):
        w = claim_weight(device, msp)
        assert 1 <= w <= 8
        w = claim_weight(device, hashw, target_seconds=0.1, max_weight=4)
        assert 1 <= w <= 4
