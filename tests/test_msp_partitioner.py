"""Tests for repro.msp.partitioner (the MSP step)."""

import numpy as np
import pytest

from repro.concurrentsub.hashfunc import mix64_int
from repro.dna.kmer import canonical_u64
from repro.dna.minimizer import superkmers_for_reads
from repro.msp.partitioner import (
    load_partitions,
    partition_reads,
    partition_to_files,
)
from repro.msp.records import NO_EXT


class TestPartitionReads:
    def test_all_superkmers_routed(self, genomic_batch):
        res = partition_reads(genomic_batch, k=15, p=7, n_partitions=8)
        sk = superkmers_for_reads(genomic_batch.codes, 15, 7)
        assert sum(b.n_superkmers for b in res.blocks) == len(sk)
        assert res.total_kmers() == genomic_batch.n_kmers(15)

    def test_routing_follows_minimizer_hash(self, small_batch):
        n_partitions = 8
        res = partition_reads(small_batch, k=11, p=5, n_partitions=n_partitions)
        sk = res.superkmers
        sel = [mix64_int(int(m)) % n_partitions for m in sk.minimizer]
        counts = np.bincount(sel, minlength=n_partitions)
        assert counts.tolist() == [b.n_superkmers for b in res.blocks]

    def test_duplicate_vertices_land_in_same_partition(self, genomic_batch):
        # The MSP guarantee: partitions are vertex-disjoint.
        k = 15
        res = partition_reads(genomic_batch, k=k, p=7, n_partitions=16)
        seen: dict[int, int] = {}
        for pid, block in enumerate(res.blocks):
            kmers, _ = block.flat_kmers()
            for v in np.unique(canonical_u64(kmers, k)):
                assert seen.setdefault(int(v), pid) == pid, hex(int(v))

    def test_extension_bases_match_reads(self, small_batch):
        res = partition_reads(small_batch, k=11, p=5, n_partitions=4)
        codes = small_batch.codes
        length = small_batch.read_length
        sk = res.superkmers
        # Reconstruct extensions from the raw superkmer set and compare
        # against what the blocks stored (via per-partition grouping).
        all_left, all_right = [], []
        for block in res.blocks:
            all_left.extend(block.left_ext.tolist())
            all_right.extend(block.right_ext.tolist())
        # Sizes line up.
        assert len(all_left) == len(sk)
        # Check the invariant directly per block record.
        for block in res.blocks:
            for i in range(block.n_superkmers):
                rec = block.record(i)
                if rec.left_ext == NO_EXT and rec.right_ext == NO_EXT:
                    assert len(rec.bases) == length  # whole-read superkmer
                assert rec.left_ext in (-1, 0, 1, 2, 3)
                assert rec.right_ext in (-1, 0, 1, 2, 3)

    def test_boundary_superkmers_have_no_ext(self, small_batch):
        res = partition_reads(small_batch, k=11, p=5, n_partitions=1)
        block = res.blocks[0]
        # Superkmers at a read start lack a left extension; count them:
        # exactly one per read starts at position 0.
        n_no_left = int((block.left_ext == NO_EXT).sum())
        n_no_right = int((block.right_ext == NO_EXT).sum())
        assert n_no_left == small_batch.n_reads
        assert n_no_right == small_batch.n_reads

    def test_single_partition_holds_everything(self, small_batch):
        res = partition_reads(small_batch, k=11, p=5, n_partitions=1)
        assert res.blocks[0].total_kmers() == small_batch.n_kmers(11)

    def test_param_validation(self, small_batch):
        with pytest.raises(ValueError):
            partition_reads(small_batch, k=11, p=0, n_partitions=4)
        with pytest.raises(ValueError):
            partition_reads(small_batch, k=11, p=12, n_partitions=4)
        with pytest.raises(ValueError):
            partition_reads(small_batch, k=200, p=5, n_partitions=4)
        with pytest.raises(ValueError):
            partition_reads(small_batch, k=11, p=5, n_partitions=0)

    def test_per_partition_counts(self, genomic_batch):
        res = partition_reads(genomic_batch, k=15, p=7, n_partitions=8)
        assert res.kmers_per_partition().sum() == genomic_batch.n_kmers(15)
        assert res.superkmers_per_partition().sum() == len(res.superkmers)


class TestPartitionToFiles:
    def test_files_written_and_loadable(self, genomic_batch, tmp_path):
        report = partition_to_files(
            genomic_batch, k=15, p=7, n_partitions=6, out_dir=tmp_path,
            n_input_pieces=3,
        )
        assert len(report.paths) == 6
        blocks = load_partitions(report.paths)
        assert sum(b.total_kmers() for b in blocks) == genomic_batch.n_kmers(15)
        assert report.n_kmers == genomic_batch.n_kmers(15)

    def test_disk_equals_memory(self, genomic_batch, tmp_path):
        # Accumulating over pieces on disk must equal one in-memory run.
        report = partition_to_files(
            genomic_batch, k=15, p=7, n_partitions=4, out_dir=tmp_path,
            n_input_pieces=4,
        )
        disk_blocks = load_partitions(report.paths)
        mem = partition_reads(genomic_batch, k=15, p=7, n_partitions=4)
        for db, mb in zip(disk_blocks, mem.blocks):
            assert db.n_superkmers == mb.n_superkmers
            assert np.array_equal(np.sort(db.lengths), np.sort(mb.lengths))
            kd, _ = db.flat_kmers()
            km_, _ = mb.flat_kmers()
            assert np.array_equal(np.sort(kd), np.sort(km_))

    def test_bytes_written_matches_files(self, genomic_batch, tmp_path):
        import os

        report = partition_to_files(
            genomic_batch, k=15, p=7, n_partitions=4, out_dir=tmp_path,
        )
        assert report.bytes_written == sum(os.path.getsize(p) for p in report.paths)
