"""Tests for repro.dna.encoding (2-bit packing)."""

import numpy as np
import pytest

from repro.dna import alphabet as al
from repro.dna import encoding as enc


class TestPackedSize:
    def test_exact_multiples(self):
        assert enc.packed_size(4) == 1
        assert enc.packed_size(8) == 2

    def test_rounding_up(self):
        assert enc.packed_size(1) == 1
        assert enc.packed_size(5) == 2

    def test_zero(self):
        assert enc.packed_size(0) == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            enc.packed_size(-1)

    def test_quarter_size_claim(self):
        # §III-B: encoded output is ~1/4 of the text representation.
        n = 10_000
        assert enc.packed_size(n) == n // 4


class TestPackUnpack:
    def test_roundtrip_all_lengths(self):
        rng = np.random.default_rng(0)
        for n in range(0, 30):
            codes = rng.integers(0, 4, size=n, dtype=np.uint8)
            packed = enc.pack_codes(codes)
            assert len(packed) == enc.packed_size(n)
            out = enc.unpack_codes(packed, n)
            assert np.array_equal(out, codes)

    def test_first_base_most_significant(self):
        packed = enc.pack_codes(np.array([3, 0, 0, 0], dtype=np.uint8))
        assert packed == bytes([0b11000000])

    def test_padding_is_zero(self):
        packed = enc.pack_codes(np.array([1], dtype=np.uint8))
        assert packed == bytes([0b01000000])

    def test_unpack_too_short_raises(self):
        with pytest.raises(ValueError):
            enc.unpack_codes(b"\x00", 5)

    def test_unpack_ignores_trailing_bytes(self):
        codes = np.array([1, 2], dtype=np.uint8)
        data = enc.pack_codes(codes) + b"\xff\xff"
        assert np.array_equal(enc.unpack_codes(data, 2), codes)

    def test_empty(self):
        assert enc.pack_codes(np.zeros(0, dtype=np.uint8)) == b""
        assert enc.unpack_codes(b"", 0).size == 0


class TestIntPacking:
    def test_codes_to_int_lexicographic(self):
        # Integer order must equal string order for equal lengths.
        a = enc.codes_to_int(al.encode("ACGT"))
        b = enc.codes_to_int(al.encode("ACTA"))
        assert (a < b) == ("ACGT" < "ACTA")

    def test_roundtrip(self):
        codes = al.encode("GATTACA")
        value = enc.codes_to_int(codes)
        assert np.array_equal(enc.int_to_codes(value, 7), codes)

    def test_leading_a_preserved(self):
        codes = al.encode("AAAC")
        value = enc.codes_to_int(codes)
        assert value == 1
        assert np.array_equal(enc.int_to_codes(value, 4), codes)

    def test_int_to_codes_overflow_rejected(self):
        with pytest.raises(ValueError):
            enc.int_to_codes(1 << 10, 4)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            enc.int_to_codes(-1, 4)


class TestWords:
    def test_single_word(self):
        value = enc.codes_to_int(al.encode("ACGT" * 7))  # 28 bases, 56 bits
        words = enc.int_to_words(value, 28)
        assert len(words) == 1
        assert enc.words_to_int(words) == value

    def test_multi_word(self):
        codes = al.encode("ACGT" * 20)  # 80 bases -> 160 bits -> 3 words
        value = enc.codes_to_int(codes)
        words = enc.int_to_words(value, 80)
        assert len(words) == 3
        assert all(w < (1 << 64) for w in words)
        assert enc.words_to_int(words) == value

    def test_words_for_bases(self):
        assert enc.words_for_bases(1) == 1
        assert enc.words_for_bases(32) == 1
        assert enc.words_for_bases(33) == 2
        assert enc.words_for_bases(64) == 2
        assert enc.words_for_bases(65) == 3

    def test_words_for_bases_min_one(self):
        assert enc.words_for_bases(0) == 1

    def test_roundtrip_random(self):
        rng = np.random.default_rng(5)
        for n in (10, 31, 32, 33, 63, 64, 100):
            codes = rng.integers(0, 4, size=n, dtype=np.uint8)
            value = enc.codes_to_int(codes)
            assert enc.words_to_int(enc.int_to_words(value, n)) == value
