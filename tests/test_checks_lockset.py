"""Unit tests of the Eraser lockset state machine and monitor plumbing."""

import threading

from repro.checks.lockset import (
    EXCLUSIVE,
    SHARED,
    SHARED_MODIFIED,
    LocksetMonitor,
)
from repro.concurrentsub.atomics import TracedLock, set_monitor


def on_thread(fn, name="helper"):
    """Run fn() on a fresh thread and wait (distinct threading.get_ident)."""
    t = threading.Thread(target=fn, name=name)
    t.start()
    t.join()


class TestStateMachine:
    def test_single_thread_stays_exclusive(self):
        mon = LocksetMonitor()
        for _ in range(5):
            mon.record("v", 1, 0, "write")
        assert mon.var_state("v", 1, 0) == EXCLUSIVE
        assert mon.races() == []

    def test_read_only_sharing_is_clean(self):
        mon = LocksetMonitor()
        mon.record("v", 1, 0, "read")
        on_thread(lambda: mon.record("v", 1, 0, "read"))
        assert mon.var_state("v", 1, 0) == SHARED
        assert mon.races() == []

    def test_unlocked_cross_thread_write_races(self):
        mon = LocksetMonitor()
        mon.record("v", 1, 0, "write")
        on_thread(lambda: mon.record("v", 1, 0, "write"))
        assert mon.var_state("v", 1, 0) == SHARED_MODIFIED
        races = mon.races()
        assert len(races) == 1
        assert races[0].reason == "empty candidate lockset"
        assert races[0].previous is not None

    def test_consistent_lock_discipline_is_clean(self):
        mon = LocksetMonitor()

        def locked_write():
            mon.lock_acquired("L")
            mon.record("v", 1, 0, "write")
            mon.lock_released("L")

        locked_write()
        on_thread(locked_write)
        on_thread(locked_write, name="third")
        assert mon.var_state("v", 1, 0) == SHARED_MODIFIED
        assert mon.races() == []

    def test_disjoint_locksets_race(self):
        # Both threads hold *a* lock, but never the same one: the
        # candidate set empties on refinement.
        mon = LocksetMonitor()
        mon.record("v", 1, 0, "write")  # initializer (excused)

        def with_lock(lock_id):
            def body():
                mon.lock_acquired(lock_id)
                mon.record("v", 1, 0, "write")
                mon.lock_released(lock_id)
            return body

        on_thread(with_lock("A"))
        assert mon.races() == []  # candidate = {A}, still nonempty
        on_thread(with_lock("B"), name="other")
        races = mon.races()
        assert len(races) == 1
        assert races[0].reason == "empty candidate lockset"

    def test_report_only_once_per_variable(self):
        mon = LocksetMonitor()
        mon.record("v", 1, 0, "write")
        for i in range(4):
            on_thread(lambda: mon.record("v", 1, 0, "write"), name=f"w{i}")
        assert len(mon.races()) == 1

    def test_variables_are_per_cell(self):
        mon = LocksetMonitor()
        mon.record("keys", 1, 3, "write")
        on_thread(lambda: mon.record("keys", 1, 4, "write"))
        # Different cells never interact: both stay EXCLUSIVE.
        assert mon.var_state("keys", 1, 3) == EXCLUSIVE
        assert mon.var_state("keys", 1, 4) == EXCLUSIVE
        assert mon.races() == []


class TestPublicationOrdering:
    def test_write_once_then_read_acq_is_clean(self):
        # The state-transfer key publication: exclusive write, then
        # lock-free reads ordered by the atomic OCCUPIED observation.
        mon = LocksetMonitor()
        mon.record("keys", 1, 0, "write")
        on_thread(lambda: mon.record("keys", 1, 0, "read-acq"))
        on_thread(lambda: mon.record("keys", 1, 0, "read-acq"), name="r2")
        assert mon.var_state("keys", 1, 0) == SHARED
        assert mon.races() == []

    def test_unordered_publication_read_races(self):
        # The dual-publication bug: a plain read of the numpy mirror
        # with no happens-before edge to the writer.
        mon = LocksetMonitor()
        mon.record("state", 1, 0, "write")
        on_thread(lambda: mon.record("state", 1, 0, "read"))
        races = mon.races()
        assert len(races) == 1
        assert races[0].reason == "unordered publication read"
        assert races[0].state == SHARED

    def test_common_lock_orders_the_read(self):
        mon = LocksetMonitor()
        mon.lock_acquired("L")
        mon.record("v", 1, 0, "write")
        mon.lock_released("L")

        def locked_read():
            mon.lock_acquired("L")
            mon.record("v", 1, 0, "read")
            mon.lock_released("L")

        on_thread(locked_read)
        assert mon.races() == []

    def test_read_after_read_is_not_publication(self):
        mon = LocksetMonitor()
        mon.record("v", 1, 0, "write")
        mon.record("v", 1, 0, "read")  # owner's read is now `last`
        on_thread(lambda: mon.record("v", 1, 0, "read"))
        assert mon.races() == []


class TestMonitorPlumbing:
    def test_locks_held_tracks_nesting(self):
        mon = LocksetMonitor()
        assert mon.locks_held() == frozenset()
        mon.lock_acquired("A")
        mon.lock_acquired("B")
        assert mon.locks_held() == frozenset({"A", "B"})
        mon.lock_released("A")
        assert mon.locks_held() == frozenset({"B"})
        mon.lock_released("B")

    def test_traced_lock_reports_to_monitor(self):
        mon = LocksetMonitor()
        prev = set_monitor(mon)
        try:
            lock = TracedLock("test_lock")
            with lock:
                held = mon.locks_held()
                assert len(held) == 1
                (lock_id,) = held
                assert lock_id[1] == "test_lock"
            assert mon.locks_held() == frozenset()
        finally:
            set_monitor(prev)

    def test_assert_no_races_raises_with_description(self):
        mon = LocksetMonitor()
        mon.record("v", 7, 2, "write")
        on_thread(lambda: mon.record("v", 7, 2, "write"))
        try:
            mon.assert_no_races()
        except AssertionError as exc:
            assert "candidate race" in str(exc)
            assert "v[2]" in str(exc)
        else:
            raise AssertionError("expected assert_no_races to raise")

    def test_max_reports_cap(self):
        mon = LocksetMonitor(max_reports=2)
        for i in range(5):
            mon.record("v", 1, i, "write")

        def race_all():
            for i in range(5):
                mon.record("v", 1, i, "write")

        on_thread(race_all)
        assert len(mon.races()) == 2

    def test_report_site_attributes_caller_not_plumbing(self):
        mon = LocksetMonitor()
        mon.record("v", 1, 0, "write")
        on_thread(lambda: mon.record("v", 1, 0, "write"))
        (race,) = mon.races()
        assert "test_checks_lockset.py" in race.access.site
