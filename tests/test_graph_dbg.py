"""Tests for repro.graph.dbg (the graph store)."""

import numpy as np
import pytest

from repro.dna import alphabet as al
from repro.dna.encoding import codes_to_int
from repro.dna.reads import ReadBatch
from repro.graph.build import build_reference_graph
from repro.graph.dbg import (
    IN_BASE,
    MULT_SLOT,
    OUT_BASE,
    DeBruijnGraph,
    empty_graph,
    graph_from_pairs,
    slot_for_predecessor,
    slot_for_successor,
)


def kmer_of(s: str) -> int:
    return codes_to_int(al.encode(s))


class TestSlotMapping:
    def test_unflipped_successor(self):
        assert slot_for_successor(np.array(False), np.array(2)) == OUT_BASE + 2

    def test_flipped_successor_complements(self):
        assert slot_for_successor(np.array(True), np.array(2)) == IN_BASE + 1

    def test_unflipped_predecessor(self):
        assert slot_for_predecessor(np.array(False), np.array(0)) == IN_BASE + 0

    def test_flipped_predecessor(self):
        assert slot_for_predecessor(np.array(True), np.array(0)) == OUT_BASE + 3

    def test_vectorized(self):
        flips = np.array([False, True, False])
        bases = np.array([0, 1, 3])
        out = slot_for_successor(flips, bases)
        assert out.tolist() == [OUT_BASE + 0, IN_BASE + 2, OUT_BASE + 3]


class TestGraphFromPairs:
    def test_aggregation(self):
        v = np.array([5, 5, 5, 9], dtype=np.uint64)
        s = np.array([MULT_SLOT, MULT_SLOT, 0, MULT_SLOT], dtype=np.uint64)
        g = graph_from_pairs(3, v, s)
        assert g.n_vertices == 2
        assert g.multiplicity(5) == 2
        assert int(g.counts[g.index_of(5), 0]) == 1
        assert g.multiplicity(9) == 1

    def test_empty(self):
        g = graph_from_pairs(5, np.zeros(0, dtype=np.uint64), np.zeros(0, dtype=np.uint64))
        assert g.n_vertices == 0

    def test_bad_slot(self):
        with pytest.raises(ValueError):
            graph_from_pairs(3, np.array([1], dtype=np.uint64),
                             np.array([9], dtype=np.uint64))

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            graph_from_pairs(3, np.zeros(2, dtype=np.uint64),
                             np.zeros(3, dtype=np.uint64))

    def test_large_k_lexsort_path(self):
        # 2k + 4 > 64 triggers the lexsort fallback; compare both paths
        # by building identical content with a small-k equivalent.
        v = np.array([7, 7, 3, 3, 3], dtype=np.uint64)
        s = np.array([0, 0, 8, 8, 2], dtype=np.uint64)
        fast = graph_from_pairs(27, v, s)  # packed path
        slow = graph_from_pairs(31, v, s)  # 2*31+4 = 66 > 64: lexsort
        assert np.array_equal(fast.vertices, slow.vertices)
        assert np.array_equal(fast.counts, slow.counts)


class TestGraphQueries:
    def graph(self):
        # Reads spelling ACGTA: vertices ACG, CGT, GTA (canonical forms).
        batch = ReadBatch.from_strs(["ACGTA"])
        return build_reference_graph(batch, 3)

    def test_contains(self):
        g = self.graph()
        acg = min(kmer_of("ACG"), kmer_of("CGT"))  # canonical of ACG
        assert acg in g

    def test_successor_weights(self):
        batch = ReadBatch.from_strs(["AACCC", "AACCC"])
        g = build_reference_graph(batch, 3)
        aac = kmer_of("AAC")  # canonical (rc = GTT)
        succ = g.successors(aac)
        # AAC -> ACC observed twice.
        acc = min(kmer_of("ACC"), kmer_of("GGT"))
        assert (acc, 2) in succ

    def test_predecessors_inverse_of_successors(self, genomic_batch):
        g = build_reference_graph(genomic_batch, 15)
        v = int(g.vertices[len(g) // 2])
        for neighbor, _ in g.successors(v):
            back = [u for u, _ in g.predecessors(neighbor)] + [
                u for u, _ in g.successors(neighbor)
            ]
            assert v in back

    def test_degree(self):
        g = self.graph()
        assert all(g.degree(int(v)) >= 1 for v in g.vertices)

    def test_missing_vertex_queries(self):
        g = self.graph()
        assert g.multiplicity(10**15) == 0
        assert g.successors(10**15) == []
        assert np.array_equal(g.edge_counts(10**15), np.zeros(8, dtype=np.uint64))

    def test_describe(self):
        g = self.graph()
        d = g.describe()
        assert d["n_vertices"] == g.n_vertices
        assert d["total_kmer_instances"] == 3


class TestGraphTransforms:
    def test_filter_min_multiplicity(self, genomic_batch):
        g = build_reference_graph(genomic_batch, 15)
        filtered = g.filter_min_multiplicity(2)
        assert filtered.n_vertices < g.n_vertices
        assert (filtered.counts[:, MULT_SLOT] >= 2).all()

    def test_filter_keeps_everything_at_one(self, genomic_batch):
        g = build_reference_graph(genomic_batch, 15)
        assert g.filter_min_multiplicity(1).equals(g)

    def test_filter_removes_error_vertices(self, tiny_profile):
        # Error kmers are mostly multiplicity-1; genome kmers at 10x
        # coverage are mostly >= 2.
        genome, reads = tiny_profile.generate()
        g = build_reference_graph(reads, 21)
        filtered = g.filter_min_multiplicity(2)
        # Filtering should remove a noticeable share of vertices but
        # keep the graph near genome size.
        assert filtered.n_vertices < g.n_vertices
        assert filtered.n_vertices >= 0.5 * tiny_profile.genome_size


class TestValidationOfStore:
    def test_rejects_unsorted(self):
        with pytest.raises(ValueError):
            DeBruijnGraph(
                k=3,
                vertices=np.array([5, 3], dtype=np.uint64),
                counts=np.zeros((2, 9), dtype=np.uint64),
            )

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError):
            DeBruijnGraph(
                k=3,
                vertices=np.array([3], dtype=np.uint64),
                counts=np.zeros((2, 9), dtype=np.uint64),
            )

    def test_empty_graph(self):
        g = empty_graph(7)
        assert g.n_vertices == 0
        assert g.total_edge_weight() == 0
        assert g.k == 7
