"""Tests for repro.service.manifest (stage checkpoints)."""

import json

import pytest

from repro.service.manifest import (
    Artifact,
    StageManifest,
    file_digest,
    fresh_manifest,
    read_json,
    write_json_atomic,
)


@pytest.fixture
def artifact_file(tmp_path):
    path = tmp_path / "out.bin"
    path.write_bytes(b"subgraph bytes")
    return path


class TestFileDigest:
    def test_stable_and_prefixed(self, tmp_path):
        path = tmp_path / "f"
        path.write_bytes(b"hello")
        d1, d2 = file_digest(path), file_digest(path)
        assert d1 == d2
        assert d1.startswith("sha256:")

    def test_content_sensitivity(self, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        a.write_bytes(b"x")
        b.write_bytes(b"y")
        assert file_digest(a) != file_digest(b)


class TestWriteJsonAtomic:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "doc.json"
        write_json_atomic(path, {"a": 1})
        assert read_json(path) == {"a": 1}

    def test_no_temp_litter(self, tmp_path):
        path = tmp_path / "doc.json"
        write_json_atomic(path, {"a": 1})
        write_json_atomic(path, {"a": 2})
        assert [p.name for p in tmp_path.iterdir()] == ["doc.json"]

    def test_corrupt_reads_as_none(self, tmp_path):
        path = tmp_path / "doc.json"
        path.write_text("{ torn wri")
        assert read_json(path) is None

    def test_missing_reads_as_none(self, tmp_path):
        assert read_json(tmp_path / "absent.json") is None


class TestStageManifest:
    def _manifest(self, artifact_file, tmp_path, **over):
        kwargs = dict(
            stage="step2_p0003",
            params={"k": 15, "lam": 2.0},
            inputs={"partition": "sha256:abc"},
            outputs=(Artifact.of(artifact_file, tmp_path),),
            stats={"n_vertices": 7},
        )
        kwargs.update(over)
        return fresh_manifest(**kwargs)

    def test_save_load_round_trip(self, tmp_path, artifact_file):
        m = self._manifest(artifact_file, tmp_path)
        path = tmp_path / "m.json"
        m.save(path)
        loaded = StageManifest.load(path)
        assert loaded is not None
        assert loaded.stage == m.stage
        assert loaded.params == m.params
        assert loaded.inputs == m.inputs
        assert loaded.outputs == m.outputs
        assert loaded.stats == m.stats
        assert loaded.created == pytest.approx(m.created)

    def test_valid_when_unchanged(self, tmp_path, artifact_file):
        m = self._manifest(artifact_file, tmp_path)
        ok, reason = m.validate({"k": 15, "lam": 2.0},
                                {"partition": "sha256:abc"}, tmp_path)
        assert ok, reason

    def test_param_change_invalidates(self, tmp_path, artifact_file):
        m = self._manifest(artifact_file, tmp_path)
        ok, reason = m.validate({"k": 17, "lam": 2.0},
                                {"partition": "sha256:abc"}, tmp_path)
        assert not ok
        assert "params" in reason

    def test_input_digest_change_invalidates(self, tmp_path, artifact_file):
        m = self._manifest(artifact_file, tmp_path)
        ok, reason = m.validate({"k": 15, "lam": 2.0},
                                {"partition": "sha256:OTHER"}, tmp_path)
        assert not ok
        assert "partition" in reason

    def test_missing_output_invalidates(self, tmp_path, artifact_file):
        m = self._manifest(artifact_file, tmp_path)
        artifact_file.unlink()
        ok, reason = m.validate({"k": 15, "lam": 2.0},
                                {"partition": "sha256:abc"}, tmp_path)
        assert not ok
        assert "missing" in reason

    def test_resized_output_invalidates(self, tmp_path, artifact_file):
        m = self._manifest(artifact_file, tmp_path)
        artifact_file.write_bytes(b"truncated!")
        ok, reason = m.validate({"k": 15, "lam": 2.0},
                                {"partition": "sha256:abc"}, tmp_path)
        assert not ok
        assert "resized" in reason

    def test_corrupt_manifest_loads_as_none(self, tmp_path):
        path = tmp_path / "m.json"
        path.write_text("not json {{{")
        assert StageManifest.load(path) is None

    def test_wrong_version_loads_as_none(self, tmp_path, artifact_file):
        m = self._manifest(artifact_file, tmp_path)
        path = tmp_path / "m.json"
        m.save(path)
        doc = json.loads(path.read_text())
        doc["version"] = 999
        path.write_text(json.dumps(doc))
        assert StageManifest.load(path) is None


class TestArtifact:
    def test_of_records_relative_path_and_size(self, tmp_path, artifact_file):
        a = Artifact.of(artifact_file, tmp_path)
        assert a.path == "out.bin"
        assert a.n_bytes == artifact_file.stat().st_size
        assert a.digest is None

    def test_of_with_digest(self, tmp_path, artifact_file):
        a = Artifact.of(artifact_file, tmp_path, digest=True)
        assert a.digest == file_digest(artifact_file)
