"""Smoke tests: every example script must run cleanly end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name: str, timeout: int = 300) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "verified: ParaHash graph == reference graph" in out

    def test_assemble_genome(self):
        out = run_example("assemble_genome.py")
        assert "unitigs:" in out
        # The mini assembly recovers (nearly) the whole genome.
        assert "% of the genome" in out
        frac = float(out.rsplit("(", 1)[1].split("%")[0])
        assert frac > 90.0

    def test_kmer_spectrum(self):
        out = run_example("kmer_spectrum.py")
        assert "multiplicity spectrum" in out
        assert "Property 1" in out

    def test_heterogeneous_pipeline(self):
        out = run_example("heterogeneous_pipeline.py")
        assert "Compute-bound regime" in out
        assert "IO-bound regime" in out
        assert "workload distribution" in out.lower()

    def test_large_k_and_formats(self):
        out = run_example("large_k_and_formats.py")
        assert "binary round trip OK" in out
        assert "two-word" in out

    def test_strain_comparison(self):
        out = run_example("strain_comparison.py")
        assert "SNP estimate" in out
        # The estimate should land near the true 40 SNPs.
        estimate = float(out.split("SNP estimate (A-private / K) |")[1]
                         .split("\n")[0])
        assert 30 <= estimate <= 45


@pytest.mark.parametrize("name", [
    "quickstart.py", "assemble_genome.py", "kmer_spectrum.py",
    "heterogeneous_pipeline.py", "large_k_and_formats.py",
    "strain_comparison.py",
])
def test_example_exists_and_documented(name):
    path = EXAMPLES / name
    assert path.exists()
    text = path.read_text()
    assert text.startswith("#!/usr/bin/env python3")
    assert '"""' in text  # module docstring
