"""Tests for repro.analysis (spectrum, degrees, error-rate estimation)."""

import numpy as np
import pytest

from repro.analysis.degrees import (
    branching_fraction,
    degree_summary,
    in_degrees,
    out_degrees,
)
from repro.analysis.errors import estimate_error_rate
from repro.analysis.spectrum import (
    analyze_spectrum,
    estimate_genome_size_from_instances,
    multiplicity_histogram,
)
from repro.dna.simulate import DatasetProfile
from repro.graph.build import build_reference_graph

K = 21


@pytest.fixture(scope="module")
def covered():
    """20x coverage, lambda=1 dataset with its graph."""
    profile = DatasetProfile(
        name="analysis", genome_size=12_000, read_length=90, coverage=20.0,
        mean_errors=1.0, repeat_fraction=0.0, seed=31,
    )
    genome, reads = profile.generate()
    return profile, genome, reads, build_reference_graph(reads, K)


class TestSpectrum:
    def test_histogram_totals(self, covered):
        _, _, reads, graph = covered
        hist = multiplicity_histogram(graph)
        assert hist.sum() == graph.n_vertices
        weighted = int((np.arange(hist.size) * hist).sum())
        # The tail bucket aggregates, so weighted sum <= true instances.
        assert weighted <= graph.total_kmer_instances()

    def test_error_spike_at_one(self, covered):
        _, _, _, graph = covered
        hist = multiplicity_histogram(graph)
        assert hist[1] > hist[2] > 0  # errors dominate multiplicity 1

    def test_coverage_peak_near_kmer_coverage(self, covered):
        profile, _, reads, graph = covered
        summary = analyze_spectrum(graph)
        # Kmer coverage = base coverage * (L-K+1)/L ~ 15.6 here.
        kmer_cov = profile.coverage * (reads.read_length - K + 1) / reads.read_length
        assert abs(summary.coverage_peak - kmer_cov) <= 5

    def test_genome_size_estimates(self, covered):
        profile, _, _, graph = covered
        summary = analyze_spectrum(graph)
        assert summary.estimated_genome_size == pytest.approx(
            profile.genome_size, rel=0.15
        )
        # The peak-based estimator divides by the histogram *mode*,
        # which sits below the mean coverage; it is order-of-magnitude
        # only (that is its classic use).
        by_instances = estimate_genome_size_from_instances(graph)
        assert by_instances == pytest.approx(profile.genome_size, rel=0.4)

    def test_error_free_has_low_threshold_losses(self):
        profile = DatasetProfile(
            name="clean", genome_size=5_000, read_length=80, coverage=25.0,
            mean_errors=0.0, repeat_fraction=0.0, seed=5,
        )
        _, reads = profile.generate()
        graph = build_reference_graph(reads, K)
        summary = analyze_spectrum(graph)
        # Without errors nearly every vertex is genomic.
        assert summary.n_error_vertices < 0.1 * graph.n_vertices


class TestDegrees:
    def test_histograms_cover_all_vertices(self, covered):
        _, _, _, graph = covered
        summary = degree_summary(graph)
        assert sum(summary.out_degree_histogram) == graph.n_vertices
        assert sum(summary.in_degree_histogram) == graph.n_vertices

    def test_degree_arrays_bounded(self, covered):
        _, _, _, graph = covered
        assert int(out_degrees(graph).max()) <= 4
        assert int(in_degrees(graph).max()) <= 4

    def test_linear_genome_mostly_simple(self):
        profile = DatasetProfile(
            name="lin", genome_size=4_000, read_length=80, coverage=25.0,
            mean_errors=0.0, repeat_fraction=0.0, seed=8,
        )
        _, reads = profile.generate()
        graph = build_reference_graph(reads, K)
        summary = degree_summary(graph)
        assert summary.n_simple > 0.95 * graph.n_vertices
        assert branching_fraction(graph) < 0.02

    def test_errors_add_branching(self, covered):
        _, _, _, graph = covered
        assert branching_fraction(graph) > 0.0

    def test_empty_graph(self):
        from repro.graph.dbg import empty_graph

        assert branching_fraction(empty_graph(K)) == 0.0


class TestErrorRate:
    @pytest.mark.parametrize("true_lam", [0.5, 1.0, 2.0])
    def test_recovers_lambda(self, true_lam):
        profile = DatasetProfile(
            name="err", genome_size=10_000, read_length=90, coverage=20.0,
            mean_errors=true_lam, repeat_fraction=0.0, seed=17,
        )
        _, reads = profile.generate()
        graph = build_reference_graph(reads, K)
        est = estimate_error_rate(graph, reads.n_reads, reads.read_length)
        assert est.lam == pytest.approx(true_lam, rel=0.30)

    def test_validation(self, covered):
        _, _, _, graph = covered
        with pytest.raises(ValueError):
            estimate_error_rate(graph, 0, 90)
        with pytest.raises(ValueError):
            estimate_error_rate(graph, 100, 10)

    def test_per_base_rate(self, covered):
        profile, _, reads, graph = covered
        est = estimate_error_rate(graph, reads.n_reads, reads.read_length)
        assert est.per_base_rate == pytest.approx(est.lam / reads.read_length)
