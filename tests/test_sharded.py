"""Sharded table layout and the layout x protocol equivalence matrix.

Covers the PR's tentpole contract: the sharded layout and the lock-free
CAS-publish protocol are independent axes, every (layout, protocol)
combination builds the identical graph on both key widths, the
neighbor-shard fallback spills correctly under deliberately skewed
keys, and the lock-free threaded variant passes the lockset monitor
and an adversarial-scheduler probe of the claim→publish gap.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.bigk.construct import build_subgraph_2w
from repro.bigk.kmer2w import join_planes, split_int
from repro.bigk.table import TwoWordHashTable, hash_planes_int
from repro.concurrentsub.hashfunc import mix64_int
from repro.core.hashtable import (
    ConcurrentHashTable,
    HashStats,
    TableFullError,
)
from repro.core.subgraph import build_subgraph
from repro.graph.compare import compare_graphs
from repro.msp.partitioner import partition_reads
from repro.parallel.sharded import (
    ShardedHashTable,
    ShardedTwoWordHashTable,
    check_n_shards,
    shard_capacity,
)

COMBOS = [(layout, protocol)
          for layout in ("flat", "sharded")
          for protocol in ("locked", "lockfree")]


def assert_identical(a, b):
    cmp = compare_graphs(a, b)
    assert cmp.n_only_a == 0 and cmp.n_only_b == 0, cmp
    assert np.array_equal(a.counts, b.counts)


def observations(rng, n_distinct=150, n_obs=3000, k=15):
    keys = np.unique(
        rng.integers(0, 1 << (2 * k), size=n_distinct, dtype=np.uint64))
    idx = rng.integers(0, keys.size, size=n_obs)
    return keys[idx], rng.integers(0, 9, size=n_obs).astype(np.int64)


def skewed_keys(n, n_shards, shard=0, k=15, two_word=False, dbg_k=33):
    """``n`` distinct keys whose home shard is ``shard`` (brute force)."""
    bits = n_shards.bit_length() - 1
    out = []
    kmer = 1
    while len(out) < n:
        if two_word:
            hi, lo = split_int(kmer, dbg_k)
            home = hash_planes_int(hi, lo) >> (64 - bits)
        else:
            home = mix64_int(kmer) >> (64 - bits)
        if home == shard:
            out.append(kmer)
        kmer += 1
    return out


# -- layout helpers ---------------------------------------------------------------


def test_check_n_shards():
    for good in (1, 2, 4, 64):
        check_n_shards(good)
    for bad in (0, -4, 3, 6, 12):
        with pytest.raises(ValueError):
            check_n_shards(bad)


def test_shard_capacity_covers_total():
    assert shard_capacity(1024, 8) == 128
    assert shard_capacity(1000, 8) == 128   # rounds up to a power of two
    assert shard_capacity(8, 8) == 2        # floor: probing needs slack
    for cap, s in ((1 << 14, 4), (777, 8), (12, 2)):
        assert shard_capacity(cap, s) * s >= cap


def test_sharded_table_geometry():
    t = ShardedHashTable(1024, k=15, n_shards=8)
    assert t.n_shards == 8 and len(t.shards) == 8
    assert t.capacity == sum(sh.capacity for sh in t.shards)
    assert t.n_occupied == 0
    assert t.layout == "sharded"


# -- equivalence: every (layout, protocol) combo, both key widths -----------------


@pytest.mark.parametrize("layout,protocol", COMBOS)
def test_combo_matches_flat_locked_one_word(rng, layout, protocol):
    kmers, slots = observations(rng)
    reference = ConcurrentHashTable(2048, k=15)
    reference.insert_batch(kmers, slots)
    if layout == "sharded":
        table = ShardedHashTable(2048, k=15, n_shards=4, protocol=protocol)
    else:
        table = ConcurrentHashTable(2048, k=15, protocol=protocol)
    table.insert_batch(kmers, slots)
    assert_identical(reference.to_graph(), table.to_graph())


@pytest.mark.parametrize("layout,protocol", COMBOS)
def test_combo_matches_flat_locked_two_word(rng, layout, protocol):
    k = 33
    kmers = np.unique(
        rng.integers(0, 1 << 62, size=120, dtype=np.uint64)).astype(np.uint64)
    idx = rng.integers(0, kmers.size, size=1500)
    obs = kmers[idx]
    slots = rng.integers(0, 9, size=obs.size).astype(np.int64)
    hi = np.zeros(obs.size, dtype=np.uint64)
    lo = obs.copy()
    reference = TwoWordHashTable(1024, k=k)
    reference.insert_batch(hi, lo, slots)
    if layout == "sharded":
        table = ShardedTwoWordHashTable(1024, k=k, n_shards=4,
                                        protocol=protocol)
    else:
        table = TwoWordHashTable(1024, k=k, protocol=protocol)
    table.insert_batch(hi, lo, slots)
    assert_identical(reference.to_graph(), table.to_graph())


@pytest.mark.parametrize("layout,protocol", COMBOS)
def test_build_subgraph_combo_equivalence(clean_batch, layout, protocol):
    blocks = partition_reads(clean_batch, k=21, p=9, n_partitions=4).blocks
    block = max(blocks, key=lambda b: b.n_superkmers)
    reference = build_subgraph(block).graph
    built = build_subgraph(block, protocol=protocol, table_layout=layout,
                           n_shards=4).graph
    assert_identical(reference, built)


@pytest.mark.parametrize("layout,protocol", COMBOS)
def test_build_subgraph_2w_combo_equivalence(clean_batch, layout, protocol):
    blocks = partition_reads(clean_batch, k=45, p=15, n_partitions=4).blocks
    block = max(blocks, key=lambda b: b.n_superkmers)
    reference = build_subgraph_2w(block).graph
    built = build_subgraph_2w(block, protocol=protocol, table_layout=layout,
                              n_shards=4).graph
    assert_identical(reference, built)


@pytest.mark.parametrize("protocol", ["locked", "lockfree"])
def test_sharded_threaded_matches_batch(rng, protocol):
    kmers, slots = observations(rng, n_obs=2000)
    batch = ShardedHashTable(2048, k=15, n_shards=4, protocol=protocol)
    batch.insert_batch(kmers, slots)
    threaded = ShardedHashTable(2048, k=15, n_shards=4, protocol=protocol)
    threaded.insert_threaded(kmers, slots, n_threads=4)
    assert_identical(batch.to_graph(), threaded.to_graph())
    assert threaded.stats.ops == 2000
    if protocol == "lockfree":
        assert threaded.stats.key_locks == 0


@pytest.mark.parametrize("protocol", ["locked", "lockfree"])
def test_sharded_threaded_matches_batch_two_word(rng, protocol):
    k = 33
    ints = [int(x) for x in np.unique(
        rng.integers(0, 1 << 60, size=60, dtype=np.uint64))] * 10
    slots = np.zeros(len(ints), dtype=np.int64)
    hi = np.array([split_int(v, k)[0] for v in ints], dtype=np.uint64)
    lo = np.array([split_int(v, k)[1] for v in ints], dtype=np.uint64)
    batch = ShardedTwoWordHashTable(512, k=k, n_shards=4, protocol=protocol)
    batch.insert_batch(hi, lo, slots)
    threaded = ShardedTwoWordHashTable(512, k=k, n_shards=4,
                                       protocol=protocol)
    threaded.insert_threaded(ints, slots, n_threads=4)
    assert_identical(batch.to_graph(), threaded.to_graph())


# -- skewed keys: neighbor-shard fallback and full-table semantics ----------------


class TestShardFallback:
    def test_skewed_keys_spill_to_neighbors(self):
        # 14 distinct keys all homed to shard 0 of a 4-shard table with
        # 4 slots per shard: shard 0 alone cannot hold them, the spill
        # must walk the deterministic neighbor order instead of raising.
        table = ShardedHashTable(16, k=15, n_shards=4)
        keys = skewed_keys(14, 4)
        kmers = np.array(keys * 3, dtype=np.uint64)
        slots = np.zeros(kmers.size, dtype=np.int64)
        table.insert_batch(kmers, slots)
        assert table.n_occupied == 14
        per_shard = [sh.n_occupied for sh in table.shards]
        assert sum(per_shard) == 14
        assert max(per_shard) <= 4  # probing keeps one free slot per shard
        assert sum(1 for n in per_shard if n) > 1, per_shard
        # Every key is still found through the same fallback walk.
        for key in keys:
            row = table.lookup(np.uint64(key))
            assert row is not None and int(row[0]) == 3

    def test_spill_stats_attribution(self):
        table = ShardedHashTable(16, k=15, n_shards=4)
        keys = skewed_keys(14, 4)
        kmers = np.array(keys * 3, dtype=np.uint64)
        slots = np.zeros(kmers.size, dtype=np.int64)
        table.insert_batch(kmers, slots)
        stats = table.stats
        # Attribution across the spill: every observation is counted
        # exactly once, every distinct key inserted exactly once, and
        # the rolled-back full-shard attempts only ever add probes.
        assert stats.ops == kmers.size
        assert stats.count_increments == kmers.size
        assert stats.inserts == 14
        assert stats.updates == kmers.size - 14
        assert stats.probes > 0

    def test_per_op_spill_matches_batch(self):
        keys = skewed_keys(14, 4)
        kmers = np.array(keys * 3, dtype=np.uint64)
        slots = np.zeros(kmers.size, dtype=np.int64)
        batch = ShardedHashTable(16, k=15, n_shards=4)
        batch.insert_batch(kmers, slots)
        threaded = ShardedHashTable(16, k=15, n_shards=4)
        threaded.insert_threaded(kmers, slots, n_threads=3)
        assert_identical(batch.to_graph(), threaded.to_graph())
        assert threaded.stats.ops == kmers.size
        assert threaded.stats.inserts == 14

    def test_full_only_when_all_shards_exhausted(self):
        # Linear probing fills every slot of every shard before the
        # wrapper gives up; TableFullError therefore implies the whole
        # table is occupied, not just the home shard.
        table = ShardedHashTable(16, k=15, n_shards=4)
        keys = skewed_keys(16, 4)
        kmers = np.array(keys, dtype=np.uint64)
        slots = np.zeros(16, dtype=np.int64)
        table.insert_batch(kmers, slots)
        assert table.n_occupied == 16
        extra = skewed_keys(17, 4)[-1]
        with pytest.raises(TableFullError, match="all 4 shards exhausted"):
            table.insert_batch(np.array([extra], dtype=np.uint64),
                               np.zeros(1, dtype=np.int64))
        with pytest.raises(TableFullError, match="all 4 shards exhausted"):
            table.insert_one_threadsafe(extra, 0, HashStats())

    def test_on_full_return_reports_leftovers(self):
        table = ShardedHashTable(16, k=15, n_shards=4)
        keys = skewed_keys(18, 4)
        kmers = np.array(keys, dtype=np.uint64)
        slots = np.zeros(18, dtype=np.int64)
        left = table.insert_batch(kmers, slots, on_full="return")
        assert left.size == 2
        assert table.n_occupied == 16

    def test_skewed_two_word_spill(self):
        table = ShardedTwoWordHashTable(16, k=33, n_shards=4)
        keys = skewed_keys(14, 4, two_word=True)
        hi = np.array([split_int(v, 33)[0] for v in keys], dtype=np.uint64)
        lo = np.array([split_int(v, 33)[1] for v in keys], dtype=np.uint64)
        table.insert_batch(np.tile(hi, 2), np.tile(lo, 2),
                           np.zeros(28, dtype=np.int64))
        assert table.n_occupied == 14
        assert sum(1 for sh in table.shards if sh.n_occupied) > 1
        assert table.stats.inserts == 14
        assert table.stats.ops == 28


# -- races: lock-free threaded variant under monitor + scheduler ------------------


class TestLockfreeRaces:
    def test_lockset_clean_one_word(self, rng):
        from repro.checks.instrument import lockset_session

        kmers, slots = observations(rng, n_distinct=60, n_obs=800)
        table = ShardedHashTable(1024, k=15, n_shards=4,
                                 protocol="lockfree")
        with lockset_session() as mon:
            table.insert_threaded(kmers, slots, n_threads=4)
        mon.assert_no_races()
        assert table.stats.key_locks == 0

    def test_lockset_clean_two_word(self, rng):
        from repro.checks.instrument import lockset_session

        ints = [int(x) for x in np.unique(
            rng.integers(0, 1 << 60, size=40, dtype=np.uint64))] * 8
        slots = np.zeros(len(ints), dtype=np.int64)
        table = ShardedTwoWordHashTable(512, k=33, n_shards=4,
                                        protocol="lockfree")
        with lockset_session() as mon:
            table.insert_threaded(ints, slots, n_threads=4)
        mon.assert_no_races()

    def test_prepub_gap_blocks_readers_until_publish(self):
        # Adversarial schedule on the real claim→publish gap: park the
        # claim winner after keys_hi (keys_lo unwritten), let a same-key
        # reader probe the slot.  The fixed protocol must spin on the
        # missing PUB bit instead of trusting the torn key; on release
        # exactly one vertex exists.
        from repro.checks.instrument import monitor_session
        from repro.checks.schedule import InterleavingScheduler, _run_threads

        sched = InterleavingScheduler(timeout=15.0)

        def on_gap(s: InterleavingScheduler, point) -> None:
            if s.bump("gap_entered") == 1:
                s.bump("winner_mid_gap")
                s.pause_at("hold")

        sched.on("lf_prepub_gap", on_gap)

        table = TwoWordHashTable(64, k=33, protocol="lockfree")
        locals_ = [HashStats(), HashStats()]
        kmer = (3 << 62) | 0xD0D0F00D

        def winner() -> None:
            table.insert_one_threadsafe(kmer, 0, locals_[0])

        def reader() -> None:
            sched.wait_count("winner_mid_gap", 1)
            t = threading.Thread(
                target=table.insert_one_threadsafe,
                args=(kmer, 0, locals_[1]))
            t.start()
            deadline = time.monotonic() + 10.0
            while (locals_[1].blocked_reads == 0
                   and time.monotonic() < deadline):
                time.sleep(0.001)
            sched.release("hold")
            t.join()

        with monitor_session(sched):
            _run_threads([winner, reader], 15.0)

        assert table.n_occupied == 1
        assert locals_[1].blocked_reads > 0
        row = table.lookup(kmer)
        assert row is not None and int(row[0]) == 2


# -- process backend across the matrix --------------------------------------------


@pytest.mark.parametrize("layout,protocol", COMBOS)
def test_cross_process_combo_matches_serial(rng, layout, protocol):
    from repro.parallel import concurrent_insert_processes

    kmers, slots = observations(rng, n_distinct=100, n_obs=1200)
    serial = ConcurrentHashTable(1024, k=15)
    serial.insert_batch(kmers, slots)
    graph, worker_stats = concurrent_insert_processes(
        kmers, slots, k=15, capacity=1024, n_workers=2,
        layout=layout, protocol=protocol, n_shards=4)
    assert_identical(serial.to_graph(), graph)
    if protocol == "lockfree":
        assert sum(s.key_locks for s in worker_stats) == 0


# -- configuration and service plumbing -------------------------------------------


def test_config_rejects_bad_table_axes():
    from repro.core.config import ParaHashConfig

    with pytest.raises(ValueError):
        ParaHashConfig(k=21, p=9, table_layout="banana")
    with pytest.raises(ValueError):
        ParaHashConfig(k=21, p=9, insert_protocol="optimistic")
    with pytest.raises(ValueError):
        ParaHashConfig(k=21, p=9, table_layout="sharded", n_shards=3)


def test_jobspec_rejects_bad_table_axes():
    from repro.service.jobstore import JobError, JobSpec

    JobSpec(input="reads.fq", table_layout="sharded",
            insert_protocol="lockfree", n_shards=4)
    with pytest.raises(JobError):
        JobSpec(input="reads.fq", table_layout="banana")
    with pytest.raises(JobError):
        JobSpec(input="reads.fq", insert_protocol="optimistic")
    with pytest.raises(JobError):
        JobSpec(input="reads.fq", n_shards=6)


def test_table_over_segment_sharded_roundtrip(rng):
    from repro.parallel.shm import create_table_segment, table_over_segment

    kmers, slots = observations(rng, n_distinct=50, n_obs=400)
    with create_table_segment(512, k=15, n_shards=4) as seg:
        table = table_over_segment(seg, k=15, fresh=True, layout="sharded",
                                   n_shards=4)
        table.insert_batch(kmers, slots)
        reference = ConcurrentHashTable(512, k=15)
        reference.insert_batch(kmers, slots)
        assert_identical(reference.to_graph(), table.to_graph())
        table.detach_views()


def test_join_planes_roundtrip_for_skew_helper():
    # The skew helper derives homes from split_int; make sure the split
    # it uses is the same bijection the table stores.
    for v in (1, 0xD0D0, (3 << 62) | 5):
        hi, lo = split_int(v, 33)
        assert join_planes(hi, lo) == v
