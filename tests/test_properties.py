"""Property-based tests (hypothesis) on the core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dna.alphabet import decode, encode
from repro.dna.encoding import (
    codes_to_int,
    int_to_codes,
    int_to_words,
    pack_codes,
    unpack_codes,
    words_to_int,
)
from repro.dna.kmer import (
    canonical_int,
    canonical_u64,
    kmers_from_reads,
    revcomp_int,
    revcomp_u64,
)
from repro.dna.minimizer import (
    minimizer_of_kmer_ref,
    minimizers_for_reads,
    sliding_min,
    superkmers_of_read_ref,
)
from repro.dna.reads import ReadBatch
from repro.graph.build import build_reference_graph, build_reference_graph_slow
from repro.graph.validate import assert_graphs_equal, validate_full_graph

dna_strings = st.text(alphabet="ACGT", min_size=1, max_size=120)
code_arrays = st.lists(st.integers(0, 3), min_size=1, max_size=200).map(
    lambda xs: np.array(xs, dtype=np.uint8)
)


class TestEncodingProperties:
    @given(dna_strings)
    def test_encode_decode_roundtrip(self, s):
        assert decode(encode(s)) == s

    @given(code_arrays)
    def test_pack_unpack_roundtrip(self, codes):
        assert np.array_equal(unpack_codes(pack_codes(codes), len(codes)), codes)

    @given(code_arrays)
    def test_int_roundtrip(self, codes):
        value = codes_to_int(codes)
        assert np.array_equal(int_to_codes(value, len(codes)), codes)

    @given(code_arrays)
    def test_words_roundtrip(self, codes):
        value = codes_to_int(codes)
        assert words_to_int(int_to_words(value, len(codes))) == value

    @given(st.lists(st.integers(0, 3), min_size=2, max_size=40),
           st.lists(st.integers(0, 3), min_size=2, max_size=40))
    def test_int_order_is_lexicographic(self, a, b):
        n = min(len(a), len(b))
        a, b = a[:n], b[:n]
        ia = codes_to_int(np.array(a, dtype=np.uint8))
        ib = codes_to_int(np.array(b, dtype=np.uint8))
        assert (ia < ib) == (a < b)


class TestKmerProperties:
    @given(st.integers(1, 31), st.data())
    def test_revcomp_involution(self, k, data):
        kmer = data.draw(st.integers(0, (1 << (2 * k)) - 1))
        assert revcomp_int(revcomp_int(kmer, k), k) == kmer

    @given(st.integers(1, 31), st.data())
    def test_canonical_idempotent(self, k, data):
        kmer = data.draw(st.integers(0, (1 << (2 * k)) - 1))
        c = canonical_int(kmer, k)
        assert canonical_int(c, k) == c
        assert c <= kmer

    @given(st.integers(1, 31), st.data())
    def test_canonical_strand_invariant(self, k, data):
        kmer = data.draw(st.integers(0, (1 << (2 * k)) - 1))
        assert canonical_int(kmer, k) == canonical_int(revcomp_int(kmer, k), k)

    @given(st.integers(1, 20), st.data())
    @settings(max_examples=30)
    def test_vectorized_matches_scalar(self, k, data):
        kmers = np.array(
            data.draw(st.lists(st.integers(0, (1 << (2 * k)) - 1),
                               min_size=1, max_size=50)),
            dtype=np.uint64,
        )
        rc = revcomp_u64(kmers, k)
        can = canonical_u64(kmers, k)
        for i in range(kmers.size):
            assert int(rc[i]) == revcomp_int(int(kmers[i]), k)
            assert int(can[i]) == canonical_int(int(kmers[i]), k)


class TestSlidingMinProperties:
    @given(st.lists(st.integers(0, 10**6), min_size=1, max_size=60),
           st.integers(1, 60))
    def test_matches_naive(self, xs, w):
        if w > len(xs):
            w = len(xs)
        a = np.array(xs)
        got = sliding_min(a, w)
        for i in range(len(xs) - w + 1):
            assert got[i] == min(xs[i : i + w])


class TestSuperkmerProperties:
    @given(st.integers(0, 2**32 - 1), st.integers(5, 20), st.integers(1, 20))
    @settings(max_examples=40)
    def test_decomposition_covers_once(self, seed, k, p):
        p = min(p, k)
        rng = np.random.default_rng(seed)
        length = int(rng.integers(k, k + 50))
        codes = rng.integers(0, 4, size=length, dtype=np.uint8)
        groups = superkmers_of_read_ref(codes, k, p)
        # Tiles [0, n_kmers) without gaps or overlaps.
        pos = 0
        for start, n, _ in groups:
            assert start == pos
            assert n >= 1
            pos += n
        assert pos == length - k + 1

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=20)
    def test_vectorized_minimizers_match_reference(self, seed):
        rng = np.random.default_rng(seed)
        k = int(rng.integers(4, 16))
        p = int(rng.integers(1, k + 1))
        codes = rng.integers(0, 4, size=(3, k + 20), dtype=np.uint8)
        minis = minimizers_for_reads(codes, k, p)
        for i in range(3):
            for j in range(codes.shape[1] - k + 1):
                assert int(minis[i, j]) == minimizer_of_kmer_ref(
                    codes[i, j : j + k], p
                )


class TestGraphProperties:
    @given(st.integers(0, 2**32 - 1), st.integers(3, 12))
    @settings(max_examples=15, deadline=None)
    def test_fast_builder_matches_slow(self, seed, k):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 15))
        length = int(rng.integers(k, k + 25))
        batch = ReadBatch(codes=rng.integers(0, 4, size=(n, length), dtype=np.uint8))
        fast = build_reference_graph(batch, k)
        slow = build_reference_graph_slow(batch, k)
        assert_graphs_equal(fast, slow)

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=10, deadline=None)
    def test_full_graph_invariants(self, seed):
        rng = np.random.default_rng(seed)
        batch = ReadBatch(codes=rng.integers(0, 4, size=(20, 30), dtype=np.uint8))
        k = 9
        g = build_reference_graph(batch, k)
        validate_full_graph(g, batch)

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=10, deadline=None)
    def test_parahash_equals_reference(self, seed):
        from repro.core.parahash import build_debruijn_graph

        rng = np.random.default_rng(seed)
        batch = ReadBatch(codes=rng.integers(0, 4, size=(25, 40), dtype=np.uint8))
        k = int(rng.integers(5, 14))
        p = int(rng.integers(1, k + 1))
        n_partitions = int(rng.integers(1, 12))
        got = build_debruijn_graph(batch, k=k, p=p, n_partitions=n_partitions)
        ref = build_reference_graph(batch, k)
        assert_graphs_equal(got, ref, f"k={k},p={p},np={n_partitions}")


class TestHashTableProperties:
    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_table_equals_sort_merge(self, seed):
        from repro.core.hashtable import ConcurrentHashTable
        from repro.graph.dbg import graph_from_pairs

        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 400))
        kmers = rng.integers(0, 1 << 20, size=n, dtype=np.uint64)
        slots = rng.integers(0, 9, size=n).astype(np.int64)
        table = ConcurrentHashTable(2048, k=10)
        table.insert_batch(kmers, slots)
        assert table.to_graph().equals(graph_from_pairs(10, kmers, slots))
