"""SIGKILL-mid-build resume coverage: the service's raison d'être.

A child process runs a job whose Step-2 tasks are slowed by the
``step2_delay`` fault-injection knob; the parent SIGKILLs it right
after the first per-partition manifest lands, then resumes.  The
resumed run must re-run *only* the unfinished partitions (pre-kill
manifests keep their ``created`` stamps) and the final graph must equal
a fresh serial build.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.core.parahash import ParaHash, ParaHashConfig
from repro.graph.compare import compare_graphs
from repro.graph.serialize import load_graph
from repro.service import JobSpec, JobStore, run_job

_SRC = str(Path(__file__).resolve().parents[1] / "src")

_CHILD = """\
import sys
from repro.service import JobStore, run_job
run_job(JobStore(sys.argv[1]).load(sys.argv[2]))
"""

N_PARTITIONS = 6
STEP2_DELAY = 0.4


def _spawn_and_kill_mid_step2(record, root) -> dict[str, float]:
    """Run the job in a child, SIGKILL it after >=1 Step-2 manifest.

    Returns the manifest stamps that survived the kill.
    """
    env = dict(os.environ, PYTHONPATH=_SRC)
    proc = subprocess.Popen(
        [sys.executable, "-c", _CHILD, str(root), record.job_id],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    try:
        deadline = time.monotonic() + 120.0
        while time.monotonic() < deadline:
            if list(record.manifest_dir.glob("step2_p*.json")):
                break
            if proc.poll() is not None:
                pytest.fail(f"job finished before the kill "
                            f"(exit {proc.returncode}); raise the delay")
            time.sleep(0.02)
        else:
            pytest.fail("no step2 manifest appeared within 120s")
        os.kill(proc.pid, signal.SIGKILL)
        proc.wait(timeout=30.0)
    finally:
        if proc.poll() is None:  # pragma: no cover - cleanup on fail
            proc.kill()
            proc.wait()
    assert proc.returncode == -signal.SIGKILL
    survived = {
        path.stem: json.loads(path.read_text())["created"]
        for path in record.manifest_dir.glob("step2_p*.json")
    }
    # the kill must land mid-Step-2: some partitions done, some not
    assert 1 <= len(survived) < N_PARTITIONS
    return survived


@pytest.fixture
def killed_job(tmp_path, reads_file):
    root = tmp_path / "jobs"
    store = JobStore(root)
    record = store.create(JobSpec(
        input=str(reads_file), k=15, p=4, n_partitions=N_PARTITIONS,
        n_step1_tasks=2, step2_delay=STEP2_DELAY,
    ))
    survived = _spawn_and_kill_mid_step2(record, root)
    return root, record, survived


class TestResumeAfterKill:
    def test_resume_reruns_only_unfinished_partitions(
            self, killed_job, genomic_batch):
        root, record, survived = killed_job
        # a SIGKILLed owner cannot stamp a terminal state
        assert record.status == "running"

        elapsed = -time.monotonic()
        run_job(record)
        elapsed += time.monotonic()
        assert record.status == "done"

        after = {
            path.stem: json.loads(path.read_text())["created"]
            for path in record.manifest_dir.glob("step2_p*.json")
        }
        assert len(after) == N_PARTITIONS
        for stage, created in survived.items():
            assert after[stage] == created  # finished work not repeated
        # only the unfinished partitions paid the injected delay
        n_rerun = N_PARTITIONS - len(survived)
        assert elapsed < STEP2_DELAY * (n_rerun + 2)

        serial = ParaHash(
            ParaHashConfig(k=15, p=4, n_partitions=N_PARTITIONS)
        ).build_graph(genomic_batch).graph
        diff = compare_graphs(load_graph(record.graph_path), serial)
        assert diff.n_only_a == 0
        assert diff.n_only_b == 0
        assert diff.n_shared > 0

    def test_resume_via_cli(self, killed_job):
        root, record, survived = killed_job
        env = dict(os.environ, PYTHONPATH=_SRC)
        out = subprocess.run(
            [sys.executable, "-m", "repro", "resume", record.job_id,
             "--root", str(root)],
            env=env, capture_output=True, text=True, timeout=300,
        )
        assert out.returncode == 0, out.stderr
        assert record.status == "done"
        # second resume short-circuits: everything already done
        again = subprocess.run(
            [sys.executable, "-m", "repro", "resume", record.job_id,
             "--root", str(root)],
            env=env, capture_output=True, text=True, timeout=300,
        )
        assert again.returncode == 0, again.stderr

    def test_resume_unknown_job_fails_cleanly(self, tmp_path):
        root = tmp_path / "jobs"
        root.mkdir()
        env = dict(os.environ, PYTHONPATH=_SRC)
        out = subprocess.run(
            [sys.executable, "-m", "repro", "resume", "19700101-000000-0",
             "--root", str(root)],
            env=env, capture_output=True, text=True, timeout=60,
        )
        assert out.returncode == 2
        assert "no such job" in (out.stderr + out.stdout)
