"""Tests for repro.service.jobstore (specs, status, directory layout)."""

import pytest

from repro.service.jobstore import JobError, JobSpec, JobStore


def spec(**over) -> JobSpec:
    kwargs = dict(input="/data/reads.fa", k=15, p=4, n_partitions=8)
    kwargs.update(over)
    return JobSpec(**kwargs)


class TestJobSpec:
    def test_defaults_valid(self):
        s = spec()
        assert s.claim_weight == 1
        assert not s.big_k

    def test_big_k_flag(self):
        assert spec(k=41, p=6).big_k

    @pytest.mark.parametrize("bad", [
        dict(k=0), dict(k=64), dict(p=0), dict(p=16),  # p > k=15
        dict(n_partitions=0), dict(n_step1_tasks=0),
        dict(claim_weight=0), dict(step2_delay=-1.0), dict(max_memory=-1),
    ])
    def test_validation(self, bad):
        with pytest.raises(JobError):
            spec(**bad)

    def test_round_trip(self):
        s = spec(claim_weight=3, preaggregate=True)
        assert JobSpec.from_dict(s.to_dict()) == s

    def test_from_dict_human_memory(self):
        s = JobSpec.from_dict({"input": "/r.fa", "max_memory": "2K"})
        assert s.max_memory == 2048

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(JobError, match="unknown"):
            JobSpec.from_dict({"input": "/r.fa", "kmer": 15})

    def test_from_dict_requires_input(self):
        with pytest.raises(JobError, match="input"):
            JobSpec.from_dict({"k": 15})

    def test_from_dict_rejects_non_object(self):
        with pytest.raises(JobError):
            JobSpec.from_dict(["not", "a", "dict"])

    def test_with_weight(self):
        assert spec().with_weight(4).claim_weight == 4


class TestJobStore:
    def test_create_layout(self, tmp_path):
        record = JobStore(tmp_path).create(spec())
        assert record.spec_path.is_file()
        assert record.status_path.is_file()
        for d in (record.manifest_dir, record.spill_dir,
                  record.partition_dir, record.subgraph_dir):
            assert d.is_dir()
        assert record.status == "queued"

    def test_load_round_trip(self, tmp_path):
        store = JobStore(tmp_path)
        created = store.create(spec(claim_weight=2))
        loaded = store.load(created.job_id)
        assert loaded.spec == created.spec
        assert loaded.job_dir == created.job_dir

    def test_load_unknown_job(self, tmp_path):
        with pytest.raises(JobError, match="no such job"):
            JobStore(tmp_path).load("nope")

    def test_list_jobs_sorted_by_id(self, tmp_path):
        store = JobStore(tmp_path)
        ids = [store.create(spec()).job_id for _ in range(3)]
        assert [r.job_id for r in store.list_jobs()] == sorted(ids)

    def test_status_updates_merge(self, tmp_path):
        record = JobStore(tmp_path).create(spec())
        record.write_status(stage="step1", step1_done=2)
        record.set_state("running")
        doc = record.read_status()
        assert doc["status"] == "running"
        assert doc["stage"] == "step1"
        assert doc["step1_done"] == 2

    def test_bad_state_rejected(self, tmp_path):
        record = JobStore(tmp_path).create(spec())
        with pytest.raises(JobError):
            record.set_state("zombie")

    def test_corrupt_status_recovers(self, tmp_path):
        record = JobStore(tmp_path).create(spec())
        record.status_path.write_text("{ torn")
        assert record.status == "queued"  # manifests are the real truth

    def test_describe_carries_id_and_spec(self, tmp_path):
        record = JobStore(tmp_path).create(spec())
        doc = record.describe()
        assert doc["id"] == record.job_id
        assert doc["spec"]["k"] == 15
