"""Failure-injection tests: corrupted inputs, straggler devices, edge cases."""

import numpy as np
import pytest

from repro.core.config import ParaHashConfig
from repro.core.parahash import ParaHash
from repro.dna.reads import ReadBatch
from repro.msp.binio import PartitionFormatError, read_partition
from repro.msp.partitioner import load_partitions, partition_to_files


class TestCorruptedPartitionFiles:
    def make_partitions(self, batch, tmp_path):
        return partition_to_files(batch, k=15, p=7, n_partitions=3,
                                  out_dir=tmp_path)

    def test_bitflip_in_length_field_detected(self, genomic_batch, tmp_path):
        report = self.make_partitions(genomic_batch, tmp_path)
        path = report.paths[0]
        data = bytearray(path.read_bytes())
        # Corrupt the first record's length field (bytes 16-17 after the
        # 16-byte header) to a huge value.
        data[16] = 0xFF
        data[17] = 0xFF
        path.write_bytes(bytes(data))
        with pytest.raises(PartitionFormatError):
            read_partition(path)

    def test_truncated_file_detected(self, genomic_batch, tmp_path):
        report = self.make_partitions(genomic_batch, tmp_path)
        path = report.paths[1]
        data = path.read_bytes()
        path.write_bytes(data[: max(16, len(data) // 2)])
        with pytest.raises(PartitionFormatError):
            load_partitions([path])

    def test_empty_file_detected(self, genomic_batch, tmp_path):
        report = self.make_partitions(genomic_batch, tmp_path)
        report.paths[2].write_bytes(b"")
        with pytest.raises(PartitionFormatError):
            read_partition(report.paths[2])

    def test_intact_partitions_still_load(self, genomic_batch, tmp_path):
        report = self.make_partitions(genomic_batch, tmp_path)
        report.paths[0].write_bytes(b"garbage")
        good = load_partitions(report.paths[1:])
        assert all(b.n_superkmers >= 0 for b in good)


class TestDegenerateInputs:
    def test_single_read(self):
        batch = ReadBatch.from_strs(["ACGTACGTACGTACGT"])
        cfg = ParaHashConfig(k=7, p=3, n_partitions=4)
        result = ParaHash(cfg).build_graph(batch)
        assert result.graph.total_kmer_instances() == 10

    def test_reads_of_exactly_k(self):
        batch = ReadBatch.from_strs(["ACGTACG", "TTTTTTT", "ACGTACG"])
        cfg = ParaHashConfig(k=7, p=3, n_partitions=2, n_input_pieces=2)
        result = ParaHash(cfg).build_graph(batch)
        assert result.graph.total_kmer_instances() == 3
        assert result.graph.total_edge_weight() == 0

    def test_homopolymer_reads(self):
        # All-A reads: one distinct vertex (AAAA canonical), self-loops.
        batch = ReadBatch.from_strs(["AAAAAAAAAA"] * 5)
        cfg = ParaHashConfig(k=5, p=2, n_partitions=3)
        result = ParaHash(cfg).build_graph(batch)
        assert result.graph.n_vertices == 1
        assert result.graph.multiplicity(0) == 30

    def test_palindrome_rich_input(self):
        # Even k would allow reverse-complement palindromes; with odd k
        # (as the library recommends) these reads still work.
        batch = ReadBatch.from_strs(["ACGTACGTACGT", "TGCATGCATGCA"])
        cfg = ParaHashConfig(k=5, p=3, n_partitions=2)
        result = ParaHash(cfg).build_graph(batch)
        from repro.graph.validate import validate_full_graph

        validate_full_graph(result.graph, batch)

    def test_many_partitions_few_superkmers(self):
        batch = ReadBatch.from_strs(["ACGTACGTAC"])
        cfg = ParaHashConfig(k=5, p=3, n_partitions=64)
        result = ParaHash(cfg).build_graph(batch)
        assert result.graph.n_vertices > 0


class TestStragglerDevice:
    def test_slow_device_gets_less_work(self):
        from repro.hetsim.device import CpuDevice, HashWork
        from repro.hetsim.pipeline import simulate_step
        from repro.hetsim.transfer import memory_cached_disk

        works = [
            HashWork(n_kmers=1000, ops=30_000, probes=100, inserts=500,
                     table_bytes=1 << 18, in_bytes=1000, out_bytes=500)
            for _ in range(40)
        ]
        fast = CpuDevice(name="fast", n_threads=20)
        straggler = CpuDevice(name="straggler", n_threads=1,
                              hash_ops_per_sec=1e5)
        sim = simulate_step(works, [fast, straggler], memory_cached_disk())
        assert sim.usage["fast"].work_units > 5 * sim.usage["straggler"].work_units
        # Work stealing confines the straggler to a couple of claims
        # (each costs it ~0.3 simulated seconds); it must not serialize
        # the run (40 partitions on the straggler alone would be ~12 s).
        assert len(sim.usage["straggler"].partitions) <= 3
        per_claim = 30_000 / 1e5
        assert sim.elapsed_seconds < (
            len(sim.usage["straggler"].partitions) * per_claim + 0.2
        )

    def test_worker_thread_crash_propagates(self):
        from repro.concurrentsub.workqueue import run_coprocessed

        calls = {"n": 0}

        def flaky(x):
            calls["n"] += 1
            if x == 3:
                raise OSError("disk on fire")
            return x

        with pytest.raises(OSError, match="disk on fire"):
            run_coprocessed(list(range(6)), {"w": flaky})


class TestNumericEdges:
    def test_kmer_with_all_ts(self):
        # Highest possible kmer value; canonical flips to all-As.
        batch = ReadBatch.from_strs(["TTTTTTTT"])
        cfg = ParaHashConfig(k=7, p=3, n_partitions=2)
        result = ParaHash(cfg).build_graph(batch)
        assert result.graph.n_vertices == 1
        assert int(result.graph.vertices[0]) == 0  # canonical AAAAAAA

    def test_zero_errors_profile(self, clean_batch):
        from repro.graph.build import build_reference_graph
        from repro.graph.validate import assert_graphs_equal

        cfg = ParaHashConfig(k=15, p=7, n_partitions=4)
        result = ParaHash(cfg).build_graph(clean_batch)
        assert_graphs_equal(result.graph,
                            build_reference_graph(clean_batch, 15), "clean")
