"""Tests for repro.hetsim.model (Equations 1 and 2)."""

import pytest

from repro.hetsim.model import (
    StepComponents,
    classify_case,
    estimate_step_time,
    ideal_coprocessing_time,
    ideal_workload_shares,
    io_bound_time,
    t_io,
)


def comp(t_cpu=10.0, t_gpus=(8.0,), t_input=1.0, t_output=0.5, n=10):
    return StepComponents(t_cpu=t_cpu, t_gpus=tuple(t_gpus),
                          t_input=t_input, t_output=t_output, n_partitions=n)


class TestEquationOne:
    def test_compute_bound(self):
        c = comp(t_cpu=10, t_gpus=(8,), t_input=1, t_output=0.5, n=10)
        # max{10, 8, (9/10)*1} + (1.5/10)
        assert estimate_step_time(c) == pytest.approx(10 + 0.15)

    def test_io_bound(self):
        c = comp(t_cpu=1, t_gpus=(0.5,), t_input=20, t_output=10, n=10)
        assert estimate_step_time(c) == pytest.approx(0.9 * 20 + 3.0)

    def test_t_io_term(self):
        c = comp(t_input=10, t_output=4, n=5)
        assert t_io(c) == pytest.approx(0.8 * 10)

    def test_no_gpus(self):
        c = StepComponents(t_cpu=5, t_gpus=(), t_input=1, t_output=1,
                           n_partitions=4)
        assert estimate_step_time(c) == pytest.approx(5 + 0.5)

    def test_more_partitions_shrink_startup(self):
        small_n = estimate_step_time(comp(n=2))
        large_n = estimate_step_time(comp(n=100))
        assert large_n < small_n

    def test_validation(self):
        with pytest.raises(ValueError):
            StepComponents(t_cpu=1, t_gpus=(), t_input=1, t_output=1,
                           n_partitions=0)
        with pytest.raises(ValueError):
            StepComponents(t_cpu=-1, t_gpus=(), t_input=1, t_output=1,
                           n_partitions=2)

    def test_io_bound_time(self):
        c = comp(t_input=20, t_output=10, n=10)
        assert io_bound_time(c) == pytest.approx(18 + 3)


class TestEquationTwo:
    def test_speeds_add(self):
        # CPU at 10s, one GPU at 10s: together 5s.
        assert ideal_coprocessing_time(10, 10, 1) == pytest.approx(5.0)

    def test_two_gpus(self):
        assert ideal_coprocessing_time(10, 10, 2) == pytest.approx(10 / 3)

    def test_gpu_only(self):
        assert ideal_coprocessing_time(10, 6, 2, use_cpu=False) == pytest.approx(3.0)

    def test_cpu_only(self):
        assert ideal_coprocessing_time(7, 5, 0) == pytest.approx(7.0)

    def test_monotone_in_devices(self):
        times = [ideal_coprocessing_time(10, 8, n) for n in range(4)]
        assert times == sorted(times, reverse=True)

    def test_validation(self):
        with pytest.raises(ValueError):
            ideal_coprocessing_time(0, 5, 1)
        with pytest.raises(ValueError):
            ideal_coprocessing_time(5, 0, 1)
        with pytest.raises(ValueError):
            ideal_coprocessing_time(5, 5, -1)
        with pytest.raises(ValueError):
            ideal_coprocessing_time(5, 5, 0, use_cpu=False)


class TestCaseClassification:
    def test_case1(self):
        assert classify_case(comp(t_cpu=100, t_gpus=(80,), t_input=1,
                                  t_output=1)) == 1

    def test_case2(self):
        assert classify_case(comp(t_cpu=1, t_gpus=(0.5,), t_input=50,
                                  t_output=40)) == 2

    def test_mixed(self):
        assert classify_case(comp(t_cpu=10, t_gpus=(8,), t_input=5,
                                  t_output=5)) == 0

    def test_no_compute_is_case2(self):
        c = StepComponents(t_cpu=0, t_gpus=(), t_input=5, t_output=5,
                           n_partitions=2)
        assert classify_case(c) == 2


class TestIdealShares:
    def test_equal_speeds(self):
        shares = ideal_workload_shares(10, 10, 1)
        assert shares["cpu"] == pytest.approx(0.5)
        assert shares["gpu0"] == pytest.approx(0.5)

    def test_sums_to_one(self):
        shares = ideal_workload_shares(12, 7, 2)
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_faster_gpu_gets_more(self):
        shares = ideal_workload_shares(20, 5, 1)
        assert shares["gpu0"] > shares["cpu"]
