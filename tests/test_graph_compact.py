"""Tests for repro.graph.compact (unitig compaction)."""

import numpy as np
import pytest

from repro.dna.alphabet import decode, encode
from repro.dna.reads import ReadBatch
from repro.dna.simulate import random_genome, simulate_reads
from repro.graph.build import build_reference_graph
from repro.graph.compact import (
    compact_unitigs,
    compaction_stats,
    count_junction_vertices,
)


def genome_str(genome: np.ndarray) -> str:
    return decode(genome)


def revcomp_str(s: str) -> str:
    table = str.maketrans("ACGT", "TGCA")
    return s.translate(table)[::-1]


class TestLinearGenome:
    def test_single_unitig_full_coverage(self):
        # Error-free dense reads of a repeat-free genome compact to one
        # unitig spelling the genome (or its reverse complement).
        genome = random_genome(500, seed=5)
        reads = simulate_reads(genome, 300, 60, mean_errors=0.0, seed=6)
        g = build_reference_graph(reads, 21)
        unitigs = compact_unitigs(g)
        longest = max(unitigs, key=len)
        s = longest.to_str()
        gs = genome_str(genome)
        assert s in gs or revcomp_str(s) in gs
        assert len(s) >= 0.95 * len(gs)

    def test_every_vertex_in_exactly_one_unitig(self, clean_batch):
        g = build_reference_graph(clean_batch, 15)
        unitigs = compact_unitigs(g)
        rows = [r for u in unitigs for r in u.vertex_rows]
        assert sorted(rows) == list(range(g.n_vertices))

    def test_base_count_invariant(self, clean_batch):
        g = build_reference_graph(clean_batch, 15)
        unitigs = compact_unitigs(g)
        total = sum(len(u) for u in unitigs)
        assert total == g.n_vertices + len(unitigs) * (15 - 1)

    def test_unitig_spells_valid_kmers(self, clean_batch):
        # Every kmer of every unitig must be a vertex of the graph.
        from repro.dna.kmer import canonical_int, iter_kmers

        g = build_reference_graph(clean_batch, 15)
        unitigs = compact_unitigs(g)
        for u in unitigs[:20]:
            for kmer in iter_kmers(u.bases, 15):
                assert canonical_int(kmer, 15) in g


class TestBranching:
    def test_branch_breaks_unitig(self):
        # Two reads sharing a prefix then diverging create a branch.
        reads = ReadBatch.from_strs([
            "AAACCCGGGTTTACG",
            "AAACCCGGGTTTTGC",
        ])
        g = build_reference_graph(reads, 7)
        unitigs = compact_unitigs(g)
        assert len(unitigs) >= 2  # cannot be one path
        assert count_junction_vertices(g) >= 1

    def test_junction_count_zero_on_linear(self):
        genome = random_genome(300, seed=9)
        reads = simulate_reads(genome, 200, 50, mean_errors=0.0, seed=10)
        g = build_reference_graph(reads, 21)
        assert count_junction_vertices(g) == 0

    def test_errors_create_junctions(self, tiny_profile):
        genome, reads = tiny_profile.generate()
        g = build_reference_graph(reads, 21)
        assert count_junction_vertices(g) > 0


class TestStats:
    def test_compaction_stats(self, clean_batch):
        g = build_reference_graph(clean_batch, 15)
        unitigs = compact_unitigs(g)
        stats = compaction_stats(unitigs, 15)
        assert stats["n_unitigs"] == len(unitigs)
        assert stats["longest"] >= stats["n50"] > 0
        assert stats["total_bases"] == sum(len(u) for u in unitigs)

    def test_empty_graph(self):
        from repro.graph.dbg import empty_graph

        assert compact_unitigs(empty_graph(15)) == []
        stats = compaction_stats([], 15)
        assert stats["n_unitigs"] == 0

    def test_mean_multiplicity(self):
        reads = ReadBatch.from_strs(["ACGTACC"] * 3)
        g = build_reference_graph(reads, 5)
        unitigs = compact_unitigs(g)
        for u in unitigs:
            assert u.mean_multiplicity == pytest.approx(3.0)
