"""Tests for repro.msp.inspect (partition-directory tooling)."""

import pytest

from repro.msp.inspect import (
    deep_scan_partition,
    inspect_partition_dir,
    list_partition_files,
)
from repro.msp.partitioner import partition_to_files


@pytest.fixture
def partition_dir(genomic_batch, tmp_path):
    report = partition_to_files(genomic_batch, k=15, p=7, n_partitions=5,
                                out_dir=tmp_path)
    return tmp_path, report


class TestInspect:
    def test_summary_matches_report(self, partition_dir):
        directory, report = partition_dir
        summary = inspect_partition_dir(directory)
        assert summary.n_partitions == 5
        assert summary.k == 15
        assert summary.total_superkmers == report.n_superkmers
        assert summary.total_bytes == report.bytes_written

    def test_balance_cv(self, partition_dir):
        directory, _ = partition_dir
        summary = inspect_partition_dir(directory)
        assert 0 <= summary.balance_cv() < 2.0

    def test_list_sorted(self, partition_dir):
        directory, report = partition_dir
        files = list_partition_files(directory)
        assert files == sorted(report.paths)

    def test_empty_dir_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            inspect_partition_dir(tmp_path)

    def test_mixed_k_rejected(self, genomic_batch, tmp_path):
        partition_to_files(genomic_batch, k=15, p=7, n_partitions=2,
                           out_dir=tmp_path)
        # Add one file with a different k.
        sub = tmp_path / "extra"
        partition_to_files(genomic_batch, k=13, p=7, n_partitions=1,
                           out_dir=sub)
        (sub / "partition_0000.phsk").rename(tmp_path / "partition_9999.phsk")
        with pytest.raises(ValueError, match="mixed k"):
            inspect_partition_dir(tmp_path)


class TestDeepScan:
    def test_exact_counts(self, partition_dir, genomic_batch):
        directory, _ = partition_dir
        scans = [deep_scan_partition(f) for f in list_partition_files(directory)]
        assert sum(s["n_kmers"] for s in scans) == genomic_batch.n_kmers(15)
        for s in scans:
            assert s["k"] == 15
            assert s["n_with_left_ext"] <= s["n_superkmers"]
            assert s["mean_superkmer_length"] >= 15
