"""Tests for repro.concurrentsub.atomics (real-thread correctness)."""

import threading

import pytest

from repro.concurrentsub.atomics import AtomicInt64Array, SharedCounter


class TestAtomicArrayBasics:
    def test_load_store(self):
        arr = AtomicInt64Array(4)
        arr.store(2, 42)
        assert arr.load(2) == 42
        assert arr.load(0) == 0

    def test_add_returns_previous(self):
        arr = AtomicInt64Array(2)
        assert arr.add(0, 5) == 0
        assert arr.add(0, 3) == 5
        assert arr.load(0) == 8

    def test_cas_success_and_failure(self):
        arr = AtomicInt64Array(2)
        assert arr.compare_and_swap(0, 0, 7)
        assert not arr.compare_and_swap(0, 0, 9)
        assert arr.load(0) == 7
        assert arr.n_cas == 2
        assert arr.n_cas_failed == 1

    def test_snapshot(self):
        arr = AtomicInt64Array(3)
        arr.store(1, 11)
        snap = arr.snapshot()
        arr.store(1, 22)
        assert snap[1] == 11

    def test_sizes(self):
        assert len(AtomicInt64Array(10)) == 10
        with pytest.raises(ValueError):
            AtomicInt64Array(-1)
        with pytest.raises(ValueError):
            AtomicInt64Array(4, n_stripes=0)

    def test_reset_stats(self):
        arr = AtomicInt64Array(2)
        arr.add(0)
        arr.reset_stats()
        assert arr.n_add == 0


class TestAtomicArrayConcurrency:
    def test_concurrent_adds_lose_nothing(self):
        arr = AtomicInt64Array(8, n_stripes=4)
        n_threads, per_thread = 8, 2000

        def work():
            for i in range(per_thread):
                arr.add(i % 8, 1)

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert arr.snapshot().sum() == n_threads * per_thread

    def test_cas_mutual_exclusion(self):
        # Exactly one thread may win the CAS on each cell.
        arr = AtomicInt64Array(16)
        winners: list[int] = []
        lock = threading.Lock()

        def work(tid: int):
            for cell in range(16):
                if arr.compare_and_swap(cell, 0, tid + 1):
                    with lock:
                        winners.append(cell)

        threads = [threading.Thread(target=work, args=(t,)) for t in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(winners) == list(range(16))


class TestSharedCounter:
    def test_monotonic(self):
        c = SharedCounter()
        assert c.increment() == 1
        assert c.fetch_increment() == 1
        assert c.value == 2
        with pytest.raises(ValueError):
            c.increment(-1)

    def test_wait_for_already_satisfied(self):
        c = SharedCounter(5)
        assert c.wait_for(3)

    def test_wait_for_timeout(self):
        c = SharedCounter()
        assert not c.wait_for(1, timeout=0.05)

    def test_wait_wakes_on_increment(self):
        c = SharedCounter()
        results = []

        def waiter():
            results.append(c.wait_for(3, timeout=5.0))

        t = threading.Thread(target=waiter)
        t.start()
        for _ in range(3):
            c.increment()
        t.join(timeout=5.0)
        assert results == [True]

    def test_ticket_dispenser_unique(self):
        c = SharedCounter()
        tickets: list[int] = []
        lock = threading.Lock()

        def work():
            for _ in range(500):
                t = c.fetch_increment()
                with lock:
                    tickets.append(t)

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(tickets) == list(range(2000))
