"""Tests for repro.concurrentsub.hashfunc."""

import numpy as np
import pytest

from repro.concurrentsub.hashfunc import (
    hash_words,
    mix64,
    mix64_int,
    partition_ids,
    table_slots,
)


class TestMix64:
    def test_scalar_matches_vectorized(self, rng):
        values = rng.integers(0, 1 << 63, size=200, dtype=np.uint64)
        mixed = mix64(values)
        for i in range(0, 200, 13):
            assert int(mixed[i]) == mix64_int(int(values[i]))

    def test_deterministic(self):
        assert mix64_int(12345) == mix64_int(12345)

    def test_bijective_on_sample(self, rng):
        values = rng.integers(0, 1 << 63, size=10_000, dtype=np.uint64)
        mixed = mix64(np.unique(values))
        assert np.unique(mixed).size == np.unique(values).size

    def test_avalanche(self):
        # Flipping one input bit should flip ~half the output bits.
        a = mix64_int(0x1234_5678_9ABC_DEF0)
        b = mix64_int(0x1234_5678_9ABC_DEF1)
        flipped = bin(a ^ b).count("1")
        assert 20 <= flipped <= 44

    def test_zero_input(self):
        assert mix64_int(0) == 0  # splitmix64 finalizer maps 0 -> 0

    def test_does_not_mutate_input(self):
        values = np.arange(10, dtype=np.uint64)
        copy = values.copy()
        mix64(values)
        assert np.array_equal(values, copy)


class TestHashWords:
    def test_multiword_differs_from_singleword(self):
        assert hash_words([1, 2]) != hash_words([2, 1])
        assert hash_words([0, 5]) != hash_words([5])

    def test_deterministic(self):
        assert hash_words([7, 8, 9]) == hash_words([7, 8, 9])

    def test_fits_64_bits(self):
        assert 0 <= hash_words([2**64 - 1, 2**64 - 1]) < 2**64


class TestPartitionIds:
    def test_range(self, rng):
        minis = rng.integers(0, 1 << 40, size=1000, dtype=np.uint64)
        pids = partition_ids(minis, 32)
        assert pids.min() >= 0 and pids.max() < 32

    def test_uniformity(self, rng):
        minis = np.unique(rng.integers(0, 1 << 40, size=50_000, dtype=np.uint64))
        pids = partition_ids(minis, 16)
        counts = np.bincount(pids, minlength=16)
        # Should be within a few percent of uniform.
        expected = minis.size / 16
        assert counts.min() > 0.9 * expected
        assert counts.max() < 1.1 * expected

    def test_stability(self, rng):
        minis = rng.integers(0, 1 << 40, size=100, dtype=np.uint64)
        assert np.array_equal(partition_ids(minis, 7), partition_ids(minis, 7))

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            partition_ids(np.zeros(3, dtype=np.uint64), 0)


class TestTableSlots:
    def test_range(self, rng):
        kmers = rng.integers(0, 1 << 54, size=100, dtype=np.uint64)
        slots = table_slots(kmers, 256)
        assert slots.min() >= 0 and slots.max() < 256

    def test_power_of_two_required(self):
        with pytest.raises(ValueError):
            table_slots(np.zeros(3, dtype=np.uint64), 100)
        with pytest.raises(ValueError):
            table_slots(np.zeros(3, dtype=np.uint64), 0)
