"""Tests for repro.msp.records (superkmer blocks)."""

import numpy as np
import pytest

from repro.dna import alphabet as al
from repro.dna.encoding import codes_to_int
from repro.msp.records import (
    NO_EXT,
    SuperkmerBlock,
    SuperkmerRecord,
    block_from_records,
    concat_blocks,
    empty_block,
)


def make_block(k=5):
    records = [
        SuperkmerRecord(bases=al.encode("ACGTACG"), left_ext=NO_EXT, right_ext=2),
        SuperkmerRecord(bases=al.encode("TTTTT"), left_ext=1, right_ext=NO_EXT),
        SuperkmerRecord(bases=al.encode("GGGGGGGGG"), left_ext=0, right_ext=3),
    ]
    return block_from_records(k, records)


class TestBlockBasics:
    def test_counts(self):
        block = make_block()
        assert block.n_superkmers == 3
        assert block.lengths.tolist() == [7, 5, 9]
        assert block.kmers_per_superkmer.tolist() == [3, 1, 5]
        assert block.total_kmers() == 9
        assert block.total_bases() == 21

    def test_record_roundtrip(self):
        block = make_block()
        rec = block.record(0)
        assert rec.to_str() == "ACGTACG"
        assert rec.left_ext == NO_EXT
        assert rec.right_ext == 2

    def test_iter_records(self):
        block = make_block()
        assert [r.to_str() for r in block.iter_records()] == [
            "ACGTACG", "TTTTT", "GGGGGGGGG",
        ]

    def test_empty_block(self):
        block = empty_block(5)
        assert block.n_superkmers == 0
        assert block.total_kmers() == 0

    def test_record_n_kmers(self):
        rec = SuperkmerRecord(bases=al.encode("ACGTACG"), left_ext=-1, right_ext=-1)
        assert rec.n_kmers(5) == 3


class TestValidation:
    def test_too_short_superkmer(self):
        with pytest.raises(ValueError):
            block_from_records(9, [SuperkmerRecord(al.encode("ACGT"), -1, -1)])

    def test_bad_offsets(self):
        with pytest.raises(ValueError):
            SuperkmerBlock(
                k=3,
                bases=al.encode("ACGT"),
                offsets=np.array([1, 4], dtype=np.int64),
                left_ext=np.array([-1], dtype=np.int8),
                right_ext=np.array([-1], dtype=np.int8),
            )

    def test_offsets_must_end_at_len(self):
        with pytest.raises(ValueError):
            SuperkmerBlock(
                k=3,
                bases=al.encode("ACGT"),
                offsets=np.array([0, 3], dtype=np.int64),
                left_ext=np.array([-1], dtype=np.int8),
                right_ext=np.array([-1], dtype=np.int8),
            )

    def test_ext_shape_mismatch(self):
        with pytest.raises(ValueError):
            SuperkmerBlock(
                k=3,
                bases=al.encode("ACGT"),
                offsets=np.array([0, 4], dtype=np.int64),
                left_ext=np.array([-1, -1], dtype=np.int8),
                right_ext=np.array([-1], dtype=np.int8),
            )


class TestFlatKmers:
    def test_values_and_positions(self):
        block = make_block(k=5)
        kmers, pos = block.flat_kmers()
        assert kmers.size == 9
        # First superkmer ACGTACG: kmers ACGTA CGTAC GTACG at pos 0,1,2
        assert int(kmers[0]) == codes_to_int(al.encode("ACGTA"))
        assert int(kmers[2]) == codes_to_int(al.encode("GTACG"))
        assert pos[:3].tolist() == [0, 1, 2]
        # Second superkmer starts at offset 7.
        assert pos[3] == 7
        assert int(kmers[3]) == codes_to_int(al.encode("TTTTT"))

    def test_never_spans_boundaries(self):
        block = make_block(k=5)
        _, pos = block.flat_kmers()
        for i, p in enumerate(pos):
            # Each kmer must fit within its superkmer's span.
            sk = np.searchsorted(block.offsets, p, side="right") - 1
            assert p + 5 <= block.offsets[sk + 1]

    def test_empty(self):
        kmers, pos = empty_block(5).flat_kmers()
        assert kmers.size == 0 and pos.size == 0

    def test_matches_per_record_iteration(self, rng):
        from repro.dna.kmer import iter_kmers

        records = [
            SuperkmerRecord(
                bases=rng.integers(0, 4, size=n, dtype=np.uint8),
                left_ext=-1, right_ext=-1,
            )
            for n in (7, 12, 9, 30)
        ]
        block = block_from_records(7, records)
        kmers, _ = block.flat_kmers()
        expected = [km for r in records for km in iter_kmers(r.bases, 7)]
        assert kmers.tolist() == expected


class TestSizes:
    def test_encoded_smaller_than_text(self):
        block = make_block()
        assert block.byte_size_encoded() < block.byte_size_text()

    def test_encoding_ratio_approaches_quarter(self, rng):
        # For long superkmers the encoded size tends to text/4 (§III-B).
        records = [
            SuperkmerRecord(bases=rng.integers(0, 4, size=400, dtype=np.uint8),
                            left_ext=1, right_ext=2)
            for _ in range(50)
        ]
        block = block_from_records(21, records)
        ratio = block.byte_size_encoded() / block.byte_size_text()
        assert 0.24 <= ratio <= 0.30


class TestConcat:
    def test_concat_preserves_records(self):
        a = make_block()
        b = make_block()
        both = concat_blocks([a, b])
        assert both.n_superkmers == 6
        assert both.record(3).to_str() == "ACGTACG"
        assert both.record(5).right_ext == 3

    def test_concat_mixed_k_rejected(self):
        with pytest.raises(ValueError):
            concat_blocks([make_block(5), make_block(6)])

    def test_concat_skips_empty(self):
        both = concat_blocks([make_block(), empty_block(5)])
        assert both.n_superkmers == 3

    def test_concat_all_empty_rejected(self):
        with pytest.raises(ValueError):
            concat_blocks([empty_block(5)])
