"""Tests for repro.service.runner (manifest-guarded stage graph)."""

import json

import pytest

from repro.core.parahash import ParaHash, ParaHashConfig
from repro.dna.io import load_read_batch, save_read_batch
from repro.graph.compare import compare_graphs
from repro.bigk.serialize import detect_graph_format
from repro.graph.serialize import load_graph
from repro.service import JobSpec, JobStore, run_job
from repro.service.runner import JobFailed


@pytest.fixture
def store(tmp_path):
    return JobStore(tmp_path / "jobs")


def make_spec(reads_file, **over) -> JobSpec:
    kwargs = dict(input=str(reads_file), k=15, p=4, n_partitions=6,
                  n_step1_tasks=2)
    kwargs.update(over)
    return JobSpec(**kwargs)


def stamps(record) -> dict[str, float]:
    """created-timestamp per stage manifest: the skip/re-run witness."""
    return {
        path.stem: json.loads(path.read_text())["created"]
        for path in record.manifest_dir.glob("*.json")
    }


class TestInlineRun:
    def test_matches_serial_parahash(self, store, reads_file,
                                     genomic_batch):
        record = store.create(make_spec(reads_file))
        graph_path = run_job(record)

        serial = ParaHash(
            ParaHashConfig(k=15, p=4, n_partitions=6)
        ).build_graph(genomic_batch).graph
        diff = compare_graphs(load_graph(graph_path), serial)
        assert diff.n_only_a == 0
        assert diff.n_only_b == 0
        assert diff.n_shared > 0
        assert record.status == "done"

    def test_status_reports_progress_fields(self, store, reads_file):
        record = store.create(make_spec(reads_file))
        run_job(record)
        doc = record.read_status()
        assert doc["stage"] == "finalize"
        assert doc["step2_total"] == 6
        assert "elapsed_seconds" in doc

    def test_rerun_skips_every_stage(self, store, reads_file):
        record = store.create(make_spec(reads_file))
        run_job(record)
        before = stamps(record)
        assert len(before) == 2 + 1 + 6 + 1  # step1 x2, merge, step2 x6, final
        run_job(record)
        assert stamps(record) == before

    def test_failure_lands_in_status(self, store, tmp_path):
        record = store.create(
            make_spec(tmp_path / "never_written.fasta")
        )
        with pytest.raises(JobFailed):
            run_job(record)
        doc = record.read_status()
        assert doc["status"] == "failed"
        assert doc["error"]


class TestInvalidation:
    def test_changed_input_reruns_step1(self, store, reads_file,
                                        clean_batch):
        record = store.create(make_spec(reads_file))
        run_job(record)
        before = stamps(record)
        save_read_batch(reads_file, clean_batch, fmt="fasta")
        run_job(record)
        after = stamps(record)
        assert after["step1_t0000"] != before["step1_t0000"]
        assert after["step1_t0001"] != before["step1_t0001"]
        assert record.status == "done"

    def test_changed_input_changes_result(self, store, reads_file,
                                          clean_batch):
        record = store.create(make_spec(reads_file))
        run_job(record)
        first = load_graph(record.graph_path)
        save_read_batch(reads_file, clean_batch, fmt="fasta")
        run_job(record)
        serial = ParaHash(
            ParaHashConfig(k=15, p=4, n_partitions=6)
        ).build_graph(load_read_batch(reads_file)).graph
        diff = compare_graphs(load_graph(record.graph_path), serial)
        assert diff.n_only_a == 0 and diff.n_only_b == 0
        assert compare_graphs(first, serial).n_only_b > 0  # really changed

    def test_truncated_subgraph_reruns_only_that_partition(
            self, store, reads_file, genomic_batch):
        record = store.create(make_spec(reads_file))
        run_job(record)
        before = stamps(record)
        victim = record.subgraph_dir / "subgraph_0002.phdbg"
        victim.write_bytes(victim.read_bytes()[:16])  # torn write
        run_job(record)
        after = stamps(record)
        assert after["step2_p0002"] != before["step2_p0002"]
        unchanged = [s for s in after
                     if s.startswith("step2") and s != "step2_p0002"]
        for stage in unchanged:
            assert after[stage] == before[stage]
        serial = ParaHash(
            ParaHashConfig(k=15, p=4, n_partitions=6)
        ).build_graph(genomic_batch).graph
        diff = compare_graphs(load_graph(record.graph_path), serial)
        assert diff.n_only_a == 0 and diff.n_only_b == 0

    def test_changed_params_invalidate(self, store, reads_file):
        record = store.create(make_spec(reads_file))
        run_job(record)
        before = stamps(record)
        # same directory, new spec: a resubmit with different lam
        record2 = store.create(
            make_spec(reads_file, lam=3.0)
        )
        run_job(record2)
        assert record2.status == "done"
        assert stamps(record) == before  # first job untouched


class TestBigK:
    def test_big_k_inline(self, store, reads_file):
        record = store.create(make_spec(reads_file, k=41, p=6))
        graph_path = run_job(record)
        assert detect_graph_format(graph_path) == "2w"
        # determinism: an independent job over the same input agrees
        record2 = store.create(make_spec(reads_file, k=41, p=6))
        run_job(record2)
        from repro.bigk.serialize import load_big_graph
        diff = compare_graphs(load_big_graph(graph_path),
                              load_big_graph(record2.graph_path))
        assert diff.n_only_a == 0 and diff.n_only_b == 0
        assert diff.n_shared > 0
