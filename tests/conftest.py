"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.dna.reads import ReadBatch
from repro.dna.simulate import DatasetProfile, random_genome, simulate_reads


def pytest_addoption(parser):
    parser.addoption(
        "--repro-race-detect", action="store_true", default=False,
        help="run every test under the Eraser lockset monitor and fail "
             "on candidate races (tests that seed races install their "
             "own inner monitor, which shadows this one)",
    )


@pytest.fixture(autouse=True)
def _race_detect(request):
    """Suite-wide lockset monitoring, opt-in via --repro-race-detect."""
    if not request.config.getoption("--repro-race-detect"):
        yield
        return
    from repro.checks.instrument import lockset_session

    with lockset_session(capture_stacks=False) as mon:
        yield
    mon.assert_no_races()


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_batch(rng) -> ReadBatch:
    """60 random reads of length 70 (no genomic redundancy)."""
    return ReadBatch(codes=rng.integers(0, 4, size=(60, 70), dtype=np.uint8))


@pytest.fixture
def genomic_batch() -> ReadBatch:
    """Reads sampled from a small genome: realistic duplicate structure."""
    genome = random_genome(3000, seed=11)
    return simulate_reads(genome, n_reads=500, read_length=80,
                          mean_errors=1.0, seed=12)


@pytest.fixture
def clean_batch() -> ReadBatch:
    """Error-free reads from a small genome (both strands)."""
    genome = random_genome(2500, seed=21)
    return simulate_reads(genome, n_reads=400, read_length=75,
                          mean_errors=0.0, seed=22)


@pytest.fixture
def reads_file(tmp_path, genomic_batch):
    """The genomic batch saved as a FASTA file (service/job-store tests)."""
    from repro.dna.io import save_read_batch

    path = tmp_path / "reads.fasta"
    save_read_batch(path, genomic_batch, fmt="fasta")
    return path


@pytest.fixture
def tiny_profile() -> DatasetProfile:
    return DatasetProfile(
        name="tiny",
        genome_size=2_000,
        read_length=60,
        coverage=10.0,
        mean_errors=0.5,
        repeat_fraction=0.0,
        seed=99,
    )
