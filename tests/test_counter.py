"""Tests for repro.core.counter (kmer counting mode)."""

import numpy as np
import pytest

from repro.core.counter import (
    KmerCountTable,
    abundance_filter_reads,
    count_kmers,
    count_kmers_partitioned,
)
from repro.dna.kmer import canonical_int, revcomp_int
from repro.dna.reads import ReadBatch
from repro.graph.build import build_reference_graph
from repro.graph.dbg import MULT_SLOT


class TestCountKmers:
    def test_matches_graph_multiplicities(self, genomic_batch):
        k = 15
        table = count_kmers(genomic_batch, k)
        graph = build_reference_graph(genomic_batch, k)
        assert table.n_distinct == graph.n_vertices
        assert np.array_equal(table.kmers, graph.vertices)
        assert np.array_equal(table.counts, graph.counts[:, MULT_SLOT])

    def test_total_instances(self, genomic_batch):
        table = count_kmers(genomic_batch, 15)
        assert table.total_instances() == genomic_batch.n_kmers(15)

    def test_count_query_canonicalizes(self):
        batch = ReadBatch.from_strs(["AACGT", "AACGT"])
        table = count_kmers(batch, 5)
        kmer = 0b00_00_01_10_11  # AACGT
        assert table.count(kmer) == 2
        assert table.count(revcomp_int(kmer, 5)) == 2  # ACGTT
        assert kmer in table

    def test_missing_kmer(self, genomic_batch):
        table = count_kmers(genomic_batch, 15)
        absent = next(
            v for v in range(100)
            if canonical_int(v, 15) == v and table.count(v) == 0
        )
        assert absent not in table

    def test_partitioned_equals_direct(self, genomic_batch):
        direct = count_kmers(genomic_batch, 15)
        part = count_kmers_partitioned(genomic_batch, 15, p=7, n_partitions=8)
        assert np.array_equal(direct.kmers, part.kmers)
        assert np.array_equal(direct.counts, part.counts)

    def test_filter_min_count(self, genomic_batch):
        table = count_kmers(genomic_batch, 15)
        solid = table.filter_min_count(2)
        assert solid.n_distinct < table.n_distinct
        assert (solid.counts >= 2).all()

    def test_histogram(self, genomic_batch):
        table = count_kmers(genomic_batch, 15)
        hist = table.histogram()
        assert hist.sum() == table.n_distinct
        assert hist[0] == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            KmerCountTable(k=5, kmers=np.zeros(2, dtype=np.uint64),
                           counts=np.zeros(3, dtype=np.uint64))


class TestAbundanceFilter:
    def test_clean_reads_pass(self, clean_batch):
        table = count_kmers(clean_batch, 15)
        mask = abundance_filter_reads(table, clean_batch, min_count=1)
        assert mask.all()  # every kmer of every read is in the table

    def test_error_reads_fail_strict_threshold(self, tiny_profile):
        genome, reads = tiny_profile.generate()
        table = count_kmers(reads, 15)
        mask = abundance_filter_reads(table, reads, min_count=2)
        # Reads containing a unique (error) kmer are rejected.
        assert 0 < mask.sum() < reads.n_reads

    def test_empty_table(self, clean_batch):
        empty = KmerCountTable(k=15, kmers=np.zeros(0, dtype=np.uint64),
                               counts=np.zeros(0, dtype=np.uint64))
        mask = abundance_filter_reads(empty, clean_batch, min_count=1)
        assert not mask.any()
