"""Real-thread tests of the state-transfer concurrent protocol."""

import numpy as np
import pytest

from repro.core.hashtable import ConcurrentHashTable, TableFullError
from repro.graph.dbg import MULT_SLOT


def observations(rng, n_distinct=150, n_obs=3000, k=15):
    keys = np.unique(rng.integers(0, 1 << (2 * k), size=n_distinct, dtype=np.uint64))
    idx = rng.integers(0, keys.size, size=n_obs)
    return keys[idx], rng.integers(0, 9, size=n_obs).astype(np.int64)


class TestThreadedEqualsSerial:
    @pytest.mark.parametrize("n_threads", [1, 2, 4, 8])
    def test_same_graph(self, rng, n_threads):
        kmers, slots = observations(rng)
        serial = ConcurrentHashTable(2048, k=15)
        serial.insert_batch(kmers, slots)
        threaded = ConcurrentHashTable(2048, k=15)
        threaded.insert_threaded(kmers, slots, n_threads=n_threads)
        assert threaded.to_graph().equals(serial.to_graph())

    def test_heavy_contention_single_key(self, rng):
        # Every thread hammers the same vertex: the counter total and
        # single insertion must survive.
        kmers = np.full(4000, 12345, dtype=np.uint64)
        slots = np.full(4000, MULT_SLOT, dtype=np.int64)
        table = ConcurrentHashTable(64, k=15)
        table.insert_threaded(kmers, slots, n_threads=8)
        assert table.n_occupied == 1
        row = table.lookup(12345)
        assert int(row[MULT_SLOT]) == 4000
        assert table.stats.inserts == 1
        assert table.stats.key_locks == 1

    def test_colliding_keys(self):
        # Keys engineered to collide in a tiny table force probe chains
        # under concurrency.
        kmers = np.arange(48, dtype=np.uint64)
        slots = np.zeros(48, dtype=np.int64)
        table = ConcurrentHashTable(64, k=15)
        table.insert_threaded(np.tile(kmers, 50), np.tile(slots, 50), n_threads=6)
        assert table.n_occupied == 48
        g = table.to_graph()
        assert int(g.counts[:, 0].sum()) == 48 * 50

    def test_per_thread_stats_sum(self, rng):
        kmers, slots = observations(rng, n_obs=2000)
        table = ConcurrentHashTable(2048, k=15)
        locals_ = table.insert_threaded(kmers, slots, n_threads=4)
        assert sum(s.ops for s in locals_) == 2000
        assert sum(s.inserts for s in locals_) == np.unique(kmers).size
        # Each distinct key is key-locked exactly once across threads.
        assert sum(s.key_locks for s in locals_) == np.unique(kmers).size

    def test_threaded_table_full(self, rng):
        kmers = np.unique(rng.integers(0, 1 << 30, size=200, dtype=np.uint64))
        table = ConcurrentHashTable(64, k=15)
        with pytest.raises(TableFullError):
            table.insert_threaded(kmers, np.zeros(kmers.size, dtype=np.int64),
                                  n_threads=4)

    def test_invalid_thread_count(self, rng):
        table = ConcurrentHashTable(64, k=15)
        with pytest.raises(ValueError):
            table.insert_threaded(np.zeros(1, dtype=np.uint64),
                                  np.zeros(1, dtype=np.int64), n_threads=0)

    def test_concurrent_first_call_initializes_once(self):
        # Regression: the threaded machinery is created lazily; racing
        # first calls must share ONE atomic state array, otherwise each
        # thread gets a private "shared" state and keys duplicate.
        import threading

        for _ in range(10):
            table = ConcurrentHashTable(512, k=15)
            barrier = threading.Barrier(6)
            kmers = np.arange(60, dtype=np.uint64)

            def work(t):
                barrier.wait()  # maximize init contention
                for i in range(t * 10, t * 10 + 10):
                    table.insert_one_threadsafe(int(kmers[i]), MULT_SLOT)

            threads = [threading.Thread(target=work, args=(t,)) for t in range(6)]
            for th in threads:
                th.start()
            for th in threads:
                th.join()
            assert table.n_occupied == 60
            assert table.stats is not None

    def test_duplicate_heavy_equivalence_stress(self, rng):
        # Satellite stress: a duplicate-heavy load (16 distinct keys,
        # 6000 observations, 8 threads) must build the exact same graph
        # as the serial batch path, and the contention must actually
        # exercise the LOCKED spin (blocked_reads) at least sometimes
        # across repeats.
        blocked_total = 0
        for round_ in range(3):
            kmers, slots = observations(rng, n_distinct=16, n_obs=6000)
            serial = ConcurrentHashTable(1024, k=15)
            serial.insert_batch(kmers, slots)
            threaded = ConcurrentHashTable(1024, k=15)
            locals_ = threaded.insert_threaded(kmers, slots, n_threads=8)
            assert threaded.to_graph().equals(serial.to_graph())
            assert sum(s.ops for s in locals_) == 6000
            blocked_total += sum(s.blocked_reads for s in locals_)
        # blocked_reads is monotone evidence the spin path ran; the
        # writer-pause scenario in test_checks_schedule pins the exact
        # count, here we only require the counter plumbing to exist.
        assert blocked_total >= 0

    def test_mixed_mode_batch_after_threaded(self, rng):
        # The numpy mirror is re-synced after the fork-join, so a
        # subsequent single-threaded batch sees every threaded insert.
        kmers, slots = observations(rng, n_distinct=40, n_obs=800)
        table = ConcurrentHashTable(1024, k=15)
        table.insert_threaded(kmers, slots, n_threads=4)
        table.insert_batch(kmers, slots)
        serial = ConcurrentHashTable(1024, k=15)
        serial.insert_batch(np.concatenate([kmers, kmers]),
                            np.concatenate([slots, slots]))
        assert table.to_graph().equals(serial.to_graph())

    def test_single_op_api(self):
        table = ConcurrentHashTable(64, k=15)
        table.insert_one_threadsafe(7, MULT_SLOT)
        table.insert_one_threadsafe(7, MULT_SLOT)
        table.insert_one_threadsafe(9, 0)
        assert table.n_occupied == 2
        assert int(table.lookup(7)[MULT_SLOT]) == 2
        assert int(table.lookup(9)[0]) == 1
