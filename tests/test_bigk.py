"""Tests for repro.bigk (two-word kmers, table, construction)."""

import numpy as np
import pytest

from repro.bigk.construct import (
    block_observations_2w,
    build_debruijn_graph_bigk,
    build_subgraph_2w,
    build_subgraph_2w_sortmerge,
    flat_kmers_2w,
    merge_bigk_disjoint,
)
from repro.bigk.kmer2w import (
    canonical2w_with_flip,
    check_2w_k,
    hi_bases,
    join_planes,
    kmers2w_from_reads,
    less2w,
    revcomp2w,
    split_int,
)
from repro.bigk.store import (
    BigDeBruijnGraph,
    build_reference_bigk_slow,
    graph_from_plane_pairs,
)
from repro.bigk.table import TwoWordHashTable, hash_planes, hash_planes_int
from repro.dna.kmer import canonical_int, iter_kmers, revcomp_int
from repro.msp.partitioner import partition_reads

BIG_KS = [33, 41, 48, 63]


class TestKmer2w:
    def test_k_range(self):
        with pytest.raises(ValueError):
            check_2w_k(31)
        with pytest.raises(ValueError):
            check_2w_k(64)
        check_2w_k(33)
        check_2w_k(63)

    def test_split_join_roundtrip(self, rng):
        for k in BIG_KS:
            kmer = int(rng.integers(0, 1 << 62)) | (1 << (2 * k - 2))
            kmer &= (1 << (2 * k)) - 1
            hi, lo = split_int(kmer, k)
            assert join_planes(hi, lo) == kmer
            assert hi < (1 << (2 * hi_bases(k)))

    @pytest.mark.parametrize("k", BIG_KS)
    def test_extraction_matches_scalar(self, rng, k):
        codes = rng.integers(0, 4, size=(6, k + 20), dtype=np.uint8)
        hi, lo = kmers2w_from_reads(codes, k)
        for i in range(6):
            for j, ref in enumerate(iter_kmers(codes[i], k)):
                assert join_planes(hi[i, j], lo[i, j]) == ref

    @pytest.mark.parametrize("k", BIG_KS)
    def test_revcomp_matches_scalar(self, rng, k):
        codes = rng.integers(0, 4, size=(4, k + 10), dtype=np.uint8)
        hi, lo = kmers2w_from_reads(codes, k)
        rhi, rlo = revcomp2w(hi, lo, k)
        kmers = [list(iter_kmers(codes[i], k)) for i in range(4)]
        for i in range(4):
            for j in range(len(kmers[i])):
                assert join_planes(rhi[i, j], rlo[i, j]) == revcomp_int(
                    kmers[i][j], k
                )

    @pytest.mark.parametrize("k", BIG_KS)
    def test_revcomp_involution(self, rng, k):
        codes = rng.integers(0, 4, size=(3, k + 5), dtype=np.uint8)
        hi, lo = kmers2w_from_reads(codes, k)
        rhi, rlo = revcomp2w(hi, lo, k)
        bhi, blo = revcomp2w(rhi, rlo, k)
        assert np.array_equal(bhi, hi) and np.array_equal(blo, lo)

    @pytest.mark.parametrize("k", BIG_KS)
    def test_canonical_matches_scalar(self, rng, k):
        codes = rng.integers(0, 4, size=(4, k + 8), dtype=np.uint8)
        hi, lo = kmers2w_from_reads(codes, k)
        chi, clo, flip = canonical2w_with_flip(hi, lo, k)
        kmers = [list(iter_kmers(codes[i], k)) for i in range(4)]
        for i in range(4):
            for j in range(len(kmers[i])):
                expected = canonical_int(kmers[i][j], k)
                assert join_planes(chi[i, j], clo[i, j]) == expected
                assert bool(flip[i, j]) == (expected != kmers[i][j])

    def test_less2w(self):
        a = np.array([1, 1, 2], dtype=np.uint64)
        al = np.array([5, 5, 0], dtype=np.uint64)
        b = np.array([1, 2, 1], dtype=np.uint64)
        bl = np.array([6, 0, 9], dtype=np.uint64)
        assert less2w(a, al, b, bl).tolist() == [True, True, False]

    def test_read_shorter_than_k(self):
        with pytest.raises(ValueError):
            kmers2w_from_reads(np.zeros((2, 30), dtype=np.uint8), 33)


class TestTwoWordTable:
    def observations(self, rng, k=41, n_distinct=80, n_obs=1200):
        kmers = [int(rng.integers(0, 1 << 60)) for _ in range(n_distinct)]
        kmers = sorted({km & ((1 << (2 * k)) - 1) for km in kmers})
        idx = rng.integers(0, len(kmers), size=n_obs)
        chosen = [kmers[i] for i in idx]
        hi = np.array([split_int(km, k)[0] for km in chosen], dtype=np.uint64)
        lo = np.array([split_int(km, k)[1] for km in chosen], dtype=np.uint64)
        slots = rng.integers(0, 9, size=n_obs).astype(np.int64)
        return chosen, hi, lo, slots

    def test_batch_equals_sortmerge(self, rng):
        k = 41
        _, hi, lo, slots = self.observations(rng, k)
        table = TwoWordHashTable(1024, k)
        table.insert_batch(hi, lo, slots)
        assert table.to_graph().equals(graph_from_plane_pairs(k, hi, lo, slots))

    def test_threaded_equals_batch(self, rng):
        k = 41
        chosen, hi, lo, slots = self.observations(rng, k, n_obs=600)
        serial = TwoWordHashTable(1024, k)
        serial.insert_batch(hi, lo, slots)
        threaded = TwoWordHashTable(1024, k)
        threaded.insert_threaded(chosen, slots, n_threads=4)
        assert threaded.to_graph().equals(serial.to_graph())

    def test_lookup(self, rng):
        k = 41
        chosen, hi, lo, slots = self.observations(rng, k)
        table = TwoWordHashTable(1024, k)
        table.insert_batch(hi, lo, slots)
        row = table.lookup(chosen[0])
        assert row is not None and row.sum() > 0
        assert table.lookup(0) is None or 0 in chosen

    def test_key_locks_once_per_distinct(self, rng):
        k = 41
        chosen, hi, lo, slots = self.observations(rng, k)
        table = TwoWordHashTable(1024, k)
        table.insert_batch(hi, lo, slots)
        assert table.stats.key_locks == len(set(chosen))

    def test_hash_scalar_matches_vectorized(self, rng):
        hi = rng.integers(0, 1 << 60, size=50, dtype=np.uint64)
        lo = rng.integers(0, 1 << 60, size=50, dtype=np.uint64)
        mixed = hash_planes(hi, lo)
        for i in range(0, 50, 7):
            assert int(mixed[i]) == hash_planes_int(int(hi[i]), int(lo[i]))

    def test_rejects_small_k(self):
        with pytest.raises(ValueError):
            TwoWordHashTable(64, 20)

    def test_memory_bytes(self):
        table = TwoWordHashTable(256, 41)
        assert table.memory_bytes() == 256 * (1 + 8 + 8 + 36)


class TestBigKConstruction:
    @pytest.mark.parametrize("k", [33, 45])
    def test_end_to_end_equals_reference(self, genomic_batch, k):
        slow = build_reference_bigk_slow(genomic_batch, k)
        fast = build_debruijn_graph_bigk(genomic_batch, k, p=13, n_partitions=8)
        assert fast.equals(slow)

    def test_k63(self, clean_batch):
        slow = build_reference_bigk_slow(clean_batch, 63)
        fast = build_debruijn_graph_bigk(clean_batch, 63, p=21, n_partitions=4)
        assert fast.equals(slow)

    def test_flat_kmers_2w_matches_read_extraction(self, genomic_batch):
        k = 41
        res = partition_reads(genomic_batch, k, 13, 1)
        block = res.blocks[0]
        hi, lo, pos = flat_kmers_2w(block)
        assert hi.size == genomic_batch.n_kmers(k)
        # Spot-check against per-record scalar extraction.
        rec = block.record(0)
        expected = list(iter_kmers(rec.bases, k))
        got = [join_planes(hi[i], lo[i]) for i in range(len(expected))]
        assert got == expected

    def test_hash_equals_sortmerge_per_block(self, genomic_batch):
        k = 41
        res = partition_reads(genomic_batch, k, 13, 4)
        for block in res.blocks:
            if block.n_superkmers == 0:
                continue
            hashed = build_subgraph_2w(block).graph
            assert hashed.equals(build_subgraph_2w_sortmerge(block))

    def test_accounting(self, genomic_batch):
        k = 33
        g = build_debruijn_graph_bigk(genomic_batch, k, p=13, n_partitions=8)
        assert g.total_kmer_instances() == genomic_batch.n_kmers(k)
        pairs = genomic_batch.n_reads * (genomic_batch.read_length - k)
        assert g.total_edge_weight() == 2 * pairs

    def test_neighbors(self, clean_batch):
        g = build_debruijn_graph_bigk(clean_batch, 33, p=13, n_partitions=4)
        v = g.vertex_int(len(g) // 2)
        neighbors = g.successors(v) + g.predecessors(v)
        assert neighbors  # interior vertex of a covered genome
        for neighbor, weight in neighbors:
            assert weight >= 1
            assert canonical_int(neighbor, 33) == neighbor

    def test_merge_detects_overlap(self, genomic_batch):
        g = build_debruijn_graph_bigk(genomic_batch, 33, p=13, n_partitions=2)
        with pytest.raises(ValueError):
            merge_bigk_disjoint([g, g])

    def test_observation_counts(self, small_batch):
        k = 33
        res = partition_reads(small_batch, k, 11, 1)
        hi, lo, slots = block_observations_2w(res.blocks[0])
        n_kmers = small_batch.n_kmers(k)
        pairs = small_batch.n_reads * (small_batch.read_length - k)
        assert hi.size == n_kmers + 2 * pairs

    def test_invalid_params(self, genomic_batch):
        with pytest.raises(ValueError):
            build_debruijn_graph_bigk(genomic_batch, 20, p=13)
        with pytest.raises(ValueError):
            build_debruijn_graph_bigk(genomic_batch, 33, p=32)


class TestBigKPreaggregate:
    def test_preaggregate_preserves_observation_totals(self, genomic_batch):
        from repro.bigk.construct import preaggregate_observations_2w

        res = partition_reads(genomic_batch, 45, 15, 4)
        block = max(res.blocks, key=lambda b: b.n_superkmers)
        hi, lo, slots = block_observations_2w(block)
        ahi, alo, aslots, counts = preaggregate_observations_2w(hi, lo, slots)
        assert ahi.size == alo.size == aslots.size == counts.size
        assert ahi.size < hi.size  # a covered genome repeats observations
        assert int(counts.sum()) == hi.size
        assert (counts >= 1).all()
        # Aggregated triples are unique.
        triples = set(zip(ahi.tolist(), alo.tolist(), aslots.tolist()))
        assert len(triples) == ahi.size

    def test_preaggregate_empty(self):
        from repro.bigk.construct import preaggregate_observations_2w

        e = np.zeros(0, dtype=np.uint64)
        ahi, alo, aslots, counts = preaggregate_observations_2w(
            e, e, np.zeros(0, dtype=np.int64)
        )
        assert ahi.size == alo.size == aslots.size == counts.size == 0

    @pytest.mark.parametrize("k", [33, 45])
    def test_preaggregated_build_equals_plain(self, genomic_batch, k):
        plain = build_debruijn_graph_bigk(
            genomic_batch, k, p=13, n_partitions=8, preaggregate=False
        )
        agg = build_debruijn_graph_bigk(
            genomic_batch, k, p=13, n_partitions=8, preaggregate=True
        )
        assert agg.equals(plain)

    def test_counted_insert_stats_order_independent(self, genomic_batch):
        """Counted inserts meter ops/updates as if replayed one by one."""
        res = partition_reads(genomic_batch, 45, 15, 1)
        hi, lo, slots = block_observations_2w(res.blocks[0])
        from repro.bigk.construct import preaggregate_observations_2w

        ahi, alo, aslots, counts = preaggregate_observations_2w(hi, lo, slots)

        plain = TwoWordHashTable(1 << 14, 45)
        plain.insert_batch(hi, lo, slots)
        agg = TwoWordHashTable(1 << 14, 45)
        agg.insert_batch(ahi, alo, aslots, counts=counts)

        assert agg.to_graph().equals(plain.to_graph())
        for field in ("ops", "inserts", "updates", "count_increments"):
            assert getattr(agg.stats, field) == getattr(plain.stats, field)
        # Fewer physical probe rounds is the whole point of pre-aggregation.
        assert agg.stats.key_locks == plain.stats.key_locks

    def test_insert_batch_rejects_bad_counts(self):
        t = TwoWordHashTable(64, 45)
        one = np.ones(2, dtype=np.uint64)
        slots = np.zeros(2, dtype=np.int64)
        with pytest.raises(ValueError):
            t.insert_batch(one, one, slots, counts=np.ones(3, dtype=np.int64))
        with pytest.raises(ValueError):
            t.insert_batch(one, one, slots,
                           counts=np.array([1, 0], dtype=np.int64))


class TestBigKPartitionCodec:
    @pytest.mark.parametrize("k", [45, 63])
    def test_phsk_roundtrip_big_k(self, genomic_batch, tmp_path, k):
        """The PHSK partition codec is k-agnostic: k > 31 round-trips."""
        from repro.msp.binio import read_partition, write_partition

        res = partition_reads(genomic_batch, k, 15, 4)
        block = max(res.blocks, key=lambda b: b.n_superkmers)
        assert block.n_superkmers > 0
        path = tmp_path / "part.phsk"
        write_partition(path, block)
        loaded = read_partition(path)
        assert loaded.k == k
        assert loaded.n_superkmers == block.n_superkmers
        hi_a, lo_a, slots_a = block_observations_2w(block)
        hi_b, lo_b, slots_b = block_observations_2w(loaded)
        assert np.array_equal(hi_a, hi_b)
        assert np.array_equal(lo_a, lo_b)
        assert np.array_equal(slots_a, slots_b)


class TestBigSerialize:
    def test_roundtrip(self, genomic_batch, tmp_path):
        from repro.bigk.serialize import load_big_graph, save_big_graph

        g = build_debruijn_graph_bigk(genomic_batch, 41, p=13, n_partitions=4)
        path = tmp_path / "g.phdbg"
        n_bytes = save_big_graph(path, g)
        assert n_bytes == path.stat().st_size
        assert load_big_graph(path).equals(g)

    def test_detect_format(self, genomic_batch, tmp_path):
        from repro.bigk.serialize import detect_graph_format, save_big_graph
        from repro.graph.build import build_reference_graph
        from repro.graph.serialize import save_graph

        big = build_debruijn_graph_bigk(genomic_batch, 33, p=13, n_partitions=2)
        small = build_reference_graph(genomic_batch, 15)
        p_big = tmp_path / "big.phdbg"
        p_small = tmp_path / "small.phdbg"
        save_big_graph(p_big, big)
        save_graph(p_small, small)
        assert detect_graph_format(p_big) == "2w"
        assert detect_graph_format(p_small) == "1w"

    def test_wrong_magic_rejected(self, tmp_path):
        from repro.bigk.serialize import load_big_graph
        from repro.graph.serialize import GraphFormatError

        path = tmp_path / "x.phdbg"
        path.write_bytes(b"NOPE" + b"\x00" * 20)
        with pytest.raises(GraphFormatError):
            load_big_graph(path)

    def test_truncation_rejected(self, genomic_batch, tmp_path):
        from repro.bigk.serialize import load_big_graph, save_big_graph
        from repro.graph.serialize import GraphFormatError

        g = build_debruijn_graph_bigk(genomic_batch, 33, p=13, n_partitions=2)
        path = tmp_path / "g.phdbg"
        save_big_graph(path, g)
        data = path.read_bytes()
        path.write_bytes(data[:-8])
        with pytest.raises(GraphFormatError):
            load_big_graph(path)


class TestBigCompaction:
    def test_clean_genome_single_unitig(self):
        from repro.bigk.compact import compact_unitigs_bigk
        from repro.dna.alphabet import decode
        from repro.dna.simulate import random_genome, simulate_reads

        genome = random_genome(1_200, seed=12)
        reads = simulate_reads(genome, 350, 80, mean_errors=0.0, seed=13)
        g = build_debruijn_graph_bigk(reads, 41, p=15, n_partitions=4)
        unitigs = compact_unitigs_bigk(g)
        longest = max(unitigs, key=len).to_str()
        gs = decode(genome)
        rc = longest.translate(str.maketrans("ACGT", "TGCA"))[::-1]
        assert longest in gs or rc in gs
        assert len(longest) > 0.9 * len(gs)

    def test_base_count_invariant(self, clean_batch):
        from repro.bigk.compact import compact_unitigs_bigk

        g = build_debruijn_graph_bigk(clean_batch, 33, p=13, n_partitions=4)
        unitigs = compact_unitigs_bigk(g)
        total = sum(len(u) for u in unitigs)
        assert total == g.n_vertices + len(unitigs) * 32

    def test_every_vertex_once(self, genomic_batch):
        from repro.bigk.compact import compact_unitigs_bigk

        g = build_debruijn_graph_bigk(genomic_batch, 33, p=13, n_partitions=4)
        unitigs = compact_unitigs_bigk(g)
        rows = [r for u in unitigs for r in u.vertex_rows]
        assert sorted(rows) == list(range(g.n_vertices))


class TestBigStore:
    def test_store_validation(self):
        with pytest.raises(ValueError):
            BigDeBruijnGraph(
                k=33,
                vertices_hi=np.array([2, 1], dtype=np.uint64),
                vertices_lo=np.array([0, 0], dtype=np.uint64),
                counts=np.zeros((2, 9), dtype=np.uint64),
            )

    def test_index_of(self, genomic_batch):
        g = build_debruijn_graph_bigk(genomic_batch, 33, p=13, n_partitions=2)
        v = g.vertex_int(3)
        assert g.index_of(v) == 3
        assert v in g
        assert g.multiplicity(v) >= 1

    def test_vertex_str_roundtrip(self, genomic_batch):
        from repro.dna.alphabet import encode
        from repro.dna.encoding import codes_to_int

        g = build_debruijn_graph_bigk(genomic_batch, 33, p=13, n_partitions=2)
        s = g.vertex_str(0)
        assert len(s) == 33
        assert codes_to_int(encode(s)) == g.vertex_int(0)
