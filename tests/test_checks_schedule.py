"""Interleaving scheduler: primitives and deterministic scenarios."""

import threading

import pytest

from repro.checks.schedule import (
    InterleavingScheduler,
    SchedulerTimeout,
    cas_storm_scenario,
    stale_lookup_scenario,
    stress_shared_path,
    writer_pause_scenario,
)
from repro.core.hashtable import ConcurrentHashTable


class TestPrimitives:
    def test_counters(self):
        sched = InterleavingScheduler()
        assert sched.count("c") == 0
        assert sched.bump("c") == 1
        assert sched.bump("c", 2) == 3
        assert sched.count("c") == 3

    def test_gate_release_then_pause_does_not_block(self):
        sched = InterleavingScheduler(timeout=1.0)
        sched.release("g")
        assert sched.is_released("g")
        sched.pause_at("g")  # open gate: returns immediately

    def test_pause_timeout_raises(self):
        sched = InterleavingScheduler(timeout=0.05)
        with pytest.raises(SchedulerTimeout):
            sched.pause_at("never-released")

    def test_wait_count_timeout_raises(self):
        sched = InterleavingScheduler(timeout=0.05)
        with pytest.raises(SchedulerTimeout):
            sched.wait_count("never-bumped", 1)

    def test_wait_count_crosses_threads(self):
        sched = InterleavingScheduler(timeout=5.0)

        def bump_soon():
            sched.bump("ready")

        t = threading.Thread(target=bump_soon)
        t.start()
        sched.wait_count("ready", 1)
        t.join()

    def test_rules_fire_and_history_records(self):
        sched = InterleavingScheduler()
        seen = []
        sched.on("tick", lambda s, p: seen.append((p.name, p.index, p.value)))
        sched.event("tick", 3, "x")
        sched.event("other", 0, None)
        assert seen == [("tick", 3, "x")]
        assert [p.name for p in sched.history] == ["tick", "other"]
        assert len(sched.events("tick")) == 1


class TestCasStorm:
    @pytest.mark.parametrize("n_threads", [2, 4, 8])
    def test_exactly_one_winner(self, n_threads):
        # All contenders barriered at the CAS doorstep on the same EMPTY
        # slot: exactly one wins, the rest lose deterministically.
        table = ConcurrentHashTable(256, k=15)
        result = cas_storm_scenario(table, n_threads=n_threads)
        assert result.stats.cas_failures == n_threads - 1
        assert result.stats.key_locks == 1
        assert table.n_occupied == 1
        assert int(table.lookup(0xCAFE)[0]) == n_threads

    def test_repeatable(self):
        # Determinism claim: same counts on every run.
        for _ in range(3):
            table = ConcurrentHashTable(256, k=15)
            result = cas_storm_scenario(table, n_threads=4)
            assert result.stats.cas_failures == 3


class TestWriterPause:
    def test_blocked_reads_regression(self):
        # Satellite 3 regression: with the writer held between LOCKED
        # and OCCUPIED, readers must (a) record the spins as
        # blocked_reads and (b) all complete once released — the
        # bounded-spin + yield backoff must not livelock.
        table = ConcurrentHashTable(256, k=15)
        result = writer_pause_scenario(table, n_readers=4,
                                       locked_sightings=32)
        assert result.stats.blocked_reads >= 32
        assert result.notes["locked_seen"] >= 32
        # One insert, four updates: every reader finished its op.
        assert result.stats.inserts == 1
        assert result.stats.updates == 4
        assert table.n_occupied == 1
        assert int(table.lookup(0xBEEF)[0]) == 5

    def test_lookup_consistent_after_scenario(self):
        table = ConcurrentHashTable(256, k=15)
        writer_pause_scenario(table, n_readers=2, locked_sightings=8)
        g = table.to_graph()
        assert g.vertices.size == 1


class TestFixedCodeScenarios:
    def test_stale_lookup_clean_on_fixed_code(self):
        # Without the seeded numpy_publish bug the pause point never
        # fires and the post-update lookup always finds the key.
        table = ConcurrentHashTable(256, k=15)
        result = stale_lookup_scenario(table)
        assert result.lookup_missed is False
        assert int(table.lookup(0xF00D)[0]) == 2

    def test_stress_shared_path_correct_counts(self):
        table = ConcurrentHashTable(2048, k=15)
        stress_shared_path(table, n_distinct=32, n_ops=1024, n_threads=8)
        assert table.stats.ops == 1024
        g = table.to_graph()
        assert int(g.counts.sum()) == 1024
