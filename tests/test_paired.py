"""Tests for repro.dna.paired (paired-end simulation and interleaved IO)."""

import numpy as np
import pytest

from repro.dna.alphabet import decode
from repro.dna.paired import (
    PairedReads,
    read_interleaved_fastq,
    simulate_paired_reads,
    write_interleaved_fastq,
)
from repro.dna.reads import ReadBatch
from repro.dna.simulate import random_genome


def revcomp_str(s: str) -> str:
    return s.translate(str.maketrans("ACGT", "TGCA"))[::-1]


@pytest.fixture
def genome():
    return random_genome(5_000, seed=41)


class TestSimulatePaired:
    def test_shapes(self, genome):
        pairs = simulate_paired_reads(genome, 100, 80, insert_mean=300,
                                      insert_std=20, seed=1)
        assert pairs.n_pairs == 100
        assert pairs.r1.read_length == 80
        assert pairs.r2.read_length == 80

    def test_error_free_mates_map_to_fragment(self, genome):
        pairs = simulate_paired_reads(genome, 50, 60, insert_mean=200,
                                      insert_std=0, mean_errors=0.0, seed=2)
        gs = decode(genome)
        for i in range(50):
            r1 = pairs.r1.read_str(i)
            r2 = pairs.r2.read_str(i)
            # R1 reads forward from the fragment start.
            pos = gs.find(r1)
            assert pos >= 0
            # R2 is the reverse complement of the fragment's far end.
            far = gs[pos + 200 - 60 : pos + 200]
            assert r2 == revcomp_str(far)

    def test_insert_std_spreads_inserts(self, genome):
        tight = simulate_paired_reads(genome, 200, 50, insert_mean=200,
                                      insert_std=0, mean_errors=0.0, seed=3)
        del tight  # only checking the wide case below parses fine
        wide = simulate_paired_reads(genome, 200, 50, insert_mean=200,
                                     insert_std=30, mean_errors=0.0, seed=3)
        assert wide.n_pairs == 200

    def test_deterministic(self, genome):
        a = simulate_paired_reads(genome, 30, 50, insert_mean=150, seed=9)
        b = simulate_paired_reads(genome, 30, 50, insert_mean=150, seed=9)
        assert np.array_equal(a.r1.codes, b.r1.codes)
        assert np.array_equal(a.r2.codes, b.r2.codes)

    def test_validation(self, genome):
        with pytest.raises(ValueError):
            simulate_paired_reads(genome, 10, 100, insert_mean=50)
        with pytest.raises(ValueError):
            simulate_paired_reads(genome, 10, 50, insert_mean=10_000)
        with pytest.raises(ValueError):
            simulate_paired_reads(genome, -1, 50, insert_mean=100)

    def test_pairing_validation(self):
        with pytest.raises(ValueError):
            PairedReads(
                r1=ReadBatch(codes=np.zeros((2, 5), dtype=np.uint8)),
                r2=ReadBatch(codes=np.zeros((3, 5), dtype=np.uint8)),
            )

    def test_as_single_batch_feeds_construction(self, genome):
        from repro.core import build_debruijn_graph
        from repro.graph.build import build_reference_graph
        from repro.graph.validate import assert_graphs_equal

        pairs = simulate_paired_reads(genome, 300, 70, insert_mean=250,
                                      insert_std=15, mean_errors=0.5, seed=5)
        batch = pairs.as_single_batch()
        assert batch.n_reads == 600
        got = build_debruijn_graph(batch, k=21, p=9, n_partitions=8)
        assert_graphs_equal(got, build_reference_graph(batch, 21), "paired")

    def test_coverage_from_both_mates(self, genome):
        # Both ends contribute kmers: vertices found by R2-only regions
        # exist in the combined graph.
        from repro.graph.build import build_reference_graph

        pairs = simulate_paired_reads(genome, 400, 60, insert_mean=250,
                                      insert_std=0, mean_errors=0.0, seed=6)
        combined = build_reference_graph(pairs.as_single_batch(), 21)
        r1_only = build_reference_graph(pairs.r1, 21)
        assert combined.n_vertices > r1_only.n_vertices


class TestInterleavedIO:
    def test_roundtrip(self, genome, tmp_path):
        pairs = simulate_paired_reads(genome, 40, 60, insert_mean=200, seed=7)
        path = tmp_path / "pairs.fastq"
        write_interleaved_fastq(path, pairs)
        back = read_interleaved_fastq(path)
        assert np.array_equal(back.r1.codes, pairs.r1.codes)
        assert np.array_equal(back.r2.codes, pairs.r2.codes)

    def test_mate_names(self, genome, tmp_path):
        pairs = simulate_paired_reads(genome, 3, 60, insert_mean=200, seed=7)
        path = tmp_path / "pairs.fastq"
        write_interleaved_fastq(path, pairs)
        text = path.read_text()
        assert "@pair_0/1" in text and "@pair_0/2" in text

    def test_odd_record_count_rejected(self, tmp_path):
        path = tmp_path / "odd.fastq"
        path.write_text("@a/1\nACGT\n+\nIIII\n")
        with pytest.raises(ValueError):
            read_interleaved_fastq(path)
