"""Tests for repro.core.subgraph (Step 2 observation generation and build)."""

import numpy as np
import pytest

from repro.core.estimator import SizingPolicy
from repro.core.subgraph import (
    block_observations,
    build_subgraph,
    build_subgraph_sortmerge,
)
from repro.graph.build import build_reference_graph
from repro.graph.merge import merge_disjoint
from repro.graph.validate import assert_graphs_equal
from repro.msp.partitioner import partition_reads
from repro.msp.records import empty_block


class TestBlockObservations:
    def test_union_over_partitions_equals_reference(self, genomic_batch):
        k = 15
        res = partition_reads(genomic_batch, k=k, p=7, n_partitions=8)
        ref = build_reference_graph(genomic_batch, k)
        subs = [build_subgraph_sortmerge(b) for b in res.blocks if b.n_superkmers]
        assert_graphs_equal(merge_disjoint(subs), ref, "partitioned-union")

    def test_observation_counts(self, small_batch):
        # Per partition: one multiplicity observation per kmer; one
        # successor per kmer except read-final ones; one predecessor per
        # kmer except read-initial ones.
        k = 11
        res = partition_reads(small_batch, k=k, p=5, n_partitions=1)
        block = res.blocks[0]
        v, s = block_observations(block)
        n_kmers = small_batch.n_kmers(k)
        pairs = small_batch.n_reads * (small_batch.read_length - k)
        assert v.size == n_kmers + 2 * pairs
        assert s.size == v.size

    def test_empty_block(self):
        v, s = block_observations(empty_block(11))
        assert v.size == 0 and s.size == 0

    def test_extensions_generate_cut_edges(self, genomic_batch):
        # Without extension bases, edges crossing superkmer boundaries
        # would be lost; verify blocks with many partitions still yield
        # the full edge weight.
        k = 15
        ref = build_reference_graph(genomic_batch, k)
        res = partition_reads(genomic_batch, k=k, p=4, n_partitions=16)
        subs = [build_subgraph_sortmerge(b) for b in res.blocks if b.n_superkmers]
        total = sum(g.total_edge_weight() for g in subs)
        assert total == ref.total_edge_weight()


class TestBuildSubgraph:
    def test_hash_equals_sortmerge(self, genomic_batch):
        k = 15
        res = partition_reads(genomic_batch, k=k, p=7, n_partitions=4)
        for block in res.blocks:
            if block.n_superkmers == 0:
                continue
            hashed = build_subgraph(block).graph
            sorted_ = build_subgraph_sortmerge(block)
            assert hashed.equals(sorted_)

    def test_threaded_equals_serial(self, genomic_batch):
        k = 15
        res = partition_reads(genomic_batch, k=k, p=7, n_partitions=2)
        block = next(b for b in res.blocks if b.n_superkmers)
        serial = build_subgraph(block, n_threads=1)
        threaded = build_subgraph(block, n_threads=4)
        assert threaded.graph.equals(serial.graph)

    def test_result_telemetry(self, genomic_batch):
        res = partition_reads(genomic_batch, k=15, p=7, n_partitions=2)
        block = next(b for b in res.blocks if b.n_superkmers)
        result = build_subgraph(block)
        assert result.n_kmers == block.total_kmers()
        assert result.stats.ops > 0
        assert result.capacity >= result.graph.n_vertices
        assert result.table_bytes > 0

    def test_regrow_on_estimate_violation(self, rng):
        # Coverage < 1 random reads: nearly all kmers distinct, which
        # violates the Property 1 estimate and must trigger regrowth.
        from repro.dna.reads import ReadBatch

        batch = ReadBatch(codes=rng.integers(0, 4, size=(300, 60), dtype=np.uint8))
        res = partition_reads(batch, k=15, p=7, n_partitions=1)
        policy = SizingPolicy(lam=0.5, alpha=0.9)
        result = build_subgraph(res.blocks[0], policy=policy)
        assert result.n_regrows > 0
        ref = build_reference_graph(batch, 15)
        assert_graphs_equal(result.graph, ref, "after-regrow")

    def test_regrow_disabled_raises(self, rng):
        from repro.core.hashtable import TableFullError
        from repro.dna.reads import ReadBatch

        batch = ReadBatch(codes=rng.integers(0, 4, size=(300, 60), dtype=np.uint8))
        res = partition_reads(batch, k=15, p=7, n_partitions=1)
        with pytest.raises(TableFullError):
            build_subgraph(res.blocks[0], policy=SizingPolicy(lam=0.5, alpha=0.9),
                           allow_regrow=False)

    def test_genomic_data_never_regrows(self, genomic_batch):
        # On real coverage data the paper's sizing avoids resizing.
        res = partition_reads(genomic_batch, k=15, p=7, n_partitions=4)
        for block in res.blocks:
            if block.n_superkmers == 0:
                continue
            result = build_subgraph(block)  # default lam=2 policy
            assert result.n_regrows == 0
