"""Tests for repro.graph.serialize (binary and TSV graph files)."""

import numpy as np
import pytest

from repro.graph.build import build_reference_graph
from repro.graph.merge import merge_disjoint
from repro.graph.serialize import (
    GraphFormatError,
    export_tsv,
    import_tsv,
    load_graph,
    load_subgraphs,
    save_graph,
    save_subgraphs,
)
from repro.graph.validate import assert_graphs_equal


class TestBinaryFormat:
    def test_roundtrip(self, genomic_batch, tmp_path):
        g = build_reference_graph(genomic_batch, 15)
        path = tmp_path / "g.phdbg"
        n_bytes = save_graph(path, g)
        assert n_bytes == path.stat().st_size
        back = load_graph(path)
        assert_graphs_equal(back, g, "binary-roundtrip")

    def test_empty_graph(self, tmp_path):
        from repro.graph.dbg import empty_graph

        path = tmp_path / "e.phdbg"
        save_graph(path, empty_graph(27))
        back = load_graph(path)
        assert back.n_vertices == 0 and back.k == 27

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "g.phdbg"
        path.write_bytes(b"XXXX" + b"\x00" * 20)
        with pytest.raises(GraphFormatError):
            load_graph(path)

    def test_truncated(self, genomic_batch, tmp_path):
        g = build_reference_graph(genomic_batch, 15)
        path = tmp_path / "g.phdbg"
        save_graph(path, g)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(GraphFormatError):
            load_graph(path)

    def test_trailing_bytes(self, genomic_batch, tmp_path):
        g = build_reference_graph(genomic_batch, 15)
        path = tmp_path / "g.phdbg"
        save_graph(path, g)
        path.write_bytes(path.read_bytes() + b"\x00")
        with pytest.raises(GraphFormatError):
            load_graph(path)

    def test_bad_version(self, genomic_batch, tmp_path):
        g = build_reference_graph(genomic_batch, 15)
        path = tmp_path / "g.phdbg"
        save_graph(path, g)
        data = bytearray(path.read_bytes())
        data[4] = 42
        path.write_bytes(bytes(data))
        with pytest.raises(GraphFormatError):
            load_graph(path)


class TestTsvFormat:
    def test_roundtrip(self, clean_batch, tmp_path):
        g = build_reference_graph(clean_batch, 15)
        path = tmp_path / "g.tsv"
        rows = export_tsv(path, g)
        assert rows == g.n_vertices
        back = import_tsv(path)
        assert_graphs_equal(back, g, "tsv-roundtrip")

    def test_header_checked(self, tmp_path):
        path = tmp_path / "g.tsv"
        path.write_text("no header\n")
        with pytest.raises(GraphFormatError):
            import_tsv(path)

    def test_field_count_checked(self, tmp_path):
        path = tmp_path / "g.tsv"
        path.write_text("# k=3\nkmer\tmultiplicity\toutA\toutC\toutG\toutT\tinA\tinC\tinG\tinT\nACG\t1\n")
        with pytest.raises(GraphFormatError):
            import_tsv(path)

    def test_kmer_length_checked(self, tmp_path):
        path = tmp_path / "g.tsv"
        row = "ACGT\t1" + "\t0" * 8
        path.write_text(
            "# k=3\nkmer\tmultiplicity\toutA\toutC\toutG\toutT\tinA\tinC\tinG\tinT\n"
            + row + "\n"
        )
        with pytest.raises(GraphFormatError):
            import_tsv(path)

    def test_human_readable(self, tmp_path):
        from repro.dna.reads import ReadBatch

        g = build_reference_graph(ReadBatch.from_strs(["AACCT"]), 3)
        path = tmp_path / "g.tsv"
        export_tsv(path, g)
        text = path.read_text()
        assert "# k=3" in text
        assert "AAC" in text  # spelled kmer appears


class TestSubgraphFiles:
    def test_save_load_merge(self, genomic_batch, tmp_path):
        from repro.core.config import ParaHashConfig
        from repro.core.parahash import ParaHash

        cfg = ParaHashConfig(k=15, p=7, n_partitions=6)
        result = ParaHash(cfg).build_graph(genomic_batch)
        paths = save_subgraphs(tmp_path / "subs", result.subgraphs)
        assert len(paths) == len(result.subgraphs)
        loaded = load_subgraphs(paths)
        merged = merge_disjoint(loaded)
        assert_graphs_equal(merged, result.graph, "subgraph-files")

    def test_file_sizes_sum_to_graph(self, genomic_batch, tmp_path):
        g = build_reference_graph(genomic_batch, 15)
        path = tmp_path / "g.phdbg"
        save_graph(path, g)
        # 16-byte header + 8 bytes/vertex + 72 bytes of counters/vertex.
        assert path.stat().st_size == 16 + g.n_vertices * 80
