"""Tests for repro.dna.kmer (extraction, reverse complement, canonical)."""

import numpy as np
import pytest

from repro.dna import alphabet as al
from repro.dna import kmer as km
from repro.dna.encoding import codes_to_int


def str_kmer(s: str) -> int:
    return codes_to_int(al.encode(s))


class TestKmersFromReads:
    def test_single_read_values(self):
        codes = al.encode("ACGTA").reshape(1, -1)
        kmers = km.kmers_from_reads(codes, 3)
        assert kmers.shape == (1, 3)
        assert kmers[0].tolist() == [str_kmer("ACG"), str_kmer("CGT"), str_kmer("GTA")]

    def test_matches_reference_iterator(self, rng):
        codes = rng.integers(0, 4, size=(20, 40), dtype=np.uint8)
        for k in (1, 5, 17, 31):
            fast = km.kmers_from_reads(codes, k)
            for i in range(5):
                ref = list(km.iter_kmers(codes[i], k))
                assert fast[i].tolist() == ref

    def test_k_equals_read_length(self):
        codes = al.encode("ACGT").reshape(1, -1)
        kmers = km.kmers_from_reads(codes, 4)
        assert kmers.shape == (1, 1)
        assert int(kmers[0, 0]) == str_kmer("ACGT")

    def test_k_too_large_raises(self):
        codes = np.zeros((2, 5), dtype=np.uint8)
        with pytest.raises(ValueError):
            km.kmers_from_reads(codes, 6)

    def test_k_over_31_raises(self):
        codes = np.zeros((1, 40), dtype=np.uint8)
        with pytest.raises(ValueError):
            km.kmers_from_reads(codes, 32)

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            km.kmers_from_reads(np.zeros(10, dtype=np.uint8), 3)

    def test_paper_fig1_kmer_count(self):
        # Fig 1: reads of length 23 with k=5 generate 19 kmers each.
        codes = np.zeros((3, 23), dtype=np.uint8)
        assert km.kmers_from_reads(codes, 5).shape == (3, 19)


class TestRevComp:
    def test_known_value(self):
        kmer = str_kmer("AACGT")
        assert km.revcomp_int(kmer, 5) == str_kmer("ACGTT")

    def test_scalar_vs_vectorized(self, rng):
        for k in (1, 2, 13, 27, 31):
            codes = rng.integers(0, 4, size=(4, 35), dtype=np.uint8)
            kmers = km.kmers_from_reads(codes, k)
            rc = km.revcomp_u64(kmers, k)
            for i in range(2):
                for j in range(3):
                    assert int(rc[i, j]) == km.revcomp_int(int(kmers[i, j]), k)

    def test_involution_vectorized(self, rng):
        kmers = rng.integers(0, 1 << 54, size=100, dtype=np.uint64)
        assert np.array_equal(km.revcomp_u64(km.revcomp_u64(kmers, 27), 27), kmers)

    def test_involution_scalar(self):
        kmer = str_kmer("GATTACAGATTACA")
        assert km.revcomp_int(km.revcomp_int(kmer, 14), 14) == kmer

    def test_string_level_agreement(self):
        s = "ATTGGCACG"
        kmer = str_kmer(s)
        rc = km.revcomp_int(kmer, len(s))
        expected = al.decode(al.reverse_complement(al.encode(s)))
        assert km.kmer_to_str(rc, len(s)) == expected


class TestCanonical:
    def test_canonical_is_min(self):
        kmer = str_kmer("TTTTT")
        assert km.canonical_int(kmer, 5) == str_kmer("AAAAA")

    def test_already_canonical(self):
        kmer = str_kmer("AAAAC")
        assert km.canonical_int(kmer, 5) == kmer

    def test_vectorized_matches_scalar(self, rng):
        kmers = rng.integers(0, 1 << 42, size=200, dtype=np.uint64)
        can = km.canonical_u64(kmers, 21)
        for i in range(0, 200, 17):
            assert int(can[i]) == km.canonical_int(int(kmers[i]), 21)

    def test_canonical_is_idempotent(self, rng):
        kmers = rng.integers(0, 1 << 54, size=100, dtype=np.uint64)
        can = km.canonical_u64(kmers, 27)
        assert np.array_equal(km.canonical_u64(can, 27), can)

    def test_canonical_with_flip(self, rng):
        kmers = rng.integers(0, 1 << 30, size=50, dtype=np.uint64)
        can, flip = km.canonical_with_flip(kmers, 15)
        rc = km.revcomp_u64(kmers, 15)
        assert np.array_equal(can, np.minimum(kmers, rc))
        assert np.array_equal(flip, rc < kmers)

    def test_kmer_and_its_rc_share_canonical(self, rng):
        kmers = rng.integers(0, 1 << 54, size=100, dtype=np.uint64)
        rc = km.revcomp_u64(kmers, 27)
        assert np.array_equal(km.canonical_u64(kmers, 27), km.canonical_u64(rc, 27))


class TestStrings:
    def test_kmer_to_str(self):
        assert km.kmer_to_str(str_kmer("GATTACA"), 7) == "GATTACA"

    def test_kmer_mask(self):
        assert km.kmer_mask(1) == 0b11
        assert km.kmer_mask(27) == (1 << 54) - 1

    def test_kmer_mask_rejects_zero(self):
        with pytest.raises(ValueError):
            km.kmer_mask(0)

    def test_kmer_from_codes(self):
        assert km.kmer_from_codes(al.encode("CT")) == 0b0111
