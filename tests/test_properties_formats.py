"""Property-based tests for the disk formats and partitioning invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dna.reads import ReadBatch
from repro.graph.build import build_reference_graph
from repro.graph.serialize import export_tsv, import_tsv, load_graph, save_graph
from repro.graph.validate import assert_graphs_equal
from repro.msp.binio import read_partition, write_partition
from repro.msp.partitioner import partition_reads
from repro.msp.records import SuperkmerRecord, block_from_records


@st.composite
def superkmer_blocks(draw):
    k = draw(st.integers(3, 15))
    n = draw(st.integers(0, 12))
    records = []
    for _ in range(n):
        length = draw(st.integers(k, k + 30))
        bases = np.array(
            draw(st.lists(st.integers(0, 3), min_size=length, max_size=length)),
            dtype=np.uint8,
        )
        left = draw(st.sampled_from([-1, 0, 1, 2, 3]))
        right = draw(st.sampled_from([-1, 0, 1, 2, 3]))
        records.append(SuperkmerRecord(bases=bases, left_ext=left, right_ext=right))
    return block_from_records(k, records)


@st.composite
def read_batches(draw):
    n = draw(st.integers(1, 12))
    length = draw(st.integers(8, 40))
    codes = np.array(
        draw(
            st.lists(
                st.lists(st.integers(0, 3), min_size=length, max_size=length),
                min_size=n, max_size=n,
            )
        ),
        dtype=np.uint8,
    )
    return ReadBatch(codes=codes)


class TestPartitionFileProperties:
    @given(block=superkmer_blocks())
    @settings(max_examples=25, deadline=None)
    def test_binio_roundtrip(self, tmp_path_factory, block):
        path = tmp_path_factory.mktemp("phsk") / "p.phsk"
        write_partition(path, block)
        back = read_partition(path)
        assert back.k == block.k
        assert np.array_equal(back.bases, block.bases)
        assert np.array_equal(back.offsets, block.offsets)
        assert np.array_equal(back.left_ext, block.left_ext)
        assert np.array_equal(back.right_ext, block.right_ext)


class TestGraphFileProperties:
    @given(batch=read_batches(), k=st.integers(3, 12))
    @settings(max_examples=20, deadline=None)
    def test_binary_roundtrip(self, tmp_path_factory, batch, k):
        if k > batch.read_length:
            k = batch.read_length
        graph = build_reference_graph(batch, k)
        path = tmp_path_factory.mktemp("phdbg") / "g.phdbg"
        save_graph(path, graph)
        assert_graphs_equal(load_graph(path), graph)

    @given(batch=read_batches(), k=st.integers(3, 10))
    @settings(max_examples=15, deadline=None)
    def test_tsv_roundtrip(self, tmp_path_factory, batch, k):
        if k > batch.read_length:
            k = batch.read_length
        graph = build_reference_graph(batch, k)
        path = tmp_path_factory.mktemp("tsv") / "g.tsv"
        export_tsv(path, graph)
        assert_graphs_equal(import_tsv(path), graph)


class TestPartitioningProperties:
    @given(read_batches(), st.integers(0, 2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_partitions_vertex_disjoint(self, batch, seed):
        rng = np.random.default_rng(seed)
        k = int(rng.integers(3, min(13, batch.read_length) + 1))
        p = int(rng.integers(1, k + 1))
        n_partitions = int(rng.integers(1, 10))
        from repro.dna.kmer import canonical_u64

        res = partition_reads(batch, k, p, n_partitions)
        seen: dict[int, int] = {}
        for pid, block in enumerate(res.blocks):
            if block.n_superkmers == 0:
                continue
            kmers, _ = block.flat_kmers()
            for v in np.unique(canonical_u64(kmers, k)):
                assert seen.setdefault(int(v), pid) == pid

    @given(read_batches())
    @settings(max_examples=20, deadline=None)
    def test_noncanonical_minimizers_can_break_disjointness(self, batch):
        # The ablation that justifies canonical minimizers: with plain
        # Definition-1 minimizers, a vertex read on both strands can
        # land in two partitions.  We verify the canonical variant never
        # does (above) and record that the non-canonical one is allowed
        # to (no assertion that it must — just that our check is what
        # distinguishes them on strand-mixed data).
        from repro.dna.kmer import canonical_u64, kmers_from_reads
        from repro.dna.minimizer import superkmers_for_reads

        k, p = min(9, batch.read_length), 4
        p = min(p, k)
        # Build a strand-mixed batch: originals plus reverse complements.
        rc = (batch.codes[:, ::-1] ^ 3).astype(np.uint8)
        mixed = ReadBatch(codes=np.concatenate([batch.codes, rc]))
        canonical_sk = superkmers_for_reads(mixed.codes, k, p, canonical=True)
        # Each canonical kmer maps to exactly one canonical minimizer.
        minis: dict[int, int] = {}
        kmers_all = canonical_u64(kmers_from_reads(mixed.codes, k), k)
        per_kmer_mini = np.repeat(canonical_sk.minimizer, canonical_sk.n_kmers)
        for v, m in zip(kmers_all.ravel(), per_kmer_mini):
            assert minis.setdefault(int(v), int(m)) == int(m)