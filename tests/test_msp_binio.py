"""Tests for repro.msp.binio (encoded partition files)."""

import numpy as np
import pytest

from repro.dna import alphabet as al
from repro.msp.binio import (
    PartitionFormatError,
    PartitionWriter,
    partition_file_size,
    read_partition,
    read_partition_header,
    write_partition,
)
from repro.msp.records import NO_EXT, SuperkmerRecord, block_from_records


def sample_block(k=5, n=20, seed=0):
    rng = np.random.default_rng(seed)
    records = []
    for _ in range(n):
        length = int(rng.integers(k, k + 40))
        left = int(rng.integers(-1, 4))
        right = int(rng.integers(-1, 4))
        records.append(
            SuperkmerRecord(
                bases=rng.integers(0, 4, size=length, dtype=np.uint8),
                left_ext=left,
                right_ext=right,
            )
        )
    return block_from_records(k, records)


class TestRoundtrip:
    def test_block_roundtrip(self, tmp_path):
        block = sample_block()
        path = tmp_path / "p.phsk"
        write_partition(path, block)
        back = read_partition(path)
        assert back.k == block.k
        assert back.n_superkmers == block.n_superkmers
        assert np.array_equal(back.bases, block.bases)
        assert np.array_equal(back.offsets, block.offsets)
        assert np.array_equal(back.left_ext, block.left_ext)
        assert np.array_equal(back.right_ext, block.right_ext)

    def test_extensions_survive(self, tmp_path):
        records = [
            SuperkmerRecord(al.encode("ACGTA"), NO_EXT, 3),
            SuperkmerRecord(al.encode("TTTTTT"), 0, NO_EXT),
            SuperkmerRecord(al.encode("GGGGG"), 2, 1),
        ]
        path = tmp_path / "p.phsk"
        write_partition(path, block_from_records(5, records))
        back = read_partition(path)
        assert back.left_ext.tolist() == [NO_EXT, 0, 2]
        assert back.right_ext.tolist() == [3, NO_EXT, 1]

    def test_empty_partition(self, tmp_path):
        path = tmp_path / "p.phsk"
        with PartitionWriter(path, 7) as writer:
            pass
        back = read_partition(path)
        assert back.n_superkmers == 0
        assert back.k == 7

    def test_header(self, tmp_path):
        block = sample_block(k=9, n=5)
        path = tmp_path / "p.phsk"
        write_partition(path, block)
        k, count = read_partition_header(path)
        assert k == 9 and count == 5

    def test_file_size_prediction(self, tmp_path):
        block = sample_block(n=30)
        path = tmp_path / "p.phsk"
        size = write_partition(path, block)
        assert size == partition_file_size(block)

    def test_streaming_writer_counts(self, tmp_path):
        path = tmp_path / "p.phsk"
        writer = PartitionWriter(path, 5)
        writer.write_record(al.encode("ACGTA"), -1, -1)
        writer.write_record(al.encode("ACGTACG"), 2, -1)
        assert writer.close() == 2
        assert read_partition_header(path)[1] == 2


class TestWriterValidation:
    def test_short_record_rejected(self, tmp_path):
        writer = PartitionWriter(tmp_path / "p.phsk", 9)
        with pytest.raises(ValueError):
            writer.write_record(al.encode("ACGT"), -1, -1)
        writer.close()

    def test_write_after_close(self, tmp_path):
        writer = PartitionWriter(tmp_path / "p.phsk", 5)
        writer.close()
        with pytest.raises(ValueError):
            writer.write_record(al.encode("ACGTA"), -1, -1)

    def test_mismatched_block_k(self, tmp_path):
        writer = PartitionWriter(tmp_path / "p.phsk", 5)
        with pytest.raises(ValueError):
            writer.write_block(sample_block(k=7))
        writer.close()

    def test_k_out_of_byte_range(self, tmp_path):
        with pytest.raises(ValueError):
            PartitionWriter(tmp_path / "p.phsk", 300)

    def test_double_close_is_safe(self, tmp_path):
        writer = PartitionWriter(tmp_path / "p.phsk", 5)
        assert writer.close() == 0
        assert writer.close() == 0


class TestCorruption:
    def test_truncated_header(self, tmp_path):
        path = tmp_path / "p.phsk"
        path.write_bytes(b"PH")
        with pytest.raises(PartitionFormatError):
            read_partition(path)
        with pytest.raises(PartitionFormatError):
            read_partition_header(path)

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "p.phsk"
        write_partition(path, sample_block())
        data = bytearray(path.read_bytes())
        data[0] = ord("X")
        path.write_bytes(bytes(data))
        with pytest.raises(PartitionFormatError):
            read_partition(path)

    def test_truncated_records(self, tmp_path):
        path = tmp_path / "p.phsk"
        write_partition(path, sample_block(n=10))
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 5])
        with pytest.raises(PartitionFormatError):
            read_partition(path)

    def test_trailing_garbage(self, tmp_path):
        path = tmp_path / "p.phsk"
        write_partition(path, sample_block(n=3))
        path.write_bytes(path.read_bytes() + b"\x00\x01")
        with pytest.raises(PartitionFormatError):
            read_partition(path)

    def test_unsupported_version(self, tmp_path):
        path = tmp_path / "p.phsk"
        write_partition(path, sample_block(n=1))
        data = bytearray(path.read_bytes())
        data[4] = 99  # version byte
        path.write_bytes(bytes(data))
        with pytest.raises(PartitionFormatError):
            read_partition(path)

    def test_record_shorter_than_k(self, tmp_path):
        # Write with small k, then claim a bigger k in the header.
        path = tmp_path / "p.phsk"
        write_partition(path, sample_block(k=5, n=1, seed=1))
        data = bytearray(path.read_bytes())
        data[5] = 200  # k byte now larger than any record
        path.write_bytes(bytes(data))
        with pytest.raises(PartitionFormatError):
            read_partition(path)


class TestCompression:
    def test_encoded_is_about_quarter_of_text(self, tmp_path):
        block = sample_block(k=21, n=200, seed=3)
        path = tmp_path / "p.phsk"
        size = write_partition(path, block)
        text_size = block.byte_size_text()
        assert size < 0.45 * text_size  # header+framing keeps it under 1/2
