"""Tests for repro.hetsim.device (cost models)."""

import pytest

from repro.hetsim.device import (
    CpuDevice,
    GpuDevice,
    HashWork,
    MspWork,
    default_cpu,
    default_gpu,
    locality_factor,
)


def msp_work(n_bases=1_000_000):
    return MspWork(n_reads=n_bases // 100, n_bases=n_bases,
                   n_superkmers=n_bases // 50, in_bytes=2 * n_bases,
                   out_bytes=n_bases // 3)


def hash_work(ops=1_000_000, table_bytes=1 << 20):
    return HashWork(n_kmers=ops // 3, ops=ops, probes=ops // 10,
                    inserts=ops // 5, table_bytes=table_bytes,
                    in_bytes=ops // 4, out_bytes=ops // 8)


class TestLocalityFactor:
    def test_in_cache_is_one(self):
        assert locality_factor(1 << 20, 25 << 20, 2.0) == 1.0

    def test_grows_with_table_size(self):
        f1 = locality_factor(50 << 20, 25 << 20, 2.0)
        f2 = locality_factor(500 << 20, 25 << 20, 2.0)
        assert 1.0 < f1 < f2

    def test_bounded_by_penalty(self):
        f = locality_factor(10**12, 25 << 20, 2.0)
        assert f <= 3.0


class TestCpuDevice:
    def test_msp_time_scales_with_bases(self):
        cpu = default_cpu()
        assert cpu.msp_seconds(msp_work(2_000_000)) == pytest.approx(
            2 * cpu.msp_seconds(msp_work(1_000_000))
        )

    def test_hash_time_grows_with_table(self):
        cpu = default_cpu()
        small = cpu.hash_seconds(hash_work(table_bytes=1 << 20))
        large = cpu.hash_seconds(hash_work(table_bytes=1 << 30))
        assert large > small

    def test_more_threads_is_faster(self):
        base = hash_work()
        slow = CpuDevice(n_threads=1).hash_seconds(base)
        fast = CpuDevice(n_threads=20).hash_seconds(base)
        assert fast < slow / 10

    def test_io_share_slows_compute(self):
        base = msp_work()
        full = CpuDevice(io_share=0.0).msp_seconds(base)
        shared = CpuDevice(io_share=0.5).msp_seconds(base)
        assert shared > full

    def test_no_transfer_cost(self):
        assert default_cpu().transfer_seconds(hash_work()) == 0.0

    def test_thread_sweep_near_linear(self):
        # The Fig 9 model: doubling threads nearly halves the time.
        cpu = default_cpu()
        work = hash_work()
        t1 = cpu.hash_seconds_with_threads(work, 1)
        t2 = cpu.hash_seconds_with_threads(work, 2)
        t16 = cpu.hash_seconds_with_threads(work, 16)
        assert t2 == pytest.approx(t1 / 2, rel=0.1)
        assert t16 == pytest.approx(t1 / 16, rel=0.2)

    def test_contention_hurts_scaling(self):
        cpu = default_cpu()
        work = hash_work()
        clean = cpu.hash_seconds_with_threads(work, 16, contention_ops=0)
        contended = cpu.hash_seconds_with_threads(work, 16,
                                                  contention_ops=work.ops // 2)
        assert contended > clean

    def test_invalid_threads(self):
        with pytest.raises(ValueError):
            default_cpu().hash_seconds_with_threads(hash_work(), 0)


class TestGpuDevice:
    def test_transfer_proportional_to_bytes(self):
        gpu = default_gpu()
        w1 = hash_work(ops=1000, table_bytes=1 << 20)
        w2 = HashWork(n_kmers=w1.n_kmers, ops=w1.ops, probes=w1.probes,
                      inserts=w1.inserts, table_bytes=2 << 20,
                      in_bytes=2 * w1.in_bytes, out_bytes=w1.out_bytes)
        assert gpu.transfer_seconds(w2) > gpu.transfer_seconds(w1)

    def test_msp_faster_than_cpu_same_order(self):
        # §III-D offloads the MSP scan to the GPU; Fig 11 shows CPU and
        # GPU processing times stay comparable, so the gain is a small
        # factor, not an order of magnitude.
        work = msp_work()
        gpu_t = default_gpu().msp_seconds(work)
        cpu_t = default_cpu().msp_seconds(work)
        assert gpu_t < cpu_t < 5 * gpu_t

    def test_hash_comparable_to_20core_cpu(self):
        # §V-C1: 20-thread CPU hashing is comparable to one K40.
        work = hash_work(table_bytes=256 << 20)
        cpu_t = default_cpu().hash_seconds(work)
        gpu_t = default_gpu().hash_seconds(work)
        assert 0.3 < cpu_t / gpu_t < 3.0

    def test_divergence_penalty(self):
        gpu = default_gpu()
        smooth = hash_work(ops=10**6)
        divergent = HashWork(n_kmers=smooth.n_kmers, ops=smooth.ops,
                             probes=smooth.ops, inserts=smooth.inserts,
                             table_bytes=smooth.table_bytes,
                             in_bytes=smooth.in_bytes, out_bytes=smooth.out_bytes)
        assert gpu.hash_seconds(divergent) > gpu.hash_seconds(smooth)

    def test_total_includes_transfer(self):
        gpu = default_gpu()
        w = hash_work()
        assert gpu.total_seconds(w) == pytest.approx(
            gpu.hash_seconds(w) + gpu.transfer_seconds(w)
        )

    def test_device_names(self):
        assert default_gpu(0).name == "gpu0"
        assert default_gpu(1).name == "gpu1"


class TestHashWorkFromStats:
    def test_fields_copied(self):
        from repro.core.hashtable import HashStats

        stats = HashStats(ops=100, inserts=20, updates=80, probes=7,
                          key_locks=20, blocked_reads=0, cas_failures=0,
                          count_increments=100)
        w = HashWork.from_stats(stats, n_kmers=40, table_bytes=1024,
                                in_bytes=10, out_bytes=5)
        assert w.ops == 100 and w.probes == 7 and w.inserts == 20
        assert w.n_kmers == 40
