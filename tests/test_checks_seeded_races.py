"""Detector self-tests: re-seed each fixed race and require detection.

Each race this PR fixed can be re-introduced behind a test-only flag
(``repro.core.hashtable.seed_bugs``).  These tests assert that *both*
layers of the dynamic tooling catch each one — the Eraser lockset
monitor flags the undisciplined access, and the interleaving scheduler
replays the bug as a deterministic wrong answer — and that the fixed
code is clean under the same load.
"""

import pytest

from repro.checks.instrument import lockset_session
from repro.checks.schedule import (
    lost_update_scenario,
    stale_lookup_scenario,
    stress_shared_path,
    stress_threaded,
)
from repro.core.hashtable import ConcurrentHashTable, seed_bugs


class TestSeedBugsGate:
    def test_unknown_bug_name_rejected(self):
        with pytest.raises(ValueError):
            with seed_bugs("not_a_bug"):
                pass

    def test_flags_reset_on_exit(self):
        from repro.core import hashtable

        with seed_bugs("shared_stats"):
            assert "shared_stats" in hashtable._SEEDED_BUGS
        assert not hashtable._SEEDED_BUGS


class TestSharedStatsBug:
    def test_lockset_flags_reintroduced_race(self):
        # Layer 2a: the lockset monitor sees unlocked cross-thread
        # writes to the shared stats object.
        with seed_bugs("shared_stats"):
            table = ConcurrentHashTable(2048, k=15)
            with lockset_session() as mon:
                stress_shared_path(table, n_distinct=32, n_ops=512,
                                   n_threads=4)
            races = mon.races()
        assert any(r.label == "stats" for r in races)
        stats_race = next(r for r in races if r.label == "stats")
        assert stats_race.reason == "empty candidate lockset"
        assert "insert_one_threadsafe" in stats_race.access.site

    def test_scheduler_replays_lost_update(self):
        # Layer 2b: the adversarial schedule turns the race into a
        # deterministic lost increment.
        with seed_bugs("shared_stats"):
            table = ConcurrentHashTable(256, k=15)
            result = lost_update_scenario(table)
        assert result.notes["ops_recorded"] == 1
        assert result.notes["ops_expected"] == 2

    def test_fixed_code_loses_nothing(self):
        table = ConcurrentHashTable(256, k=15)
        result = lost_update_scenario(table)
        assert result.notes["ops_recorded"] == 2


class TestNumpyPublishBug:
    def test_lockset_flags_unordered_mirror_read(self):
        # The mirror write is write-once, so classic lockset alone would
        # stay silent; the publication-ordering extension must report
        # the unordered read of the stale mirror.  Deterministic even on
        # a starved 1-core box: readers do at least one full pass, and
        # the monitor's thread ids are reuse-proof, so any cross-thread
        # read-after-write reports regardless of the schedule.
        with seed_bugs("numpy_publish"):
            table = ConcurrentHashTable(2048, k=15)
            with lockset_session() as mon:
                stress_shared_path(table, n_distinct=32, n_ops=512,
                                   n_threads=8)
            races = mon.races()
        state_races = [r for r in races if r.label == "state"]
        assert state_races, [r.describe() for r in races]
        assert any(r.reason == "unordered publication read"
                   for r in state_races)

    def test_scheduler_replays_stale_lookup(self):
        # Deterministic linearizability failure: the updater's insert
        # returned, yet lookup (reading the paused writer's stale
        # mirror) misses the key.
        with seed_bugs("numpy_publish"):
            table = ConcurrentHashTable(256, k=15)
            result = stale_lookup_scenario(table)
        assert result.lookup_missed is True

    def test_fixed_code_lookup_linearizes(self):
        table = ConcurrentHashTable(256, k=15)
        result = stale_lookup_scenario(table)
        assert result.lookup_missed is False


class TestFixedTreeClean:
    def test_threaded_stress_no_candidate_races(self):
        table = ConcurrentHashTable(2048, k=15)
        with lockset_session() as mon:
            stress_threaded(table, n_distinct=64, n_ops=2048, n_threads=8)
        mon.assert_no_races()

    def test_shared_path_stress_no_candidate_races(self):
        table = ConcurrentHashTable(2048, k=15)
        with lockset_session() as mon:
            stress_shared_path(table, n_distinct=64, n_ops=1024, n_threads=8)
        mon.assert_no_races()

    def test_bigk_threaded_stress_no_candidate_races(self):
        import numpy as np

        from repro.bigk.table import TwoWordHashTable

        rng = np.random.default_rng(7)
        # Duplicate-heavy two-word keys (> 64 bits) to force contention.
        distinct = [int(x) for x in
                    rng.integers(0, 1 << 60, size=64, dtype=np.uint64)]
        kmers = [distinct[i] << 30 | 5
                 for i in rng.integers(0, len(distinct), size=512)]
        slots = rng.integers(0, 9, size=512).astype(np.int64)
        table = TwoWordHashTable(2048, k=47)
        with lockset_session() as mon:
            table.insert_threaded(kmers, slots, n_threads=8)
        mon.assert_no_races()
