"""Tests for repro.dna.minimizer (P-minimum-substrings and superkmers)."""

import numpy as np
import pytest

from repro.dna import alphabet as al
from repro.dna import minimizer as mz


class TestSlidingMin:
    def test_window_one_is_identity(self, rng):
        a = rng.integers(0, 100, size=(3, 10))
        assert np.array_equal(mz.sliding_min(a, 1), a)

    def test_full_window(self, rng):
        a = rng.integers(0, 100, size=(3, 10))
        assert np.array_equal(mz.sliding_min(a, 10).ravel(), a.min(axis=1))

    def test_matches_naive(self, rng):
        a = rng.integers(0, 1000, size=(5, 40))
        for w in (2, 3, 7, 16, 40):
            got = mz.sliding_min(a, w)
            for i in range(5):
                for j in range(40 - w + 1):
                    assert got[i, j] == a[i, j : j + w].min()

    def test_bad_window(self):
        a = np.zeros((2, 5))
        with pytest.raises(ValueError):
            mz.sliding_min(a, 0)
        with pytest.raises(ValueError):
            mz.sliding_min(a, 6)

    def test_1d_input(self):
        a = np.array([5, 3, 8, 1, 9])
        assert mz.sliding_min(a, 2).tolist() == [3, 3, 1, 1]

    def test_1d_full_window(self):
        a = np.array([5, 3, 8, 1, 9])
        assert mz.sliding_min(a, 5).tolist() == [1]

    def test_single_element_window_one(self):
        a = np.array([[42]])
        got = mz.sliding_min(a, 1)
        assert got.shape == (1, 1)
        assert got[0, 0] == 42

    def test_window_one_does_not_alias_input(self):
        # window == 1 must return values equal to the input but not a
        # view that later doubling rounds (or the caller) could mutate.
        a = np.array([[7, 2, 5]])
        got = mz.sliding_min(a, 1)
        got[0, 0] = -1
        assert a[0, 0] == 7


class TestMinimizers:
    def test_matches_reference_noncanonical(self, rng):
        codes = rng.integers(0, 4, size=(10, 30), dtype=np.uint8)
        k, p = 11, 4
        got = mz.minimizers_for_reads(codes, k, p, canonical=False)
        for i in range(10):
            for j in range(30 - k + 1):
                ref = mz.minimizer_of_kmer_ref(codes[i, j : j + k], p, canonical=False)
                assert int(got[i, j]) == ref

    def test_matches_reference_canonical(self, rng):
        codes = rng.integers(0, 4, size=(8, 26), dtype=np.uint8)
        k, p = 9, 5
        got = mz.minimizers_for_reads(codes, k, p)
        for i in range(8):
            for j in range(26 - k + 1):
                ref = mz.minimizer_of_kmer_ref(codes[i, j : j + k], p)
                assert int(got[i, j]) == ref

    def test_p_equals_k(self, rng):
        # With P = K, the minimizer of a kmer is its own canonical form.
        codes = rng.integers(0, 4, size=(4, 20), dtype=np.uint8)
        from repro.dna.kmer import canonical_u64, kmers_from_reads

        k = 7
        minis = mz.minimizers_for_reads(codes, k, k)
        kmers = kmers_from_reads(codes, k)
        assert np.array_equal(minis, canonical_u64(kmers, k))

    def test_strand_invariance(self, rng):
        # Canonical minimizers must be identical for a read and its RC.
        codes = rng.integers(0, 4, size=(1, 40), dtype=np.uint8)
        rc = (codes[:, ::-1] ^ 3).astype(np.uint8)
        k, p = 15, 7
        fwd = mz.minimizers_for_reads(codes, k, p)
        bwd = mz.minimizers_for_reads(rc, k, p)
        assert np.array_equal(fwd[0], bwd[0][::-1])

    def test_invalid_p(self):
        codes = np.zeros((1, 20), dtype=np.uint8)
        with pytest.raises(ValueError):
            mz.minimizers_for_reads(codes, 5, 0)
        with pytest.raises(ValueError):
            mz.minimizers_for_reads(codes, 5, 6)


class TestSuperkmers:
    def test_matches_reference(self, rng):
        codes = rng.integers(0, 4, size=(12, 35), dtype=np.uint8)
        k, p = 11, 5
        sk = mz.superkmers_for_reads(codes, k, p)
        for i in range(12):
            ref = mz.superkmers_of_read_ref(codes[i], k, p)
            got = [
                (int(s), int(n), int(m))
                for r, s, n, m in zip(sk.read_idx, sk.start, sk.n_kmers, sk.minimizer)
                if r == i
            ]
            assert got == [(a, b, int(c)) for a, b, c in ref]

    def test_covers_every_kmer_exactly_once(self, rng):
        codes = rng.integers(0, 4, size=(30, 50), dtype=np.uint8)
        k, p = 13, 6
        sk = mz.superkmers_for_reads(codes, k, p)
        assert sk.total_kmers() == 30 * (50 - k + 1)
        # Within each read, superkmers tile the kmer index range.
        for i in range(30):
            spans = sorted(
                (int(s), int(s + n))
                for r, s, n in zip(sk.read_idx, sk.start, sk.n_kmers)
                if r == i
            )
            assert spans[0][0] == 0
            assert spans[-1][1] == 50 - k + 1
            for (a, b), (c, d) in zip(spans, spans[1:]):
                assert b == c

    def test_base_lengths(self, rng):
        codes = rng.integers(0, 4, size=(5, 30), dtype=np.uint8)
        sk = mz.superkmers_for_reads(codes, 9, 4)
        assert np.array_equal(sk.base_lengths, sk.n_kmers + 8)

    def test_superkmer_compaction_bound(self, rng):
        # A superkmer with M kmers stores M + K - 1 bases, vs M*K if
        # kmers were stored individually (§III-B's space claim).
        codes = rng.integers(0, 4, size=(20, 60), dtype=np.uint8)
        k, p = 15, 5
        sk = mz.superkmers_for_reads(codes, k, p)
        compact = int(sk.base_lengths.sum())
        naive = int(sk.n_kmers.sum()) * k
        assert compact < naive

    def test_single_superkmer_when_p1(self):
        # P = 1: minimizer = smallest base; often one superkmer per read
        # when the read contains an 'A' in every kmer window.
        codes = al.encode("AACAGATAAC").reshape(1, -1)
        sk = mz.superkmers_for_reads(codes, 4, 1)
        assert len(sk) == 1
        assert int(sk.n_kmers[0]) == 7

    def test_uniform_read(self):
        codes = np.zeros((1, 20), dtype=np.uint8)  # "AAAA..."
        sk = mz.superkmers_for_reads(codes, 5, 3)
        assert len(sk) == 1
        assert int(sk.minimizer[0]) == 0

    def test_known_split(self):
        # Non-canonical, P=2: minimizer changes mid-read force splits.
        codes = al.encode("TTTTATTTT").reshape(1, -1)
        sk = mz.superkmers_for_reads(codes, 4, 2, canonical=False)
        # kmers: TTTT TTTA TTAT TATT ATTT TTTT; minimizers: TT,TA,AT,AT,AT,TT
        assert [int(n) for n in sk.n_kmers] == [1, 1, 3, 1]

    def test_reads_shorter_than_k_raises(self):
        codes = np.zeros((1, 4), dtype=np.uint8)
        with pytest.raises(ValueError):
            mz.superkmers_for_reads(codes, 5, 2)

    def test_ref_rejects_short_read(self):
        with pytest.raises(ValueError):
            mz.superkmers_of_read_ref(np.zeros(3, dtype=np.uint8), 5, 2)
