"""Cross-implementation integration tests.

Every construction path in the library must produce the exact same
graph; these tests run all of them on a realistic simulated dataset and
compare bit-for-bit, including through the disk formats.
"""

import numpy as np
import pytest

from repro.baselines.bcalm import build_bcalm
from repro.baselines.soap import build_soap
from repro.baselines.sortmerge import build_sortmerge
from repro.core.config import ParaHashConfig
from repro.core.parahash import ParaHash
from repro.dna.io import load_read_batch, save_read_batch
from repro.dna.simulate import DatasetProfile
from repro.graph.build import build_reference_graph
from repro.graph.validate import (
    assert_graphs_equal,
    check_genome_coverage,
    validate_full_graph,
)
from repro.hetsim.workloads import simulate_parahash


@pytest.fixture(scope="module")
def dataset():
    profile = DatasetProfile(
        name="integration",
        genome_size=8_000,
        read_length=90,
        coverage=15.0,
        mean_errors=1.0,
        repeat_fraction=0.1,
        seed=7,
    )
    genome, reads = profile.generate()
    return profile, genome, reads


@pytest.fixture(scope="module")
def reference(dataset):
    _, _, reads = dataset
    return build_reference_graph(reads, 21)


K, P, NP = 21, 9, 12


class TestAllPathsAgree:
    def test_reference_is_valid(self, dataset, reference):
        _, _, reads = dataset
        validate_full_graph(reference, reads)

    def test_parahash_in_memory(self, dataset, reference):
        _, _, reads = dataset
        cfg = ParaHashConfig(k=K, p=P, n_partitions=NP, n_input_pieces=4)
        result = ParaHash(cfg).build_graph(reads)
        assert_graphs_equal(result.graph, reference, "parahash-memory")

    def test_parahash_disk(self, dataset, reference, tmp_path):
        _, _, reads = dataset
        cfg = ParaHashConfig(k=K, p=P, n_partitions=NP)
        result = ParaHash(cfg).build_graph(reads, workdir=tmp_path)
        assert_graphs_equal(result.graph, reference, "parahash-disk")

    def test_parahash_threaded(self, dataset, reference):
        _, _, reads = dataset
        cfg = ParaHashConfig(k=K, p=P, n_partitions=NP, n_threads=4)
        result = ParaHash(cfg).build_graph(reads)
        assert_graphs_equal(result.graph, reference, "parahash-threaded")

    def test_hetsim(self, dataset, reference):
        _, _, reads = dataset
        cfg = ParaHashConfig(k=K, p=P, n_partitions=NP)
        report = simulate_parahash(reads, cfg, use_cpu=True, n_gpus=2)
        assert_graphs_equal(report.graph, reference, "hetsim")

    def test_soap(self, dataset, reference):
        _, _, reads = dataset
        assert_graphs_equal(build_soap(reads, K).graph, reference, "soap")

    def test_sortmerge(self, dataset, reference):
        _, _, reads = dataset
        assert_graphs_equal(
            build_sortmerge(reads, K, memory_budget_pairs=40_000).graph,
            reference, "sortmerge",
        )

    def test_bcalm(self, dataset, reference):
        _, _, reads = dataset
        assert_graphs_equal(
            build_bcalm(reads, K, p=P, n_partitions=NP).graph,
            reference, "bcalm",
        )

    def test_parahash_bigk_processes(self, dataset):
        """Big-k (k > 31): the processes backend against ground truth."""
        from repro.bigk.store import build_reference_bigk_slow

        _, _, reads = dataset
        k = 45
        slow = build_reference_bigk_slow(reads, k)
        cfg = ParaHashConfig(
            k=k, p=15, n_partitions=NP, backend="processes",
            n_workers=2, pipeline=True,
        )
        result = ParaHash(cfg).build_graph(reads)
        assert result.graph.equals(slow)

    def test_through_fastq_roundtrip(self, dataset, reference, tmp_path):
        # Write reads as fastq, read back, construct: identical graph.
        _, _, reads = dataset
        path = tmp_path / "reads.fastq"
        save_read_batch(path, reads)
        loaded = load_read_batch(path)
        assert np.array_equal(loaded.codes, reads.codes)
        got = build_reference_graph(loaded, K)
        assert_graphs_equal(got, reference, "fastq-roundtrip")


class TestBiologicalSanity:
    def test_genome_recoverable(self, dataset, reference):
        _, genome, _ = dataset
        missing = check_genome_coverage(reference, genome)
        # 15x coverage: nearly all genome kmers present.
        assert missing < 0.02 * genome.size

    def test_error_filtering_shrinks_toward_genome(self, dataset, reference):
        _, genome, _ = dataset
        filtered = reference.filter_min_multiplicity(2)
        # Most erroneous vertices are singletons.
        n_genome_kmers = genome.size - K + 1
        assert filtered.n_vertices < 1.5 * n_genome_kmers
        assert reference.n_vertices > filtered.n_vertices

    def test_duplicate_ratio_is_realistic(self, dataset, reference):
        # Table I shows duplicates >> distinct at real coverage.
        ratio = reference.n_duplicate_vertices() / reference.n_vertices
        assert ratio > 1.5

    def test_table1_accounting(self, dataset, reference):
        _, _, reads = dataset
        total = reference.n_vertices + reference.n_duplicate_vertices()
        assert total == reads.n_kmers(K)
