"""Tests for repro.hetsim.trace (schedule events and Gantt rendering)."""

from repro.hetsim.device import HashWork, default_cpu, default_gpu
from repro.hetsim.pipeline import simulate_step
from repro.hetsim.trace import render_gantt, schedule_events, summarize_schedule
from repro.hetsim.transfer import memory_cached_disk, spinning_disk


def works(n=8, ops=100_000):
    return [
        HashWork(n_kmers=ops // 3, ops=ops, probes=ops // 10, inserts=ops // 5,
                 table_bytes=1 << 20, in_bytes=100_000, out_bytes=50_000)
        for _ in range(n)
    ]


class TestScheduleEvents:
    def test_one_event_per_ticket(self):
        sim = simulate_step(works(10), [default_cpu(), default_gpu()],
                            memory_cached_disk())
        events = schedule_events(sim)
        assert [e.ticket for e in events] == list(range(10))

    def test_times_consistent(self):
        sim = simulate_step(works(10), [default_cpu()], spinning_disk())
        for ev in schedule_events(sim):
            assert 0 <= ev.start <= ev.finish <= ev.written
            assert ev.compute_seconds >= 0

    def test_device_serializes_its_partitions(self):
        sim = simulate_step(works(12), [default_cpu()], memory_cached_disk())
        events = schedule_events(sim)
        for prev, cur in zip(events, events[1:]):
            assert cur.start >= prev.finish - 1e-12

    def test_devices_assigned(self):
        sim = simulate_step(works(12), [default_cpu(), default_gpu()],
                            memory_cached_disk())
        devices = {e.device for e in schedule_events(sim)}
        assert devices <= {"cpu", "gpu0"}
        assert len(devices) == 2  # both got work


class TestGantt:
    def test_renders_all_devices(self):
        sim = simulate_step(works(6), [default_cpu(), default_gpu()],
                            spinning_disk())
        chart = render_gantt(sim)
        assert "cpu" in chart and "gpu0" in chart and "writer" in chart
        assert "#" in chart and "|" in chart

    def test_empty_schedule(self):
        sim = simulate_step([], [default_cpu()], memory_cached_disk())
        assert render_gantt(sim) == "(empty schedule)"

    def test_width_respected(self):
        sim = simulate_step(works(4), [default_cpu()], memory_cached_disk())
        chart = render_gantt(sim, width=40)
        for line in chart.splitlines()[1:]:
            assert len(line) <= 40 + 12  # label + separator margin


class TestSummary:
    def test_metrics(self):
        ws = works(10)
        sim = simulate_step(ws, [default_cpu(), default_gpu()],
                            memory_cached_disk())
        summary = summarize_schedule(sim, ws)
        assert summary["n_partitions"] == 10
        assert summary["makespan"] == sim.elapsed_seconds
        for name, u in summary["utilization"].items():
            assert 0 <= u <= 1.0 + 1e-9, name
