"""Tests for repro.dna.io (FASTA/FASTQ parsing and writing)."""

import pytest

from repro.dna.io import (
    FormatError,
    SequenceRecord,
    load_read_batch,
    read_fasta,
    read_fastq,
    read_sequences,
    save_read_batch,
    split_input_file,
    write_fasta,
    write_fastq,
)
from repro.dna.reads import ReadBatch


class TestFasta:
    def test_roundtrip(self, tmp_path):
        records = [
            SequenceRecord(name="r1", sequence="ACGTACGT"),
            SequenceRecord(name="r2 extra words", sequence="TTTTGGGG"),
        ]
        path = tmp_path / "t.fasta"
        write_fasta(path, records)
        back = read_fasta(path)
        assert [(r.name, r.sequence) for r in back] == [
            ("r1", "ACGTACGT"),
            ("r2 extra words", "TTTTGGGG"),
        ]

    def test_multiline_sequences(self, tmp_path):
        path = tmp_path / "t.fasta"
        path.write_text(">x\nACGT\nACGT\n>y\nTT\n")
        back = read_fasta(path)
        assert back[0].sequence == "ACGTACGT"
        assert back[1].sequence == "TT"

    def test_wrapping(self, tmp_path):
        path = tmp_path / "t.fasta"
        write_fasta(path, [SequenceRecord(name="x", sequence="A" * 100)], width=30)
        lines = path.read_text().splitlines()
        assert lines[0] == ">x"
        assert max(len(line) for line in lines[1:]) == 30

    def test_data_before_header(self, tmp_path):
        path = tmp_path / "t.fasta"
        path.write_text("ACGT\n>x\nACGT\n")
        with pytest.raises(FormatError):
            read_fasta(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "t.fasta"
        path.write_text("")
        assert read_fasta(path) == []

    def test_bad_width(self, tmp_path):
        with pytest.raises(ValueError):
            write_fasta(tmp_path / "t.fasta", [], width=0)


class TestFastq:
    def test_roundtrip(self, tmp_path):
        records = [SequenceRecord(name="q1", sequence="ACGT", quality="IIII")]
        path = tmp_path / "t.fastq"
        write_fastq(path, records)
        back = read_fastq(path)
        assert back[0].name == "q1"
        assert back[0].sequence == "ACGT"
        assert back[0].quality == "IIII"

    def test_default_quality(self, tmp_path):
        path = tmp_path / "t.fastq"
        write_fastq(path, [SequenceRecord(name="q", sequence="ACG")])
        assert read_fastq(path)[0].quality == "III"

    def test_quality_length_mismatch_read(self, tmp_path):
        path = tmp_path / "t.fastq"
        path.write_text("@q\nACGT\n+\nII\n")
        with pytest.raises(FormatError):
            read_fastq(path)

    def test_quality_length_mismatch_write(self, tmp_path):
        rec = SequenceRecord(name="q", sequence="ACGT", quality="I")
        with pytest.raises(FormatError):
            write_fastq(tmp_path / "t.fastq", [rec])

    def test_bad_header(self, tmp_path):
        path = tmp_path / "t.fastq"
        path.write_text("q\nACGT\n+\nIIII\n")
        with pytest.raises(FormatError):
            read_fastq(path)

    def test_truncated_record(self, tmp_path):
        path = tmp_path / "t.fastq"
        path.write_text("@q\nACGT\n+\n")
        with pytest.raises(FormatError):
            read_fastq(path)


class TestAutodetect:
    def test_detects_fasta(self, tmp_path):
        path = tmp_path / "x"
        path.write_text(">a\nACGT\n")
        assert read_sequences(path)[0].quality is None

    def test_detects_fastq(self, tmp_path):
        path = tmp_path / "x"
        path.write_text("@a\nACGT\n+\nIIII\n")
        assert read_sequences(path)[0].quality == "IIII"

    def test_unknown_format(self, tmp_path):
        path = tmp_path / "x"
        path.write_text("#something\n")
        with pytest.raises(FormatError):
            read_sequences(path)

    def test_empty(self, tmp_path):
        path = tmp_path / "x"
        path.write_text("\n\n")
        assert read_sequences(path) == []


class TestBatchIO:
    def test_batch_roundtrip_fastq(self, tmp_path):
        batch = ReadBatch.from_strs(["ACGTAC", "TTGGCC"])
        path = tmp_path / "b.fastq"
        save_read_batch(path, batch)
        back = load_read_batch(path)
        assert list(back.iter_strs()) == ["ACGTAC", "TTGGCC"]

    def test_batch_roundtrip_fasta(self, tmp_path):
        batch = ReadBatch.from_strs(["ACGTAC"])
        path = tmp_path / "b.fasta"
        save_read_batch(path, batch, fmt="fasta")
        assert load_read_batch(path).read_str(0) == "ACGTAC"

    def test_bad_format(self, tmp_path):
        batch = ReadBatch.from_strs(["ACGT"])
        with pytest.raises(ValueError):
            save_read_batch(tmp_path / "b", batch, fmt="bam")


class TestSplitInput:
    def test_split_counts(self, tmp_path):
        batch = ReadBatch.from_strs(["ACGT"] * 10)
        src = tmp_path / "all.fastq"
        save_read_batch(src, batch)
        paths = split_input_file(src, 3, tmp_path / "parts")
        assert len(paths) == 3
        total = sum(len(read_sequences(p)) for p in paths)
        assert total == 10

    def test_split_empty_raises(self, tmp_path):
        src = tmp_path / "empty.fasta"
        src.write_text("")
        with pytest.raises(FormatError):
            split_input_file(src, 2, tmp_path / "parts")
