"""Tests for repro.concurrentsub.workqueue (srv/cns/prd/wrt protocol)."""

import threading
import time

import pytest

from repro.concurrentsub.workqueue import (
    InputQueue,
    OutputQueue,
    ProcessTicketQueue,
    ProcessWorkQueue,
    QueueClosed,
    run_coprocessed,
)


class TestInputQueue:
    def test_publish_take(self):
        q = InputQueue(3)
        q.publish("a")
        ticket = q.try_claim()
        assert ticket == 0
        assert q.take(ticket) == "a"

    def test_tickets_exhaust(self):
        q = InputQueue(2)
        assert q.try_claim() == 0
        assert q.try_claim() == 1
        assert q.try_claim() is None
        assert q.try_claim() is None

    def test_take_blocks_until_published(self):
        q = InputQueue(1)
        got = []

        def consumer():
            ticket = q.try_claim()
            got.append(q.take(ticket, timeout=5.0))

        t = threading.Thread(target=consumer)
        t.start()
        time.sleep(0.05)
        q.publish("late")
        t.join(timeout=5.0)
        assert got == ["late"]

    def test_take_timeout(self):
        q = InputQueue(1)
        ticket = q.try_claim()
        with pytest.raises(QueueClosed):
            q.take(ticket, timeout=0.05)

    def test_publish_beyond_capacity(self):
        q = InputQueue(1)
        q.publish("x")
        with pytest.raises(IndexError):
            q.publish("y")

    def test_srv_counter_tracks_publishes(self):
        q = InputQueue(3)
        q.publish(1)
        q.publish(2)
        assert q.srv.value == 2


class TestOutputQueue:
    def test_drain_in_publish_order(self):
        q = OutputQueue(3)
        q.publish(2, "c")
        q.publish(0, "a")
        q.publish(1, "b")
        items = dict(q.drain(timeout=1.0))
        assert items == {0: "a", 1: "b", 2: "c"}

    def test_double_publish_rejected(self):
        q = OutputQueue(2)
        q.publish(0, "a")
        with pytest.raises(ValueError):
            q.publish(0, "again")

    def test_drain_timeout(self):
        q = OutputQueue(2)
        q.publish(0, "a")
        with pytest.raises(QueueClosed):
            list(q.drain(timeout=0.05))

    def test_wrt_advances(self):
        q = OutputQueue(2)
        q.publish(0, "a")
        q.publish(1, "b")
        list(q.drain(timeout=1.0))
        assert q.wrt.value == 2


class TestRunCoprocessed:
    def test_results_in_order(self):
        items = list(range(20))
        results, records = run_coprocessed(
            items, {"w1": lambda x: x * 2, "w2": lambda x: x * 2}
        )
        assert results == [x * 2 for x in items]
        assert sum(len(r.partitions) for r in records.values()) == 20

    def test_single_worker(self):
        results, records = run_coprocessed([1, 2, 3], {"only": lambda x: -x})
        assert results == [-1, -2, -3]
        assert records["only"].partitions == [0, 1, 2]

    def test_faster_worker_claims_more(self):
        def slow(x):
            time.sleep(0.02)
            return x

        def fast(x):
            return x

        items = list(range(30))
        _, records = run_coprocessed(items, {"slow": slow, "fast": fast})
        assert records["fast"].items_processed > records["slow"].items_processed

    def test_size_of_accumulates(self):
        items = [10, 20, 30]
        _, records = run_coprocessed(items, {"w": lambda x: x}, size_of=lambda x: x)
        assert records["w"].items_processed == 60

    def test_worker_exception_propagates(self):
        def boom(x):
            raise RuntimeError("kaput")

        with pytest.raises(RuntimeError, match="kaput"):
            run_coprocessed([1, 2], {"w": boom})

    def test_no_workers_rejected(self):
        with pytest.raises(ValueError):
            run_coprocessed([1], {})

    def test_empty_items(self):
        results, records = run_coprocessed([], {"w": lambda x: x})
        assert results == []
        assert records["w"].items_processed == 0


class TestProcessTicketQueue:
    def test_weighted_claims_are_consecutive(self):
        q = ProcessTicketQueue(7)
        assert q.claim(3) == [0, 1, 2]
        assert q.claim(2) == [3, 4]
        assert q.claimed() == 5

    def test_weight_exceeding_remaining_returns_tail(self):
        q = ProcessTicketQueue(5)
        assert q.claim(3) == [0, 1, 2]
        # Only two tickets remain; an oversized claim takes just those.
        assert q.claim(10) == [3, 4]
        assert q.claimed() == 5

    def test_drained_queue_returns_empty_forever(self):
        q = ProcessTicketQueue(2)
        assert q.claim(2) == [0, 1]
        assert q.claim(1) == []
        assert q.claim(5) == []
        assert q.claimed() == 2

    def test_weight_below_one_rejected(self):
        q = ProcessTicketQueue(3)
        with pytest.raises(ValueError):
            q.claim(0)
        with pytest.raises(ValueError):
            q.claim(-2)
        # The failed claims must not have consumed tickets.
        assert q.claim(3) == [0, 1, 2]

    def test_zero_item_queue(self):
        q = ProcessTicketQueue(0)
        assert q.claim(1) == []
        assert q.claimed() == 0

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            ProcessTicketQueue(-1)


class TestProcessWorkQueue:
    def test_publish_then_claim(self):
        q = ProcessWorkQueue(4)
        assert q.publish("a") == 0
        assert q.publish("b") == 1
        assert q.claim(1, timeout=2.0) == ["a"]
        assert q.claim(5, timeout=2.0) == ["b"]
        assert q.published() == 2

    def test_closed_and_drained_returns_empty(self):
        q = ProcessWorkQueue(2)
        q.publish("x")
        q.close()
        assert q.claim(1, timeout=2.0) == ["x"]
        assert q.claim(1, timeout=2.0) == []
        assert q.claim(3, timeout=2.0) == []

    def test_publish_after_close_rejected(self):
        q = ProcessWorkQueue(2)
        q.close()
        with pytest.raises(QueueClosed):
            q.publish("late")

    def test_publish_beyond_capacity_rejected(self):
        q = ProcessWorkQueue(1)
        q.publish("only")
        with pytest.raises(IndexError):
            q.publish("overflow")

    def test_abort_unblocks_immediately(self):
        q = ProcessWorkQueue(3)
        q.publish("never-delivered")
        q.abort()
        t0 = time.perf_counter()
        assert q.claim(1, timeout=30.0) == []
        assert time.perf_counter() - t0 < 5.0

    def test_claim_weight_below_one_rejected(self):
        q = ProcessWorkQueue(1)
        with pytest.raises(ValueError):
            q.claim(0)

    def test_claim_timeout_raises_instead_of_hanging(self):
        q = ProcessWorkQueue(1)  # open, nothing published, nobody will
        t0 = time.perf_counter()
        with pytest.raises(QueueClosed):
            q.claim(1, timeout=0.2)
        assert time.perf_counter() - t0 < 5.0

    def test_claim_blocks_until_publish(self):
        q = ProcessWorkQueue(1)
        got = []

        def consumer():
            got.extend(q.claim(1, timeout=10.0))

        t = threading.Thread(target=consumer)
        t.start()
        time.sleep(0.05)
        q.publish("late")
        t.join(timeout=10.0)
        assert got == ["late"]

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            ProcessWorkQueue(-1)

    def test_cross_process_claims_cover_all_items(self):
        from repro.parallel.pool import default_context, run_workers

        ctx = default_context()
        q = ProcessWorkQueue(6, ctx=ctx)
        for i in range(6):
            q.publish(i)
        q.close()
        results = run_workers(_drain_worker, 2, args=(q,), ctx=ctx,
                              timeout=60.0)
        assert sorted(x for claimed in results for x in claimed) == list(range(6))


class TestProcessWorkQueueTryClaim:
    def test_empty_returns_immediately(self):
        q = ProcessWorkQueue(4)
        t0 = time.perf_counter()
        assert q.try_claim(3) == []
        assert time.perf_counter() - t0 < 1.0

    def test_takes_up_to_weight(self):
        q = ProcessWorkQueue(8)
        for i in range(5):
            q.publish(i)
        assert q.try_claim(2) == [0, 1]
        assert q.try_claim(1) == [2]
        assert q.try_claim(10) == [3, 4]  # weight caps at availability
        assert q.try_claim(1) == []

    def test_weight_below_one_rejected(self):
        q = ProcessWorkQueue(1)
        with pytest.raises(ValueError):
            q.try_claim(0)

    def test_aborted_queue_yields_nothing(self):
        q = ProcessWorkQueue(2)
        q.publish("x")
        q.abort()
        assert q.try_claim(1) == []

    def test_closed_queue_still_drains(self):
        q = ProcessWorkQueue(2)
        q.publish("x")
        q.close()
        assert q.try_claim(1) == ["x"]
        assert q.try_claim(1) == []


class TestProcessWorkQueueReset:
    def test_reset_reopens_a_spent_queue(self):
        q = ProcessWorkQueue(2)
        q.publish("a")
        q.close()
        assert q.try_claim(1) == ["a"]
        q.reset()
        assert q.publish("b") == 0  # indices rewound too
        assert q.try_claim(1) == ["b"]

    def test_reset_after_abort(self):
        q = ProcessWorkQueue(2)
        q.abort()
        q.reset()
        q.publish("fresh")
        assert q.try_claim(1) == ["fresh"]

    def test_reset_with_unclaimed_items_rejected(self):
        q = ProcessWorkQueue(2)
        q.publish("stranded")
        with pytest.raises(RuntimeError, match="unclaimed"):
            q.reset()
        assert q.try_claim(1) == ["stranded"]  # still claimable
        q.reset()

    def test_many_tenancies_on_one_queue(self):
        q = ProcessWorkQueue(4)
        for tenancy in range(5):
            for i in range(3):
                q.publish((tenancy, i))
            got = q.try_claim(4)
            assert got == [(tenancy, i) for i in range(3)]
            q.reset()


def _drain_worker(worker_id: int, q: ProcessWorkQueue) -> list:
    out = []
    while True:
        items = q.claim(2, timeout=30.0)
        if not items:
            return out
        out.extend(items)
