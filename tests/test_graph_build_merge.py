"""Tests for repro.graph.build and repro.graph.merge."""

import numpy as np
import pytest

from repro.dna.reads import ReadBatch
from repro.graph.build import (
    build_reference_graph,
    build_reference_graph_slow,
    edge_observations,
)
from repro.graph.dbg import MULT_SLOT, empty_graph, graph_from_pairs
from repro.graph.merge import OverlapError, merge_adding, merge_disjoint
from repro.graph.validate import assert_graphs_equal


class TestReferenceBuilders:
    def test_fast_equals_slow(self, rng):
        codes = rng.integers(0, 4, size=(25, 40), dtype=np.uint8)
        batch = ReadBatch(codes=codes)
        for k in (3, 11, 20):
            fast = build_reference_graph(batch, k)
            slow = build_reference_graph_slow(batch, k)
            assert_graphs_equal(fast, slow, f"k={k}")

    def test_fig1_example(self):
        # Fig 1 of the paper: TGATG has successors GATGG (weight 2) and
        # GATGA (weight 1) given three reads containing those overlaps.
        reads = ReadBatch.from_strs(["TGATGG", "TGATGG", "TGATGA"])
        g = build_reference_graph(reads, 5)
        from repro.dna import alphabet as al
        from repro.dna.encoding import codes_to_int
        from repro.dna.kmer import canonical_int

        tgatg = canonical_int(codes_to_int(al.encode("TGATG")), 5)
        succ = dict(g.successors(tgatg) + g.predecessors(tgatg))
        gatgg = canonical_int(codes_to_int(al.encode("GATGG")), 5)
        gatga = canonical_int(codes_to_int(al.encode("GATGA")), 5)
        assert succ[gatgg] == 2
        assert succ[gatga] == 1

    def test_empty_batch(self):
        g = build_reference_graph(ReadBatch(codes=np.zeros((0, 0), dtype=np.uint8)), 5)
        assert g.n_vertices == 0

    def test_single_kmer_reads(self):
        batch = ReadBatch.from_strs(["ACGTA", "ACGTA"])
        g = build_reference_graph(batch, 5)
        assert g.n_vertices == 1
        assert g.total_kmer_instances() == 2
        assert g.total_edge_weight() == 0

    def test_strand_symmetry(self, rng):
        # A batch and its reverse-complemented batch build one graph.
        codes = rng.integers(0, 4, size=(20, 30), dtype=np.uint8)
        rc = (codes[:, ::-1] ^ 3).astype(np.uint8)
        g1 = build_reference_graph(ReadBatch(codes=codes), 9)
        g2 = build_reference_graph(ReadBatch(codes=rc), 9)
        assert_graphs_equal(g1, g2, "strand-symmetry")

    def test_edge_observations_sizes(self, small_batch):
        v, s = edge_observations(small_batch.codes, 11)
        n_kmers = small_batch.n_kmers(11)
        pairs = small_batch.n_reads * (small_batch.read_length - 11)
        assert v.size == n_kmers + 2 * pairs
        assert int((s == MULT_SLOT).sum()) == n_kmers


class TestMergeDisjoint:
    def split_graph(self, g, parts=3):
        bounds = np.linspace(0, g.n_vertices, parts + 1).astype(int)
        from repro.graph.dbg import DeBruijnGraph

        return [
            DeBruijnGraph(k=g.k, vertices=g.vertices[a:b], counts=g.counts[a:b])
            for a, b in zip(bounds, bounds[1:])
        ]

    def test_roundtrip(self, genomic_batch):
        g = build_reference_graph(genomic_batch, 15)
        parts = self.split_graph(g, 4)
        assert_graphs_equal(merge_disjoint(parts), g, "merge-roundtrip")

    def test_order_invariance(self, genomic_batch):
        g = build_reference_graph(genomic_batch, 15)
        parts = self.split_graph(g, 3)
        assert_graphs_equal(merge_disjoint(parts[::-1]), g, "merge-reversed")

    def test_overlap_detected(self, genomic_batch):
        g = build_reference_graph(genomic_batch, 15)
        with pytest.raises(OverlapError):
            merge_disjoint([g, g])

    def test_empty_inputs_skipped(self, genomic_batch):
        g = build_reference_graph(genomic_batch, 15)
        merged = merge_disjoint([g, empty_graph(15)])
        assert_graphs_equal(merged, g, "merge-with-empty")

    def test_mixed_k_rejected(self, genomic_batch):
        g15 = build_reference_graph(genomic_batch, 15)
        g13 = build_reference_graph(genomic_batch, 13)
        with pytest.raises(ValueError):
            merge_disjoint([g15, g13])


class TestMergeAdding:
    def test_double_merge_doubles_counts(self, genomic_batch):
        g = build_reference_graph(genomic_batch, 15)
        doubled = merge_adding([g, g])
        assert doubled.n_vertices == g.n_vertices
        assert np.array_equal(doubled.counts, g.counts * 2)

    def test_split_batches_merge_to_whole(self, genomic_batch):
        # Building per piece and count-merging equals one-shot building:
        # within-read adjacency only, so splitting by reads is lossless.
        g = build_reference_graph(genomic_batch, 15)
        pieces = genomic_batch.split(3)
        parts = [build_reference_graph(p, 15) for p in pieces]
        assert_graphs_equal(merge_adding(parts), g, "piecewise")

    def test_empty(self):
        assert merge_adding([]).n_vertices == 0


class TestGraphFromPairsConsistency:
    def test_matches_reference(self, small_batch):
        v, s = edge_observations(small_batch.codes, 11)
        g = graph_from_pairs(11, v, s)
        ref = build_reference_graph(small_batch, 11)
        assert_graphs_equal(g, ref, "pairs-vs-ref")
