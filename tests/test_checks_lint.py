"""R1-R5 static lint rules: one fixture per rule, plus the real tree."""

from pathlib import Path

import pytest

from repro.checks.lint import LintIssue, lint_paths, lint_source

SRC = Path(__file__).resolve().parent.parent / "src"


def rules_of(issues: list[LintIssue]) -> set[str]:
    return {i.rule for i in issues}


class TestR1SharedArrayAccess:
    def test_unguarded_state_write_flagged(self):
        src = (
            "class T:\n"
            "    def insert_one_threadsafe(self, k, s):\n"
            "        self.state[0] = 2\n"
        )
        issues = lint_source(src, "table.py")
        assert rules_of(issues) == {"R1"}
        assert issues[0].line == 3

    def test_lock_guard_suppresses(self):
        src = (
            "class T:\n"
            "    def insert_one_threadsafe(self, k, s):\n"
            "        with self._count_locks[0]:\n"
            "            self.counts[0, s] += 1\n"
        )
        assert lint_source(src, "table.py") == []

    def test_cas_window_guard_suppresses(self):
        # The exclusive window after a won CAS is the protocol's
        # write-once key publication; it must not be flagged.
        src = (
            "class T:\n"
            "    def insert_one_threadsafe(self, k, s):\n"
            "        if self._atomic_state.compare_and_swap(0, 0, 1):\n"
            "            self.keys[0] = k\n"
        )
        assert lint_source(src, "table.py") == []

    def test_unthreaded_function_not_flagged(self):
        src = (
            "class T:\n"
            "    def insert_batch(self, kmers, slots):\n"
            "        self.state[0] = 2\n"
        )
        assert lint_source(src, "table.py") == []

    def test_reachability_through_self_calls(self):
        src = (
            "class T:\n"
            "    def insert_one_threadsafe(self, k, s):\n"
            "        self._inner(k, s)\n"
            "    def _inner(self, k, s):\n"
            "        self.keys[0] = k\n"
        )
        issues = lint_source(src, "table.py")
        assert rules_of(issues) == {"R1"}
        assert issues[0].line == 5

    def test_concurrentsub_module_all_threaded(self):
        src = (
            "class Q:\n"
            "    def anything(self):\n"
            "        self.state[0] = 1\n"
        )
        assert rules_of(lint_source(src, "repro/concurrentsub/q.py")) == {"R1"}
        assert lint_source(src, "repro/other/q.py") == []

    def test_sharded_layout_module_all_threaded(self):
        # The sharded table layout lives under repro/parallel, so every
        # function in it is threaded-reachable to the linter.
        src = (
            "class S:\n"
            "    def route(self):\n"
            "        self.state[0] = 1\n"
        )
        assert rules_of(
            lint_source(src, "repro/parallel/sharded.py")) == {"R1"}

    def test_pragma_suppression(self):
        src = (
            "class T:\n"
            "    def insert_one_threadsafe(self, k, s):\n"
            "        x = self.keys[0]"
            "  # checks: allow[R1] immutable after publication\n"
        )
        assert lint_source(src, "table.py") == []

    def test_pragma_is_rule_specific(self):
        # The wrong-rule pragma doesn't suppress R1 — and since it
        # suppresses nothing at all, R9 flags it as stale.
        src = (
            "class T:\n"
            "    def insert_one_threadsafe(self, k, s):\n"
            "        x = self.keys[0]  # checks: allow[R3] wrong rule\n"
        )
        assert rules_of(lint_source(src, "table.py")) == {"R1", "R9"}


class TestR2SharedAugAssign:
    def test_old_shared_stats_bug_is_flagged(self):
        # Verbatim shape of the bug this PR fixed: when no per-thread
        # stats object is passed, `stats` aliases the *shared*
        # self.stats and the += is a lost-update RMW.
        src = (
            "class T:\n"
            "    def insert_one_threadsafe(self, kmer, slot, local=None):\n"
            "        stats = local if local is not None else self.stats\n"
            "        stats.ops += 1\n"
        )
        issues = lint_source(src, "table.py")
        assert rules_of(issues) == {"R2"}
        assert issues[0].line == 4
        assert "aliases self.stats" in issues[0].message

    def test_direct_self_attr_rmw_flagged(self):
        src = (
            "class T:\n"
            "    def insert_one_threadsafe(self, k):\n"
            "        self.stats.ops += 1\n"
        )
        assert rules_of(lint_source(src, "table.py")) == {"R2"}

    def test_locked_rmw_clean(self):
        src = (
            "class T:\n"
            "    def insert_one_threadsafe(self, k):\n"
            "        with self._stats_lock:\n"
            "            self.stats.ops += 1\n"
        )
        assert lint_source(src, "table.py") == []

    def test_private_scratch_clean(self):
        # The fixed pattern: accumulate into a function-local scratch,
        # merge under the lock.
        src = (
            "class T:\n"
            "    def insert_one_threadsafe(self, k, local=None):\n"
            "        scratch = HashStats()\n"
            "        scratch.ops += 1\n"
        )
        assert lint_source(src, "table.py") == []


class TestR3RawEscapeHatch:
    def test_raw_flagged_everywhere(self):
        src = (
            "def setup(table):\n"
            "    table._atomic_state.raw()[:] = 0\n"
        )
        issues = lint_source(src, "anyfile.py")
        assert rules_of(issues) == {"R3"}

    def test_annotated_raw_allowed(self):
        src = (
            "def setup(table):\n"
            "    table._atomic_state.raw()[:] = 0"
            "  # checks: allow[R3] single-threaded init\n"
        )
        assert lint_source(src, "anyfile.py") == []


class TestR4BareLockCalls:
    def test_bare_acquire_release_flagged(self):
        src = (
            "def f(lock):\n"
            "    lock.acquire()\n"
            "    lock.release()\n"
        )
        issues = lint_source(src, "anyfile.py")
        assert [i.rule for i in issues] == ["R4", "R4"]

    def test_with_statement_clean(self):
        src = (
            "def f(lock):\n"
            "    with lock:\n"
            "        pass\n"
        )
        assert lint_source(src, "anyfile.py") == []

    def test_release_with_argument_is_not_a_lock(self):
        # The interleaving scheduler's gate API: release("gate-name").
        src = (
            "def f(sched):\n"
            "    sched.release('storm')\n"
        )
        assert lint_source(src, "anyfile.py") == []


class TestR5DtypePromotion:
    def test_uint64_plus_signed_flagged(self):
        src = (
            "import numpy as np\n"
            "def f():\n"
            "    keys = np.zeros(4, dtype=np.uint64)\n"
            "    offs = np.arange(4, dtype=np.int64)\n"
            "    return keys + offs\n"
        )
        issues = lint_source(src, "anyfile.py")
        assert rules_of(issues) == {"R5"}
        assert "float64" in issues[0].message

    def test_uint64_augassign_signed_flagged(self):
        src = (
            "import numpy as np\n"
            "def f():\n"
            "    keys = np.zeros(4, dtype=np.uint64)\n"
            "    keys += np.int64(3)\n"
            "    return keys\n"
        )
        assert rules_of(lint_source(src, "anyfile.py")) == {"R5"}

    def test_matching_unsigned_clean(self):
        src = (
            "import numpy as np\n"
            "def f():\n"
            "    keys = np.zeros(4, dtype=np.uint64)\n"
            "    offs = np.arange(4).astype(np.uint64)\n"
            "    return keys + offs\n"
        )
        assert lint_source(src, "anyfile.py") == []

    def test_astype_tracks_dtype(self):
        src = (
            "import numpy as np\n"
            "def f(raw):\n"
            "    keys = raw.astype(np.uint64)\n"
            "    step = np.asarray(raw, dtype=np.int32)\n"
            "    return keys * step\n"
        )
        assert rules_of(lint_source(src, "anyfile.py")) == {"R5"}


class TestR6SegmentLifecycle:
    def test_creator_without_unlink_flagged(self):
        src = (
            "def run():\n"
            "    seg = create_segment([('x', (4,), 'int8')])\n"
            "    seg['x'][:] = 1\n"
        )
        issues = lint_source(src, "backend.py")
        assert rules_of(issues) == {"R6"}
        assert issues[0].line == 2

    def test_try_finally_unlink_clean(self):
        src = (
            "def run():\n"
            "    seg = create_segment([('x', (4,), 'int8')])\n"
            "    try:\n"
            "        seg['x'][:] = 1\n"
            "    finally:\n"
            "        seg.unlink()\n"
        )
        assert lint_source(src, "backend.py") == []

    def test_with_statement_clean(self):
        src = (
            "def run():\n"
            "    with create_table_segment(64, 15) as seg:\n"
            "        seg['state'][:] = 0\n"
        )
        assert lint_source(src, "backend.py") == []

    def test_returned_segment_is_ownership_transfer(self):
        src = (
            "def make():\n"
            "    seg = create_segment([('x', (4,), 'int8')])\n"
            "    return seg\n"
        )
        assert lint_source(src, "backend.py") == []

    def test_gap_before_try_flagged(self):
        # The shape of the leak this PR fixed: the first create sits
        # *outside* the try/finally that unlinks, so a failure in the
        # second create orphans it.
        src = (
            "def run():\n"
            "    a = create_segment([('x', (4,), 'int8')])\n"
            "    b = create_segment([('y', (4,), 'int8')])\n"
            "    try:\n"
            "        pass\n"
            "    finally:\n"
            "        a.unlink()\n"
            "        b.unlink()\n"
        )
        issues = lint_source(src, "backend.py")
        assert [(i.rule, i.line) for i in issues] == [("R6", 2)]

    def test_attacher_unlink_flagged(self):
        src = (
            "def worker(spec):\n"
            "    seg = attach_segment(spec)\n"
            "    try:\n"
            "        pass\n"
            "    finally:\n"
            "        seg.unlink()\n"
        )
        issues = lint_source(src, "worker.py")
        assert "R6" in rules_of(issues)
        assert any("attach" in i.message or "unlink" in i.message
                   for i in issues)


class TestR7PickleHazard:
    def test_segment_handle_in_worker_args_flagged(self):
        src = (
            "def run(ctx):\n"
            "    seg = create_segment([('x', (4,), 'int8')])\n"
            "    try:\n"
            "        run_workers(work, 2, ctx=ctx, args=(seg,))\n"
            "    finally:\n"
            "        seg.unlink()\n"
        )
        assert rules_of(lint_source(src, "backend.py")) == {"R7"}

    def test_numpy_view_in_worker_args_flagged(self):
        src = (
            "def run(ctx):\n"
            "    seg = create_segment([('x', (4,), 'int8')])\n"
            "    try:\n"
            "        view = seg['x']\n"
            "        run_workers(work, 2, ctx=ctx, args=(view,))\n"
            "    finally:\n"
            "        seg.unlink()\n"
        )
        assert rules_of(lint_source(src, "backend.py")) == {"R7"}

    def test_spec_in_worker_args_clean(self):
        src = (
            "def run(ctx):\n"
            "    seg = create_segment([('x', (4,), 'int8')])\n"
            "    try:\n"
            "        run_workers(work, 2, ctx=ctx, args=(seg.spec,))\n"
            "    finally:\n"
            "        seg.unlink()\n"
        )
        assert lint_source(src, "backend.py") == []


class TestR8CounterDiscipline:
    def test_raw_counter_store_flagged(self):
        src = (
            "def hand_off(self):\n"
            "    self.srv.value = 5\n"
        )
        assert rules_of(lint_source(src, "queue.py")) == {"R8"}

    def test_fetch_increment_clean(self):
        src = (
            "def hand_off(self):\n"
            "    ticket = self.cns.fetch_increment()\n"
            "    self.srv.increment()\n"
            "    return ticket\n"
        )
        assert lint_source(src, "queue.py") == []

    def test_locked_store_clean(self):
        src = (
            "def reset(self):\n"
            "    with self._lock:\n"
            "        self.srv._value.value = 0\n"
        )
        assert lint_source(src, "queue.py") == []

    def test_unrelated_value_attr_clean(self):
        src = (
            "def set_flag(self):\n"
            "    self.mode.value = 3\n"
        )
        assert lint_source(src, "queue.py") == []

    def test_raw_shard_counter_store_flagged(self):
        # Shard-local counters follow the same discipline as the queue
        # cursors: raw .value stores bypass the fetch-increment.
        src = (
            "def spill(self):\n"
            "    self.shard_occ.value += 1\n"
        )
        assert rules_of(lint_source(src, "sharded.py")) == {"R8"}

    def test_indexed_shard_counter_store_flagged(self):
        src = (
            "def spill(self, i):\n"
            "    self.shards[i].value = 0\n"
        )
        assert rules_of(lint_source(src, "sharded.py")) == {"R8"}

    def test_locked_shard_counter_store_clean(self):
        src = (
            "def reset(self, i):\n"
            "    with self._shard_locks[i]:\n"
            "        self.shards[i]._value.value = 0\n"
        )
        assert lint_source(src, "sharded.py") == []


class TestR9StalePragma:
    def test_stale_pragma_flagged(self):
        src = (
            "def f():\n"
            "    x = 1  # checks: allow[R3] nothing here needs this\n"
            "    return x\n"
        )
        issues = lint_source(src, "anyfile.py")
        assert rules_of(issues) == {"R9"}
        assert issues[0].line == 2

    def test_used_pragma_not_flagged(self):
        src = (
            "def setup(table):\n"
            "    table._atomic_state.raw()[:] = 0"
            "  # checks: allow[R3] single-threaded init\n"
        )
        assert lint_source(src, "anyfile.py") == []

    def test_pragma_in_string_literal_ignored(self):
        # Only real comments are pragmas; documentation that *mentions*
        # the syntax must neither suppress nor count as stale.
        src = (
            "def f():\n"
            "    return 'use # checks: allow[R3] to annotate'\n"
        )
        assert lint_source(src, "anyfile.py") == []


class TestRealTree:
    def test_src_tree_lints_clean(self):
        # The acceptance bar for the fixed tree: every surviving
        # lock-free access is pragma-annotated with its safety argument.
        issues = lint_paths([SRC])
        assert issues == [], "\n".join(i.format() for i in issues)

    def test_syntax_error_propagates(self):
        with pytest.raises(SyntaxError):
            lint_source("def broken(:\n", "broken.py")
