"""Tests for the ``python -m repro`` entry point."""

import subprocess
import sys


def run_module(*args):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True, text=True, timeout=120,
    )


class TestMainModule:
    def test_help(self):
        result = run_module("--help")
        assert result.returncode == 0
        for command in ("simulate", "build", "stats", "unitigs", "count",
                        "hetsim", "validate", "partitions"):
            assert command in result.stdout

    def test_subcommand_help(self):
        result = run_module("build", "--help")
        assert result.returncode == 0
        assert "--partitions" in result.stdout

    def test_no_command_errors(self):
        result = run_module()
        assert result.returncode != 0

    def test_unknown_command_errors(self):
        result = run_module("frobnicate")
        assert result.returncode != 0

    def test_end_to_end_via_module(self, tmp_path):
        reads = tmp_path / "r.fastq"
        graph = tmp_path / "g.phdbg"
        assert run_module("simulate", "--genome-size", "2000",
                          "--coverage", "8", "--output", str(reads)
                          ).returncode == 0
        assert run_module("build", "--input", str(reads), "--k", "15",
                          "--p", "7", "--partitions", "4",
                          "--output", str(graph)).returncode == 0
        result = run_module("validate", "--graph", str(graph))
        assert result.returncode == 0
        assert "all invariants hold" in result.stdout
