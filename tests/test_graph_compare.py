"""Tests for repro.graph.compare and the strain mutation simulator."""

import numpy as np
import pytest

from repro.dna.simulate import mutate_genome, random_genome, simulate_reads
from repro.graph.build import build_reference_graph
from repro.graph.compare import (
    compare_graphs,
    multiplicity_correlation,
    variant_regions,
)

K = 21


@pytest.fixture(scope="module")
def strains():
    genome_a = random_genome(8_000, seed=51)
    genome_b = mutate_genome(genome_a, n_snps=10, seed=52)
    reads_a = simulate_reads(genome_a, 1_600, 80, mean_errors=0.5, seed=53)
    reads_b = simulate_reads(genome_b, 1_600, 80, mean_errors=0.5, seed=54)
    return (build_reference_graph(reads_a, K),
            build_reference_graph(reads_b, K))


class TestMutateGenome:
    def test_exact_snp_count(self):
        g = random_genome(1_000, seed=1)
        m = mutate_genome(g, 25, seed=2)
        assert int((g != m).sum()) == 25

    def test_zero_snps_identity(self):
        g = random_genome(500, seed=1)
        assert np.array_equal(mutate_genome(g, 0), g)

    def test_original_untouched(self):
        g = random_genome(500, seed=1)
        copy = g.copy()
        mutate_genome(g, 50, seed=3)
        assert np.array_equal(g, copy)

    def test_validation(self):
        g = random_genome(100, seed=1)
        with pytest.raises(ValueError):
            mutate_genome(g, 101)
        with pytest.raises(ValueError):
            mutate_genome(g, -1)

    def test_deterministic(self):
        g = random_genome(500, seed=1)
        assert np.array_equal(mutate_genome(g, 10, seed=7),
                              mutate_genome(g, 10, seed=7))


class TestCompareGraphs:
    def test_self_comparison(self, strains):
        a, _ = strains
        c = compare_graphs(a, a)
        assert c.n_only_a == 0 and c.n_only_b == 0
        assert c.n_shared == a.n_vertices
        assert c.jaccard == 1.0
        assert c.containment_a_in_b == 1.0

    def test_counts_partition_the_union(self, strains):
        a, b = strains
        c = compare_graphs(a, b)
        assert c.n_shared + c.n_only_a == a.n_vertices
        assert c.n_shared + c.n_only_b == b.n_vertices

    def test_strains_share_most_solid_content(self, strains):
        a, b = strains
        solid_a = a.filter_min_multiplicity(3)
        solid_b = b.filter_min_multiplicity(3)
        c = compare_graphs(solid_a, solid_b)
        assert c.jaccard > 0.9  # only 10 SNPs apart

    def test_k_mismatch(self, strains):
        a, _ = strains
        reads = simulate_reads(random_genome(500, seed=9), 100, 60, seed=10)
        other = build_reference_graph(reads, 15)
        with pytest.raises(ValueError):
            compare_graphs(a, other)

    def test_multiplicity_self_correlation(self, strains):
        a, _ = strains
        assert multiplicity_correlation(a, a) == pytest.approx(1.0)

    def test_multiplicity_correlation_tracks_copy_number(self):
        # Across independent samples, multiplicities correlate only via
        # copy number: repeats are deep in *both* samples.  A repetitive
        # genome therefore shows positive correlation where a uniform
        # one shows none.
        from repro.dna.simulate import repetitive_genome

        genome = repetitive_genome(6_000, repeat_fraction=0.4,
                                   repeat_length=300, seed=71)
        r1 = simulate_reads(genome, 1_500, 70, mean_errors=0.0, seed=72)
        r2 = simulate_reads(genome, 1_500, 70, mean_errors=0.0, seed=73)
        a = build_reference_graph(r1, K)
        b = build_reference_graph(r2, K)
        assert multiplicity_correlation(a, b) > 0.5

    def test_disjoint_graphs(self):
        r1 = simulate_reads(random_genome(600, seed=61), 150, 60,
                            mean_errors=0.0, seed=62)
        r2 = simulate_reads(random_genome(600, seed=63), 150, 60,
                            mean_errors=0.0, seed=64)
        a = build_reference_graph(r1, K)
        b = build_reference_graph(r2, K)
        c = compare_graphs(a, b)
        assert c.jaccard < 0.01  # unrelated random genomes


class TestVariantRegions:
    def test_snp_kmers_recovered(self, strains):
        a, b = strains
        solid_a, solid_b = variant_regions(a, b, min_multiplicity=3)
        # 10 SNPs x up to K kmers each, plus a little slack for genome
        # kmers that coverage sampling left unseen in the other strain.
        assert 3 * K < solid_a.size <= 10 * K + 4 * K
        assert 3 * K < solid_b.size <= 10 * K + 4 * K

    def test_identical_samples_have_no_variants(self, strains):
        a, _ = strains
        solid_a, solid_b = variant_regions(a, a)
        assert solid_a.size == 0 and solid_b.size == 0

    def test_filter_removes_error_privates(self, strains):
        a, b = strains
        raw = compare_graphs(a, b)
        solid_a, _ = variant_regions(a, b, min_multiplicity=3)
        assert solid_a.size < 0.2 * raw.n_only_a
