"""Calibration invariants the device models must keep.

The simulator's claim to validity is that its *ratios* match what the
paper reports about the testbed; these tests pin those ratios so a
future re-tuning cannot silently break a reproduced figure.
"""

import pytest

from repro.hetsim.device import HashWork, MspWork, default_cpu, default_gpu
from repro.hetsim.transfer import memory_cached_disk, spinning_disk


def hash_work(ops=10_000_000, table_bytes=6 << 20):
    return HashWork(n_kmers=ops // 3, ops=ops, probes=ops // 12,
                    inserts=ops // 6, table_bytes=table_bytes,
                    in_bytes=ops // 3, out_bytes=ops // 6)


def msp_work(n_bases=10_000_000):
    return MspWork(n_reads=n_bases // 100, n_bases=n_bases,
                   n_superkmers=n_bases // 35, in_bytes=int(2.2 * n_bases),
                   out_bytes=n_bases // 3)


class TestPaperRatios:
    def test_cpu20_hashing_comparable_to_one_gpu(self):
        # §V-C1: "the hashing performance on the 20-core CPU is
        # comparable to the performance on a Nvidia K40".
        w = hash_work()
        cpu_t = default_cpu().hash_seconds(w)
        gpu_t = default_gpu().hash_seconds(w)
        assert 0.5 <= cpu_t / gpu_t <= 2.5

    def test_gpu_transfer_visible_but_not_dominant(self):
        # Fig 8: transfer is a minor, constant component.
        w = hash_work()
        gpu = default_gpu()
        assert 0 < gpu.transfer_seconds(w) < gpu.hash_seconds(w)

    def test_cpu_msp_slower_than_hdd(self):
        # Fig 14 Step 1: the CPU's O(LKP) scan is the bottleneck even
        # against a spinning disk (compute-bound CPU-only regime).
        w = msp_work()
        cpu_seconds = default_cpu().msp_seconds(w)
        disk_seconds = spinning_disk().read_seconds(w.in_bytes)
        assert cpu_seconds > disk_seconds

    def test_gpu_msp_faster_than_hdd(self):
        # Fig 14 Step 1: with GPUs, IO dominates.
        w = msp_work()
        gpu_seconds = default_gpu().msp_seconds(w)
        disk_seconds = spinning_disk().read_seconds(w.in_bytes)
        assert gpu_seconds < disk_seconds

    def test_ramdisk_never_bottlenecks_compute(self):
        # Fig 13's Case 1 premise: memory-cached IO << compute.
        w = hash_work()
        io = memory_cached_disk().read_seconds(w.in_bytes)
        assert io < 0.1 * default_cpu().hash_seconds(w)

    def test_gpu_msp_advantage_is_small_factor(self):
        # Fig 11: per-step device throughputs are comparable, so
        # co-processing shares meaningfully (not 30x apart).
        w = msp_work()
        ratio = default_cpu().msp_seconds(w) / default_gpu().msp_seconds(w)
        assert 1.0 < ratio < 5.0

    def test_locality_effect_spans_fig7_range(self):
        # Fig 7: hashing slows measurably when tables outgrow the cache.
        cpu = default_cpu()
        small = cpu.hash_seconds(hash_work(table_bytes=1 << 20))
        large = cpu.hash_seconds(hash_work(table_bytes=256 << 20))
        assert 1.5 < large / small < 4.0

    def test_thread_scaling_near_linear(self):
        # Fig 9 at the device-model level.
        cpu = default_cpu()
        w = hash_work()
        t1 = cpu.hash_seconds_with_threads(w, 1)
        t20 = cpu.hash_seconds_with_threads(w, 20)
        assert t1 / t20 == pytest.approx(19.0, rel=0.15)
