"""Shared-memory lifecycle regression tests.

The ownership discipline (DESIGN.md): the process that *creates* a
segment owns it and must ``unlink()`` on every exit path — including
failure paths; attachers only ``close()``.  These tests assert the
system-level consequence: after a run that fails at any stage, no
named shared-memory segment survives in ``/dev/shm``.

The static side of the same discipline is lint rule R6
(:mod:`repro.checks.lint`); these tests pin the dynamic behavior the
rule is a proxy for.
"""

from __future__ import annotations

import gc
import multiprocessing as mp
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.core.config import ParaHashConfig
from repro.core.parahash import ParaHash
from repro.parallel import WorkerFailed
from repro.parallel import backend as backend_mod
from repro.parallel.backend import concurrent_insert_processes
from repro.parallel.shm import share_read_batch

CFG = ParaHashConfig(k=21, p=9, n_partitions=16, n_input_pieces=4)

needs_fork = pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(),
    reason="crash injection monkeypatches the worker module, needs fork",
)

needs_dev_shm = pytest.mark.skipif(
    not os.path.isdir("/dev/shm"),
    reason="leak check reads the named-segment directory",
)


def _segments() -> set[str]:
    """Named shared-memory blocks currently alive (semaphores excluded).

    POSIX semaphores (``sem.*``) share the directory and are reclaimed
    by GC of lock objects, not by segment unlink — they are not what
    these tests assert about.
    """
    gc.collect()
    return {
        name for name in os.listdir("/dev/shm")
        if not name.startswith("sem.")
    }


def _exploding_step2(job, sizing, preaggregate):
    raise RuntimeError(f"step2 exploded on partition {job.partition}")


@needs_dev_shm
@needs_fork
def test_failed_pipelined_run_leaves_no_segments(genomic_batch, monkeypatch):
    """Worker failure mid-pipeline: batch + table segments all unlinked."""
    monkeypatch.setattr(backend_mod, "_process_step2_job", _exploding_step2)
    before = _segments()
    with pytest.raises(WorkerFailed):
        ParaHash(
            CFG.with_(backend="processes", n_workers=2, pipeline=True)
        ).build_graph(genomic_batch)
    assert _segments() - before == set()


@needs_dev_shm
@needs_fork
def test_failed_barrier_run_leaves_no_segments(genomic_batch, monkeypatch):
    monkeypatch.setattr(backend_mod, "_process_step2_job", _exploding_step2)
    before = _segments()
    with pytest.raises(WorkerFailed):
        ParaHash(
            CFG.with_(backend="processes", n_workers=2, pipeline=False)
        ).build_graph(genomic_batch)
    assert _segments() - before == set()


@needs_dev_shm
def test_concurrent_insert_partial_construction_leaves_no_segments(
        monkeypatch):
    """The PR's fixed leak: a failure *between* the table-segment and
    lock-bundle creations must still unlink the already-created
    segments (previously they were created outside the try/finally)."""

    def broken_bundle(ctx, n_stripes):
        raise RuntimeError("lock bundle allocation failed")

    monkeypatch.setattr(backend_mod, "create_lock_bundle", broken_bundle)
    kmers = np.arange(8, dtype=np.uint64)
    slots = np.zeros(8, dtype=np.int64)
    before = _segments()
    with pytest.raises(RuntimeError, match="lock bundle"):
        concurrent_insert_processes(kmers, slots, k=15, capacity=32,
                                    n_workers=2)
    assert _segments() - before == set()


@needs_dev_shm
def test_share_read_batch_copy_failure_unlinks():
    """A copy that blows up mid-share must not orphan the segment."""

    class BadCodes:
        shape = (4, 4)  # sized like an array, unassignable as one

    class FakeBatch:
        codes = BadCodes()

    before = _segments()
    with pytest.raises(Exception):
        share_read_batch(FakeBatch())
    assert _segments() - before == set()


BIGK_CFG = ParaHashConfig(k=45, p=15, n_partitions=16, n_input_pieces=4)


@needs_dev_shm
@needs_fork
def test_failed_bigk_pipelined_run_leaves_no_segments(
        genomic_batch, monkeypatch):
    """Two-word (k > 31) segments obey the same ownership discipline:
    a worker failure mid-pipeline unlinks the batch segment and every
    two-word table segment (header/state/keys_hi/keys_lo/counts)."""
    monkeypatch.setattr(backend_mod, "_process_step2_job_2w",
                        _exploding_step2)
    before = _segments()
    with pytest.raises(WorkerFailed):
        ParaHash(
            BIGK_CFG.with_(backend="processes", n_workers=2, pipeline=True)
        ).build_graph(genomic_batch)
    assert _segments() - before == set()


@needs_dev_shm
@needs_fork
def test_failed_bigk_barrier_run_leaves_no_segments(
        genomic_batch, monkeypatch):
    monkeypatch.setattr(backend_mod, "_process_step2_job_2w",
                        _exploding_step2)
    before = _segments()
    with pytest.raises(WorkerFailed):
        ParaHash(
            BIGK_CFG.with_(backend="processes", n_workers=2, pipeline=False)
        ).build_graph(genomic_batch)
    assert _segments() - before == set()


@needs_dev_shm
def test_successful_bigk_run_leaves_no_segments(clean_batch):
    before = _segments()
    result = ParaHash(
        BIGK_CFG.with_(backend="processes", n_workers=2, pipeline=True)
    ).build_graph(clean_batch)
    assert result.graph.n_vertices > 0
    assert _segments() - before == set()


_SIGNAL_CHILD = """\
import sys, time
from repro.core.config import ParaHashConfig
from repro.core.parahash import ParaHash
from repro.dna.simulate import random_genome, simulate_reads
from repro.parallel import backend as backend_mod

marker = sys.argv[1]

def _parked_step2(job, sizing, preaggregate):
    open(marker, "w").write("started")
    time.sleep(120)
    raise RuntimeError("unreachable")

backend_mod._process_step2_job = _parked_step2
reads = simulate_reads(random_genome(3000, seed=11), n_reads=500,
                       read_length=80, mean_errors=1.0, seed=12)
cfg = ParaHashConfig(k=21, p=9, n_partitions=16, n_input_pieces=4)
ParaHash(cfg.with_(backend="processes", n_workers=2,
                   pipeline=True)).build_graph(reads)
"""


@needs_dev_shm
@needs_fork
@pytest.mark.parametrize("signo", [signal.SIGTERM, signal.SIGINT])
def test_signal_mid_run_leaves_no_segments(tmp_path, signo):
    """SIGTERM/SIGINT while workers hold shm: the parent's signal path
    must terminate the pool and unlink every owned segment before
    exiting — no operator Ctrl-C or service shutdown may leak."""
    marker = tmp_path / "step2_started"
    env = dict(os.environ,
               PYTHONPATH=str(Path(__file__).resolve().parents[1] / "src"))
    before = _segments()
    proc = subprocess.Popen(
        [sys.executable, "-c", _SIGNAL_CHILD, str(marker)],
        env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
    )
    try:
        deadline = time.monotonic() + 120.0
        while not marker.exists():
            if proc.poll() is not None:
                pytest.fail(f"child exited early ({proc.returncode})")
            if time.monotonic() > deadline:
                pytest.fail("step2 never started")
            time.sleep(0.02)
        os.kill(proc.pid, signo)
        proc.wait(timeout=60.0)
    finally:
        if proc.poll() is None:  # pragma: no cover - cleanup on fail
            proc.kill()
            proc.wait()
    assert proc.returncode != 0
    assert _segments() - before == set()


@needs_dev_shm
def test_successful_run_leaves_no_segments(clean_batch):
    before = _segments()
    result = ParaHash(
        CFG.with_(backend="processes", n_workers=2, pipeline=True)
    ).build_graph(clean_batch)
    assert result.graph.n_vertices > 0
    assert _segments() - before == set()
