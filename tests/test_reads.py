"""Tests for repro.dna.reads (ReadBatch)."""

import numpy as np
import pytest

from repro.dna.reads import ReadBatch, concat_batches


class TestConstruction:
    def test_from_strs(self):
        batch = ReadBatch.from_strs(["ACGT", "TTTT"])
        assert batch.n_reads == 2
        assert batch.read_length == 4
        assert batch.read_str(0) == "ACGT"

    def test_from_strs_unequal_lengths(self):
        with pytest.raises(ValueError):
            ReadBatch.from_strs(["ACGT", "ACG"])

    def test_from_strs_empty(self):
        batch = ReadBatch.from_strs([])
        assert batch.n_reads == 0

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            ReadBatch(codes=np.zeros(10, dtype=np.uint8))

    def test_rejects_bad_codes(self):
        with pytest.raises(ValueError):
            ReadBatch(codes=np.full((2, 3), 9, dtype=np.uint8))

    def test_total_bases(self):
        batch = ReadBatch(codes=np.zeros((7, 11), dtype=np.uint8))
        assert batch.total_bases == 77


class TestKmerCount:
    def test_formula(self):
        # §II-A: N reads of length L produce N(L-K+1) kmers.
        batch = ReadBatch(codes=np.zeros((37, 101), dtype=np.uint8))
        assert batch.n_kmers(27) == 37 * 75

    def test_k_too_large(self):
        batch = ReadBatch(codes=np.zeros((2, 10), dtype=np.uint8))
        with pytest.raises(ValueError):
            batch.n_kmers(11)


class TestSplit:
    def test_even_split(self):
        batch = ReadBatch(codes=np.arange(40, dtype=np.uint8).reshape(10, 4) % 4)
        parts = batch.split(5)
        assert len(parts) == 5
        assert all(p.n_reads == 2 for p in parts)

    def test_uneven_split_covers_all(self):
        batch = ReadBatch(codes=np.zeros((10, 4), dtype=np.uint8))
        parts = batch.split(3)
        assert sum(p.n_reads for p in parts) == 10

    def test_more_parts_than_reads(self):
        batch = ReadBatch(codes=np.zeros((2, 4), dtype=np.uint8))
        parts = batch.split(10)
        assert len(parts) == 2

    def test_split_preserves_content(self, rng):
        codes = rng.integers(0, 4, size=(13, 6), dtype=np.uint8)
        batch = ReadBatch(codes=codes)
        rebuilt = concat_batches(batch.split(4))
        assert np.array_equal(rebuilt.codes, codes)

    def test_invalid_n(self):
        batch = ReadBatch(codes=np.zeros((2, 4), dtype=np.uint8))
        with pytest.raises(ValueError):
            batch.split(0)


class TestConcat:
    def test_mismatched_lengths(self):
        a = ReadBatch(codes=np.zeros((2, 4), dtype=np.uint8))
        b = ReadBatch(codes=np.zeros((2, 5), dtype=np.uint8))
        with pytest.raises(ValueError):
            concat_batches([a, b])

    def test_skips_empty(self):
        a = ReadBatch(codes=np.zeros((2, 4), dtype=np.uint8))
        b = ReadBatch(codes=np.zeros((0, 0), dtype=np.uint8))
        assert concat_batches([a, b]).n_reads == 2

    def test_iter_strs(self):
        batch = ReadBatch.from_strs(["ACGT", "GGGG"])
        assert list(batch.iter_strs()) == ["ACGT", "GGGG"]
