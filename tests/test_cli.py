"""Tests for the command-line interface (repro.cli)."""

import pytest

from repro.cli import main
from repro.dna.io import load_read_batch, read_fasta
from repro.graph.serialize import load_graph


@pytest.fixture
def reads_file(tmp_path):
    path = tmp_path / "reads.fastq"
    rc = main([
        "simulate", "--genome-size", "3000", "--coverage", "12",
        "--errors", "0.5", "--seed", "9", "--output", str(path),
    ])
    assert rc == 0
    return path


class TestSimulate:
    def test_writes_fastq(self, reads_file):
        batch = load_read_batch(reads_file)
        assert batch.n_reads == 360  # 3000 * 12 / 100
        assert batch.read_length == 100

    def test_writes_fasta_by_extension(self, tmp_path):
        path = tmp_path / "reads.fasta"
        main(["simulate", "--genome-size", "2000", "--coverage", "5",
              "--output", str(path)])
        assert path.read_text().startswith(">")

    def test_genome_out(self, tmp_path):
        reads = tmp_path / "r.fastq"
        genome = tmp_path / "g.fasta"
        main(["simulate", "--genome-size", "1500", "--coverage", "5",
              "--output", str(reads), "--genome-out", str(genome)])
        records = read_fasta(genome)
        assert len(records) == 1
        assert len(records[0].sequence) == 1500

    def test_profile(self, tmp_path):
        path = tmp_path / "toy.fastq"
        main(["simulate", "--profile", "toy", "--output", str(path)])
        batch = load_read_batch(path)
        assert batch.read_length == 80

    def test_deterministic(self, tmp_path):
        a, b = tmp_path / "a.fastq", tmp_path / "b.fastq"
        args = ["simulate", "--genome-size", "2000", "--coverage", "8",
                "--seed", "5"]
        main(args + ["--output", str(a)])
        main(args + ["--output", str(b)])
        assert a.read_text() == b.read_text()


class TestBuild:
    def test_builds_exact_graph(self, reads_file, tmp_path):
        out = tmp_path / "g.phdbg"
        rc = main(["build", "--input", str(reads_file), "--k", "21",
                   "--p", "9", "--partitions", "8", "--output", str(out)])
        assert rc == 0
        graph = load_graph(out)
        from repro.graph.build import build_reference_graph
        from repro.graph.validate import assert_graphs_equal

        reads = load_read_batch(reads_file)
        assert_graphs_equal(graph, build_reference_graph(reads, 21), "cli")

    def test_min_multiplicity_filter(self, reads_file, tmp_path):
        full = tmp_path / "full.phdbg"
        filtered = tmp_path / "filtered.phdbg"
        base = ["build", "--input", str(reads_file), "--k", "21", "--p", "9",
                "--partitions", "4"]
        main(base + ["--output", str(full)])
        main(base + ["--output", str(filtered), "--min-multiplicity", "2"])
        assert load_graph(filtered).n_vertices < load_graph(full).n_vertices

    def test_tsv_export(self, reads_file, tmp_path):
        out = tmp_path / "g.phdbg"
        tsv = tmp_path / "g.tsv"
        main(["build", "--input", str(reads_file), "--k", "21", "--p", "9",
              "--partitions", "4", "--output", str(out), "--tsv", str(tsv)])
        assert tsv.read_text().startswith("# k=21")

    def test_workdir_run(self, reads_file, tmp_path):
        out = tmp_path / "g.phdbg"
        workdir = tmp_path / "parts"
        main(["build", "--input", str(reads_file), "--k", "21", "--p", "9",
              "--partitions", "4", "--output", str(out),
              "--workdir", str(workdir)])
        assert list(workdir.glob("partition_*.phsk"))
        assert load_graph(out).n_vertices > 0


class TestStatsAndUnitigs:
    def test_stats_runs(self, reads_file, tmp_path, capsys):
        out = tmp_path / "g.phdbg"
        main(["build", "--input", str(reads_file), "--k", "21", "--p", "9",
              "--partitions", "4", "--output", str(out)])
        rc = main(["stats", "--graph", str(out), "--reads", "360",
                   "--read-length", "100"])
        assert rc == 0
        captured = capsys.readouterr().out
        assert "n_vertices" in captured
        assert "estimated error rate" in captured

    def test_unitigs_fasta(self, reads_file, tmp_path):
        out = tmp_path / "g.phdbg"
        uni = tmp_path / "u.fasta"
        main(["build", "--input", str(reads_file), "--k", "21", "--p", "9",
              "--partitions", "4", "--output", str(out)])
        rc = main(["unitigs", "--graph", str(out), "--output", str(uni)])
        assert rc == 0
        records = read_fasta(uni)
        assert records
        assert all(len(r.sequence) >= 21 for r in records)
        # Sorted longest-first.
        lengths = [len(r.sequence) for r in records]
        assert lengths == sorted(lengths, reverse=True)


class TestHetsim:
    def test_hetsim_report(self, reads_file, capsys):
        rc = main(["hetsim", "--input", str(reads_file), "--k", "21",
                   "--p", "9", "--partitions", "8", "--gpus", "1",
                   "--disk", "hdd"])
        assert rc == 0
        captured = capsys.readouterr().out
        assert "workload distribution" in captured
        assert "total simulated time" in captured

    def test_gpu_only(self, reads_file, capsys):
        rc = main(["hetsim", "--input", str(reads_file), "--k", "21",
                   "--p", "9", "--partitions", "8", "--gpus", "2",
                   "--no-cpu"])
        assert rc == 0
        captured = capsys.readouterr().out
        assert "cpu" not in captured.split("workload distribution")[1].splitlines()[3]


class TestCount:
    def test_count_spectrum(self, reads_file, capsys):
        rc = main(["count", "--input", str(reads_file), "--k", "21",
                   "--min-count", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "distinct kmers" in out
        assert "abundance histogram" in out
        assert "#" in out

    def test_count_matches_build(self, reads_file, tmp_path, capsys):
        main(["count", "--input", str(reads_file), "--k", "21"])
        count_out = capsys.readouterr().out
        distinct = int(count_out.split(" distinct")[0].replace(",", ""))
        out = tmp_path / "g.phdbg"
        main(["build", "--input", str(reads_file), "--k", "21", "--p", "9",
              "--partitions", "4", "--output", str(out)])
        assert load_graph(out).n_vertices == distinct


class TestGantt:
    def test_gantt_flag(self, reads_file, capsys):
        rc = main(["hetsim", "--input", str(reads_file), "--k", "21",
                   "--p", "9", "--partitions", "8", "--gpus", "1", "--gantt"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "hashing schedule" in out
        assert "writer" in out


class TestValidateAndPartitions:
    def test_validate_good_graph(self, reads_file, tmp_path, capsys):
        out = tmp_path / "g.phdbg"
        main(["build", "--input", str(reads_file), "--k", "21", "--p", "9",
              "--partitions", "4", "--output", str(out)])
        rc = main(["validate", "--graph", str(out), "--full"])
        assert rc == 0
        assert "all invariants hold" in capsys.readouterr().out

    def test_validate_detects_corruption(self, reads_file, tmp_path, capsys):
        import numpy as np

        from repro.graph.serialize import load_graph as lg
        from repro.graph.serialize import save_graph

        out = tmp_path / "g.phdbg"
        main(["build", "--input", str(reads_file), "--k", "21", "--p", "9",
              "--partitions", "4", "--output", str(out)])
        graph = lg(out)
        # Break edge symmetry by inflating one out-edge counter.
        rows = np.nonzero(graph.counts[:, 0] > 0)[0]
        graph.counts[rows[0], 0] += 1
        save_graph(out, graph)
        rc = main(["validate", "--graph", str(out), "--full"])
        assert rc == 1
        assert "FAIL" in capsys.readouterr().out

    def test_partitions_summary(self, reads_file, tmp_path, capsys):
        out = tmp_path / "g.phdbg"
        workdir = tmp_path / "parts"
        main(["build", "--input", str(reads_file), "--k", "21", "--p", "9",
              "--partitions", "4", "--output", str(out),
              "--workdir", str(workdir)])
        rc = main(["partitions", "--dir", str(workdir), "--deep"])
        assert rc == 0
        captured = capsys.readouterr().out
        assert "4 partitions" in captured
        assert "balance CV" in captured
        assert "partition_0000.phsk" in captured


class TestBigKCli:
    def test_build_large_k(self, reads_file, tmp_path, capsys):
        out = tmp_path / "g41.phdbg"
        rc = main(["build", "--input", str(reads_file), "--k", "41",
                   "--p", "15", "--partitions", "4", "--output", str(out)])
        assert rc == 0
        assert "two-word keys" in capsys.readouterr().out
        # stats detects the two-word format.
        rc = main(["stats", "--graph", str(out)])
        assert rc == 0
        assert "two-word keys" in capsys.readouterr().out

    def test_bigk_roundtrip_exact(self, reads_file, tmp_path):
        from repro.bigk import build_debruijn_graph_bigk, load_big_graph

        out = tmp_path / "g41.phdbg"
        main(["build", "--input", str(reads_file), "--k", "41",
              "--p", "15", "--partitions", "4", "--output", str(out)])
        reads = load_read_batch(reads_file)
        expected = build_debruijn_graph_bigk(reads, 41, p=15, n_partitions=4)
        assert load_big_graph(out).equals(expected)

    def test_unsupported_flags_rejected(self, reads_file, tmp_path):
        out = tmp_path / "g.phdbg"
        rc = main(["build", "--input", str(reads_file), "--k", "41",
                   "--p", "15", "--partitions", "4", "--output", str(out),
                   "--min-multiplicity", "2"])
        assert rc == 2
        rc = main(["build", "--input", str(reads_file), "--k", "41",
                   "--p", "15", "--partitions", "4", "--output", str(out),
                   "--tsv", str(tmp_path / "g.tsv")])
        assert rc == 2

    def test_processes_backend_builds_large_k(self, reads_file, tmp_path):
        from repro.bigk import load_big_graph

        serial_out = tmp_path / "serial.phdbg"
        proc_out = tmp_path / "proc.phdbg"
        rc = main(["build", "--input", str(reads_file), "--k", "41",
                   "--p", "15", "--partitions", "4",
                   "--backend", "serial", "--output", str(serial_out)])
        assert rc == 0
        rc = main(["build", "--input", str(reads_file), "--k", "41",
                   "--p", "15", "--partitions", "4",
                   "--backend", "processes", "--workers", "2", "--pipeline",
                   "--output", str(proc_out)])
        assert rc == 0
        assert load_big_graph(proc_out).equals(load_big_graph(serial_out))

    def test_bigk_preaggregate_flag_threaded_through(
        self, reads_file, tmp_path, monkeypatch
    ):
        # Regression: the big-k serial path used to drop --preaggregate
        # entirely.  Count calls into the 2w pre-aggregation kernel.
        import repro.bigk.construct as construct_mod

        calls = {"n": 0}
        real = construct_mod.preaggregate_observations_2w

        def counting(*args, **kwargs):
            calls["n"] += 1
            return real(*args, **kwargs)

        monkeypatch.setattr(construct_mod,
                            "preaggregate_observations_2w", counting)
        base = ["build", "--input", str(reads_file), "--k", "41",
                "--p", "15", "--partitions", "4"]
        rc = main(base + ["--output", str(tmp_path / "a.phdbg")])
        assert rc == 0
        assert calls["n"] > 0
        calls["n"] = 0
        rc = main(base + ["--no-preaggregate",
                          "--output", str(tmp_path / "b.phdbg")])
        assert rc == 0
        assert calls["n"] == 0
        # Flag or not, the graph is identical.
        from repro.bigk import load_big_graph

        assert load_big_graph(tmp_path / "a.phdbg").equals(
            load_big_graph(tmp_path / "b.phdbg")
        )

    def test_threads_backend_builds_large_k(self, reads_file, tmp_path):
        from repro.bigk import load_big_graph

        serial_out = tmp_path / "serial.phdbg"
        threads_out = tmp_path / "threads.phdbg"
        rc = main(["build", "--input", str(reads_file), "--k", "41",
                   "--p", "15", "--partitions", "4",
                   "--backend", "serial", "--output", str(serial_out)])
        assert rc == 0
        rc = main(["build", "--input", str(reads_file), "--k", "41",
                   "--p", "15", "--partitions", "4",
                   "--backend", "threads", "--workers", "2",
                   "--output", str(threads_out)])
        assert rc == 0
        assert load_big_graph(threads_out).equals(load_big_graph(serial_out))


class TestParser:
    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_missing_required(self):
        with pytest.raises(SystemExit):
            main(["build", "--k", "21"])
