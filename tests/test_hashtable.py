"""Tests for repro.core.hashtable (serial/vectorized path)."""

import numpy as np
import pytest

from repro.core.hashtable import (
    EMPTY,
    OCCUPIED,
    ConcurrentHashTable,
    HashStats,
    TableFullError,
)
from repro.graph.dbg import MULT_SLOT


def random_observations(rng, n_distinct=200, n_obs=2000, k=15):
    keys = rng.integers(0, 1 << (2 * k), size=n_distinct, dtype=np.uint64)
    keys = np.unique(keys)
    idx = rng.integers(0, keys.size, size=n_obs)
    kmers = keys[idx]
    slots = rng.integers(0, 9, size=n_obs).astype(np.int64)
    return kmers, slots


class TestInsertBatch:
    def test_counts_match_bincount(self, rng):
        kmers, slots = random_observations(rng)
        table = ConcurrentHashTable(4096, k=15)
        table.insert_batch(kmers, slots)
        for kmer in np.unique(kmers)[:50]:
            row = table.lookup(int(kmer))
            assert row is not None
            for slot in range(9):
                expected = int(((kmers == kmer) & (slots == slot)).sum())
                assert int(row[slot]) == expected

    def test_n_occupied(self, rng):
        kmers, slots = random_observations(rng)
        table = ConcurrentHashTable(4096, k=15)
        table.insert_batch(kmers, slots)
        assert table.n_occupied == np.unique(kmers).size

    def test_chunked_equals_single(self, rng):
        kmers, slots = random_observations(rng, n_obs=5000)
        t1 = ConcurrentHashTable(4096, k=15)
        t1.insert_batch(kmers, slots)
        t2 = ConcurrentHashTable(4096, k=15)
        t2.insert_batch(kmers, slots, chunk=137)
        assert t1.to_graph().equals(t2.to_graph())

    def test_order_invariance(self, rng):
        kmers, slots = random_observations(rng)
        perm = rng.permutation(kmers.size)
        t1 = ConcurrentHashTable(2048, k=15)
        t1.insert_batch(kmers, slots)
        t2 = ConcurrentHashTable(2048, k=15)
        t2.insert_batch(kmers[perm], slots[perm])
        assert t1.to_graph().equals(t2.to_graph())

    def test_high_load_factor_still_correct(self, rng):
        kmers = np.unique(rng.integers(0, 1 << 30, size=900, dtype=np.uint64))
        slots = np.full(kmers.size, MULT_SLOT, dtype=np.int64)
        table = ConcurrentHashTable(1024, k=15)
        table.insert_batch(kmers, slots)
        assert table.n_occupied == kmers.size
        assert table.load_factor > 0.8
        g = table.to_graph()
        assert np.array_equal(g.vertices, np.sort(kmers))

    def test_table_full_raises(self, rng):
        kmers = np.unique(rng.integers(0, 1 << 30, size=5000, dtype=np.uint64))
        slots = np.zeros(kmers.size, dtype=np.int64)
        table = ConcurrentHashTable(64, k=15)
        with pytest.raises(TableFullError):
            table.insert_batch(kmers, slots)

    def test_mismatched_arrays(self):
        table = ConcurrentHashTable(64, k=15)
        with pytest.raises(ValueError):
            table.insert_batch(np.zeros(3, dtype=np.uint64), np.zeros(2, dtype=np.int64))

    def test_empty_batch(self):
        table = ConcurrentHashTable(64, k=15)
        table.insert_batch(np.zeros(0, dtype=np.uint64), np.zeros(0, dtype=np.int64))
        assert table.n_occupied == 0


class TestStats:
    def test_ops_and_inserts(self, rng):
        kmers, slots = random_observations(rng, n_distinct=100, n_obs=1500)
        table = ConcurrentHashTable(1024, k=15)
        table.insert_batch(kmers, slots)
        assert table.stats.ops == 1500
        assert table.stats.inserts == np.unique(kmers).size
        assert table.stats.updates == 1500 - np.unique(kmers).size
        assert table.stats.count_increments == 1500

    def test_key_locks_once_per_distinct(self, rng):
        # The state-transfer claim: the multi-word key is locked exactly
        # once per distinct vertex.
        kmers, slots = random_observations(rng, n_distinct=50, n_obs=5000)
        table = ConcurrentHashTable(512, k=15)
        table.insert_batch(kmers, slots)
        assert table.stats.key_locks == np.unique(kmers).size

    def test_lock_reduction_matches_duplicate_ratio(self, rng):
        # With distinct : total = 1 : 5, locks drop by 80% (§III-C).
        distinct = np.unique(rng.integers(0, 1 << 40, size=300, dtype=np.uint64))
        n_total = distinct.size * 5
        kmers = np.repeat(distinct, 5)
        slots = np.full(n_total, MULT_SLOT, dtype=np.int64)
        table = ConcurrentHashTable(4096, k=27)
        table.insert_batch(kmers, slots)
        assert table.stats.lock_reduction == pytest.approx(0.8)
        assert table.stats.naive_locks == n_total

    def test_merged_with(self):
        a = HashStats(ops=10, inserts=2, updates=8, probes=1, key_locks=2,
                      blocked_reads=0, cas_failures=0, count_increments=10)
        b = HashStats(ops=5, inserts=1, updates=4, probes=0, key_locks=1,
                      blocked_reads=2, cas_failures=1, count_increments=5)
        m = a.merged_with(b)
        assert m.ops == 15 and m.inserts == 3 and m.blocked_reads == 2

    def test_empty_stats_lock_reduction(self):
        assert HashStats().lock_reduction == 0.0


class TestLookupAndExtraction:
    def test_lookup_missing(self, rng):
        kmers, slots = random_observations(rng)
        table = ConcurrentHashTable(2048, k=15)
        table.insert_batch(kmers, slots)
        absent = int(np.setdiff1d(
            np.arange(100, dtype=np.uint64), np.unique(kmers)
        )[0])
        assert table.lookup(absent) is None

    def test_to_graph_sorted(self, rng):
        kmers, slots = random_observations(rng)
        table = ConcurrentHashTable(2048, k=15)
        table.insert_batch(kmers, slots)
        g = table.to_graph()
        assert np.array_equal(g.vertices, np.sort(np.unique(kmers)))
        assert g.total_kmer_instances() == int((slots == MULT_SLOT).sum())

    def test_multiplicity_histogram(self, rng):
        distinct = np.unique(rng.integers(0, 1 << 40, size=64, dtype=np.uint64))
        kmers = np.concatenate([distinct, distinct[:10]])
        slots = np.full(kmers.size, MULT_SLOT, dtype=np.int64)
        table = ConcurrentHashTable(256, k=27)
        table.insert_batch(kmers, slots)
        hist = table.multiplicity_histogram(max_mult=4)
        assert hist[1] == distinct.size - 10
        assert hist[2] == 10

    def test_state_flags(self, rng):
        kmers, slots = random_observations(rng, n_distinct=20, n_obs=100)
        table = ConcurrentHashTable(256, k=15)
        table.insert_batch(kmers, slots)
        assert int((table.state == OCCUPIED).sum()) == table.n_occupied
        assert int((table.state == EMPTY).sum()) == table.capacity - table.n_occupied


class TestConstruction:
    def test_capacity_rounded_to_pow2(self):
        table = ConcurrentHashTable(1000, k=15)
        assert table.capacity == 1024

    def test_rejects_large_k(self):
        with pytest.raises(ValueError):
            ConcurrentHashTable(64, k=33)

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            ConcurrentHashTable(64, k=0)

    def test_memory_bytes(self):
        table = ConcurrentHashTable(256, k=15)
        assert table.memory_bytes() == 256 * (1 + 8 + 4 * 9)
