"""Tests for repro.hetsim.workloads (measured-work extraction, full sim)."""

import pytest

from repro.core.config import ParaHashConfig
from repro.graph.build import build_reference_graph
from repro.graph.validate import assert_graphs_equal
from repro.hetsim.transfer import DiskModel, memory_cached_disk, spinning_disk
from repro.hetsim.workloads import (
    device_set,
    fastq_bytes,
    measure_step1,
    measure_step2,
    measure_workloads,
    simulate_parahash,
)


@pytest.fixture
def cfg():
    return ParaHashConfig(k=15, p=7, n_partitions=8, n_input_pieces=3)


class TestMeasureStep1:
    def test_one_work_per_piece(self, genomic_batch, cfg):
        wl = measure_step1(genomic_batch, cfg)
        assert len(wl.works) == cfg.n_input_pieces
        assert sum(w.n_reads for w in wl.works) == genomic_batch.n_reads
        assert sum(w.n_bases for w in wl.works) == genomic_batch.total_bases

    def test_blocks_cover_all_kmers(self, genomic_batch, cfg):
        wl = measure_step1(genomic_batch, cfg)
        assert len(wl.blocks) == cfg.n_partitions
        assert sum(b.total_kmers() for b in wl.blocks) == genomic_batch.n_kmers(cfg.k)

    def test_out_bytes_are_encoded_sizes(self, genomic_batch, cfg):
        wl = measure_step1(genomic_batch, cfg)
        total_out = sum(w.out_bytes for w in wl.works)
        total_block = sum(b.byte_size_encoded() for b in wl.blocks)
        assert total_out == total_block


class TestMeasureStep2:
    def test_graphs_union_to_reference(self, genomic_batch, cfg):
        from repro.graph.merge import merge_disjoint

        wl1 = measure_step1(genomic_batch, cfg)
        wl2 = measure_step2(wl1.blocks, cfg)
        merged = merge_disjoint([r.graph for r in wl2.results])
        ref = build_reference_graph(genomic_batch, cfg.k)
        assert_graphs_equal(merged, ref, "measured-step2")

    def test_work_matches_stats(self, genomic_batch, cfg):
        wl1 = measure_step1(genomic_batch, cfg)
        wl2 = measure_step2(wl1.blocks, cfg)
        for work, result in zip(wl2.works, wl2.results):
            assert work.ops == result.stats.ops
            assert work.inserts == result.stats.inserts
            assert work.table_bytes == result.table_bytes


class TestSimulateParaHash:
    def test_graph_is_exact(self, genomic_batch, cfg):
        report = simulate_parahash(genomic_batch, cfg, use_cpu=True, n_gpus=1)
        ref = build_reference_graph(genomic_batch, cfg.k)
        assert_graphs_equal(report.graph, ref, "hetsim-graph")

    def test_more_devices_never_slower(self, genomic_batch, cfg):
        wl = measure_workloads(genomic_batch, cfg)
        configs = [(True, 0), (True, 1), (True, 2)]
        times = [
            simulate_parahash(genomic_batch, cfg, use_cpu=u, n_gpus=g,
                              precomputed=wl).total_seconds
            for u, g in configs
        ]
        assert times[0] >= times[1] >= times[2]

    def test_workload_distribution_tracks_speed(self, genomic_batch, cfg):
        # Fig 11: the claimed share approximates the speed share.
        from repro.hetsim.model import ideal_workload_shares

        wl = measure_workloads(genomic_batch, cfg)
        cpu_only = simulate_parahash(genomic_batch, cfg, use_cpu=True,
                                     n_gpus=0, precomputed=wl)
        gpu_only = simulate_parahash(genomic_batch, cfg, use_cpu=False,
                                     n_gpus=1, precomputed=wl)
        both = simulate_parahash(genomic_batch, cfg, use_cpu=True,
                                 n_gpus=1, precomputed=wl)
        ideal = ideal_workload_shares(
            cpu_only.step2.elapsed_seconds, gpu_only.step2.elapsed_seconds, 1
        )
        real = both.step2.workload_shares()
        assert real["cpu"] == pytest.approx(ideal["cpu"], abs=0.2)

    def test_disk_choice_matters(self, genomic_batch, cfg):
        wl = measure_workloads(genomic_batch, cfg)
        fast = simulate_parahash(genomic_batch, cfg, n_gpus=1, use_cpu=True,
                                 disk=memory_cached_disk(), precomputed=wl)
        slow_disk = DiskModel(name="very-slow", read_bytes_per_sec=1e6,
                              write_bytes_per_sec=1e6)
        slow = simulate_parahash(genomic_batch, cfg, n_gpus=1, use_cpu=True,
                                 disk=slow_disk, precomputed=wl)
        assert slow.total_seconds > fast.total_seconds

    def test_fastq_bytes(self):
        assert fastq_bytes(10, 100) == 10 * 214

    def test_device_set(self):
        assert [d.name for d in device_set(True, 2)] == ["cpu", "gpu0", "gpu1"]
        with pytest.raises(ValueError):
            device_set(False, 0)

    def test_report_fields(self, genomic_batch, cfg):
        report = simulate_parahash(genomic_batch, cfg, use_cpu=True, n_gpus=2,
                                   disk=spinning_disk())
        assert report.devices == ["cpu", "gpu0", "gpu1"]
        assert report.disk == "hdd"
        assert report.total_seconds == (report.step1.elapsed_seconds +
                                        report.step2.elapsed_seconds)
