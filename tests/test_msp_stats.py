"""Tests for repro.msp.stats (partition distributions, Fig 6 / Table II)."""

import numpy as np

from repro.msp.partitioner import partition_reads
from repro.msp.stats import (
    distribution_of,
    sweep_minimizer_length,
    sweep_n_partitions,
)


class TestDistribution:
    def test_totals(self, genomic_batch):
        res = partition_reads(genomic_batch, k=15, p=7, n_partitions=8)
        dist = distribution_of(res)
        assert dist.total_kmers == genomic_batch.n_kmers(15)
        assert dist.total_superkmers == sum(b.n_superkmers for b in res.blocks)
        assert dist.kmers.sum() == dist.total_kmers

    def test_mean_superkmer_length(self, genomic_batch):
        res = partition_reads(genomic_batch, k=15, p=7, n_partitions=4)
        dist = distribution_of(res)
        total_bases = sum(b.total_bases() for b in res.blocks)
        assert np.isclose(dist.mean_superkmer_length, total_bases / dist.total_superkmers)

    def test_balance_metrics(self, genomic_batch):
        res = partition_reads(genomic_batch, k=15, p=11, n_partitions=8)
        dist = distribution_of(res)
        assert dist.kmer_variance >= 0
        assert dist.kmer_cv >= 0
        assert dist.max_kmers >= dist.kmers.mean()


class TestFig6Shape:
    def test_superkmer_count_increases_with_p(self, genomic_batch):
        # Fig 6: "the total number of superkmers increases when P increases".
        dists = sweep_minimizer_length(genomic_batch, k=15,
                                       p_values=[5, 7, 9, 11, 13], n_partitions=8)
        counts = [d.total_superkmers for d in dists]
        assert counts == sorted(counts)
        assert counts[-1] > counts[0]

    def test_mean_superkmer_length_decreases_with_p(self, genomic_batch):
        dists = sweep_minimizer_length(genomic_batch, k=15,
                                       p_values=[5, 9, 13], n_partitions=8)
        lengths = [d.mean_superkmer_length for d in dists]
        assert lengths[0] > lengths[-1]

    def test_balance_improves_with_p(self, genomic_batch):
        # Fig 6: partition-size variance decreases significantly from
        # small P to large P (measured via coefficient of variation).
        dists = sweep_minimizer_length(genomic_batch, k=15,
                                       p_values=[3, 13], n_partitions=8)
        assert dists[1].kmer_cv < dists[0].kmer_cv


class TestTableIIShape:
    def test_max_partition_shrinks_with_np(self, genomic_batch):
        # Table II: more partitions -> smaller per-partition maximum.
        dists = sweep_n_partitions(genomic_batch, k=15, p=9,
                                   np_values=[2, 8, 32])
        maxes = [d.max_kmers for d in dists]
        assert maxes[0] > maxes[1] > maxes[2]

    def test_total_invariant_across_np(self, genomic_batch):
        dists = sweep_n_partitions(genomic_batch, k=15, p=9,
                                   np_values=[1, 4, 16])
        totals = {d.total_kmers for d in dists}
        assert len(totals) == 1
