"""Explicit-state model checker: core search + the protocol models."""

from __future__ import annotations

from dataclasses import dataclass, replace

import pytest

from repro.checks.model import (
    Action,
    ProtocolModel,
    Step,
    check_model,
    render_trace,
    steps_of,
)
from repro.checks.protocols import (
    CAS_PUBLISH_VARIANTS,
    CORPUS,
    INSERT_VARIANTS,
    QUEUE_VARIANTS,
    build_model,
)


# -- a tiny hand-rolled model to pin the search semantics -----------------------


@dataclass(frozen=True)
class Counter:
    value: int


class CountToThree(ProtocolModel):
    """Two processes increment a shared counter to 3; no invariant."""

    name = "count-to-three"

    def __init__(self, bug: str | None = None, local_marks: bool = False):
        self.bug = bug
        self.local_marks = local_marks

    def initial(self) -> Counter:
        return Counter(0)

    def enabled(self, state: Counter) -> list[Action]:
        if state.value >= 3:
            return []
        return [
            Action(process=p, name="inc",
                   apply=lambda s: replace(s, value=s.value + 1),
                   local=self.local_marks)
            for p in ("a", "b")
        ]

    def invariant(self, state: Counter) -> str | None:
        if self.bug == "invariant" and state.value == 2:
            return "reached two"
        return None

    def is_terminal(self, state: Counter) -> bool:
        if self.bug == "deadlock":
            return False  # value==3 has no actions but isn't terminal
        return state.value >= 3

    def terminal_check(self, state: Counter) -> str | None:
        if self.bug == "terminal" and state.value == 3:
            return "bad final state"
        return None


class TestSearchCore:
    def test_clean_model_verifies(self):
        res = check_model(CountToThree())
        assert res.ok and res.violation is None and not res.truncated
        assert res.states_explored == 4  # values 0..3, hashed once each

    def test_invariant_violation_with_trace(self):
        res = check_model(CountToThree(bug="invariant"))
        assert not res.ok
        assert res.violation.kind == "invariant"
        # The trace drives the initial state to the violating one.
        state = Counter(0)
        for step in res.violation.trace:
            state = replace(state, value=state.value + 1)
        assert state.value == 2

    def test_deadlock_detected(self):
        res = check_model(CountToThree(bug="deadlock"))
        assert not res.ok and res.violation.kind == "deadlock"

    def test_terminal_check_fires(self):
        res = check_model(CountToThree(bug="terminal"))
        assert not res.ok and res.violation.kind == "terminal"
        assert len(res.violation.trace) == 3

    def test_state_bound_truncates(self):
        res = check_model(CountToThree(), max_states=2)
        assert res.truncated
        assert res.ok  # nothing found *within* the bound

    def test_por_prunes_local_actions(self):
        # With every action marked process-local, the ample set
        # explores one interleaving instead of all of them.
        full = check_model(CountToThree())
        reduced = check_model(CountToThree(local_marks=True))
        assert reduced.ok
        assert reduced.transitions < full.transitions

    def test_render_trace_numbers_steps(self):
        trace = [Step("a", "inc"), Step("b", "inc")]
        text = render_trace(trace, title="demo")
        assert "interleaving: demo" in text
        assert "1. a: inc" in text and "2. b: inc" in text
        assert steps_of(trace, "inc") == ["a", "b"]


# -- the real protocol models ---------------------------------------------------


class TestFixedProtocols:
    def test_insert_verifies_at_ci_bound(self):
        res = check_model(build_model("insert", writers=3))
        assert res.ok and not res.truncated, res.summary()

    def test_workqueue_verifies_at_ci_bound(self):
        res = check_model(build_model("workqueue", consumers=3, items=4))
        assert res.ok and not res.truncated, res.summary()

    def test_workqueue_without_crashes_also_verifies(self):
        res = check_model(
            build_model("workqueue", consumers=2, items=3, crash=False))
        assert res.ok and not res.truncated, res.summary()

    def test_cas_publish_verifies_at_ci_bound(self):
        res = check_model(build_model("cas_publish", writers=3))
        assert res.ok and not res.truncated, res.summary()

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError, match="unknown protocol"):
            build_model("mutex")


class TestSeededCorpus:
    def test_corpus_covers_all_protocols(self):
        assert (set(INSERT_VARIANTS) | set(QUEUE_VARIANTS)
                | set(CAS_PUBLISH_VARIANTS)) == {v for _, v in CORPUS}
        assert len(CORPUS) == 8

    @pytest.mark.parametrize("protocol,variant", CORPUS)
    def test_every_variant_is_refuted(self, protocol, variant):
        model = build_model(protocol, variant=variant,
                            writers=2, consumers=2, items=2)
        res = check_model(model)
        assert res.violation is not None, (
            f"{protocol}/{variant} was not refuted: {res.summary()}")
        assert res.violation.trace, "violation must carry a replayable trace"

    @pytest.mark.parametrize("protocol,variant", CORPUS)
    def test_refutations_are_deterministic(self, protocol, variant):
        def run():
            model = build_model(protocol, variant=variant,
                                writers=2, consumers=2, items=2)
            return check_model(model).violation.trace

        assert run() == run(), "DFS order must be stable run to run"


# -- the CLI and shared reporting -----------------------------------------------


class TestModelCli:
    def test_verify_mode_clean(self, capsys):
        from repro.checks.cli import main

        assert main(["model"]) == 0
        out = capsys.readouterr().out
        assert "verified" in out and "checks model: clean" in out

    def test_corpus_mode_refutes_and_replays(self, capsys):
        from repro.checks.cli import main

        assert main(["model", "--corpus"]) == 0
        out = capsys.readouterr().out
        for _, variant in CORPUS:
            assert f"{variant}: refuted" in out
        assert out.count("REPRODUCED") == len(CORPUS)

    def test_single_bug_with_trace(self, capsys):
        from repro.checks.cli import main

        assert main(["model", "--bug", "early_srv", "--show-trace",
                     "--no-replay"]) == 0
        out = capsys.readouterr().out
        assert "interleaving: workqueue/early_srv" in out

    def test_unknown_bug_is_usage_error(self, capsys):
        from repro.checks.cli import main

        assert main(["model", "--bug", "nope"]) == 2
        assert "unknown seeded bug" in capsys.readouterr().err

    def test_tiny_state_bound_fails_verification(self, capsys):
        from repro.checks.cli import main

        assert main(["model", "--protocol", "workqueue",
                     "--max-states", "10"]) == 1
        assert "bounds hit" in capsys.readouterr().out


class TestReportHelpers:
    def test_counts_and_verdict(self):
        from repro.checks.report import count_by, format_counts, verdict

        counts = count_by(["R1", "R6", "R1"], key=lambda r: r)
        assert counts == {"R1": 2, "R6": 1}
        assert format_counts(counts) == "R1: 2, R6: 1"
        assert verdict("lint", 0) == "checks lint: clean"
        assert verdict("model", 3, "violation", "a: 3") \
            == "3 violation(s) (a: 3)"

    def test_print_report_exit_codes(self, capsys):
        from repro.checks.report import print_report

        assert print_report([], fmt=str, key=str, tool="model") == 0
        assert "checks model: clean" in capsys.readouterr().out
        assert print_report(["x: boom"], fmt=str,
                            key=lambda f: f.split(":")[0],
                            tool="model", noun="violation") == 1
        out = capsys.readouterr().out
        assert "x: boom" in out and "1 violation(s) (x: 1)" in out
