"""Tests for repro.graph.paths (greedy weight-guided contigs)."""

import numpy as np
import pytest

from repro.dna.alphabet import decode
from repro.dna.simulate import DatasetProfile, random_genome, simulate_reads
from repro.graph.build import build_reference_graph
from repro.graph.paths import assembly_metrics, greedy_contigs


def revcomp_str(s: str) -> str:
    return s.translate(str.maketrans("ACGT", "TGCA"))[::-1]


class TestGreedyContigs:
    def test_clean_genome_one_contig(self):
        genome = random_genome(1500, seed=2)
        reads = simulate_reads(genome, 400, 70, mean_errors=0.0, seed=3)
        g = build_reference_graph(reads, 21)
        contigs = greedy_contigs(g, min_edge_weight=1, min_seed_multiplicity=1)
        longest = contigs[0]
        s = longest.to_str()
        gs = decode(genome)
        assert s in gs or revcomp_str(s) in gs
        assert len(s) > 0.9 * len(gs)

    def test_walks_through_error_branches(self):
        # With errors, unitigs fragment but greedy walks pass through
        # branches via the heavier (genomic) edge.
        profile = DatasetProfile(
            name="g", genome_size=8_000, read_length=90, coverage=25.0,
            mean_errors=1.0, repeat_fraction=0.0, seed=13,
        )
        genome, reads = profile.generate()
        g = build_reference_graph(reads, 21)
        from repro.graph.compact import compact_unitigs

        cleaned = g.filter_min_multiplicity(3)
        unitigs = compact_unitigs(cleaned)
        contigs = greedy_contigs(cleaned, min_edge_weight=3)
        assert max(len(c) for c in contigs) >= max(len(u) for u in unitigs)

    def test_every_vertex_in_at_most_one_contig(self, clean_batch):
        g = build_reference_graph(clean_batch, 15)
        contigs = greedy_contigs(g, min_edge_weight=1, min_seed_multiplicity=1)
        total_vertices = sum(c.n_vertices for c in contigs)
        assert total_vertices <= g.n_vertices

    def test_min_seed_multiplicity_excludes_errors(self):
        profile = DatasetProfile(
            name="g2", genome_size=5_000, read_length=80, coverage=20.0,
            mean_errors=1.0, repeat_fraction=0.0, seed=23,
        )
        _, reads = profile.generate()
        g = build_reference_graph(reads, 21)
        strict = greedy_contigs(g, min_edge_weight=3, min_seed_multiplicity=3)
        loose = greedy_contigs(g, min_edge_weight=1, min_seed_multiplicity=1)
        assert sum(c.n_vertices for c in strict) < sum(
            c.n_vertices for c in loose
        )

    def test_sorted_longest_first(self, clean_batch):
        g = build_reference_graph(clean_batch, 15)
        contigs = greedy_contigs(g, min_edge_weight=1, min_seed_multiplicity=1)
        lengths = [len(c) for c in contigs]
        assert lengths == sorted(lengths, reverse=True)

    def test_deterministic(self, clean_batch):
        g = build_reference_graph(clean_batch, 15)
        a = greedy_contigs(g)
        b = greedy_contigs(g)
        assert len(a) == len(b)
        assert all(np.array_equal(x.bases, y.bases) for x, y in zip(a, b))

    def test_validation(self, clean_batch):
        g = build_reference_graph(clean_batch, 15)
        with pytest.raises(ValueError):
            greedy_contigs(g, min_edge_weight=0)

    def test_contig_kmers_are_graph_vertices(self, clean_batch):
        from repro.dna.kmer import canonical_int, iter_kmers

        g = build_reference_graph(clean_batch, 15)
        contigs = greedy_contigs(g, min_edge_weight=1, min_seed_multiplicity=1)
        for c in contigs[:5]:
            for kmer in iter_kmers(c.bases, 15):
                assert canonical_int(kmer, 15) in g


class TestAssemblyMetrics:
    def test_basic(self):
        genome = random_genome(2_000, seed=6)
        reads = simulate_reads(genome, 500, 70, mean_errors=0.0, seed=7)
        g = build_reference_graph(reads, 21)
        contigs = greedy_contigs(g, min_edge_weight=1, min_seed_multiplicity=1)
        metrics = assembly_metrics(contigs, 2_000)
        assert metrics["n_contigs"] == len(contigs)
        assert metrics["longest"] >= metrics["ng50"] > 0
        assert 0 < metrics["genome_fraction_upper"] <= 1.0

    def test_empty(self):
        metrics = assembly_metrics([], 1000)
        assert metrics["n_contigs"] == 0
        assert metrics["ng50"] == 0
