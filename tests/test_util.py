"""Tests for repro.util (tables, timing, byte sizes)."""

import time

import pytest

from repro.util.bytesize import bytes2human, human2bytes
from repro.util.tables import format_cell, render_table
from repro.util.timing import StageTimer, fit_loglog_slope, measure


class TestFormatCell:
    def test_ints(self):
        assert format_cell(42) == "42"
        assert format_cell(1234567) == "1,234,567"

    def test_floats(self):
        assert format_cell(0.0) == "0"
        assert format_cell(3.14159) == "3.142"
        assert format_cell(12.345) == "12.3"
        assert format_cell(1234.5) == "1,234"
        assert format_cell(0.0001) == "1.00e-04"

    def test_bool(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"

    def test_str(self):
        assert format_cell("abc") == "abc"


class TestRenderTable:
    def test_alignment(self):
        out = render_table(["name", "value"], [["a", 1], ["bb", 22]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_title(self):
        out = render_table(["x"], [[1]], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_empty_rows(self):
        out = render_table(["a"], [])
        assert "a" in out


class TestMeasure:
    def test_seconds_recorded(self):
        with measure(track_memory=False) as m:
            time.sleep(0.01)
        assert m.seconds >= 0.01

    def test_peak_memory_tracks_allocation(self):
        import numpy as np

        with measure() as m:
            big = np.zeros(4_000_000, dtype=np.uint8)
            del big
        assert m.peak_bytes >= 4_000_000


class TestStageTimer:
    def test_accumulates(self):
        timer = StageTimer()
        with timer.stage("a"):
            time.sleep(0.01)
        with timer.stage("a"):
            pass
        with timer.stage("b"):
            pass
        assert timer.stages["a"] >= 0.01
        assert timer.total == pytest.approx(sum(timer.stages.values()))


class TestHuman2Bytes:
    @pytest.mark.parametrize("text,expected", [
        ("0", 0),
        ("512", 512),
        ("2K", 2048),
        ("2KB", 2048),
        ("2KiB", 2048),
        ("2k", 2048),
        ("1.5G", int(1.5 * 1024 ** 3)),
        ("92G", 92 * 1024 ** 3),
        ("1T", 1024 ** 4),
        (" 4 M ", 4 * 1024 ** 2),
    ])
    def test_parses(self, text, expected):
        assert human2bytes(text) == expected

    def test_numbers_pass_through(self):
        assert human2bytes(4096) == 4096
        assert human2bytes(1.5) == 1

    @pytest.mark.parametrize("bad", ["", "G", "-1K", "1Q", "one meg",
                                     -1, True])
    def test_rejects(self, bad):
        with pytest.raises(ValueError):
            human2bytes(bad)


class TestBytes2Human:
    @pytest.mark.parametrize("n,expected", [
        (0, "0"),
        (512, "512"),
        (2048, "2K"),
        (1536, "1.5K"),
        (92 * 1024 ** 3, "92G"),
        (1024 ** 4, "1T"),
    ])
    def test_formats(self, n, expected):
        assert bytes2human(n) == expected

    def test_round_trips(self):
        for n in (0, 1, 1023, 1024, 1536, 10 * 1024 ** 2, 3 * 1024 ** 3):
            assert human2bytes(bytes2human(n, precision=3)) \
                == pytest.approx(n, rel=1e-3)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bytes2human(-5)


class TestLogLogFit:
    def test_perfect_inverse_scaling(self):
        xs = [1, 2, 4, 8, 16]
        ys = [16.0 / x for x in xs]
        a, b = fit_loglog_slope(xs, ys)
        assert a == pytest.approx(-1.0)

    def test_flat_line(self):
        a, _ = fit_loglog_slope([1, 2, 4], [5, 5, 5])
        assert a == pytest.approx(0.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            fit_loglog_slope([1], [1])
        with pytest.raises(ValueError):
            fit_loglog_slope([1, 2], [0, 1])
