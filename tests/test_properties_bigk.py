"""Property-based tests for the two-word (big-K) substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bigk.construct import build_debruijn_graph_bigk
from repro.bigk.kmer2w import (
    canonical2w_with_flip,
    join_planes,
    kmers2w_from_reads,
    revcomp2w,
    split_int,
)
from repro.bigk.store import build_reference_bigk_slow, graph_from_plane_pairs
from repro.bigk.table import TwoWordHashTable
from repro.dna.kmer import canonical_int, revcomp_int
from repro.dna.reads import ReadBatch

big_ks = st.integers(33, 63)


class TestPlaneProperties:
    @given(big_ks, st.data())
    def test_split_join_roundtrip(self, k, data):
        kmer = data.draw(st.integers(0, (1 << (2 * k)) - 1))
        hi, lo = split_int(kmer, k)
        assert join_planes(hi, lo) == kmer

    @given(big_ks, st.data())
    @settings(max_examples=40)
    def test_revcomp_matches_scalar(self, k, data):
        kmer = data.draw(st.integers(0, (1 << (2 * k)) - 1))
        hi, lo = split_int(kmer, k)
        rhi, rlo = revcomp2w(np.array([hi], dtype=np.uint64),
                             np.array([lo], dtype=np.uint64), k)
        assert join_planes(int(rhi[0]), int(rlo[0])) == revcomp_int(kmer, k)

    @given(big_ks, st.data())
    @settings(max_examples=40)
    def test_canonical_matches_scalar(self, k, data):
        kmer = data.draw(st.integers(0, (1 << (2 * k)) - 1))
        hi, lo = split_int(kmer, k)
        chi, clo, flip = canonical2w_with_flip(
            np.array([hi], dtype=np.uint64), np.array([lo], dtype=np.uint64), k
        )
        expected = canonical_int(kmer, k)
        assert join_planes(int(chi[0]), int(clo[0])) == expected
        assert bool(flip[0]) == (expected != kmer)

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_extraction_matches_scalar(self, seed):
        from repro.dna.kmer import iter_kmers

        rng = np.random.default_rng(seed)
        k = int(rng.integers(33, 64))
        length = k + int(rng.integers(0, 20))
        codes = rng.integers(0, 4, size=(2, length), dtype=np.uint8)
        hi, lo = kmers2w_from_reads(codes, k)
        for i in range(2):
            for j, ref in enumerate(iter_kmers(codes[i], k)):
                assert join_planes(hi[i, j], lo[i, j]) == ref


class TestBigKConstructionProperties:
    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=8, deadline=None)
    def test_pipeline_equals_slow_reference(self, seed):
        rng = np.random.default_rng(seed)
        k = int(rng.integers(33, 50))
        n = int(rng.integers(2, 10))
        length = k + int(rng.integers(2, 25))
        batch = ReadBatch(codes=rng.integers(0, 4, size=(n, length),
                                             dtype=np.uint8))
        p = int(rng.integers(5, 22))
        n_partitions = int(rng.integers(1, 8))
        fast = build_debruijn_graph_bigk(batch, k, p=p,
                                         n_partitions=n_partitions)
        slow = build_reference_bigk_slow(batch, k)
        assert fast.equals(slow)

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=10, deadline=None)
    def test_table_equals_sortmerge(self, seed):
        rng = np.random.default_rng(seed)
        k = int(rng.integers(33, 64))
        n = int(rng.integers(1, 300))
        hi = rng.integers(0, 1 << (2 * (k - 32)), size=n, dtype=np.uint64)
        lo = rng.integers(0, 1 << 63, size=n, dtype=np.uint64)
        slots = rng.integers(0, 9, size=n).astype(np.int64)
        table = TwoWordHashTable(1024, k)
        table.insert_batch(hi, lo, slots)
        assert table.to_graph().equals(graph_from_plane_pairs(k, hi, lo, slots))
