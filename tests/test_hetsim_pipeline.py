"""Tests for repro.hetsim.pipeline (the discrete-event schedule)."""

import pytest

from repro.hetsim.device import CpuDevice, GpuDevice, HashWork, default_cpu, default_gpu
from repro.hetsim.pipeline import simulate_step, simulate_step_non_pipelined
from repro.hetsim.transfer import DiskModel, memory_cached_disk, spinning_disk


def works(n=16, ops=200_000):
    return [
        HashWork(n_kmers=ops // 3, ops=ops, probes=ops // 10, inserts=ops // 5,
                 table_bytes=1 << 20, in_bytes=200_000, out_bytes=100_000)
        for _ in range(n)
    ]


class TestSimulateStep:
    def test_single_device_processes_all(self):
        sim = simulate_step(works(8), [default_cpu()], memory_cached_disk())
        assert sim.usage["cpu"].partitions == list(range(8))
        assert sim.elapsed_seconds > 0

    def test_elapsed_bounds(self):
        # Pipelined elapsed is at least the compute makespan and at most
        # the non-pipelined stage sum.
        devices = [default_cpu(), default_gpu()]
        disk = spinning_disk()
        sim = simulate_step(works(12), devices, disk)
        t_in, t_compute, t_out = simulate_step_non_pipelined(works(12), devices, disk)
        assert sim.elapsed_seconds <= t_in + t_compute + t_out + 1e-9
        assert sim.elapsed_seconds >= t_compute - 1e-9

    def test_two_devices_share_work(self):
        sim = simulate_step(works(20), [default_gpu(0), default_gpu(1)],
                            memory_cached_disk())
        shares = sim.workload_shares()
        assert shares["gpu0"] == pytest.approx(0.5, abs=0.15)

    def test_faster_device_claims_more(self):
        slow = CpuDevice(name="slowcpu", n_threads=2)
        fast = default_gpu()
        sim = simulate_step(works(30), [slow, fast], memory_cached_disk())
        assert sim.usage[fast.name].work_units > sim.usage[slow.name].work_units

    def test_io_bound_elapsed_tracks_input(self):
        # With a very slow disk, elapsed ~ total input+last write time.
        slow_disk = DiskModel(name="slow", read_bytes_per_sec=1e6,
                              write_bytes_per_sec=1e6)
        ws = works(10)
        sim = simulate_step(ws, [default_gpu()], slow_disk)
        assert sim.elapsed_seconds >= sim.input_seconds
        assert sim.elapsed_seconds == pytest.approx(
            sim.input_seconds, rel=0.6
        )

    def test_empty_works(self):
        sim = simulate_step([], [default_cpu()], memory_cached_disk())
        assert sim.elapsed_seconds == 0.0

    def test_deterministic(self):
        a = simulate_step(works(15), [default_cpu(), default_gpu()],
                          spinning_disk())
        b = simulate_step(works(15), [default_cpu(), default_gpu()],
                          spinning_disk())
        assert a.elapsed_seconds == b.elapsed_seconds
        assert a.usage["cpu"].partitions == b.usage["cpu"].partitions

    def test_no_devices_rejected(self):
        with pytest.raises(ValueError):
            simulate_step(works(2), [], memory_cached_disk())

    def test_duplicate_device_names_rejected(self):
        with pytest.raises(ValueError):
            simulate_step(works(2), [default_gpu(0), default_gpu(0)],
                          memory_cached_disk())

    def test_finish_and_written_times_consistent(self):
        sim = simulate_step(works(6), [default_cpu()], spinning_disk())
        for f, w in zip(sim.finish_times, sim.written_times):
            assert w >= f


class TestPipeliningBenefit:
    def test_pipelined_faster_than_stage_sum(self):
        # Fig 12: pipelining beats the accumulated non-pipelined stages.
        devices = [default_cpu()]
        disk = spinning_disk()
        ws = works(20, ops=2_000_000)
        sim = simulate_step(ws, devices, disk)
        non_pipelined = sim.non_pipelined_seconds()
        assert sim.elapsed_seconds < non_pipelined

    def test_io_dominated_saves_about_half(self):
        # When IO dominates and input ~ output, overlapping them roughly
        # halves the elapsed time (the paper's Bumblebee observation).
        disk = DiskModel(name="slow", read_bytes_per_sec=2e6,
                         write_bytes_per_sec=2e6)
        ws = [
            HashWork(n_kmers=300, ops=1000, probes=10, inserts=100,
                     table_bytes=1 << 16, in_bytes=200_000, out_bytes=200_000)
            for _ in range(30)
        ]  # negligible compute, input == output
        sim = simulate_step(ws, [default_gpu()], disk)
        ratio = sim.elapsed_seconds / sim.non_pipelined_seconds()
        assert 0.40 <= ratio <= 0.62


class TestWorkloadShares:
    def test_shares_sum_to_one(self):
        sim = simulate_step(works(16), [default_cpu(), default_gpu(0),
                                        default_gpu(1)], memory_cached_disk())
        assert sum(sim.workload_shares().values()) == pytest.approx(1.0)

    def test_empty_shares(self):
        sim = simulate_step([], [default_cpu()], memory_cached_disk())
        assert sim.workload_shares() == {"cpu": 0.0}
