"""End-to-end tests for the asyncio HTTP front end (repro serve)."""

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.service import JobStore, ServicePool
from repro.service.server import ServiceApp, serve_in_thread


@pytest.fixture
def service(tmp_path):
    pool = ServicePool(n_workers=2, n_lanes=2).start()
    app = ServiceApp(JobStore(tmp_path / "jobs"), pool,
                     lane_timeout=120.0, stall_timeout=120.0)
    handle = serve_in_thread(app)
    yield handle.url, app
    handle.stop()
    pool.close()


def http(method: str, url: str, doc: dict | None = None):
    """One request; returns (status, parsed-or-raw body)."""
    body = json.dumps(doc).encode() if doc is not None else None
    request = urllib.request.Request(url, data=body, method=method)
    try:
        with urllib.request.urlopen(request, timeout=30) as reply:
            payload = reply.read()
            status = reply.status
            ctype = reply.headers.get("Content-Type", "")
    except urllib.error.HTTPError as exc:
        payload = exc.read()
        status = exc.code
        ctype = exc.headers.get("Content-Type", "")
    if ctype == "application/json":
        return status, json.loads(payload)
    return status, payload


def spec_doc(reads_file, **over) -> dict:
    doc = {"input": str(reads_file), "k": 15, "p": 4,
           "n_partitions": 4, "n_step1_tasks": 1}
    doc.update(over)
    return doc


def wait_status(url: str, job_id: str, want: tuple,
                timeout: float = 120.0) -> dict:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, doc = http("GET", f"{url}/jobs/{job_id}")
        assert status == 200
        if doc["status"] in want:
            return doc
        time.sleep(0.05)
    pytest.fail(f"job {job_id} never reached {want}")


class TestEndpoints:
    def test_healthz(self, service):
        url, _ = service
        status, doc = http("GET", f"{url}/healthz")
        assert status == 200
        assert doc["ok"] is True
        assert doc["pool"]["n_workers"] == 2

    def test_submit_watch_fetch(self, service, reads_file):
        url, _ = service
        status, doc = http("POST", f"{url}/jobs", spec_doc(reads_file))
        assert status == 201
        job_id = doc["id"]

        status, listing = http("GET", f"{url}/jobs")
        assert status == 200
        assert job_id in [j["id"] for j in listing["jobs"]]

        wait_status(url, job_id, ("done",))
        status, payload = http("GET", f"{url}/jobs/{job_id}/artifact")
        assert status == 200
        assert payload[:4] == b"PHDB"

    def test_artifact_before_done_conflicts(self, service, reads_file):
        url, _ = service
        _, doc = http("POST", f"{url}/jobs",
                      spec_doc(reads_file, step2_delay=0.5))
        job_id = doc["id"]
        status, reply = http("GET", f"{url}/jobs/{job_id}/artifact")
        assert status == 409
        assert "no finished artifact" in reply["error"]
        http("POST", f"{url}/jobs/{job_id}/cancel")
        wait_status(url, job_id, ("cancelled", "done"))

    def test_unknown_job_404(self, service):
        url, _ = service
        status, doc = http("GET", f"{url}/jobs/19700101-000000-0")
        assert status == 404
        assert "no such job" in doc["error"]

    def test_bad_spec_400(self, service):
        url, _ = service
        status, doc = http("POST", f"{url}/jobs", {"k": 15})
        assert status == 400
        assert "input" in doc["error"]

    def test_unknown_route_404(self, service):
        url, _ = service
        status, _ = http("GET", f"{url}/frobnicate")
        assert status == 404

    def test_cancel_then_resume(self, service, reads_file):
        url, _ = service
        _, doc = http("POST", f"{url}/jobs",
                      spec_doc(reads_file, step2_delay=0.4))
        job_id = doc["id"]
        status, doc = http("POST", f"{url}/jobs/{job_id}/cancel")
        assert status == 200
        wait_status(url, job_id, ("cancelled",))

        status, doc = http("POST", f"{url}/jobs/{job_id}/resume")
        assert status == 202
        final = wait_status(url, job_id, ("done",))
        assert final["status"] == "done"

    def test_resume_active_job_rejected(self, service, reads_file):
        url, _ = service
        _, doc = http("POST", f"{url}/jobs",
                      spec_doc(reads_file, step2_delay=0.3))
        job_id = doc["id"]
        status, reply = http("POST", f"{url}/jobs/{job_id}/resume")
        assert status == 400
        assert "already active" in reply["error"]
        http("POST", f"{url}/jobs/{job_id}/cancel")
        wait_status(url, job_id, ("cancelled", "done"))


class TestMultiTenancy:
    def test_two_weighted_jobs_share_the_pool(self, service, reads_file):
        """Both jobs run concurrently; weights visible via the API."""
        url, _ = service
        _, heavy = http("POST", f"{url}/jobs",
                        spec_doc(reads_file, claim_weight=2,
                                 step2_delay=0.2, n_partitions=6))
        _, light = http("POST", f"{url}/jobs",
                        spec_doc(reads_file, claim_weight=1,
                                 step2_delay=0.2, n_partitions=6))
        lanes = {}
        deadline = time.monotonic() + 60.0
        while len(lanes) < 2 and time.monotonic() < deadline:
            for job_id in (heavy["id"], light["id"]):
                _, doc = http("GET", f"{url}/jobs/{job_id}")
                if doc.get("active") and "lane" in doc:
                    lanes[job_id] = doc["lane"]
            time.sleep(0.02)
        assert lanes[heavy["id"]]["claim_weight"] == 2
        assert lanes[light["id"]]["claim_weight"] == 1
        assert lanes[heavy["id"]]["lane"] != lanes[light["id"]]["lane"]
        for job_id in (heavy["id"], light["id"]):
            wait_status(url, job_id, ("done",))
