"""Tests for repro.baselines (SOAP, sort-merge, bcalm)."""

import numpy as np
import pytest

from repro.baselines.bcalm import build_bcalm, simulate_bcalm
from repro.baselines.soap import (
    build_soap,
    simulate_soap_hashing,
    soap_memory_required,
)
from repro.baselines.sortmerge import build_sortmerge, simulate_sortmerge
from repro.graph.build import build_reference_graph
from repro.graph.validate import assert_graphs_equal
from repro.hetsim.device import default_cpu
from repro.hetsim.transfer import memory_cached_disk, spinning_disk


class TestSoap:
    def test_graph_equals_reference(self, genomic_batch):
        ref = build_reference_graph(genomic_batch, 15)
        result = build_soap(genomic_batch, 15, n_threads=8)
        assert_graphs_equal(result.graph, ref, "soap")

    def test_thread_count_does_not_change_graph(self, genomic_batch):
        g1 = build_soap(genomic_batch, 15, n_threads=1).graph
        g20 = build_soap(genomic_batch, 15, n_threads=20).graph
        assert g1.equals(g20)

    def test_read_amplification(self, genomic_batch):
        # Every thread scans the full observation stream.
        result = build_soap(genomic_batch, 15, n_threads=8)
        work = result.work
        assert work.read_ops_per_thread == work.n_observations
        assert work.insert_ops_per_thread < work.n_observations

    def test_memory_dominates_parahash(self, genomic_batch):
        # SOAP stages the whole kmer stream; ParaHash holds one
        # partition's table.  (Table III: 16 GB vs 2 GB.)
        from repro.core.config import ParaHashConfig
        from repro.hetsim.workloads import measure_workloads

        soap = build_soap(genomic_batch, 15)
        cfg = ParaHashConfig(k=15, p=7, n_partitions=16)
        _, wl2 = measure_workloads(genomic_batch, cfg)
        parahash_peak = max(w.table_bytes + w.in_bytes for w in wl2.works)
        assert soap.work.peak_memory_bytes > 3 * parahash_peak

    def test_simulated_breakdown(self, genomic_batch):
        result = build_soap(genomic_batch, 15, n_threads=8)
        timing = simulate_soap_hashing(result.work, default_cpu())
        assert timing.read_data_seconds > 0
        assert timing.insert_update_seconds > 0
        assert timing.total_seconds == pytest.approx(
            timing.read_data_seconds + timing.insert_update_seconds
        )

    def test_memory_required_scales(self, genomic_batch):
        full = soap_memory_required(genomic_batch, 15)
        assert full == genomic_batch.n_kmers(15) * 27

    def test_invalid_threads(self, genomic_batch):
        with pytest.raises(ValueError):
            build_soap(genomic_batch, 15, n_threads=0)


class TestSortMerge:
    def test_graph_equals_reference(self, genomic_batch):
        ref = build_reference_graph(genomic_batch, 15)
        assert_graphs_equal(build_sortmerge(genomic_batch, 15).graph, ref, "sm")

    def test_multipass_equals_single(self, genomic_batch):
        single = build_sortmerge(genomic_batch, 15)
        multi = build_sortmerge(genomic_batch, 15, memory_budget_pairs=5000)
        assert single.graph.equals(multi.graph)
        assert multi.work.n_passes > 1
        assert multi.work.peak_memory_bytes < single.work.peak_memory_bytes

    def test_invalid_budget(self, genomic_batch):
        with pytest.raises(ValueError):
            build_sortmerge(genomic_batch, 15, memory_budget_pairs=0)

    def test_simulated_time_positive(self, genomic_batch):
        result = build_sortmerge(genomic_batch, 15, memory_budget_pairs=5000)
        assert simulate_sortmerge(result.work, default_cpu()) > 0

    def test_multipass_costs_more(self, genomic_batch):
        cpu = default_cpu()
        single = build_sortmerge(genomic_batch, 15)
        multi = build_sortmerge(genomic_batch, 15, memory_budget_pairs=2000)
        assert simulate_sortmerge(multi.work, cpu) > simulate_sortmerge(
            single.work, cpu
        )


class TestBcalm:
    def test_graph_equals_reference(self, genomic_batch):
        ref = build_reference_graph(genomic_batch, 15)
        result = build_bcalm(genomic_batch, 15, p=7, n_partitions=8)
        assert_graphs_equal(result.graph, ref, "bcalm")

    def test_work_metrics(self, genomic_batch):
        result = build_bcalm(genomic_batch, 15, p=7, n_partitions=8)
        w = result.work
        assert w.n_observations == 3 * genomic_batch.n_kmers(15)
        assert w.n_distinct == result.graph.n_vertices
        assert 0 <= w.n_junctions < w.n_distinct
        assert w.intermediate_bytes == w.n_observations * 9

    def test_low_memory(self, genomic_batch):
        # bcalm's defining property: peak memory ~ one partition.
        result = build_bcalm(genomic_batch, 15, p=7, n_partitions=8)
        from repro.baselines.soap import build_soap

        soap = build_soap(genomic_batch, 15)
        assert result.work.peak_memory_bytes < soap.work.peak_memory_bytes

    def test_simulated_slower_than_parahash(self, genomic_batch):
        # Table III: bcalm2 is roughly an order of magnitude slower.
        # Compare on a memory-cached disk so test-scale per-file seek
        # latency does not swamp the comparison; the full factor
        # (~10-30x) is asserted at benchmark scale in
        # benchmarks/bench_table3_assemblers.py.
        from repro.core.config import ParaHashConfig
        from repro.hetsim.workloads import measure_workloads, simulate_parahash

        cfg = ParaHashConfig(k=15, p=7, n_partitions=8)
        wl = measure_workloads(genomic_batch, cfg)
        parahash = simulate_parahash(genomic_batch, cfg, use_cpu=True,
                                     n_gpus=0, disk=memory_cached_disk(),
                                     precomputed=wl)
        bc = build_bcalm(genomic_batch, 15, p=7, n_partitions=8)
        bcalm_seconds = simulate_bcalm(bc.work, default_cpu(),
                                       memory_cached_disk())
        assert bcalm_seconds > parahash.total_seconds

    def test_disk_model_affects_time(self, genomic_batch):
        bc = build_bcalm(genomic_batch, 15, p=7, n_partitions=8)
        cpu = default_cpu()
        fast = simulate_bcalm(bc.work, cpu, memory_cached_disk())
        slow = simulate_bcalm(bc.work, cpu, spinning_disk())
        assert slow > fast
