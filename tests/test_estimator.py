"""Tests for repro.core.estimator (Property 1 and table sizing)."""

import numpy as np
import pytest

from repro.core.estimator import (
    SizingPolicy,
    expected_distinct_vertices,
    expected_erroneous_kmers_per_error,
    expected_erroneous_kmers_per_read,
    next_power_of_two,
)


class TestErroneousKmers:
    def test_small_k_regime_formula(self):
        # K <= (L+1)/2: E = K(L-2K+2)/L + K(K-1)/L.
        length, k = 101, 27
        expected = k * (length - 2 * k + 2) / length + k * (k - 1) / length
        assert np.isclose(expected_erroneous_kmers_per_error(length, k), expected)

    def test_large_k_regime_formula(self):
        # K >= (L+1)/2 regime.
        length, k = 100, 80
        n_kmers = length - k + 1
        expected = n_kmers * (2 * k - length) / length + (length - k) * (length - k + 1) / length
        assert np.isclose(expected_erroneous_kmers_per_error(length, k), expected)

    def test_bounded_by_theta_l_over_4(self):
        # The appendix bound: E(Y|X=1) <= Theta(L/4); the exact constant
        # for the worst K is about L/4 + O(1).
        for length in (50, 101, 200):
            values = [
                expected_erroneous_kmers_per_error(length, k)
                for k in range(1, length + 1)
            ]
            assert max(values) <= length / 4 + 1.5

    def test_monte_carlo_agreement(self):
        # Simulate single errors at uniform positions and count kmers
        # covering the error position.
        rng = np.random.default_rng(0)
        length, k = 60, 21
        n_kmers = length - k + 1
        trials = 200_000
        pos = rng.integers(0, length, size=trials)
        lo = np.maximum(0, pos - k + 1)
        hi = np.minimum(n_kmers - 1, pos)
        covered = hi - lo + 1
        assert np.isclose(
            covered.mean(),
            expected_erroneous_kmers_per_error(length, k),
            rtol=0.01,
        )

    def test_k_one(self):
        # K = 1: exactly one kmer covers each error position.
        assert expected_erroneous_kmers_per_error(100, 1) == pytest.approx(1.0)

    def test_k_equals_l(self):
        # K = L: the single kmer is always corrupted.
        assert expected_erroneous_kmers_per_error(50, 50) == pytest.approx(1.0)

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            expected_erroneous_kmers_per_error(10, 0)
        with pytest.raises(ValueError):
            expected_erroneous_kmers_per_error(10, 11)

    def test_lambda_scaling(self):
        one = expected_erroneous_kmers_per_read(101, 27, 1.0)
        two = expected_erroneous_kmers_per_read(101, 27, 2.0)
        assert np.isclose(two, 2 * one)
        with pytest.raises(ValueError):
            expected_erroneous_kmers_per_read(101, 27, -1.0)


class TestDistinctVertices:
    def test_includes_genome(self):
        # With no errors the estimate is exactly the genome size (as
        # long as enough kmer instances exist to cover it).
        est = expected_distinct_vertices(100_000, 101, 27,
                                         genome_size=1_000_000, lam=0.0)
        assert est == pytest.approx(1_000_000)

    def test_capped_at_total_kmers(self):
        est = expected_distinct_vertices(10, 101, 27, genome_size=10**9, lam=2.0)
        assert est == 10 * 75

    def test_grows_with_input(self):
        # §III-C1: "the number of distinct vertices ... is proportional
        # to the big input size".
        small = expected_distinct_vertices(10_000, 101, 27, 10**6, 1.0)
        large = expected_distinct_vertices(100_000, 101, 27, 10**6, 1.0)
        assert large > small

    def test_empirical_order_of_magnitude(self, tiny_profile):
        from repro.graph.build import build_reference_graph

        genome, reads = tiny_profile.generate()
        k = 21
        graph = build_reference_graph(reads, k)
        est = expected_distinct_vertices(
            reads.n_reads, reads.read_length, k,
            tiny_profile.genome_size, tiny_profile.mean_errors,
        )
        # The estimate is an upper-bound-flavored expectation; require
        # the right order of magnitude and that it does not undershoot
        # badly.
        assert graph.n_vertices <= 2.0 * est
        assert est <= 10 * graph.n_vertices


class TestSizingPolicy:
    def test_paper_formula(self):
        policy = SizingPolicy(lam=2.0, alpha=0.5)
        # capacity >= lambda/(4 alpha) * N_kmer = N_kmer.
        assert policy.capacity_for(1000) >= 1000

    def test_capacity_is_power_of_two(self):
        policy = SizingPolicy()
        for n in (1, 100, 12345, 10**6):
            cap = policy.capacity_for(n)
            assert cap & (cap - 1) == 0

    def test_min_capacity(self):
        policy = SizingPolicy(min_capacity=512)
        assert policy.capacity_for(1) >= 512

    def test_capacity_monotonic(self):
        policy = SizingPolicy()
        caps = [policy.capacity_for(n) for n in (10, 100, 1000, 10000)]
        assert caps == sorted(caps)

    def test_table_bytes(self):
        policy = SizingPolicy()
        assert policy.table_bytes(1000) == policy.capacity_for(1000) * 45

    def test_validation(self):
        with pytest.raises(ValueError):
            SizingPolicy(alpha=0.0)
        with pytest.raises(ValueError):
            SizingPolicy(alpha=1.5)
        with pytest.raises(ValueError):
            SizingPolicy(lam=-1)
        with pytest.raises(ValueError):
            SizingPolicy(min_capacity=0)

    def test_halving_claim(self):
        # §III-C1: with lambda=2 the expected table size halves relative
        # to the trivial N_kmer bound.
        policy = SizingPolicy(lam=2.0, alpha=1.0)
        assert policy.estimated_distinct(1000) == 500


class TestNextPowerOfTwo:
    def test_values(self):
        assert next_power_of_two(1) == 1
        assert next_power_of_two(2) == 2
        assert next_power_of_two(3) == 4
        assert next_power_of_two(1024) == 1024
        assert next_power_of_two(1025) == 2048

    def test_invalid(self):
        with pytest.raises(ValueError):
            next_power_of_two(0)
