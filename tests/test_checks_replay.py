"""Counterexample replay: model traces drive the real implementation.

The contract under test: for every (protocol, variant) in the
seeded-bug corpus, the trace produced by the model checker on the buggy
model *reproduces* the violation when replayed against the real code
under the corresponding seeded bug — deterministically, because the
replay parks real threads at the trace's interleaving points instead of
hoping a sleep lands in the window.
"""

from __future__ import annotations

import pytest

from repro.checks.model import Step, check_model
from repro.checks.protocols import CORPUS, build_model
from repro.checks.replay import replay_counterexample

#: Refutation sizing — matches the CLI's corpus mode (two contenders is
#: the minimal arena every corpus bug manifests in).
SIZES = dict(writers=2, consumers=2, items=2)


def trace_for(protocol: str, variant: str) -> list[Step]:
    res = check_model(build_model(protocol, variant=variant, **SIZES))
    assert res.violation is not None, res.summary()
    return list(res.violation.trace)


@pytest.mark.parametrize("protocol,variant", CORPUS)
def test_corpus_trace_reproduces(protocol, variant):
    trace = trace_for(protocol, variant)
    result = replay_counterexample(protocol, variant, trace)
    assert result.reproduced, result.summary()
    assert variant in result.summary() and "REPRODUCED" in result.summary()


@pytest.mark.parametrize("protocol,variant", [
    # One per distinct replay harness shape: CAS window, RMW overlap,
    # publication ordering, and the deadlock replays.
    ("insert", "tas_claim"),
    ("insert", "shared_stats"),
    ("workqueue", "split_claim"),
    ("workqueue", "no_abort"),
])
def test_replay_is_deterministic(protocol, variant):
    trace = trace_for(protocol, variant)
    outcomes = [replay_counterexample(protocol, variant, trace).reproduced
                for _ in range(3)]
    assert outcomes == [True, True, True]


class TestTraceValidation:
    def test_unknown_pair_rejected(self):
        with pytest.raises(ValueError, match="no replay"):
            replay_counterexample("insert", "no_such_bug", [])

    def test_malformed_trace_reports_not_reproduced(self):
        # A trace that never exhibits the overlap the replay needs must
        # come back "not reproduced" with a reason, not crash or hang.
        bogus = [Step("w1", "tas_load")]
        result = replay_counterexample("insert", "tas_claim", bogus)
        assert not result.reproduced
        assert result.detail

    def test_wrong_protocol_trace_is_rejected_cleanly(self):
        # Feed the workqueue replay an insert trace: shape validation
        # fails before any thread is started.
        trace = trace_for("insert", "tas_claim")
        result = replay_counterexample("workqueue", "split_claim", trace)
        assert not result.reproduced
