"""Tests for repro.graph.validate (invariants catch real corruption)."""

import numpy as np
import pytest

from repro.graph.build import build_reference_graph
from repro.graph.dbg import MULT_SLOT, OUT_BASE, DeBruijnGraph
from repro.graph.validate import (
    GraphValidationError,
    assert_graphs_equal,
    check_canonical_vertices,
    check_edge_symmetry,
    check_edge_weight_conservation,
    check_genome_coverage,
    check_multiplicity_conservation,
    validate_full_graph,
)


class TestAssertGraphsEqual:
    def test_equal_graphs_pass(self, genomic_batch):
        g = build_reference_graph(genomic_batch, 15)
        assert_graphs_equal(g, g)

    def test_k_mismatch(self, genomic_batch):
        g15 = build_reference_graph(genomic_batch, 15)
        g13 = build_reference_graph(genomic_batch, 13)
        with pytest.raises(GraphValidationError, match="k differs"):
            assert_graphs_equal(g15, g13)

    def test_vertex_count_mismatch_lists_examples(self, genomic_batch):
        g = build_reference_graph(genomic_batch, 15)
        smaller = DeBruijnGraph(k=15, vertices=g.vertices[1:], counts=g.counts[1:])
        with pytest.raises(GraphValidationError, match="missing"):
            assert_graphs_equal(smaller, g, "test")

    def test_counter_mismatch_reported(self, genomic_batch):
        g = build_reference_graph(genomic_batch, 15)
        tampered = DeBruijnGraph(k=15, vertices=g.vertices.copy(),
                                 counts=g.counts.copy())
        tampered.counts[3, MULT_SLOT] += 1
        with pytest.raises(GraphValidationError, match="counters differ"):
            assert_graphs_equal(tampered, g)


class TestInvariants:
    def test_full_graph_passes_all(self, genomic_batch):
        g = build_reference_graph(genomic_batch, 15)
        validate_full_graph(g, genomic_batch)

    def test_noncanonical_vertex_detected(self):
        # Vertex 0b111111... (all T) is not canonical (AAAA.. is smaller).
        g = DeBruijnGraph(
            k=5,
            vertices=np.array([(1 << 10) - 1], dtype=np.uint64),
            counts=np.ones((1, 9), dtype=np.uint64),
        )
        with pytest.raises(GraphValidationError, match="not canonical"):
            check_canonical_vertices(g)

    def test_multiplicity_conservation_detects_loss(self, genomic_batch):
        g = build_reference_graph(genomic_batch, 15)
        tampered = DeBruijnGraph(k=15, vertices=g.vertices.copy(),
                                 counts=g.counts.copy())
        tampered.counts[0, MULT_SLOT] += 5
        with pytest.raises(GraphValidationError, match="multiplicity"):
            check_multiplicity_conservation(tampered, genomic_batch)

    def test_edge_weight_conservation_detects_loss(self, genomic_batch):
        g = build_reference_graph(genomic_batch, 15)
        tampered = DeBruijnGraph(k=15, vertices=g.vertices.copy(),
                                 counts=g.counts.copy())
        # Find a vertex with a non-zero out edge and drop one unit.
        rows = np.nonzero(tampered.counts[:, OUT_BASE] > 0)[0]
        tampered.counts[rows[0], OUT_BASE] -= 1
        with pytest.raises(GraphValidationError, match="edge weight"):
            check_edge_weight_conservation(tampered, genomic_batch)

    def test_edge_symmetry_detects_asymmetry(self, clean_batch):
        g = build_reference_graph(clean_batch, 15)
        tampered = DeBruijnGraph(k=15, vertices=g.vertices.copy(),
                                 counts=g.counts.copy())
        rows = np.nonzero(tampered.counts[:, OUT_BASE] > 0)[0]
        tampered.counts[rows[0], OUT_BASE] += 1
        with pytest.raises(GraphValidationError, match="asymmetric|absent"):
            check_edge_symmetry(tampered)

    def test_genome_coverage_error_free(self, tiny_profile):
        from dataclasses import replace

        clean_profile = replace(tiny_profile, mean_errors=0.0, coverage=25.0)
        genome, reads = clean_profile.generate()
        g = build_reference_graph(reads, 15)
        missing = check_genome_coverage(g, genome)
        # 25x coverage: essentially every genome kmer is present.
        assert missing <= 0.01 * clean_profile.genome_size
