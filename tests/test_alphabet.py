"""Tests for repro.dna.alphabet."""

import numpy as np
import pytest

from repro.dna import alphabet as al


class TestEncode:
    def test_basic_bases(self):
        assert al.encode("ACGT").tolist() == [0, 1, 2, 3]

    def test_lowercase(self):
        assert al.encode("acgt").tolist() == [0, 1, 2, 3]

    def test_unknown_becomes_a(self):
        # The paper: "All the unknown DNA bases are transformed to 'As'".
        assert al.encode("NNXY").tolist() == [0, 0, 0, 0]

    def test_empty(self):
        assert al.encode("").size == 0

    def test_bytes_input(self):
        assert al.encode(b"TGCA").tolist() == [3, 2, 1, 0]

    def test_long_sequence_dtype(self):
        out = al.encode("ACGT" * 1000)
        assert out.dtype == np.uint8
        assert out.size == 4000

    def test_non_ascii_replaced(self):
        out = al.encode("AéT")
        assert out[0] == 0 and out[-1] == 3


class TestDecode:
    def test_roundtrip(self):
        s = "ACGTACGTTTGGCCAA"
        assert al.decode(al.encode(s)) == s

    def test_empty(self):
        assert al.decode(np.zeros(0, dtype=np.uint8)) == ""

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            al.decode(np.array([0, 4], dtype=np.uint8))


class TestComplement:
    def test_complement_pairs(self):
        # A<->T, C<->G
        assert al.decode(al.complement(al.encode("ACGT"))) == "TGCA"

    def test_reverse_complement(self):
        assert al.decode(al.reverse_complement(al.encode("AACG"))) == "CGTT"

    def test_reverse_complement_involution(self):
        codes = al.encode("ATTGGCACGTAC")
        twice = al.reverse_complement(al.reverse_complement(codes))
        assert np.array_equal(twice, codes)

    def test_complement_code_is_3_minus(self):
        for c in range(4):
            assert al.COMPLEMENT_CODE[c] == 3 - c


class TestScalarHelpers:
    def test_base_to_code(self):
        assert [al.base_to_code(b) for b in "ACGT"] == [0, 1, 2, 3]

    def test_code_to_base(self):
        assert "".join(al.code_to_base(c) for c in range(4)) == "ACGT"

    def test_base_to_code_rejects_multichar(self):
        with pytest.raises(ValueError):
            al.base_to_code("AC")

    def test_code_to_base_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            al.code_to_base(4)

    def test_is_valid_codes(self):
        assert al.is_valid_codes(np.array([0, 1, 2, 3], dtype=np.uint8))
        assert not al.is_valid_codes(np.array([0, 7], dtype=np.uint8))
        assert al.is_valid_codes(np.zeros(0, dtype=np.uint8))

    def test_code_order_is_lexicographic(self):
        # The minimizer machinery depends on code order == lex order.
        assert sorted(al.BASES) == list(al.BASES)
