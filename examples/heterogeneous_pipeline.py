#!/usr/bin/env python3
"""Co-processing on simulated heterogeneous processors.

Reproduces the paper's co-processing story on one dataset: run the real
MSP and hashing kernels once, then replay the work-stealing pipeline on
different device configurations (CPU only, GPUs only, CPU + GPUs) and
two disks (memory-cached vs spinning), comparing against the §IV
performance model.

    python examples/heterogeneous_pipeline.py
"""

from repro.core import ParaHashConfig
from repro.dna import HUMAN_CHR14_LIKE
from repro.hetsim import (
    ideal_coprocessing_time,
    ideal_workload_shares,
    measure_workloads,
    memory_cached_disk,
    render_gantt,
    simulate_parahash,
    spinning_disk,
)
from repro.util import print_table


def main() -> None:
    profile = HUMAN_CHR14_LIKE.scaled(0.5)
    reads = profile.generate_reads()
    config = ParaHashConfig(k=27, p=11, n_partitions=32, n_input_pieces=8)
    print(f"dataset: {reads.n_reads:,} reads x {reads.read_length} bp; "
          f"running the real kernels once...")
    workloads = measure_workloads(reads, config)

    configs = [
        ("CPU only", True, 0),
        ("1 GPU", False, 1),
        ("2 GPUs", False, 2),
        ("CPU + 1 GPU", True, 1),
        ("CPU + 2 GPUs", True, 2),
    ]

    # --- compute-bound regime (memory-cached input) ----------------------
    disk = memory_cached_disk()
    reports = {
        label: simulate_parahash(reads, config, use_cpu=u, n_gpus=g,
                                 disk=disk, precomputed=workloads)
        for label, u, g in configs
    }
    t_cpu = reports["CPU only"].total_seconds
    t_gpu = reports["1 GPU"].total_seconds
    rows = []
    for label, use_cpu, n_gpus in configs:
        real = reports[label].total_seconds
        ideal = ideal_coprocessing_time(t_cpu, t_gpu, n_gpus, use_cpu=use_cpu)
        rows.append([label, f"{real:.4f}", f"{ideal:.4f}",
                     f"{t_cpu / real:.2f}x"])
    print_table(
        ["configuration", "simulated (s)", "Eq(2) ideal (s)", "speedup vs CPU"],
        rows,
        title="Compute-bound regime (memory-cached input) — cf. paper Fig 13",
    )

    # --- workload balance (cf. paper Fig 11) -----------------------------
    both = reports["CPU + 2 GPUs"]
    ideal = ideal_workload_shares(
        reports["CPU only"].step2.elapsed_seconds,
        reports["1 GPU"].step2.elapsed_seconds, 2,
    )
    real = both.step2.workload_shares()
    print_table(
        ["device", "real share", "speed-proportional ideal"],
        [[d, f"{real[d]:.3f}", f"{ideal[d]:.3f}"] for d in sorted(real)],
        title="Hashing workload distribution, CPU + 2 GPUs — cf. paper Fig 11",
    )

    # --- the schedule itself ----------------------------------------------
    print("Hashing schedule on CPU + 2 GPUs (each block is one partition):")
    print(render_gantt(both.step2))
    print()

    # --- IO-bound regime (spinning disk) ----------------------------------
    disk = spinning_disk()
    rows = []
    for label, use_cpu, n_gpus in configs:
        report = simulate_parahash(reads, config, use_cpu=use_cpu,
                                   n_gpus=n_gpus, disk=disk,
                                   precomputed=workloads)
        rows.append([
            label, f"{report.total_seconds:.4f}",
            f"{report.step1.input_seconds + report.step2.input_seconds:.4f}",
        ])
    print_table(
        ["configuration", "simulated (s)", "input transfer (s)"],
        rows,
        title="IO-bound regime (spinning disk) — cf. paper Fig 14: adding "
              "processors stops helping once the disk dominates",
    )


if __name__ == "__main__":
    main()
