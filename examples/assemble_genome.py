#!/usr/bin/env python3
"""End-to-end mini assembly: reads -> De Bruijn graph -> unitigs.

The scenario the paper's introduction motivates: take shotgun reads of
a genome (here simulated, with sequencing errors), construct the De
Bruijn graph with ParaHash through encoded partition files on disk,
clean it with the multiplicity filter, compact it into unitigs, and
check how much of the genome the unitigs recover.

    python examples/assemble_genome.py
"""

import tempfile
from pathlib import Path

from repro.core import ParaHash, ParaHashConfig
from repro.dna import DatasetProfile, decode
from repro.graph import compact_unitigs, compaction_stats


def revcomp(s: str) -> str:
    return s.translate(str.maketrans("ACGT", "TGCA"))[::-1]


def main() -> None:
    # A 20 kbp genome at 25x coverage with ~1 error per read.
    profile = DatasetProfile(
        name="mini-assembly",
        genome_size=20_000,
        read_length=100,
        coverage=25.0,
        mean_errors=1.0,
        repeat_fraction=0.0,
        seed=42,
    )
    genome, reads = profile.generate()
    print(f"genome: {profile.genome_size:,} bp; reads: {reads.n_reads:,} x "
          f"{reads.read_length} bp ({profile.coverage:.0f}x coverage)")

    # Construct through partition files on disk, the way ParaHash runs
    # on inputs too big for memory.
    k = 27
    config = ParaHashConfig(k=k, p=11, n_partitions=16, n_input_pieces=4)
    with tempfile.TemporaryDirectory() as workdir:
        result = ParaHash(config).build_graph(reads, workdir=Path(workdir))
    graph = result.graph
    print(f"\nDe Bruijn graph (k={k}):")
    print(f"  distinct vertices : {graph.n_vertices:,}")
    print(f"  duplicates merged : {graph.n_duplicate_vertices():,}")
    print(f"  partition files   : {result.partition_bytes / 1e3:.0f} KB encoded")
    print(f"  MSP / hashing     : {result.timings.msp_seconds:.2f}s / "
          f"{result.timings.hashing_seconds:.2f}s")
    print(f"  key-lock reduction: {100 * result.hash_stats.lock_reduction:.0f}%")

    # Error vertices are overwhelmingly multiplicity-1 at 25x coverage;
    # drop them before compaction (§III-C1's filtering step), and drop
    # the residual low-weight edges that pointed at them — this is what
    # the recorded edge weights are for (§II-B).
    cleaned = graph.filter_min_multiplicity(3).filter_min_edge_weight(3)
    print(f"\nafter multiplicity/edge-weight >= 3 filters: "
          f"{cleaned.n_vertices:,} vertices "
          f"(genome kmers: {profile.genome_size - k + 1:,})")

    # Compact maximal non-branching paths into unitigs.
    unitigs = compact_unitigs(cleaned)
    stats = compaction_stats(unitigs, k)
    print(f"\nunitigs: {stats['n_unitigs']:,}; "
          f"longest {stats['longest']:,} bp; N50 {stats['n50']:,} bp")

    # How much of the genome do the long unitigs recover?
    genome_str = decode(genome)
    recovered = 0
    exact = 0
    for u in sorted(unitigs, key=len, reverse=True)[:20]:
        s = u.to_str()
        if s in genome_str or revcomp(s) in genome_str:
            exact += 1
            recovered += len(s)
    print(f"top unitigs matching the genome exactly: {exact}/"
          f"{min(20, len(unitigs))}, covering {recovered:,} bp "
          f"({100 * recovered / profile.genome_size:.1f}% of the genome)")


if __name__ == "__main__":
    main()
