#!/usr/bin/env python3
"""Quickstart: build a De Bruijn graph from simulated reads.

Runs in a few seconds.  Demonstrates the one-call API
(`repro.core.build_debruijn_graph`), basic graph queries, and the
equivalence with the single-pass reference builder.

    python examples/quickstart.py
"""

from repro.core import build_debruijn_graph
from repro.dna import TOY, kmer_to_str
from repro.graph import assert_graphs_equal, build_reference_graph


def main() -> None:
    # 1. Get reads.  TOY is a 5 kbp genome at 12x coverage; swap in
    #    repro.dna.load_read_batch("your.fastq") for real data.
    genome, reads = TOY.generate()
    print(f"dataset: {reads.n_reads} reads of {reads.read_length} bp "
          f"({reads.total_bases:,} bases)")

    # 2. Build the graph with ParaHash (MSP partitioning + concurrent
    #    hashing under the hood).
    k = 21
    graph = build_debruijn_graph(reads, k=k, p=9, n_partitions=16)
    print(f"k={k}: {graph.n_vertices:,} distinct vertices, "
          f"{graph.n_duplicate_vertices():,} duplicates merged, "
          f"total edge weight {graph.total_edge_weight():,}")

    # 3. Query a vertex: pick the first one and look at its neighbors.
    v = int(graph.vertices[0])
    print(f"\nvertex {kmer_to_str(v, k)}:")
    print(f"  multiplicity: {graph.multiplicity(v)}")
    for neighbor, weight in graph.successors(v):
        print(f"  -> {kmer_to_str(neighbor, k)} (weight {weight})")
    for neighbor, weight in graph.predecessors(v):
        print(f"  <- {kmer_to_str(neighbor, k)} (weight {weight})")

    # 4. The partitioned construction is exact: it equals the one-shot
    #    reference builder bit for bit.
    reference = build_reference_graph(reads, k)
    assert_graphs_equal(graph, reference, "quickstart")
    print("\nverified: ParaHash graph == reference graph")

    # 5. Filter out likely sequencing errors by multiplicity.
    filtered = graph.filter_min_multiplicity(2)
    print(f"after multiplicity >= 2 filter: {filtered.n_vertices:,} vertices "
          f"(genome has {genome.size - k + 1:,} kmers)")


if __name__ == "__main__":
    main()
