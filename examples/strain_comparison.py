#!/usr/bin/env python3
"""Alignment-free strain comparison through De Bruijn graphs.

A downstream workflow the constructed graphs enable: sequence two
related strains (here, one genome and a mutated copy with 40 SNPs),
build both graphs with ParaHash, and find the variants purely from the
vertex sets — every SNP leaves up to K private kmers in each strain.

    python examples/strain_comparison.py
"""

from repro.core import build_debruijn_graph
from repro.dna import random_genome, simulate_reads
from repro.dna.simulate import mutate_genome
from repro.graph.compare import (
    compare_graphs,
    multiplicity_correlation,
    variant_regions,
)
from repro.util import print_table

K = 21
N_SNPS = 40


def main() -> None:
    genome_a = random_genome(30_000, seed=101)
    genome_b = mutate_genome(genome_a, n_snps=N_SNPS, seed=102)
    reads_a = simulate_reads(genome_a, 6_000, 90, mean_errors=0.8, seed=103)
    reads_b = simulate_reads(genome_b, 6_000, 90, mean_errors=0.8, seed=104)
    print(f"strain A and strain B: 30 kbp, {N_SNPS} SNPs apart, "
          f"18x coverage each, ~0.9% read error rate")

    graph_a = build_debruijn_graph(reads_a, k=K, p=9, n_partitions=16)
    graph_b = build_debruijn_graph(reads_b, k=K, p=9, n_partitions=16)

    raw = compare_graphs(graph_a, graph_b)
    print_table(
        ["metric", "value"],
        [
            ["shared vertices", raw.n_shared],
            ["private to A (raw)", raw.n_only_a],
            ["private to B (raw)", raw.n_only_b],
            ["Jaccard similarity", f"{raw.jaccard:.3f}"],
            ["multiplicity correlation", f"{multiplicity_correlation(graph_a, graph_b):.3f}"],
        ],
        title="raw comparison (sequencing errors dominate the private sets)",
    )

    # Errors are each strain's own multiplicity-1 kmers; solid private
    # vertices are the real variants.
    solid_a, solid_b = variant_regions(graph_a, graph_b, min_multiplicity=3)
    # Each SNP corrupts up to K kmers per strain.
    expected_max = N_SNPS * K
    print_table(
        ["metric", "value"],
        [
            ["solid private to A", solid_a.size],
            ["solid private to B", solid_b.size],
            ["upper bound (SNPs x K)", expected_max],
            ["SNP estimate (A-private / K)", f"{solid_a.size / K:.1f}"],
        ],
        title="after multiplicity >= 3 filter (true strain differences)",
    )
    print("The solid private sets shrink to ~SNPs x K kmers per strain —\n"
          "the variants are recovered without aligning a single read.")


if __name__ == "__main__":
    main()
