#!/usr/bin/env python3
"""K-mer multiplicity spectrum: separating errors from genome content.

The paper's Property 1 predicts the graph size from the error model:
erroneous kmers are (mostly) unique, genomic kmers appear ~coverage
times.  This example builds the graph at several error rates, plots the
multiplicity spectrum as a text histogram, and compares the measured
distinct-vertex counts with the Property 1 estimate.

    python examples/kmer_spectrum.py
"""

import numpy as np

from repro.core import ParaHash, ParaHashConfig, expected_distinct_vertices
from repro.dna import DatasetProfile
from repro.graph import MULT_SLOT
from repro.util import print_table

K = 21
BAR = 48


def spectrum(graph, max_mult=20):
    mult = np.minimum(graph.counts[:, MULT_SLOT], max_mult).astype(int)
    return np.bincount(mult, minlength=max_mult + 1)


def main() -> None:
    base = DatasetProfile(
        name="spectrum",
        genome_size=15_000,
        read_length=90,
        coverage=20.0,
        mean_errors=0.0,
        repeat_fraction=0.0,
        seed=11,
    )
    config = ParaHashConfig(k=K, p=9, n_partitions=16)

    rows = []
    for lam in (0.0, 0.5, 1.0, 2.0):
        profile = DatasetProfile(**{**base.__dict__, "mean_errors": lam,
                                    "name": f"lam{lam}"})
        reads = profile.generate_reads()
        graph = ParaHash(config).build_graph(reads).graph
        estimate = expected_distinct_vertices(
            reads.n_reads, reads.read_length, K, profile.genome_size, lam
        )
        rows.append([
            f"{lam:.1f}", graph.n_vertices, f"{estimate:.0f}",
            f"{graph.n_vertices / estimate:.2f}",
        ])
        if lam == 1.0:
            hist = spectrum(graph)
            print(f"\nmultiplicity spectrum at lambda = {lam} "
                  f"(x = copies seen, bar = #vertices):")
            peak = hist[1:].max()
            for m in range(1, len(hist)):
                bar = "#" * int(BAR * hist[m] / peak)
                label = f"{m:>3}" if m < len(hist) - 1 else f"{m:>2}+"
                print(f"  {label} | {bar} {hist[m]}")
            print("  -> the spike at 1 is sequencing errors; the bump near "
                  "the coverage (20x) is the genome.")

    print()
    print_table(
        ["lambda (errors/read)", "measured distinct", "Property 1 estimate",
         "measured/estimate"],
        rows,
        title="Graph size vs error rate — Property 1 in practice",
    )
    print("The estimate is intentionally an upper-bound flavor: ParaHash "
          "sizes hash tables with it so they never resize (lambda=2 default).")


if __name__ == "__main__":
    main()
