#!/usr/bin/env python3
"""Large-K construction, graph files, and analysis.

The paper stresses that ParaHash's hash entries span multiple machine
words, so kmer lengths are not capped by a 64-bit CAS.  This example
builds the same dataset's graph at K = 27 (one-word keys) and K = 41
(two-word keys, through ``repro.bigk``), compares their structure,
round-trips the small-K graph through the binary file format, and runs
the analysis toolkit on it.

    python examples/large_k_and_formats.py
"""

import tempfile
from pathlib import Path

from repro.analysis import analyze_spectrum, degree_summary, estimate_error_rate
from repro.bigk import build_debruijn_graph_bigk
from repro.core import build_debruijn_graph
from repro.dna import DatasetProfile
from repro.graph import load_graph, save_graph
from repro.util import print_table


def main() -> None:
    profile = DatasetProfile(
        name="large-k",
        genome_size=12_000,
        read_length=100,
        coverage=18.0,
        mean_errors=1.0,
        repeat_fraction=0.0,
        seed=77,
    )
    _, reads = profile.generate()
    print(f"dataset: {reads.n_reads:,} reads x {reads.read_length} bp")

    # Same pipeline, two key widths.
    g27 = build_debruijn_graph(reads, k=27, p=11, n_partitions=16)
    g41 = build_debruijn_graph_bigk(reads, k=41, p=15, n_partitions=16)
    print_table(
        ["K", "key words", "distinct vertices", "duplicates", "edge weight"],
        [
            [27, 1, g27.n_vertices, g27.n_duplicate_vertices(),
             g27.total_edge_weight()],
            [41, 2, g41.n_vertices, g41.n_duplicate_vertices(),
             g41.total_edge_weight()],
        ],
        title="one-word vs two-word keys (same reads, same pipeline)",
    )
    print("Longer K means fewer kmers per read but more error-corrupted "
          "kmers per error — both visible above.")

    # Round-trip the K=27 graph through the binary format.
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "graph.phdbg"
        n_bytes = save_graph(path, g27)
        back = load_graph(path)
        assert back.equals(g27)
        print(f"\nbinary round trip OK: {n_bytes:,} bytes "
              f"({n_bytes / g27.n_vertices:.0f} B/vertex)")

    # Analysis toolkit on the constructed graph.
    spectrum = analyze_spectrum(g27)
    degrees = degree_summary(g27)
    est = estimate_error_rate(g27, reads.n_reads, reads.read_length)
    print_table(
        ["metric", "value"],
        [
            ["coverage peak", f"{spectrum.coverage_peak}x"],
            ["error threshold", spectrum.error_threshold],
            ["estimated genome size", spectrum.estimated_genome_size],
            ["true genome size", profile.genome_size],
            ["junction vertices", degrees.n_junctions],
            ["estimated lambda (errors/read)", f"{est.lam:.2f}"],
            ["true lambda", profile.mean_errors],
        ],
        title="spectrum / degree / error-rate analysis (K=27)",
    )


if __name__ == "__main__":
    main()
