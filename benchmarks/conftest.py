"""Shared fixtures for the benchmark harness.

Each benchmark regenerates one table or figure of the paper at
laptop scale and prints it as a text table (also saved under
``benchmarks/results/``).  Scale is adjustable with the
``REPRO_BENCH_SCALE`` environment variable (default 1.0; e.g. 0.25 for
a quick pass, 4 for a longer, smoother run).

Dataset fixtures are module-scoped and cached across benchmarks within
a session; the kernels are executed for real (the simulator only prices
the measured work).
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.core.config import ParaHashConfig
from repro.dna.simulate import BUMBLEBEE_LIKE, HUMAN_CHR14_LIKE
from repro.util.tables import render_table

RESULTS_DIR = Path(__file__).parent / "results"


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


@pytest.fixture(scope="session")
def scale() -> float:
    return bench_scale()


@pytest.fixture(scope="session")
def chr14_profile(scale):
    return HUMAN_CHR14_LIKE.scaled(scale)


@pytest.fixture(scope="session")
def bumblebee_profile(scale):
    return BUMBLEBEE_LIKE.scaled(scale)


@pytest.fixture(scope="session")
def chr14_reads(chr14_profile):
    return chr14_profile.generate_reads()


@pytest.fixture(scope="session")
def bumblebee_reads(bumblebee_profile):
    return bumblebee_profile.generate_reads()


@pytest.fixture(scope="session")
def chr14_config():
    # Paper defaults for the medium dataset: K=27, P=11.
    return ParaHashConfig(k=27, p=11, n_partitions=32, n_input_pieces=8)


@pytest.fixture(scope="session")
def bumblebee_config():
    # Paper defaults for the big dataset: K=27, P=19, more partitions.
    return ParaHashConfig(k=27, p=19, n_partitions=64, n_input_pieces=8)


@pytest.fixture(scope="session")
def chr14_workloads(chr14_reads, chr14_config):
    """Measured Step 1 + Step 2 work for the chr14-like dataset."""
    from repro.hetsim.workloads import measure_workloads

    return measure_workloads(chr14_reads, chr14_config)


@pytest.fixture(scope="session")
def bumblebee_workloads(bumblebee_reads, bumblebee_config):
    from repro.hetsim.workloads import measure_workloads

    return measure_workloads(bumblebee_reads, bumblebee_config)


NP_SWEEP = [4, 8, 16, 32, 64, 128]


@pytest.fixture(scope="session")
def chr14_step2_sweep(chr14_reads, chr14_config):
    """Measured Step 2 works for several partition counts (Figs 7/8)."""
    from repro.hetsim.workloads import measure_step1, measure_step2

    sweep = {}
    for n_partitions in NP_SWEEP:
        cfg = chr14_config.with_(n_partitions=n_partitions)
        step1 = measure_step1(chr14_reads, cfg)
        sweep[n_partitions] = measure_step2(step1.blocks, cfg)
    return sweep


def emit_report(name: str, title: str, headers, rows, notes: str = "") -> str:
    """Print a result table and persist it under benchmarks/results/."""
    table = render_table(headers, rows, title=title)
    body = table + ("\n\n" + notes if notes else "") + "\n"
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(body)
    print("\n" + body)
    return body


def run_once(benchmark, fn):
    """Register a single-shot timing with pytest-benchmark.

    The kernels here are deterministic and substantial; one round keeps
    the full benchmark suite fast while still recording a wall time.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
