"""Fig 14 — real vs estimated time, Case 2 (disk-bound).

Paper (Fig 14, Bumblebee on spinning disk, so
``T_IO > max{T_only_CPU, T_single_GPU}``): the measured elapsed time is
compared with the Equation (1) estimate

    T = max{CPU compute, GPU compute, T_IO} + (1/n)(T_in + T_out).

Shapes: in Step 1 the CPU-only configuration is compute-limited (its
MSP scan is slower than the disk), while GPU-accelerated configurations
are IO-limited and land on the estimate; in Step 2 every configuration
runs at roughly the input/output time.
"""

from __future__ import annotations

from conftest import emit_report, run_once

from repro.hetsim.device import default_cpu, default_gpu
from repro.hetsim.model import StepComponents, estimate_step_time
from repro.hetsim.transfer import spinning_disk
from repro.hetsim.workloads import STEP1_CPU_IO_SHARE, simulate_parahash

CONFIGS = [
    ("CPU", True, 0),
    ("1GPU", False, 1),
    ("2GPU", False, 2),
    ("CPU+1GPU", True, 1),
    ("CPU+2GPU", True, 2),
]


def components_for(works, use_cpu, n_gpus, disk, step1: bool):
    """Isolated Eq-(1) component times for one step and device set."""
    from dataclasses import replace

    cpu = replace(default_cpu(), io_share=STEP1_CPU_IO_SHARE if step1 else 0.0)
    gpu = default_gpu()
    share = 1.0 / (int(use_cpu) + n_gpus)  # even split approximation
    t_cpu = sum(cpu.total_seconds(w) for w in works) * share if use_cpu else 0.0
    t_gpu = sum(gpu.total_seconds(w) for w in works) * share
    t_gpus = tuple(t_gpu for _ in range(n_gpus))
    t_input = sum(disk.read_seconds(w.in_bytes) for w in works)
    t_output = sum(disk.write_seconds(w.out_bytes) for w in works)
    return StepComponents(t_cpu=t_cpu, t_gpus=t_gpus, t_input=t_input,
                          t_output=t_output, n_partitions=len(works))


def test_fig14_real_vs_estimated_case2(benchmark, bumblebee_reads,
                                       bumblebee_config, bumblebee_workloads):
    reports = {}

    def compute():
        disk = spinning_disk()
        for label, use_cpu, n_gpus in CONFIGS:
            reports[label] = simulate_parahash(
                bumblebee_reads, bumblebee_config, use_cpu=use_cpu,
                n_gpus=n_gpus, disk=disk, precomputed=bumblebee_workloads,
            )

    run_once(benchmark, compute)

    disk = spinning_disk()
    step1_wl, step2_wl = bumblebee_workloads
    rows = []
    errors = []
    for step_name, works in (("step1", step1_wl.works),
                             ("step2", step2_wl.works)):
        for label, use_cpu, n_gpus in CONFIGS:
            real = getattr(reports[label], step_name).elapsed_seconds
            c = components_for(works, use_cpu, n_gpus, disk,
                               step1=step_name == "step1")
            est = estimate_step_time(c)
            err = (real - est) / est
            io_max = max(c.t_input, c.t_output)
            compute_max = max((c.t_cpu, *c.t_gpus), default=0.0)
            rows.append([
                step_name, label, f"{real:.4f}", f"{est:.4f}",
                f"{100 * err:+.1f}%",
                "IO" if io_max > compute_max else "compute",
            ])
            errors.append((step_name, label, err, io_max > compute_max))

    emit_report(
        "fig14_model_case2",
        "Fig 14: real vs Eq-(1) estimate, Case 2 (spinning disk)",
        ["step", "config", "real (s)", "Eq(1) est (s)", "error", "bound by"],
        rows,
        notes=(
            "Paper shapes: Step 1 CPU-only is compute-bound (MSP slower than\n"
            "the disk); every GPU-accelerated configuration and all of Step 2\n"
            "run at the IO time, matching the estimate."
        ),
    )

    # Real within 30% of the Eq (1) estimate everywhere.
    for step_name, label, err, _ in errors:
        assert abs(err) < 0.30, (step_name, label, err)
    # Regime shapes: step1/CPU-only compute-bound; step1 with GPUs and
    # all step2 configs IO-bound.
    regimes = {(s, l): io for s, l, _, io in errors}
    assert regimes[("step1", "CPU")] is False
    for label in ("1GPU", "2GPU", "CPU+2GPU"):
        assert regimes[("step1", label)] is True, label
    for label, _, _ in CONFIGS:
        assert regimes[("step2", label)] is True, label
