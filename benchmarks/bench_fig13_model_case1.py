"""Fig 13 — real vs estimated time, Case 1 (compute-bound).

Paper (Fig 13, Human Chr14 from a memory-cached file, so
``T_IO << min{T_only_CPU, T_single_GPU}``): the measured elapsed times
for CPU-only, 1 GPU, 2 GPUs, CPU+1GPU and CPU+2GPU track the Equation
(2) ideal ``1 / (1/T_CPU_only + N_GPU / T_single_GPU)`` in both steps —
adding processors keeps improving performance according to their
speeds.
"""

from __future__ import annotations

from conftest import emit_report, run_once

from repro.hetsim.model import ideal_coprocessing_time
from repro.hetsim.transfer import memory_cached_disk
from repro.hetsim.workloads import simulate_parahash

CONFIGS = [
    ("CPU", True, 0),
    ("1GPU", False, 1),
    ("2GPU", False, 2),
    ("CPU+1GPU", True, 1),
    ("CPU+2GPU", True, 2),
]


def test_fig13_real_vs_estimated_case1(benchmark, chr14_reads, chr14_config,
                                       chr14_workloads):
    reports = {}

    def compute():
        disk = memory_cached_disk()
        for label, use_cpu, n_gpus in CONFIGS:
            reports[label] = simulate_parahash(
                chr14_reads, chr14_config, use_cpu=use_cpu, n_gpus=n_gpus,
                disk=disk, precomputed=chr14_workloads,
            )

    run_once(benchmark, compute)

    rows = []
    errors = []
    for step_name in ("step1", "step2"):
        t_cpu_only = getattr(reports["CPU"], step_name).elapsed_seconds
        t_single_gpu = getattr(reports["1GPU"], step_name).elapsed_seconds
        for label, use_cpu, n_gpus in CONFIGS:
            real = getattr(reports[label], step_name).elapsed_seconds
            ideal = ideal_coprocessing_time(
                t_cpu_only, t_single_gpu, n_gpus, use_cpu=use_cpu
            )
            err = (real - ideal) / ideal
            rows.append([step_name, label, f"{real:.4f}", f"{ideal:.4f}",
                         f"{100 * err:+.1f}%"])
            errors.append((step_name, label, err))

    emit_report(
        "fig13_model_case1",
        "Fig 13: real vs Eq-(2) ideal, Case 1 (memory-cached input)",
        ["step", "config", "real (s)", "ideal (s)", "error"],
        rows,
        notes=(
            "Paper shape: measured times follow the speed-additive ideal;\n"
            "offloading to more devices keeps improving performance."
        ),
    )

    # Real tracks ideal within 25% for every configuration and step.
    for step_name, label, err in errors:
        assert abs(err) < 0.25, (step_name, label, err)
    # Monotone improvement with more processors (per step totals).
    for step_name in ("step1", "step2"):
        t = {lbl: getattr(reports[lbl], step_name).elapsed_seconds
             for lbl, _, _ in CONFIGS}
        assert t["CPU+2GPU"] <= t["CPU+1GPU"] <= t["CPU"] * 1.001
        assert t["2GPU"] <= t["1GPU"] * 1.001
        assert t["CPU+1GPU"] <= t["1GPU"] * 1.001
