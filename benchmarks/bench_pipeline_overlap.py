"""Barrier vs pipelined process backend (the PR's perf gate).

Times the disk-backed two-step workflow with the ``processes`` backend
in its two driver modes on the bench-smoke shape:

* **barrier** — ``pipeline=False, preaggregate=False``: Step 1 runs to
  completion, every spill group is merged, then a second worker pool
  runs Step 2 (the PR-2 behavior);
* **pipelined** — ``pipeline=True, preaggregate=True``: one pool runs
  both steps, the parent merger finalizes partitions onto the ready
  queue while workers are still partitioning/hashing, and duplicate
  observations are collapsed into counted inserts before touching the
  shared tables.

Both graphs are verified bit-identical to a serial build, and the
report is written as ``BENCH_pipeline.json`` (CI uploads it as an
artifact and gates on it).

Standalone usage (what the ``bench-smoke`` CI job runs)::

    python benchmarks/bench_pipeline_overlap.py --smoke \
        --output BENCH_pipeline.json --check benchmarks/baselines.json

``--check`` compares the pipelined/barrier speedup against a
**core-count-aware** threshold::

    threshold = min_speedup        if cpu_count >= workers
    threshold = min_speedup_small  otherwise

On a multi-core runner the full ``min_speedup`` (1.25x) applies —
overlap plus pre-aggregation must beat the barrier by a quarter.  On a
constrained machine (e.g. a 1-core container) Step-1/Step-2 overlap
cannot buy wall-clock, so the gate falls back to ``min_speedup_small``,
which still demands that pre-aggregation and the saved second pool
spawn leave the pipelined driver no slower than the barrier one.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import time
from pathlib import Path

# Allow running the file directly from a source checkout.
_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import numpy as np

from repro.core.config import ParaHashConfig
from repro.core.parahash import ParaHash
from repro.dna.simulate import HUMAN_CHR14_LIKE

#: Worker count used for both drivers.
SMOKE_WORKERS = 4
FULL_WORKERS = 8

#: Dataset scale per mode (fraction of the chr14-like profile).
SMOKE_SCALE = 1.0
FULL_SCALE = 4.0


def _graphs_equal(a, b) -> bool:
    return (
        a.k == b.k
        and np.array_equal(a.vertices, b.vertices)
        and np.array_equal(a.counts, b.counts)
    )


def _time_build(config: ParaHashConfig, reads, repeats: int):
    """Best-of-``repeats`` disk-backed wall time; returns (seconds, graph)."""
    best = float("inf")
    graph = None
    for _ in range(repeats):
        with tempfile.TemporaryDirectory(prefix="bench-pipeline-") as work:
            t0 = time.perf_counter()
            result = ParaHash(config).build_graph(reads, workdir=work)
            best = min(best, time.perf_counter() - t0)
        graph = result.graph
    return best, graph


def measure(smoke: bool = True, repeats: int = 2,
            workers: int | None = None) -> dict:
    """Run both drivers and return the BENCH_pipeline.json payload."""
    scale = SMOKE_SCALE if smoke else FULL_SCALE
    workers = workers or (SMOKE_WORKERS if smoke else FULL_WORKERS)
    profile = HUMAN_CHR14_LIKE.scaled(scale)
    reads = profile.generate_reads()
    config = ParaHashConfig(
        k=27, p=11, n_partitions=32, n_input_pieces=8,
        backend="processes", n_workers=workers,
    )

    serial_graph = ParaHash(
        config.with_(backend="serial", pipeline=False)
    ).build_graph(reads).graph

    barrier_cfg = config.with_(pipeline=False, preaggregate=False)
    pipelined_cfg = config.with_(pipeline=True, preaggregate=True)
    barrier_seconds, barrier_graph = _time_build(barrier_cfg, reads, repeats)
    pipelined_seconds, pipelined_graph = _time_build(
        pipelined_cfg, reads, repeats
    )
    for label, graph in (("barrier", barrier_graph),
                         ("pipelined", pipelined_graph)):
        if not _graphs_equal(graph, serial_graph):
            raise AssertionError(
                f"{label} process backend produced a different graph "
                f"than the serial backend"
            )

    return {
        "benchmark": "pipeline_overlap",
        "mode": "smoke" if smoke else "full",
        "cpu_count": os.cpu_count() or 1,
        "dataset": {
            "profile": profile.name,
            "genome_size": profile.genome_size,
            "n_reads": reads.n_reads,
            "read_length": reads.read_length,
        },
        "config": {
            "k": config.k,
            "p": config.p,
            "n_partitions": config.n_partitions,
            "workers": workers,
        },
        "repeats": repeats,
        "barrier_seconds": round(barrier_seconds, 4),
        "pipelined_seconds": round(pipelined_seconds, 4),
        "speedup": round(barrier_seconds / pipelined_seconds, 4),
        "graphs_identical": True,
        "n_vertices": int(serial_graph.n_vertices),
    }


def check_against_baseline(report: dict, baseline_path: str | Path) -> list[str]:
    """Gate the report against ``benchmarks/baselines.json``.

    Returns a list of violations (empty = pass).  See the module
    docstring for the core-count-aware threshold formula.
    """
    baselines = json.loads(Path(baseline_path).read_text())
    spec = baselines["pipeline_overlap"]
    gate_workers = int(spec["workers"])
    cores = int(report.get("cpu_count") or 1)
    if cores >= gate_workers:
        threshold = float(spec["min_speedup"])
    else:
        threshold = float(spec["min_speedup_small"])
    violations: list[str] = []
    speedup = float(report["speedup"])
    if speedup < threshold:
        violations.append(
            f"pipelined/barrier speedup is {speedup:.2f}x, below the "
            f"threshold {threshold:.2f}x "
            f"(min_speedup={spec['min_speedup']}, "
            f"min_speedup_small={spec['min_speedup_small']}, "
            f"cpu_count={cores}, gate_workers={gate_workers})"
        )
    if not report.get("graphs_identical"):
        violations.append("pipelined graphs were not identical to serial")
    return violations


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="barrier vs pipelined process-backend benchmark"
    )
    parser.add_argument("--smoke", action="store_true",
                        help="small dataset + short sweep (the CI gate)")
    parser.add_argument("--repeats", type=int, default=2,
                        help="timing repeats (best-of)")
    parser.add_argument("--output", default="BENCH_pipeline.json",
                        help="where to write the JSON report")
    parser.add_argument("--check", metavar="BASELINES",
                        help="gate against a baselines.json; exit 1 on "
                             "regression")
    args = parser.parse_args(argv)

    report = measure(smoke=args.smoke, repeats=args.repeats)
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(f"barrier:   {report['barrier_seconds']:.3f}s")
    print(f"pipelined: {report['pipelined_seconds']:.3f}s "
          f"= {report['speedup']:.2f}x "
          f"({report['n_vertices']:,} vertices, "
          f"{report['cpu_count']} cores)")
    print(f"wrote {args.output}")

    if args.check:
        violations = check_against_baseline(report, args.check)
        if violations:
            for v in violations:
                print(f"REGRESSION: {v}", file=sys.stderr)
            return 1
        print("baseline check passed")
    return 0


# -- pytest mode (nightly benchmark suite) ---------------------------------------


def test_pipeline_overlap_speedup(benchmark):
    from conftest import emit_report, run_once

    report = run_once(benchmark, lambda: measure(smoke=True, repeats=1))
    emit_report(
        "pipeline_overlap",
        "Process backend: pipelined streaming vs barrier drivers",
        ["driver", "seconds"],
        [
            ["barrier", f"{report['barrier_seconds']:.3f}"],
            ["pipelined", f"{report['pipelined_seconds']:.3f}"],
        ],
        notes=(
            f"speedup {report['speedup']:.2f}x on "
            f"{report['cpu_count']} cores; graphs bit-identical to "
            f"serial."
        ),
    )
    assert report["graphs_identical"]
    # The full overlap dividend needs real cores to overlap on.
    if (os.cpu_count() or 1) >= 4:
        assert report["speedup"] >= 1.25


if __name__ == "__main__":
    sys.exit(main())
