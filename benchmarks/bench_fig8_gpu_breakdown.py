"""Fig 8 — GPU hashing time breakdown: device compute vs host-device transfer.

Paper (Fig 8): the host-device transfer time stays constant as the
number of partitions varies, "because the total size of the hash tables
is fixed, and the data transfer overhead depends on the total data
size"; the device compute portion falls as tables shrink.
"""

from __future__ import annotations

from conftest import NP_SWEEP, emit_report, run_once

from repro.hetsim.device import default_gpu


def test_fig8_gpu_time_breakdown(benchmark, chr14_step2_sweep):
    gpu = default_gpu()
    rows = []

    def compute():
        for n_partitions in NP_SWEEP:
            works = chr14_step2_sweep[n_partitions].works
            compute_t = sum(gpu.hash_seconds(w) for w in works)
            transfer_t = sum(gpu.transfer_seconds(w) for w in works)
            moved = sum(w.in_bytes + w.table_bytes for w in works)
            rows.append(
                {
                    "np": n_partitions,
                    "compute": compute_t,
                    "transfer": transfer_t,
                    "moved_mb": moved / 1e6,
                }
            )

    run_once(benchmark, compute)

    emit_report(
        "fig8_gpu_breakdown",
        "Fig 8: GPU hashing time breakdown (simulated seconds)",
        ["NP", "GPU compute (s)", "DH transfer (s)", "bytes moved (MB)"],
        [[r["np"], f"{r['compute']:.4f}", f"{r['transfer']:.4f}",
          f"{r['moved_mb']:.1f}"] for r in rows],
        notes="Paper shape: transfer stays ~constant across NP; compute falls.",
    )

    transfers = [r["transfer"] for r in rows]
    computes = [r["compute"] for r in rows]
    # Transfer approximately constant (within ~40% of its mean — table
    # capacities quantize to powers of two, which adds wobble).
    mean_t = sum(transfers) / len(transfers)
    assert all(abs(t - mean_t) / mean_t < 0.4 for t in transfers)
    # Compute falls as tables shrink into fast memory.
    assert computes[0] > computes[-1]
