"""Fig 7 — CPU hashing vs GPU hashing as the number of partitions grows.

Paper (Fig 7, Human Chr14): as the number of superkmer partitions
increases (hash tables shrink), both the 20-thread CPU hashing time and
the GPU hashing time decrease; tables under ~1 GB hash well.  Comparing
with Fig 8, the CPU-vs-GPU gap is roughly the host-device transfer time
once NP > 16 — i.e. 20 CPU cores hash about as fast as one K40 on
random accesses.
"""

from __future__ import annotations

from conftest import NP_SWEEP, emit_report, run_once

from repro.hetsim.device import default_cpu, default_gpu


def test_fig7_cpu_vs_gpu_hashing(benchmark, chr14_step2_sweep):
    cpu = default_cpu()
    gpu = default_gpu()
    rows = []

    def compute():
        for n_partitions in NP_SWEEP:
            works = chr14_step2_sweep[n_partitions].works
            cpu_t = sum(cpu.hash_seconds(w) for w in works)
            gpu_compute = sum(gpu.hash_seconds(w) for w in works)
            gpu_transfer = sum(gpu.transfer_seconds(w) for w in works)
            rows.append(
                {
                    "np": n_partitions,
                    "cpu": cpu_t,
                    "gpu": gpu_compute + gpu_transfer,
                    "gpu_transfer": gpu_transfer,
                    "max_table_mb": max(w.table_bytes for w in works) / 1e6,
                }
            )

    run_once(benchmark, compute)

    emit_report(
        "fig7_cpu_vs_gpu_hashing",
        "Fig 7: hashing time vs #partitions (simulated seconds)",
        ["NP", "CPU 20t (s)", "GPU (s)", "max table (MB)"],
        [[r["np"], f"{r['cpu']:.4f}", f"{r['gpu']:.4f}",
          f"{r['max_table_mb']:.2f}"] for r in rows],
        notes=(
            "Paper shapes: both curves fall as partitions shrink the tables;\n"
            "for NP > 16 the CPU-GPU gap approaches the transfer time (Fig 8)."
        ),
    )

    cpu_times = [r["cpu"] for r in rows]
    gpu_times = [r["gpu"] for r in rows]
    # Hashing gets faster (or no worse) as tables shrink, on both devices.
    assert cpu_times[0] > cpu_times[-1]
    assert gpu_times[0] > gpu_times[-1]
    assert all(a >= b * 0.98 for a, b in zip(cpu_times, cpu_times[1:]))
    # Comparable CPU/GPU hashing throughput (within ~3x everywhere).
    for r in rows:
        assert 1 / 3 < r["cpu"] / r["gpu"] < 3
    # For large NP the gap is mostly transfer: |cpu - gpu_compute| is
    # within ~2.5x of the transfer time once NP > 16.
    big = [r for r in rows if r["np"] > 16]
    for r in big:
        gap = abs(r["cpu"] - (r["gpu"] - r["gpu_transfer"]))
        assert gap < 2.5 * max(r["gpu_transfer"], 1e-9)
