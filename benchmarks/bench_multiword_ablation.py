"""Ablation — multi-word key overhead (one-word K=27 vs two-word K=41).

§I claims the hash entry type "is not limited by the machine word
size"; the question a practitioner asks is what the wider key costs.
This ablation runs the identical pipeline at K=27 (one 64-bit key word)
and K=41 (two words) on the same reads and compares the measured hash
work and wall time of the real Python kernels.

Expected shape: per-operation cost grows by a modest constant (a second
word compared/written per probe), not by an algorithmic factor — the
state-transfer protocol is word-count agnostic.
"""

from __future__ import annotations

import time

from conftest import emit_report, run_once

from repro.bigk.construct import build_subgraph_2w
from repro.core.subgraph import build_subgraph
from repro.msp.partitioner import partition_reads


def test_multiword_key_overhead(benchmark, chr14_reads):
    out = {}

    def compute():
        for label, k, builder in (("1-word (K=27)", 27, build_subgraph),
                                  ("2-word (K=41)", 41, build_subgraph_2w)):
            res = partition_reads(chr14_reads, k, 11, 32)
            start = time.perf_counter()
            ops = probes = inserts = 0
            for block in res.blocks:
                if block.n_superkmers == 0:
                    continue
                result = builder(block)
                ops += result.stats.ops
                probes += result.stats.probes
                inserts += result.stats.inserts
            out[label] = {
                "seconds": time.perf_counter() - start,
                "ops": ops,
                "probes": probes,
                "inserts": inserts,
            }

    run_once(benchmark, compute)

    one, two = out["1-word (K=27)"], out["2-word (K=41)"]
    per_op_1 = one["seconds"] / one["ops"]
    per_op_2 = two["seconds"] / two["ops"]
    emit_report(
        "ablation_multiword",
        "Ablation: one-word vs two-word hash keys (same reads, real wall time)",
        ["key width", "ops", "inserts", "wall (s)", "ns/op"],
        [
            ["1 word (K=27)", one["ops"], one["inserts"],
             f"{one['seconds']:.3f}", f"{per_op_1 * 1e9:.1f}"],
            ["2 words (K=41)", two["ops"], two["inserts"],
             f"{two['seconds']:.3f}", f"{per_op_2 * 1e9:.1f}"],
        ],
        notes=(
            f"Two-word per-op overhead: {per_op_2 / per_op_1:.2f}x — a "
            "constant-factor cost (extra word compared and written), not an "
            "algorithmic one; the state-transfer protocol is width-agnostic."
        ),
    )

    # The overhead is a small constant factor, not a blowup.
    assert per_op_2 / per_op_1 < 3.0
    # Both paths processed comparable observation volumes per kmer.
    assert abs(one["ops"] / chr14_reads.n_kmers(27)
               - two["ops"] / chr14_reads.n_kmers(41)) < 0.2
