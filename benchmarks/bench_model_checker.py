"""State-space growth of the protocol model checker.

Times :func:`repro.checks.model.check_model` over the two fixed
protocol models at increasing sizes and records states/transitions per
point.  The report answers two operational questions:

* which bound fits the PR-gating CI job (target: well under a minute),
  and which belongs in the nightly deep run;
* whether a model change blew up the state space (partial-order
  reduction regressed, a new action stopped commuting, ...).

The growth is exponential by nature — the benchmark gates nothing on
wall time; it gates on the *models staying verified* at every measured
size and makes the growth curve visible as an artifact::

    python benchmarks/bench_model_checker.py --output BENCH_model.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

# Allow running the file directly from a source checkout.
_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.checks.model import check_model
from repro.checks.protocols import build_model

#: (writers,) sweep for the insert model.
SMOKE_INSERT = (2, 3)
FULL_INSERT = (2, 3, 4, 5)

#: (consumers, items) sweep for the work-queue model.
SMOKE_QUEUE = ((2, 3), (3, 4))
FULL_QUEUE = ((2, 3), (3, 4), (4, 5))


def _point(protocol: str, **sizes) -> dict:
    model = build_model(protocol, **sizes)
    t0 = time.perf_counter()
    res = check_model(model, max_states=2_000_000, max_depth=10_000)
    seconds = time.perf_counter() - t0
    return {
        "model": res.model_name,
        "sizes": sizes,
        "verified": res.ok and not res.truncated,
        "states": res.states_explored,
        "transitions": res.transitions,
        "max_depth": res.max_depth_seen,
        "seconds": round(seconds, 4),
    }


def measure(smoke: bool = True) -> dict:
    insert_sweep = SMOKE_INSERT if smoke else FULL_INSERT
    queue_sweep = SMOKE_QUEUE if smoke else FULL_QUEUE
    points = [_point("insert", writers=w) for w in insert_sweep]
    points += [_point("workqueue", consumers=c, items=i)
               for c, i in queue_sweep]
    return {
        "benchmark": "model_checker",
        "mode": "smoke" if smoke else "full",
        "all_verified": all(p["verified"] for p in points),
        "points": points,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="protocol model checker state-space benchmark")
    parser.add_argument("--smoke", action="store_true",
                        help="CI-bound sizes only")
    parser.add_argument("--output", default="BENCH_model.json",
                        help="where to write the JSON report")
    args = parser.parse_args(argv)

    report = measure(smoke=args.smoke)
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    for p in report["points"]:
        sizes = ", ".join(f"{k}={v}" for k, v in p["sizes"].items())
        print(f"{p['model']:<28} ({sizes}): "
              f"{p['states']:>8,} states, {p['transitions']:>9,} "
              f"transitions, depth {p['max_depth']:>3}, "
              f"{p['seconds']:.3f}s"
              + ("" if p["verified"] else "  ** NOT VERIFIED **"))
    print(f"wrote {args.output}")
    if not report["all_verified"]:
        print("REGRESSION: a fixed model failed verification at a "
              "measured size", file=sys.stderr)
        return 1
    return 0


# -- pytest mode (nightly benchmark suite) ---------------------------------------


def test_model_checker_state_space(benchmark):
    from conftest import emit_report, run_once

    report = run_once(benchmark, lambda: measure(smoke=False))
    emit_report(
        "model_checker",
        "Protocol model checker: state-space growth (POR on)",
        ["model", "states", "transitions", "seconds"],
        [
            [p["model"], f"{p['states']:,}", f"{p['transitions']:,}",
             f"{p['seconds']:.3f}"]
            for p in report["points"]
        ],
        notes="Every point must stay verified; growth is exponential "
              "in consumers+items, so CI pins the 3c/4i bound and the "
              "nightly deep run takes 4c/5i.",
    )
    assert report["all_verified"]


if __name__ == "__main__":
    sys.exit(main())
