"""Fig 10 — CPU hashing comparison with SOAP, with time breakdown.

Paper (Fig 10): with 20 partitions and P = K (so ParaHash generates
kmers directly per partition, matching SOAP's per-thread table setup),
ParaHash's hashing beats SOAP in both components:

* **Read data** — a SOAP thread reads *every* <vertex, edge> entry and
  filters for its own table, while a ParaHash thread reads only its
  partition's entries;
* **Insertion / Update** — ParaHash's partitioned tables are small and
  cache-resident; SOAP's per-thread tables cover the whole graph.
"""

from __future__ import annotations

from conftest import emit_report, run_once

from repro.baselines.soap import READ_COST_RATIO, build_soap, simulate_soap_hashing
from repro.hetsim.device import default_cpu, locality_factor
from repro.hetsim.workloads import measure_step1, measure_step2

N_PARTITIONS = 20


def parahash_breakdown(works, cpu):
    """ParaHash CPU hashing split into read-data and insert/update.

    Threads collectively read each partition's observations once, then
    insert/update in the partition's (cache-sized) table.
    """
    read_s = 0.0
    insert_s = 0.0
    rate = cpu.hash_ops_per_sec * cpu.n_threads * cpu.parallel_efficiency
    for w in works:
        read_s += w.ops * READ_COST_RATIO / rate
        factor = locality_factor(w.table_bytes, cpu.cache_bytes, cpu.miss_penalty)
        insert_s += (w.ops + w.probes) * factor / rate
    return read_s, insert_s


def test_fig10_cpu_hashing_vs_soap(benchmark, chr14_reads, chr14_config):
    cpu = default_cpu()
    out = {}

    def compute():
        # Paper setup: NP = 20 partitions, P = K (direct kmers).
        cfg = chr14_config.with_(n_partitions=N_PARTITIONS, p=chr14_config.k)
        step1 = measure_step1(chr14_reads, cfg)
        step2 = measure_step2(step1.blocks, cfg)
        out["para_read"], out["para_insert"] = parahash_breakdown(
            step2.works, cpu
        )
        soap = build_soap(chr14_reads, cfg.k, n_threads=cpu.n_threads)
        timing = simulate_soap_hashing(soap.work, cpu)
        out["soap_read"] = timing.read_data_seconds
        out["soap_insert"] = timing.insert_update_seconds

    run_once(benchmark, compute)

    para_total = out["para_read"] + out["para_insert"]
    soap_total = out["soap_read"] + out["soap_insert"]
    emit_report(
        "fig10_hash_comparison",
        f"Fig 10: CPU hashing vs SOAP, time breakdown (NP={N_PARTITIONS}, P=K)",
        ["system", "read data (s)", "insert/update (s)", "total (s)"],
        [
            ["ParaHash", f"{out['para_read']:.4f}", f"{out['para_insert']:.4f}",
             f"{para_total:.4f}"],
            ["SOAP", f"{out['soap_read']:.4f}", f"{out['soap_insert']:.4f}",
             f"{soap_total:.4f}"],
        ],
        notes=(
            "Paper shape: ParaHash is faster on both components; SOAP's\n"
            "read-data cost reflects every thread scanning the full stream."
        ),
    )

    # ParaHash wins both components and the total (Fig 10's bars).
    assert out["para_read"] < out["soap_read"]
    assert out["para_insert"] <= out["soap_insert"] * 1.05
    assert para_total < soap_total
    # SOAP's read amplification is the dominant difference.
    assert out["soap_read"] > 3 * out["para_read"]
