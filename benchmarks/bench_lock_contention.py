"""Ablation — state-transfer partial locking vs whole-entry locking,
plus the layout x protocol contention A/B matrix.

Paper (§III-A, §III-C3): the state-transfer mechanism locks the
multi-word key once per *distinct* vertex, after which the key is
read-only and only the counters take atomic increments.  A design
without it locks the entry on every kmer access.  "Since the number of
distinct vertices is roughly 1/5 of the entire set, we reduce the
contentious lock on the keys by 80%".

This ablation takes the real hashing runs on the chr14-like dataset and
compares the key-lock counts both per kmer instance (the paper's
metric) and per hash operation (instances plus edge updates), then
prices the serialized critical sections on the simulated CPU.

Standalone usage runs the **layout x protocol A/B matrix** instead:
{flat, sharded} x {locked, lockfree} on both the threads and the
processes backend, verifying every combination builds the identical
graph and timing the per-operation insert throughput.  The sharded
layout multiplies the lock-stripe pool (one bundle per shard) and the
lock-free protocol drops the LOCKED hand-off entirely, so their
combination is the low-contention corner CI gates on::

    python benchmarks/bench_lock_contention.py --smoke \
        --output BENCH_shards.json --check benchmarks/baselines.json

The ``shards_lockfree`` baselines entry demands sharded+lockfree beat
flat+locked at the gated worker count on the processes backend
(``min_speedup`` with enough cores, ``min_speedup_small`` on
constrained machines where contention cannot be exhibited in full).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

# Allow running the file directly from a source checkout.
_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import numpy as np


def test_lock_contention_ablation(benchmark, chr14_reads, chr14_workloads):
    from conftest import emit_report, run_once

    from repro.hetsim.device import default_cpu

    _, step2 = chr14_workloads
    out = {}

    def compute():
        ops = sum(r.stats.ops for r in step2.results)
        key_locks = sum(r.stats.key_locks for r in step2.results)
        inserts = sum(r.stats.inserts for r in step2.results)
        out.update(ops=ops, key_locks=key_locks, inserts=inserts)

    run_once(benchmark, compute)

    ops, key_locks = out["ops"], out["key_locks"]
    instances = chr14_reads.n_kmers(27)
    reduction_instances = 1.0 - key_locks / instances
    reduction_ops = 1.0 - key_locks / ops
    # Price the serialized key-lock critical sections on the simulated
    # CPU: a whole-entry-locking design pays a multi-word critical
    # section per kmer instance; state transfer pays it per insertion.
    cpu = default_cpu()
    lock_cost = 4.0 / cpu.hash_ops_per_sec  # multi-word critical section
    naive_seconds = instances * lock_cost
    state_transfer_seconds = key_locks * lock_cost

    emit_report(
        "ablation_lock_contention",
        "Ablation: state-transfer locking vs whole-entry locking",
        ["metric", "whole-entry locking", "state transfer"],
        [
            ["key locks (per kmer instance)", instances, key_locks],
            ["key locks (per hash op)", ops, key_locks],
            ["serialized lock time (s)", f"{naive_seconds:.3f}",
             f"{state_transfer_seconds:.3f}"],
        ],
        notes=(
            f"Distinct/instances = {key_locks / instances:.3f} (paper: ~1/5); "
            f"key locks reduced by {100 * reduction_instances:.1f}% per kmer "
            f"instance (paper: ~80%) and {100 * reduction_ops:.1f}% per "
            "operation counting edge updates."
        ),
    )

    # The paper's 80% claim, on the paper's per-instance basis.
    assert 0.70 <= reduction_instances <= 0.90
    assert reduction_ops > reduction_instances
    # Key locks equal insertions exactly (one lock per distinct vertex).
    assert key_locks == out["inserts"]


# -- layout x protocol A/B matrix (standalone / CI gate) --------------------------

COMBOS = [("flat", "locked"), ("flat", "lockfree"),
          ("sharded", "locked"), ("sharded", "lockfree")]

#: Observation volume per mode.  The matrix times the *per-operation*
#: protocol (real locks, real atomics), not the vectorized batch path,
#: so volumes are modest.
SMOKE_OBS = 16_000
FULL_OBS = 80_000

#: Duplication ratio of the synthetic workload (paper §III-C: the
#: distinct vertices are roughly 1/5 of the kmer instances).
DUPLICATION = 5


def _observations(n_obs: int, seed: int = 7):
    rng = np.random.default_rng(seed)
    n_distinct = max(16, n_obs // DUPLICATION)
    keys = np.unique(
        rng.integers(0, 1 << 30, size=n_distinct, dtype=np.uint64))
    idx = rng.integers(0, keys.size, size=n_obs)
    slots = rng.integers(0, 9, size=n_obs).astype(np.int64)
    return keys[idx], slots


def _graphs_equal(a, b) -> bool:
    return (a.k == b.k and np.array_equal(a.vertices, b.vertices)
            and np.array_equal(a.counts, b.counts))


def _build_table(layout: str, protocol: str, capacity: int, n_shards: int):
    from repro.core.hashtable import ConcurrentHashTable

    if layout == "sharded":
        from repro.parallel.sharded import ShardedHashTable

        return ShardedHashTable(capacity, k=15, n_shards=n_shards,
                                protocol=protocol)
    return ConcurrentHashTable(capacity, k=15, protocol=protocol)


def _time_threads(layout: str, protocol: str, kmers, slots, capacity: int,
                  n_shards: int, workers: int, repeats: int):
    best, graph = float("inf"), None
    for _ in range(repeats):
        table = _build_table(layout, protocol, capacity, n_shards)
        t0 = time.perf_counter()
        table.insert_threaded(kmers, slots, n_threads=workers)
        best = min(best, time.perf_counter() - t0)
        graph = table.to_graph()
    return best, graph


def _time_processes(layout: str, protocol: str, kmers, slots, capacity: int,
                    n_shards: int, workers: int, repeats: int):
    from repro.parallel import concurrent_insert_processes

    best, graph = float("inf"), None
    for _ in range(repeats):
        t0 = time.perf_counter()
        graph, _ = concurrent_insert_processes(
            kmers, slots, k=15, capacity=capacity, n_workers=workers,
            layout=layout, protocol=protocol, n_shards=n_shards)
        best = min(best, time.perf_counter() - t0)
    return best, graph


def measure_matrix(smoke: bool = True, repeats: int = 3, workers: int = 4,
                   n_shards: int = 8) -> dict:
    """Time every (layout, protocol) combo on both concurrent backends.

    Returns the ``BENCH_shards.json`` payload.  Every combo's graph is
    verified bit-identical to the flat+locked batch reference before
    its timing is reported.
    """
    from repro.core.estimator import next_power_of_two
    from repro.core.hashtable import ConcurrentHashTable

    n_obs = SMOKE_OBS if smoke else FULL_OBS
    kmers, slots = _observations(n_obs)
    n_distinct = int(np.unique(kmers).size)
    capacity = next_power_of_two(int(n_distinct / 0.7) + 1)

    reference = ConcurrentHashTable(capacity, k=15)
    reference.insert_batch(kmers, slots)
    ref_graph = reference.to_graph()

    backends = {"threads": _time_threads, "processes": _time_processes}
    runs = []
    identical = True
    for backend, timer in backends.items():
        for layout, protocol in COMBOS:
            seconds, graph = timer(layout, protocol, kmers, slots,
                                   capacity, n_shards, workers, repeats)
            if not _graphs_equal(graph, ref_graph):
                identical = False
            runs.append({
                "backend": backend,
                "layout": layout,
                "protocol": protocol,
                "seconds": round(seconds, 4),
                "ops_per_sec": round(n_obs / seconds, 1),
            })

    def _run(backend, layout, protocol):
        return next(r for r in runs if r["backend"] == backend
                    and r["layout"] == layout and r["protocol"] == protocol)

    speedups = {
        backend: round(
            _run(backend, "flat", "locked")["seconds"]
            / _run(backend, "sharded", "lockfree")["seconds"], 4)
        for backend in backends
    }
    return {
        "benchmark": "shards_lockfree",
        "mode": "smoke" if smoke else "full",
        "cpu_count": os.cpu_count() or 1,
        "workers": workers,
        "n_shards": n_shards,
        "workload": {
            "n_observations": n_obs,
            "n_distinct": n_distinct,
            "capacity": capacity,
            "duplication": DUPLICATION,
        },
        "repeats": repeats,
        "runs": runs,
        "graphs_identical": identical,
        "speedup_sharded_lockfree_vs_flat_locked": speedups,
    }


def check_against_baseline(report: dict, baseline_path: str | Path) -> list[str]:
    """Gate the matrix report against ``benchmarks/baselines.json``.

    The gate demands sharded+lockfree beat flat+locked on the processes
    backend at the report's worker count: by ``min_speedup`` when the
    machine has at least ``workers`` cores, by ``min_speedup_small``
    otherwise (a constrained machine timeshares the workers, so the win
    is lock-acquisition volume, not parallelism).
    """
    baselines = json.loads(Path(baseline_path).read_text())
    spec = baselines[report["benchmark"]]
    violations: list[str] = []
    gate_workers = int(spec["workers"])
    if int(report["workers"]) < gate_workers:
        violations.append(
            f"matrix ran at {report['workers']} workers; the gate needs "
            f">= {gate_workers}")
        return violations
    cores = int(report.get("cpu_count") or 1)
    threshold = (float(spec["min_speedup"]) if cores >= gate_workers
                 else float(spec["min_speedup_small"]))
    speedup = float(
        report["speedup_sharded_lockfree_vs_flat_locked"]["processes"])
    if speedup < threshold:
        violations.append(
            f"sharded+lockfree over flat+locked (processes backend) is "
            f"{speedup:.2f}x, below the threshold {threshold:.2f}x "
            f"(min_speedup={spec['min_speedup']}, "
            f"min_speedup_small={spec['min_speedup_small']}, "
            f"cpu_count={cores})")
    if not report.get("graphs_identical"):
        violations.append(
            "some (layout, protocol) combo built a different graph")
    return violations


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="layout x protocol insert-contention A/B matrix")
    parser.add_argument("--smoke", action="store_true",
                        help="small observation volume (the CI gate)")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--shards", type=int, default=8)
    parser.add_argument("--repeats", type=int, default=3,
                        help="timing repeats (best-of)")
    parser.add_argument("--output", default="BENCH_shards.json",
                        help="where to write the JSON report")
    parser.add_argument("--check", metavar="BASELINES",
                        help="gate against a baselines.json; exit 1 on "
                             "regression")
    args = parser.parse_args(argv)

    report = measure_matrix(smoke=args.smoke, repeats=args.repeats,
                            workers=args.workers, n_shards=args.shards)
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    for run in report["runs"]:
        print(f"{run['backend']:>9} {run['layout']:>7}+{run['protocol']:<8} "
              f"{run['seconds']:.3f}s  {run['ops_per_sec']:>10,.0f} ops/s")
    sp = report["speedup_sharded_lockfree_vs_flat_locked"]
    print(f"sharded+lockfree vs flat+locked: "
          f"threads {sp['threads']:.2f}x, processes {sp['processes']:.2f}x")
    print(f"graphs identical across combos: {report['graphs_identical']}")
    print(f"wrote {args.output}")

    if args.check:
        violations = check_against_baseline(report, args.check)
        if violations:
            for v in violations:
                print(f"REGRESSION: {v}", file=sys.stderr)
            return 1
        print("baseline check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
