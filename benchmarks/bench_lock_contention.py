"""Ablation — state-transfer partial locking vs whole-entry locking.

Paper (§III-A, §III-C3): the state-transfer mechanism locks the
multi-word key once per *distinct* vertex, after which the key is
read-only and only the counters take atomic increments.  A design
without it locks the entry on every kmer access.  "Since the number of
distinct vertices is roughly 1/5 of the entire set, we reduce the
contentious lock on the keys by 80%".

This ablation takes the real hashing runs on the chr14-like dataset and
compares the key-lock counts both per kmer instance (the paper's
metric) and per hash operation (instances plus edge updates), then
prices the serialized critical sections on the simulated CPU.
"""

from __future__ import annotations

from conftest import emit_report, run_once

from repro.hetsim.device import default_cpu


def test_lock_contention_ablation(benchmark, chr14_reads, chr14_workloads):
    _, step2 = chr14_workloads
    out = {}

    def compute():
        ops = sum(r.stats.ops for r in step2.results)
        key_locks = sum(r.stats.key_locks for r in step2.results)
        inserts = sum(r.stats.inserts for r in step2.results)
        out.update(ops=ops, key_locks=key_locks, inserts=inserts)

    run_once(benchmark, compute)

    ops, key_locks = out["ops"], out["key_locks"]
    instances = chr14_reads.n_kmers(27)
    reduction_instances = 1.0 - key_locks / instances
    reduction_ops = 1.0 - key_locks / ops
    # Price the serialized key-lock critical sections on the simulated
    # CPU: a whole-entry-locking design pays a multi-word critical
    # section per kmer instance; state transfer pays it per insertion.
    cpu = default_cpu()
    lock_cost = 4.0 / cpu.hash_ops_per_sec  # multi-word critical section
    naive_seconds = instances * lock_cost
    state_transfer_seconds = key_locks * lock_cost

    emit_report(
        "ablation_lock_contention",
        "Ablation: state-transfer locking vs whole-entry locking",
        ["metric", "whole-entry locking", "state transfer"],
        [
            ["key locks (per kmer instance)", instances, key_locks],
            ["key locks (per hash op)", ops, key_locks],
            ["serialized lock time (s)", f"{naive_seconds:.3f}",
             f"{state_transfer_seconds:.3f}"],
        ],
        notes=(
            f"Distinct/instances = {key_locks / instances:.3f} (paper: ~1/5); "
            f"key locks reduced by {100 * reduction_instances:.1f}% per kmer "
            f"instance (paper: ~80%) and {100 * reduction_ops:.1f}% per "
            "operation counting edge updates."
        ),
    )

    # The paper's 80% claim, on the paper's per-instance basis.
    assert 0.70 <= reduction_instances <= 0.90
    assert reduction_ops > reduction_instances
    # Key locks equal insertions exactly (one lock per distinct vertex).
    assert key_locks == out["inserts"]
