"""Table III — end-to-end comparison with SOAP-style and bcalm2-style.

Paper (Table III):

    System             Chr14 time  Chr14 mem   Bumblebee time  mem
    bcalm2                   1124       3 GB            18101  5 GB
    SOAP                      159      16 GB               NA    NA
    ParaHash-CPU              132       2 GB             1992  4 GB
    ParaHash-2GPU              72       2 GB             1770  4 GB
    ParaHash-CPU-2GPU          49       2 GB             2013  4 GB

Shapes to reproduce:

* ordering on the chr14-like dataset: ParaHash variants < SOAP < bcalm;
* adding GPUs shortens chr14-like times; ParaHash-CPU-2GPU is ~3x SOAP
  and >= ~9x faster than bcalm;
* SOAP cannot run the bumblebee-like dataset within the simulated host
  memory budget (NA);
* on the IO-bound bumblebee-like dataset the ParaHash variants bunch
  together (disk dominates; CPU-2GPU may even trail 2GPU slightly);
* ParaHash's memory stays flat and small versus SOAP's whole-input
  footprint.

All kernels run for real; times come from the calibrated device/disk
simulator.  The simulated host memory budget is set to 2.5x the SOAP
chr14-like footprint, mirroring the paper's 64 GB host that fits
SOAP/Chr14 (16 GB) but not SOAP/Bumblebee (~160 GB needed).
"""

from __future__ import annotations

from conftest import emit_report, run_once

from repro.baselines.bcalm import build_bcalm, simulate_bcalm
from repro.baselines.soap import build_soap, simulate_soap_hashing
from repro.hetsim.device import default_cpu
from repro.hetsim.transfer import memory_cached_disk, spinning_disk
from repro.hetsim.workloads import simulate_parahash

#: Cost of generating a kmer observation in memory relative to hashing
#: it (SOAP's pre-hashing kmer generation stage).
GENERATION_COST_RATIO = 0.1


def soap_total_seconds(result, cpu) -> float:
    generation = (
        result.work.n_observations
        * GENERATION_COST_RATIO
        / (cpu.hash_ops_per_sec * cpu.n_threads * cpu.parallel_efficiency)
    )
    return generation + simulate_soap_hashing(result.work, cpu).total_seconds


def parahash_peak_bytes(workloads) -> int:
    _, step2 = workloads
    return max(w.table_bytes + w.in_bytes for w in step2.works)


def run_dataset(reads, config, workloads, disk):
    cpu = default_cpu()
    rows = {}
    soap = build_soap(reads, config.k, n_threads=cpu.n_threads)
    rows["SOAP"] = (soap_total_seconds(soap, cpu), soap.work.peak_memory_bytes)
    bcalm = build_bcalm(reads, config.k, p=config.p,
                        n_partitions=config.n_partitions)
    rows["bcalm2"] = (
        simulate_bcalm(bcalm.work, cpu, disk),
        bcalm.work.peak_memory_bytes,
    )
    peak = parahash_peak_bytes(workloads)
    for label, use_cpu, n_gpus in [
        ("ParaHash-CPU", True, 0),
        ("ParaHash-2GPU", False, 2),
        ("ParaHash-CPU-2GPU", True, 2),
    ]:
        report = simulate_parahash(reads, config, use_cpu=use_cpu,
                                   n_gpus=n_gpus, disk=disk,
                                   precomputed=workloads)
        rows[label] = (report.total_seconds, peak)
    return rows


def test_table3_assembler_comparison(
    benchmark,
    chr14_reads, chr14_config, chr14_workloads,
    bumblebee_reads, bumblebee_config, bumblebee_workloads,
):
    results = {}

    def run_all():
        # Chr14-class input is memory-cached (paper Case 1); the big
        # dataset streams from spinning disk (paper Case 2).
        results["chr14"] = run_dataset(
            chr14_reads, chr14_config, chr14_workloads, memory_cached_disk()
        )
        results["bumblebee"] = run_dataset(
            bumblebee_reads, bumblebee_config, bumblebee_workloads,
            spinning_disk(),
        )

    run_once(benchmark, run_all)
    chr14 = results["chr14"]
    bumble = results["bumblebee"]

    # Simulated host memory budget (see module docstring).
    budget = 2.5 * chr14["SOAP"][1]
    soap_bumble_fits = bumble["SOAP"][1] <= budget

    order = ["bcalm2", "SOAP", "ParaHash-CPU", "ParaHash-2GPU", "ParaHash-CPU-2GPU"]
    table_rows = []
    for name in order:
        t14, m14 = chr14[name]
        tb, mb = bumble[name]
        if name == "SOAP" and not soap_bumble_fits:
            tb_s, mb_s = "NA", "NA"
        else:
            tb_s, mb_s = f"{tb:.3f}", f"{mb / 1e6:.1f}"
        table_rows.append(
            [name, f"{t14:.3f}", f"{m14 / 1e6:.1f}", tb_s, mb_s]
        )
    emit_report(
        "table3_assemblers",
        "Table III: performance comparison (simulated seconds / peak MB)",
        ["system", "chr14 time (s)", "chr14 mem (MB)",
         "bumblebee time (s)", "bumblebee mem (MB)"],
        table_rows,
        notes=(
            f"Host memory budget = {budget / 1e6:.1f} MB (2.5x SOAP chr14 "
            "footprint); SOAP exceeds it on the bumblebee-like dataset, "
            "matching the paper's NA.\n"
            f"Speedups vs chr14: SOAP/ParaHash-CPU-2GPU = "
            f"{chr14['SOAP'][0] / chr14['ParaHash-CPU-2GPU'][0]:.1f}x, "
            f"bcalm2/ParaHash-CPU-2GPU = "
            f"{chr14['bcalm2'][0] / chr14['ParaHash-CPU-2GPU'][0]:.1f}x, "
            f"bcalm2/ParaHash (bumblebee) = "
            f"{bumble['bcalm2'][0] / bumble['ParaHash-CPU-2GPU'][0]:.1f}x"
        ),
    )

    # --- shape assertions -------------------------------------------------
    # Chr14: ParaHash-CPU beats SOAP beats bcalm2.
    assert chr14["ParaHash-CPU"][0] < chr14["SOAP"][0] < chr14["bcalm2"][0]
    # GPUs shorten chr14 times monotonically.
    assert chr14["ParaHash-CPU-2GPU"][0] < chr14["ParaHash-2GPU"][0]
    assert chr14["ParaHash-2GPU"][0] < chr14["ParaHash-CPU"][0]
    # Headline factors: several-fold vs SOAP, an order of magnitude vs
    # bcalm2 (paper: 3x and 20x).
    assert chr14["SOAP"][0] / chr14["ParaHash-CPU-2GPU"][0] > 2.0
    assert chr14["bcalm2"][0] / chr14["ParaHash-CPU-2GPU"][0] > 9.0
    # SOAP cannot run the big dataset.
    assert not soap_bumble_fits
    # Bumblebee is IO-bound: ParaHash configs within ~40% of each other.
    pb = [bumble[n][0] for n in
          ("ParaHash-CPU", "ParaHash-2GPU", "ParaHash-CPU-2GPU")]
    assert max(pb) / min(pb) < 1.6
    # bcalm2 several-fold slower on the big dataset too (paper: 9-10x).
    assert bumble["bcalm2"][0] / min(pb) > 4.0
    # ParaHash memory well below SOAP's.
    assert chr14["ParaHash-CPU"][1] < 0.5 * chr14["SOAP"][1]
