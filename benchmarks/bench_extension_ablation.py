"""Ablation — superkmer adjacency extensions (ParaHash's MSP fix).

The original MSP algorithm "lost information for recording adjacent
vertices. As such, the final De Bruijn graph cannot be constructed from
the superkmers" (§III-B); ParaHash appends two extra base pairs per
superkmer to fix it.  This ablation builds the graph both ways and
quantifies exactly what the extensions buy:

* with extensions: the partitioned union equals the reference graph;
* without: every edge that crosses a superkmer boundary is lost — the
  vertex set and multiplicities survive, but a large share of the edge
  weight disappears (more at larger P, where superkmers fragment more).
"""

from __future__ import annotations

import numpy as np
from conftest import emit_report, run_once

from repro.core.subgraph import build_subgraph_sortmerge
from repro.graph.build import build_reference_graph
from repro.graph.merge import merge_disjoint
from repro.msp.partitioner import partition_reads
from repro.msp.records import NO_EXT, SuperkmerBlock


def strip_extensions(block: SuperkmerBlock) -> SuperkmerBlock:
    """The original-MSP variant: no adjacency context."""
    return SuperkmerBlock(
        k=block.k,
        bases=block.bases,
        offsets=block.offsets,
        left_ext=np.full(block.n_superkmers, NO_EXT, dtype=np.int8),
        right_ext=np.full(block.n_superkmers, NO_EXT, dtype=np.int8),
    )


def test_extension_ablation(benchmark, chr14_reads, chr14_config):
    out = {}

    def compute():
        k = chr14_config.k
        ref = build_reference_graph(chr14_reads, k)
        rows = []
        for p in (7, 11, 15):
            res = partition_reads(chr14_reads, k, p, chr14_config.n_partitions)
            with_ext = merge_disjoint([
                build_subgraph_sortmerge(b) for b in res.blocks if b.n_superkmers
            ])
            without_ext = merge_disjoint([
                build_subgraph_sortmerge(strip_extensions(b))
                for b in res.blocks if b.n_superkmers
            ])
            rows.append({
                "p": p,
                "ref_weight": ref.total_edge_weight(),
                "with": with_ext.total_edge_weight(),
                "without": without_ext.total_edge_weight(),
                "exact": with_ext.equals(ref),
                "vertices_ok": without_ext.n_vertices == ref.n_vertices,
                "mult_ok": (without_ext.total_kmer_instances()
                            == ref.total_kmer_instances()),
            })
        out["rows"] = rows

    run_once(benchmark, compute)
    rows = out["rows"]

    emit_report(
        "ablation_extensions",
        "Ablation: superkmer adjacency extensions (the +2 bp of §III-B)",
        ["P", "reference edge wt", "with ext", "without ext", "lost"],
        [
            [r["p"], r["ref_weight"], r["with"], r["without"],
             f"{100 * (1 - r['without'] / r['ref_weight']):.1f}%"]
            for r in rows
        ],
        notes=(
            "Without the two extension base pairs the vertex set and\n"
            "multiplicities survive, but every boundary-crossing edge is\n"
            "lost — the graph cannot be reconstructed, which is exactly the\n"
            "defect of the original MSP output that ParaHash fixes."
        ),
    )

    for r in rows:
        # With extensions: exact reconstruction.
        assert r["exact"], r["p"]
        # Without: vertices and multiplicities intact, edges lost.
        assert r["vertices_ok"] and r["mult_ok"]
        assert r["without"] < r["ref_weight"]
    # Fragmentation grows with P, so the loss grows with P.
    losses = [1 - r["without"] / r["ref_weight"] for r in rows]
    assert losses[0] < losses[-1]
    # The loss is substantial (the fix matters): > 5% of all edge weight.
    assert losses[-1] > 0.05
