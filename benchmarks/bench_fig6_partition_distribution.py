"""Fig 6 — distribution of superkmers and kmers vs minimizer length P.

Paper (Fig 6, Human Chr14, 32 partitions): as P grows from 5 to 17, the
variance of partition sizes decreases significantly while the total
number of superkmers increases (shorter superkmers).  The paper
therefore sets P >= 11.
"""

from __future__ import annotations

from conftest import emit_report, run_once

from repro.msp.stats import sweep_minimizer_length

P_VALUES = [5, 7, 9, 11, 13, 15, 17]
N_PARTITIONS = 32


def test_fig6_partition_distribution(benchmark, chr14_reads, chr14_config):
    dists = run_once(
        benchmark,
        lambda: sweep_minimizer_length(
            chr14_reads, chr14_config.k, P_VALUES, N_PARTITIONS
        ),
    )

    rows = [
        [
            d.p,
            d.total_superkmers,
            f"{d.mean_superkmer_length:.1f}",
            f"{d.kmer_cv:.3f}",
            d.max_kmers,
        ]
        for d in dists
    ]
    emit_report(
        "fig6_partition_distribution",
        f"Fig 6: superkmer/kmer distribution vs P (K={chr14_config.k}, "
        f"NP={N_PARTITIONS})",
        ["P", "#superkmers", "mean sk length", "kmer CV", "max kmers/part"],
        rows,
        notes=(
            "Paper shapes: #superkmers grows with P (more fragmentation);\n"
            "partition-size dispersion (CV) falls sharply from P=5 to P=17."
        ),
    )

    counts = [d.total_superkmers for d in dists]
    cvs = [d.kmer_cv for d in dists]
    # Superkmer count strictly increases with P.
    assert all(a < b for a, b in zip(counts, counts[1:]))
    # Dispersion at P=17 is far below P=5 (paper: variance collapses).
    assert cvs[-1] < 0.5 * cvs[0]
    # Mean superkmer length decreases.
    lengths = [d.mean_superkmer_length for d in dists]
    assert all(a >= b for a, b in zip(lengths, lengths[1:]))
    # Kmer totals are invariant to P.
    assert len({d.total_kmers for d in dists}) == 1
