"""Fig 12 — time breakdown without pipeline vs elapsed time with pipeline.

Paper (Fig 12): comparing the accumulated time of the non-pipelined
stages (Input + CPU Compute + Output) against the pipelined elapsed
time, in both steps and on both datasets:

* pipelining significantly improves performance when IO does not
  dominate (Human Chr14);
* when IO dominates (Bumblebee), the elapsed time is still cut roughly
  in half, because input and output overlap each other and computation
  hides inside the transfer.
"""

from __future__ import annotations

from conftest import emit_report, run_once

from repro.hetsim.device import default_cpu
from repro.hetsim.pipeline import simulate_step, simulate_step_non_pipelined
from repro.hetsim.transfer import spinning_disk


def test_fig12_pipelining(benchmark, chr14_workloads, bumblebee_workloads):
    rows = []
    ratios = {}

    def compute():
        cpu = default_cpu()
        # Both datasets stream from disk here (the paper's Fig 12 setup
        # measures the stages including real disk IO on both datasets;
        # the memory-cached configuration belongs to Fig 13).
        for name, workloads, disk in (
            ("chr14", chr14_workloads, spinning_disk()),
            ("bumblebee", bumblebee_workloads, spinning_disk()),
        ):
            step1, step2 = workloads
            for step_name, works in (("step1", step1.works),
                                     ("step2", step2.works)):
                t_in, t_compute, t_out = simulate_step_non_pipelined(
                    works, [cpu], disk
                )
                pipelined = simulate_step(works, [cpu], disk).elapsed_seconds
                stage_sum = t_in + t_compute + t_out
                rows.append([
                    name, step_name, f"{t_in:.4f}", f"{t_compute:.4f}",
                    f"{t_out:.4f}", f"{stage_sum:.4f}", f"{pipelined:.4f}",
                    f"{pipelined / stage_sum:.2f}",
                ])
                ratios[(name, step_name)] = pipelined / stage_sum

    run_once(benchmark, compute)

    emit_report(
        "fig12_pipelining",
        "Fig 12: non-pipelined stage sum vs pipelined elapsed (CPU, sim s)",
        ["dataset", "step", "input", "compute", "output", "stage sum",
         "pipelined", "ratio"],
        rows,
        notes=(
            "Paper shapes: pipelined < stage sum everywhere; on the IO-bound\n"
            "dataset the saving approaches half (input overlaps output)."
        ),
    )

    # Pipelining always helps.
    assert all(r < 1.0 for r in ratios.values())
    # Chr14 (compute-bound): meaningful saving in both steps.
    assert ratios[("chr14", "step1")] < 0.9
    assert ratios[("chr14", "step2")] < 0.9
    # Bumblebee (IO-bound): elapsed time around half the stage sum.
    assert ratios[("bumblebee", "step1")] < 0.75
    assert ratios[("bumblebee", "step2")] < 0.75
