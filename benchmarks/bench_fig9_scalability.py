"""Fig 9 — concurrent CPU hashing scalability in the thread count.

Paper (Fig 9): hashing time vs threads 1..20 fits
``log(y) = a log(x) + b`` with a ≈ -1 for x >= 2 — near-linear scaling
despite data contention, because state-transfer locking serializes only
one key write per *distinct* vertex.

Here the thread sweep prices the measured hashing work (ops, probes,
and the contended insertions from the real run's HashStats) on the
simulated CPU at each thread count, then fits the same log-log model.
A real-thread correctness run (threads produce the identical graph) is
covered by the test suite; Python's GIL makes wall-clock thread scaling
unobservable, which is exactly what the calibrated device model is for.
"""

from __future__ import annotations

from conftest import emit_report, run_once

from repro.hetsim.device import default_cpu
from repro.util.timing import fit_loglog_slope

THREADS = [1, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20]


def test_fig9_cpu_hashing_scalability(benchmark, chr14_workloads):
    _, step2 = chr14_workloads
    cpu = default_cpu()
    rows = []

    def compute():
        for n_threads in THREADS:
            total = 0.0
            for work, result in zip(step2.works, step2.results):
                # Serialized work = expected concurrent lock collisions.
                # With state transfer a key is locked once per distinct
                # vertex; a second thread collides only if it touches the
                # same slot during that short write, whose probability is
                # ~ n_threads / capacity per insertion — a sub-percent
                # effect here, which is exactly why the paper measures
                # near-linear scaling despite the shared table.
                collision_prob = min(1.0, n_threads / result.capacity)
                contended = int(result.stats.key_locks * collision_prob)
                total += cpu.hash_seconds_with_threads(
                    work, n_threads, contention_ops=contended
                )
            rows.append((n_threads, total))

    run_once(benchmark, compute)

    xs = [t for t, _ in rows if t >= 2]
    ys = [y for t, y in rows if t >= 2]
    slope, intercept = fit_loglog_slope(xs, ys)

    emit_report(
        "fig9_scalability",
        "Fig 9: CPU hashing time vs thread count (simulated seconds)",
        ["threads", "hashing time (s)", "speedup vs 1t"],
        [[t, f"{y:.4f}", f"{rows[0][1] / y:.2f}x"] for t, y in rows],
        notes=(
            f"log-log fit over threads >= 2: slope a = {slope:.3f} "
            f"(paper: a close to -1), intercept b = {intercept:.3f}."
        ),
    )

    # The paper's headline: a is close to -1.
    assert -1.05 <= slope <= -0.85
    # Monotone decreasing.
    times = [y for _, y in rows]
    assert all(a > b for a, b in zip(times, times[1:]))
    # 20 threads at least 12x faster than 1 thread.
    assert times[0] / times[-1] > 12
