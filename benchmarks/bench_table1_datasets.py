"""Table I — test dataset properties.

Paper (Table I):

    Genome                         Human Chr14   Bumblebee
    Fastq file size (GB)                   9.4          92
    Read length (bp)                       101         124
    # Reads (Million)                       37         303
    Genome size (Mbp)                       88         250
    # Distinct vertices (Million)          452       4,951
    # Duplicate vertices (Million)       2,725      29,391

We regenerate the same table for the scaled synthetic analogues.  The
shape to reproduce: duplicates outnumber distinct vertices several-fold,
and the bumblebee-like graph is several times the chr14-like graph.
"""

from __future__ import annotations

from conftest import emit_report, run_once

from repro.core.parahash import ParaHash
from repro.hetsim.workloads import fastq_bytes

K = 27


def _dataset_row(profile, reads, config):
    result = ParaHash(config).build_graph(reads)
    graph = result.graph
    return {
        "genome": profile.name,
        "fastq_mb": fastq_bytes(reads.n_reads, reads.read_length) / 1e6,
        "read_length": reads.read_length,
        "n_reads": reads.n_reads,
        "genome_size": profile.genome_size,
        "distinct": graph.n_vertices,
        "duplicates": graph.n_duplicate_vertices(),
    }


def test_table1_dataset_properties(
    benchmark, chr14_profile, chr14_reads, chr14_config,
    bumblebee_profile, bumblebee_reads, bumblebee_config,
):
    rows = []

    def build_all():
        rows.append(_dataset_row(chr14_profile, chr14_reads, chr14_config))
        rows.append(_dataset_row(bumblebee_profile, bumblebee_reads, bumblebee_config))

    run_once(benchmark, build_all)
    chr14, bumblebee = rows

    emit_report(
        "table1_datasets",
        "Table I: test dataset properties (scaled synthetic analogues)",
        ["property", chr14["genome"], bumblebee["genome"]],
        [
            ["Fastq file size (MB)", chr14["fastq_mb"], bumblebee["fastq_mb"]],
            ["Read length (bp)", chr14["read_length"], bumblebee["read_length"]],
            ["# Reads", chr14["n_reads"], bumblebee["n_reads"]],
            ["Genome size (bp)", chr14["genome_size"], bumblebee["genome_size"]],
            ["# Distinct vertices", chr14["distinct"], bumblebee["distinct"]],
            ["# Duplicate vertices", chr14["duplicates"], bumblebee["duplicates"]],
        ],
        notes=(
            "Paper shapes checked: duplicates exceed distinct vertices on both\n"
            "datasets, and the bumblebee-like graph is several times larger."
        ),
    )

    # Shape assertions (the reproduction criteria).
    for row in rows:
        assert row["duplicates"] > row["distinct"], row["genome"]
    assert bumblebee["distinct"] > 2.5 * chr14["distinct"]
    assert bumblebee["fastq_mb"] > 3 * chr14["fastq_mb"]
