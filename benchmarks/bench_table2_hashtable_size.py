"""Table II — hash table size vs number of superkmer partitions.

Paper (Table II, Human Chr14, P=11):

    NP        16   32   64  128  256  512  960
    #Kmers   170   85   43   21   11    5    3   (Million per partition)
    Size    5400 2600 1400  700  320  160   90   (max MB per partition)

Shape to reproduce: per-partition kmer count and maximum hash-table
size fall roughly inversely with the number of partitions.
"""

from __future__ import annotations

import numpy as np
from conftest import emit_report, run_once

from repro.core.estimator import SizingPolicy
from repro.msp.stats import sweep_n_partitions

NP_VALUES = [4, 8, 16, 32, 64, 128, 256]


def test_table2_hash_table_size(benchmark, chr14_reads, chr14_config):
    policy = SizingPolicy(lam=2.0, alpha=0.7)
    dists = run_once(
        benchmark,
        lambda: sweep_n_partitions(
            chr14_reads, chr14_config.k, chr14_config.p, NP_VALUES
        ),
    )

    mean_kmers = [float(np.mean(d.kmers)) for d in dists]
    max_tables_mb = [
        policy.table_bytes(d.max_kmers) / 1e6 for d in dists
    ]
    emit_report(
        "table2_hashtable_size",
        f"Table II: hash table size vs #partitions ({chr14_reads.n_reads} reads, "
        f"K={chr14_config.k}, P={chr14_config.p})",
        ["NP"] + [str(n) for n in NP_VALUES],
        [
            ["#Kmers/partition (K)"] + [f"{v / 1e3:.0f}" for v in mean_kmers],
            ["Max table size (MB)"] + [f"{v:.2f}" for v in max_tables_mb],
        ],
        notes="Both rows fall roughly inversely with NP (paper Table II).",
    )

    # Shape: monotone decrease, roughly inverse proportionality.
    assert all(a > b for a, b in zip(mean_kmers, mean_kmers[1:]))
    assert all(a >= b for a, b in zip(max_tables_mb, max_tables_mb[1:]))
    # Doubling NP should roughly halve the mean partition size.
    for a, b in zip(mean_kmers, mean_kmers[1:]):
        assert 1.7 <= a / b <= 2.3
