"""Fig 11 — workload distribution with co-processing.

Paper (Fig 11): per-processor elapsed times in both steps are close to
each other (left figure), and the fraction of reads (Step 1) / vertices
(Step 2) each processor consumed matches the speed-proportional ideal
(right figure), with hashing matching the ideal more closely than the
MSP step — in Step 1 the CPU also parses IO, so it computes less.
"""

from __future__ import annotations

from conftest import emit_report, run_once

from repro.hetsim.model import ideal_workload_shares
from repro.hetsim.transfer import memory_cached_disk
from repro.hetsim.workloads import simulate_parahash


def test_fig11_workload_distribution(benchmark, chr14_reads, chr14_config,
                                     chr14_workloads):
    out = {}

    def compute():
        disk = memory_cached_disk()

        def sim(use_cpu, n_gpus):
            return simulate_parahash(
                chr14_reads, chr14_config, use_cpu=use_cpu, n_gpus=n_gpus,
                disk=disk, precomputed=chr14_workloads,
            )

        out["cpu_only"] = sim(True, 0)
        out["gpu_only"] = sim(False, 1)
        out["co1"] = sim(True, 1)
        out["co2"] = sim(True, 2)

    run_once(benchmark, compute)

    cpu_only, gpu_only = out["cpu_only"], out["gpu_only"]
    rows = []
    checks = []
    for label, report, n_gpus in (("CPU+1GPU", out["co1"], 1),
                                  ("CPU+2GPU", out["co2"], 2)):
        for step_name, step, c_base, g_base in (
            ("step1", report.step1, cpu_only.step1, gpu_only.step1),
            ("step2", report.step2, cpu_only.step2, gpu_only.step2),
        ):
            ideal = ideal_workload_shares(
                c_base.elapsed_seconds, g_base.elapsed_seconds, n_gpus
            )
            real = step.workload_shares()
            busy = {n: u.busy_seconds for n, u in step.usage.items()}
            for device in real:
                rows.append([
                    label, step_name, device,
                    f"{busy[device]:.4f}",
                    f"{real[device]:.3f}", f"{ideal[device]:.3f}",
                ])
                checks.append((label, step_name, device,
                               real[device], ideal[device]))

    emit_report(
        "fig11_workload_distribution",
        "Fig 11: per-device busy time and workload share, real vs ideal",
        ["config", "step", "device", "busy (s)", "real share", "ideal share"],
        rows,
        notes=(
            "Paper shapes: device busy times are close within a step; real\n"
            "shares track the speed-proportional ideal, best in hashing."
        ),
    )

    # Real share within 0.15 of the ideal everywhere (Fig 11 right).
    step2_err = []
    step1_err = []
    for label, step_name, device, real, ideal in checks:
        assert abs(real - ideal) < 0.15, (label, step_name, device)
        (step2_err if step_name == "step2" else step1_err).append(
            abs(real - ideal)
        )
    # Hashing matches the ideal at least as well as Step 1 on average.
    assert sum(step2_err) / len(step2_err) <= sum(step1_err) / len(step1_err) + 0.02
    # Busy times of co-processors are balanced within a step (left fig).
    for report in (out["co1"], out["co2"]):
        for step in (report.step1, report.step2):
            busies = [u.busy_seconds for u in step.usage.values()]
            assert max(busies) < 3.5 * max(min(busies), 1e-9)
