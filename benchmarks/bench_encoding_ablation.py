"""Ablation — 2-bit encoded partitions vs text, and superkmer compaction.

Paper claims quantified here:

* §III-B: "Our encoded output in the MSP step cuts the storage space to
  about 1/4 of the size of the non-encoded counterpart".
* §III-B: a superkmer compacts M adjacent kmers from O(MK) to O(M+K)
  space — the reason MSP output stays near the input size instead of
  blowing up by a factor of K.
"""

from __future__ import annotations

from conftest import emit_report, run_once

from repro.msp.partitioner import partition_reads


def test_encoding_and_compaction_ablation(benchmark, chr14_reads, chr14_config):
    out = {}

    def compute():
        res = partition_reads(chr14_reads, chr14_config.k, chr14_config.p,
                              chr14_config.n_partitions)
        encoded = sum(b.byte_size_encoded() for b in res.blocks)
        text = sum(b.byte_size_text() for b in res.blocks)
        kmer_bases = res.total_kmers() * chr14_config.k  # per-kmer storage
        superkmer_bases = sum(b.total_bases() for b in res.blocks)
        out.update(encoded=encoded, text=text, kmer_bases=kmer_bases,
                   superkmer_bases=superkmer_bases,
                   input_bases=chr14_reads.total_bases)

    run_once(benchmark, compute)

    ratio = out["encoded"] / out["text"]
    compaction = out["superkmer_bases"] / out["kmer_bases"]
    emit_report(
        "ablation_encoding",
        "Ablation: partition encoding and superkmer compaction",
        ["representation", "bytes/bases", "vs baseline"],
        [
            ["text partitions (bytes)", out["text"], "1.00"],
            ["2-bit encoded partitions (bytes)", out["encoded"], f"{ratio:.3f}"],
            ["per-kmer storage (bases)", out["kmer_bases"], "1.00"],
            ["superkmer storage (bases)", out["superkmer_bases"],
             f"{compaction:.3f}"],
            ["raw input (bases)", out["input_bases"],
             f"{out['superkmer_bases'] / out['input_bases']:.3f}"],
        ],
        notes=(
            "Paper shapes: encoding cuts partition bytes to ~1/4 of text;\n"
            "superkmers store far fewer bases than per-kmer output and stay\n"
            "within a small factor of the raw input."
        ),
    )

    # ~1/4 of the text size; per-record framing (3 bytes of length +
    # extension flags) keeps the measured ratio a little above 0.25.
    assert 0.24 <= ratio <= 0.35
    # Superkmer compaction: an order of magnitude below per-kmer storage.
    assert compaction < 0.2
    # And within a small factor of the input read bases.
    assert out["superkmer_bases"] < 4 * out["input_bases"]
