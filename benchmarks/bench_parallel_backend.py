"""Serial vs process-backend end-to-end build (the PR's perf gate).

Times the full two-step workflow (`ParaHash.build_graph`) with the
``serial`` backend and with the ``processes`` backend at several worker
counts, verifies every parallel graph is bit-identical to the serial
one, and writes a machine-readable ``BENCH_parallel.json`` that CI
uploads as an artifact and gates on.

Standalone usage (what the ``bench-smoke`` CI job runs)::

    python benchmarks/bench_parallel_backend.py --smoke \
        --output BENCH_parallel.json --check benchmarks/baselines.json

``--k 45`` (any k > 31) switches to the two-word big-k sweep: a smaller
input (two-word tables double the key traffic), ``bigk_processes``
baselines entry, ``BENCH_bigk.json`` artifact::

    python benchmarks/bench_parallel_backend.py --smoke --k 45 \
        --output BENCH_bigk.json --check benchmarks/baselines.json

``--check`` compares the measured speedup at the baseline's worker
count against a **core-count-aware** threshold::

    threshold = min_speedup                      if cpu_count >= workers
    threshold = min_speedup_per_core * cpu_count otherwise

On a multi-core CI runner this enforces the full ``min_speedup`` (2x at
4 workers); on a constrained machine (e.g. a 1-core container, where no
amount of process parallelism can beat serial) it degrades to bounding
the backend's *overhead* instead of failing vacuously.

As a pytest benchmark (nightly suite) the same measurement runs under
``pytest-benchmark``; the speedup assertion applies only when the
machine has enough cores for it to be meaningful.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

# Allow running the file directly from a source checkout.
_SRC = Path(__file__).resolve().parent.parent / "src"
if _SRC.is_dir() and str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

import numpy as np

from repro.core.config import ParaHashConfig
from repro.core.parahash import ParaHash
from repro.dna.simulate import HUMAN_CHR14_LIKE

#: Worker counts swept per mode.
SMOKE_WORKERS = [1, 2, 4]
FULL_WORKERS = [1, 2, 4, 8]

#: Dataset scale per mode (fraction of the chr14-like profile).
SMOKE_SCALE = 1.0
FULL_SCALE = 4.0


#: Dataset scale for the big-k (k > 31) sweep: two-word tables double
#: the key traffic, so the gate runs on a smaller input to stay within
#: the CI smoke budget (still large enough to amortize process spawn).
BIGK_SCALE = 0.5


def _graphs_equal(a, b) -> bool:
    if hasattr(a, "equals"):  # BigDeBruijnGraph (k > 31)
        return a.equals(b)
    return (
        a.k == b.k
        and np.array_equal(a.vertices, b.vertices)
        and np.array_equal(a.counts, b.counts)
    )


def _time_build(config: ParaHashConfig, reads, repeats: int):
    """Best-of-``repeats`` wall time; returns (seconds, graph)."""
    best = float("inf")
    graph = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = ParaHash(config).build_graph(reads)
        best = min(best, time.perf_counter() - t0)
        graph = result.graph
    return best, graph


def measure(smoke: bool = True, repeats: int = 2,
            workers: list[int] | None = None, k: int = 27) -> dict:
    """Run the sweep and return the BENCH_parallel.json payload.

    With ``k > 31`` the sweep exercises the two-word shm tables on a
    smaller input (``BIGK_SCALE``) and reports under the
    ``bigk_processes`` benchmark name.
    """
    bigk = k > 31
    scale = BIGK_SCALE if bigk else (SMOKE_SCALE if smoke else FULL_SCALE)
    workers = workers or (SMOKE_WORKERS if smoke else FULL_WORKERS)
    profile = HUMAN_CHR14_LIKE.scaled(scale)
    reads = profile.generate_reads()
    if bigk:
        config = ParaHashConfig(k=k, p=15, n_partitions=16, n_input_pieces=8)
    else:
        config = ParaHashConfig(k=k, p=11, n_partitions=32, n_input_pieces=8)

    serial_seconds, serial_graph = _time_build(config, reads, repeats)
    runs = []
    for w in workers:
        cfg = config.with_(backend="processes", n_workers=w)
        seconds, graph = _time_build(cfg, reads, repeats)
        if not _graphs_equal(graph, serial_graph):
            raise AssertionError(
                f"process backend with {w} workers produced a different "
                f"graph than the serial backend"
            )
        runs.append({
            "workers": w,
            "seconds": round(seconds, 4),
            "speedup": round(serial_seconds / seconds, 4),
        })
    return {
        "benchmark": "bigk_processes" if bigk else "parallel_backend",
        "mode": "smoke" if smoke else "full",
        "cpu_count": os.cpu_count() or 1,
        "dataset": {
            "profile": profile.name,
            "genome_size": profile.genome_size,
            "n_reads": reads.n_reads,
            "read_length": reads.read_length,
        },
        "config": {
            "k": config.k,
            "p": config.p,
            "n_partitions": config.n_partitions,
        },
        "repeats": repeats,
        "serial_seconds": round(serial_seconds, 4),
        "runs": runs,
        "graphs_identical": True,
        "n_vertices": int(serial_graph.n_vertices),
    }


def check_against_baseline(report: dict, baseline_path: str | Path) -> list[str]:
    """Gate the report against ``benchmarks/baselines.json``.

    Returns a list of violations (empty = pass).  See the module
    docstring for the core-count-aware threshold formula.
    """
    baselines = json.loads(Path(baseline_path).read_text())
    spec = baselines[report["benchmark"]]
    gate_workers = int(spec["workers"])
    by_workers = {run["workers"]: run for run in report["runs"]}
    violations: list[str] = []
    if gate_workers not in by_workers:
        return [f"no run at the gated worker count ({gate_workers})"]
    cores = int(report.get("cpu_count") or 1)
    if cores >= gate_workers:
        threshold = float(spec["min_speedup"])
    else:
        threshold = float(spec["min_speedup_per_core"]) * cores
    speedup = by_workers[gate_workers]["speedup"]
    if speedup < threshold:
        violations.append(
            f"speedup at {gate_workers} workers is {speedup:.2f}x, below "
            f"the threshold {threshold:.2f}x "
            f"(min_speedup={spec['min_speedup']}, "
            f"min_speedup_per_core={spec['min_speedup_per_core']}, "
            f"cpu_count={cores})"
        )
    if not report.get("graphs_identical"):
        violations.append("parallel graphs were not identical to serial")
    return violations


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="serial vs process-backend build benchmark"
    )
    parser.add_argument("--smoke", action="store_true",
                        help="small dataset + short sweep (the CI gate)")
    parser.add_argument("--k", type=int, default=27,
                        help="kmer length; k > 31 runs the two-word "
                             "(big-k) sweep on a smaller input")
    parser.add_argument("--repeats", type=int, default=2,
                        help="timing repeats (best-of)")
    parser.add_argument("--output", default="BENCH_parallel.json",
                        help="where to write the JSON report")
    parser.add_argument("--check", metavar="BASELINES",
                        help="gate against a baselines.json; exit 1 on "
                             "regression")
    args = parser.parse_args(argv)

    report = measure(smoke=args.smoke, repeats=args.repeats, k=args.k)
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")
    print(f"serial: {report['serial_seconds']:.3f}s "
          f"({report['n_vertices']:,} vertices)")
    for run in report["runs"]:
        print(f"processes x{run['workers']}: {run['seconds']:.3f}s "
              f"= {run['speedup']:.2f}x")
    print(f"wrote {args.output}")

    if args.check:
        violations = check_against_baseline(report, args.check)
        if violations:
            for v in violations:
                print(f"REGRESSION: {v}", file=sys.stderr)
            return 1
        print("baseline check passed")
    return 0


# -- pytest mode (nightly benchmark suite) ---------------------------------------


def test_parallel_backend_speedup(benchmark):
    from conftest import emit_report, run_once

    report = run_once(benchmark, lambda: measure(smoke=True, repeats=1))
    emit_report(
        "parallel_backend",
        "Process backend: end-to-end build speedup vs serial",
        ["workers", "seconds", "speedup"],
        [[r["workers"], f"{r['seconds']:.3f}", f"{r['speedup']:.2f}x"]
         for r in report["runs"]],
        notes=(
            f"serial {report['serial_seconds']:.3f}s on "
            f"{report['cpu_count']} cores; graphs bit-identical across "
            f"backends."
        ),
    )
    assert report["graphs_identical"]
    # Speedup is only meaningful with real cores to run on.
    if (os.cpu_count() or 1) >= 4:
        by_workers = {r["workers"]: r["speedup"] for r in report["runs"]}
        assert by_workers[4] >= 1.5


if __name__ == "__main__":
    sys.exit(main())
