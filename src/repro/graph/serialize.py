"""De Bruijn graph serialization.

Step 2's third pipeline stage "parses each output partition to the
required format and transfers it to the disk" (§III-E); the constructed
subgraphs become disk files (the paper's Bumblebee output is ~20 GB).
Two formats:

* **binary** (``.phdbg``): header + the raw vertex/counter arrays.
  Compact, exact, fast; the format partition outputs use.
* **TSV text**: one vertex per line with its spelled kmer, multiplicity
  and the 8 edge counters — for interoperability and eyeballing.
"""

from __future__ import annotations

import os
import struct
from pathlib import Path

import numpy as np

from ..dna.alphabet import encode
from ..dna.encoding import codes_to_int
from .dbg import N_SLOTS, DeBruijnGraph

MAGIC = b"PHDB"
FORMAT_VERSION = 1
_HEADER = struct.Struct("<4sBBHQ")


class GraphFormatError(ValueError):
    """Raised on a malformed graph file."""


def save_graph(path: str | os.PathLike, graph: DeBruijnGraph) -> int:
    """Write a graph as a binary ``.phdbg`` file; returns bytes written."""
    with open(path, "wb") as fh:
        fh.write(_HEADER.pack(MAGIC, FORMAT_VERSION, graph.k, 0, graph.n_vertices))
        fh.write(np.ascontiguousarray(graph.vertices, dtype="<u8").tobytes())
        fh.write(np.ascontiguousarray(graph.counts, dtype="<u8").tobytes())
    return os.path.getsize(path)


def load_graph(path: str | os.PathLike) -> DeBruijnGraph:
    """Read a binary graph file back."""
    with open(path, "rb") as fh:
        raw = fh.read()
    if len(raw) < _HEADER.size:
        raise GraphFormatError(f"{path}: truncated header")
    magic, version, k, _reserved, n = _HEADER.unpack_from(raw, 0)
    if magic != MAGIC:
        raise GraphFormatError(f"{path}: bad magic {magic!r}")
    if version != FORMAT_VERSION:
        raise GraphFormatError(f"{path}: unsupported version {version}")
    need = _HEADER.size + n * 8 + n * N_SLOTS * 8
    if len(raw) != need:
        raise GraphFormatError(
            f"{path}: expected {need} bytes for {n} vertices, got {len(raw)}"
        )
    pos = _HEADER.size
    vertices = np.frombuffer(raw, dtype="<u8", count=n, offset=pos).copy()
    pos += n * 8
    counts = (
        np.frombuffer(raw, dtype="<u8", count=n * N_SLOTS, offset=pos)
        .reshape(n, N_SLOTS)
        .copy()
    )
    return DeBruijnGraph(k=k, vertices=vertices, counts=counts)


TSV_HEADER = "kmer\tmultiplicity\toutA\toutC\toutG\toutT\tinA\tinC\tinG\tinT"


def export_tsv(path: str | os.PathLike, graph: DeBruijnGraph) -> int:
    """Write the adjacency lists as TSV; returns the number of rows."""
    with open(path, "wt", encoding="ascii") as fh:
        fh.write(f"# k={graph.k}\n")
        fh.write(TSV_HEADER + "\n")
        for i in range(graph.n_vertices):
            row = graph.counts[i]
            out_in = "\t".join(str(int(row[j])) for j in range(8))
            fh.write(f"{graph.vertex_str(i)}\t{int(row[8])}\t{out_in}\n")
    return graph.n_vertices


def import_tsv(path: str | os.PathLike) -> DeBruijnGraph:
    """Read a TSV export back into a graph."""
    with open(path, "rt", encoding="ascii") as fh:
        lines = [ln.rstrip("\n") for ln in fh if ln.strip()]
    if not lines or not lines[0].startswith("# k="):
        raise GraphFormatError(f"{path}: missing '# k=' header line")
    try:
        k = int(lines[0].split("=", 1)[1])
    except ValueError as exc:
        raise GraphFormatError(f"{path}: bad k header") from exc
    if len(lines) < 2 or lines[1] != TSV_HEADER:
        raise GraphFormatError(f"{path}: missing column header")
    vertices = []
    counts = []
    for lineno, line in enumerate(lines[2:], 3):
        fields = line.split("\t")
        if len(fields) != 10:
            raise GraphFormatError(f"{path}:{lineno}: expected 10 fields")
        kmer_str, mult, *edges = fields
        if len(kmer_str) != k:
            raise GraphFormatError(
                f"{path}:{lineno}: kmer length {len(kmer_str)} != k={k}"
            )
        vertices.append(codes_to_int(encode(kmer_str)))
        counts.append([int(v) for v in edges] + [int(mult)])
    order = np.argsort(np.array(vertices, dtype=np.uint64))
    vertices_arr = np.array(vertices, dtype=np.uint64)[order]
    counts_arr = (
        np.array(counts, dtype=np.uint64)[order]
        if counts
        else np.zeros((0, N_SLOTS), dtype=np.uint64)
    )
    return DeBruijnGraph(k=k, vertices=vertices_arr, counts=counts_arr)


def save_subgraphs(
    out_dir: str | os.PathLike, subgraphs: list[DeBruijnGraph]
) -> list[Path]:
    """Write one binary file per subgraph (the Step 2 output stage)."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    paths = []
    for i, graph in enumerate(subgraphs):
        path = out / f"subgraph_{i:04d}.phdbg"
        save_graph(path, graph)
        paths.append(path)
    return paths


def load_subgraphs(paths: list[Path] | list[str]) -> list[DeBruijnGraph]:
    """Read subgraph files back (e.g. to merge them)."""
    return [load_graph(p) for p in paths]
