"""Merging subgraphs into the full De Bruijn graph.

ParaHash constructs one subgraph per superkmer partition; "all subgraphs
generated in Step 2 together constitute the entire De Bruijn graph"
(§III-A).  MSP routes every duplicate of a kmer to the same partition,
so the vertex sets of the subgraphs are **disjoint** — merging is a
disjoint sorted union.  A general (overlap-tolerant, count-adding) merge
is also provided for baselines that do not guarantee disjointness.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from .dbg import N_SLOTS, DeBruijnGraph, empty_graph


class OverlapError(ValueError):
    """Raised when subgraphs expected to be disjoint share vertices."""


def merge_disjoint(subgraphs: Sequence[DeBruijnGraph]) -> DeBruijnGraph:
    """Union of vertex-disjoint subgraphs (the MSP guarantee).

    Raises :class:`OverlapError` if any vertex appears in two subgraphs,
    which would indicate a partitioning bug.
    """
    subgraphs = [g for g in subgraphs if g.n_vertices]
    if not subgraphs:
        return empty_graph(k=_common_k(subgraphs) if subgraphs else 1)
    k = _common_k(subgraphs)
    vertices = np.concatenate([g.vertices for g in subgraphs])
    counts = np.concatenate([g.counts for g in subgraphs], axis=0)
    order = np.argsort(vertices, kind="stable")
    vertices = vertices[order]
    counts = counts[order]
    if vertices.size > 1 and (vertices[1:] == vertices[:-1]).any():
        dup = int(vertices[np.nonzero(vertices[1:] == vertices[:-1])[0][0]])
        raise OverlapError(
            f"vertex {dup:#x} appears in more than one subgraph; "
            "MSP partitions must be vertex-disjoint"
        )
    return DeBruijnGraph(k=k, vertices=vertices, counts=counts)


def merge_adding(subgraphs: Sequence[DeBruijnGraph]) -> DeBruijnGraph:
    """General merge: counters of vertices present in several inputs add up."""
    subgraphs = [g for g in subgraphs if g.n_vertices]
    if not subgraphs:
        return empty_graph(k=1)
    k = _common_k(subgraphs)
    vertices = np.concatenate([g.vertices for g in subgraphs])
    counts = np.concatenate([g.counts for g in subgraphs], axis=0)
    unique, inverse = np.unique(vertices, return_inverse=True)
    merged = np.zeros((unique.size, N_SLOTS), dtype=np.uint64)
    np.add.at(merged, inverse, counts)
    return DeBruijnGraph(k=k, vertices=unique, counts=merged)


def _common_k(subgraphs: Sequence[DeBruijnGraph]) -> int:
    ks = {g.k for g in subgraphs}
    if len(ks) > 1:
        raise ValueError(f"cannot merge graphs with different k: {sorted(ks)}")
    return ks.pop()
