"""The De Bruijn graph store: canonical vertices with weighted adjacency.

Definition 3 of the paper: the construction outputs, for every distinct
vertex, an adjacency list in which each adjacent vertex carries a weight
equal to the number of occurrences of the pair.  A vertex is a
*canonical* kmer (the lexicographic minimum of a kmer and its reverse
complement), so the graph is bi-directed.

Because two adjacent vertices overlap in K-1 bases, an edge is fully
identified by a single base — "the rightmost or leftmost character on
the destination vertex ... is used as the array index" (§III-C2).  Each
vertex therefore stores exactly **eight edge-multiplicity counters**
plus its own occurrence count:

====== =========================================================
slot   meaning (relative to the canonical-forward orientation)
====== =========================================================
0..3   ``out[b]`` — successor reached by appending base ``b``
4..7   ``in[b]``  — predecessor formed by prepending base ``b``
8      multiplicity of the vertex itself (kmer occurrence count)
====== =========================================================

The store is a pair of parallel arrays sorted by vertex value, which
makes graphs directly comparable, mergeable and binary-searchable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dna.kmer import kmer_mask, kmer_to_str, revcomp_int

#: Number of counters per vertex: 4 out-edges, 4 in-edges, multiplicity.
N_SLOTS = 9
OUT_BASE = 0
IN_BASE = 4
MULT_SLOT = 8


def slot_for_successor(flipped: np.ndarray, next_base: np.ndarray) -> np.ndarray:
    """Counter slot for an observed successor edge.

    ``flipped`` marks kmer instances whose canonical form is the reverse
    complement of the read orientation; for those, a right extension in
    the read is a left extension of the canonical form with the
    complemented base.
    """
    next_base = np.asarray(next_base)
    flipped = np.asarray(flipped)
    return np.where(flipped, IN_BASE + (3 - next_base), OUT_BASE + next_base)


def slot_for_predecessor(flipped: np.ndarray, prev_base: np.ndarray) -> np.ndarray:
    """Counter slot for an observed predecessor edge (mirror of successor)."""
    prev_base = np.asarray(prev_base)
    flipped = np.asarray(flipped)
    return np.where(flipped, OUT_BASE + (3 - prev_base), IN_BASE + prev_base)


@dataclass
class DeBruijnGraph:
    """A constructed De Bruijn (sub)graph.

    Attributes
    ----------
    k:
        Kmer length of the vertices.
    vertices:
        Sorted ``uint64`` array of distinct canonical kmers.
    counts:
        ``(n_vertices, 9)`` uint64 counter matrix (see module docstring).
    """

    k: int
    vertices: np.ndarray
    counts: np.ndarray

    def __post_init__(self) -> None:
        self.vertices = np.asarray(self.vertices, dtype=np.uint64)
        self.counts = np.asarray(self.counts, dtype=np.uint64)
        if self.counts.shape != (self.vertices.size, N_SLOTS):
            raise ValueError(
                f"counts shape {self.counts.shape} does not match "
                f"({self.vertices.size}, {N_SLOTS})"
            )
        if self.vertices.size > 1 and not (self.vertices[1:] > self.vertices[:-1]).all():
            raise ValueError("vertices must be strictly sorted")

    # -- basic queries ------------------------------------------------------

    @property
    def n_vertices(self) -> int:
        """Number of distinct vertices (the paper's graph-size metric)."""
        return int(self.vertices.size)

    def total_kmer_instances(self) -> int:
        """Total kmer occurrences absorbed (distinct + duplicates)."""
        return int(self.counts[:, MULT_SLOT].sum())

    def n_duplicate_vertices(self) -> int:
        """Occurrences beyond the first per vertex (Table I's duplicates)."""
        return self.total_kmer_instances() - self.n_vertices

    def total_edge_weight(self) -> int:
        """Sum of all edge multiplicities over all adjacency lists.

        Every observed adjacent pair contributes one unit at *each*
        endpoint, so this equals twice the number of observed pairs.
        """
        return int(self.counts[:, OUT_BASE:MULT_SLOT].sum())

    def __len__(self) -> int:
        return self.n_vertices

    def __contains__(self, kmer: int) -> bool:
        return self.index_of(int(kmer)) >= 0

    def index_of(self, kmer: int) -> int:
        """Row index of a canonical kmer, or -1 when absent."""
        i = int(np.searchsorted(self.vertices, np.uint64(kmer)))
        if i < self.vertices.size and int(self.vertices[i]) == int(kmer):
            return i
        return -1

    def multiplicity(self, kmer: int) -> int:
        """Occurrence count of a canonical kmer (0 when absent)."""
        i = self.index_of(kmer)
        return int(self.counts[i, MULT_SLOT]) if i >= 0 else 0

    def edge_counts(self, kmer: int) -> np.ndarray:
        """The 8 edge counters of a vertex (zeros when absent)."""
        i = self.index_of(kmer)
        if i < 0:
            return np.zeros(8, dtype=np.uint64)
        return self.counts[i, OUT_BASE:MULT_SLOT].copy()

    def successors(self, kmer: int) -> list[tuple[int, int]]:
        """``(canonical_neighbor, weight)`` for each non-zero out slot."""
        return self._neighbors(kmer, out_side=True)

    def predecessors(self, kmer: int) -> list[tuple[int, int]]:
        """``(canonical_neighbor, weight)`` for each non-zero in slot."""
        return self._neighbors(kmer, out_side=False)

    def _neighbors(self, kmer: int, out_side: bool) -> list[tuple[int, int]]:
        i = self.index_of(kmer)
        if i < 0:
            return []
        mask = kmer_mask(self.k)
        result = []
        base_slot = OUT_BASE if out_side else IN_BASE
        for b in range(4):
            weight = int(self.counts[i, base_slot + b])
            if weight == 0:
                continue
            if out_side:
                neighbor = ((int(kmer) << 2) | b) & mask
            else:
                neighbor = (b << (2 * (self.k - 1))) | (int(kmer) >> 2)
            canon = min(neighbor, revcomp_int(neighbor, self.k))
            result.append((canon, weight))
        return result

    def degree(self, kmer: int) -> int:
        """Number of distinct adjacent vertices recorded for a vertex."""
        counts = self.edge_counts(kmer)
        return int((counts > 0).sum())

    # -- transformations ----------------------------------------------------

    def filter_min_multiplicity(self, min_multiplicity: int) -> "DeBruijnGraph":
        """Drop vertices seen fewer than ``min_multiplicity`` times.

        Erroneous kmers "can only be filtered by the number of their
        occurrences after the graph is constructed" (§III-C1); this is
        that filter.  Edges pointing at dropped vertices are retained on
        the surviving endpoint (they identify the dropped neighbor).
        """
        keep = self.counts[:, MULT_SLOT] >= np.uint64(min_multiplicity)
        return DeBruijnGraph(
            k=self.k, vertices=self.vertices[keep], counts=self.counts[keep]
        )

    def filter_min_edge_weight(self, min_weight: int) -> "DeBruijnGraph":
        """Zero out edges observed fewer than ``min_weight`` times.

        Edge weights exist precisely to guide traversal ("Edge weights
        are used in determining the traversal paths for assembly",
        §II-B): low-weight edges are sequencing-error artifacts.  The
        vertex set and multiplicities are unchanged.
        """
        counts = self.counts.copy()
        edges = counts[:, OUT_BASE:MULT_SLOT]
        edges[edges < np.uint64(min_weight)] = 0
        return DeBruijnGraph(k=self.k, vertices=self.vertices.copy(), counts=counts)

    def memory_bytes(self) -> int:
        """Bytes held by the vertex and counter arrays."""
        return int(self.vertices.nbytes + self.counts.nbytes)

    # -- comparison ---------------------------------------------------------

    def equals(self, other: "DeBruijnGraph") -> bool:
        """Exact equality of vertex sets and all counters."""
        return (
            self.k == other.k
            and self.vertices.size == other.vertices.size
            and bool(np.array_equal(self.vertices, other.vertices))
            and bool(np.array_equal(self.counts, other.counts))
        )

    def describe(self) -> dict:
        """Summary statistics used by the benchmark tables."""
        return {
            "k": self.k,
            "n_vertices": self.n_vertices,
            "n_duplicates": self.n_duplicate_vertices(),
            "total_kmer_instances": self.total_kmer_instances(),
            "total_edge_weight": self.total_edge_weight(),
            "memory_bytes": self.memory_bytes(),
        }

    def vertex_str(self, i: int) -> str:
        """DNA string of vertex row ``i`` (debugging aid)."""
        return kmer_to_str(int(self.vertices[i]), self.k)


def empty_graph(k: int) -> DeBruijnGraph:
    """A graph with no vertices."""
    return DeBruijnGraph(
        k=k,
        vertices=np.zeros(0, dtype=np.uint64),
        counts=np.zeros((0, N_SLOTS), dtype=np.uint64),
    )


def graph_from_pairs(k: int, vertex_ids: np.ndarray, slots: np.ndarray) -> DeBruijnGraph:
    """Aggregate ``(vertex, slot)`` observation pairs into a graph.

    Every pair increments one counter.  This is the shared aggregation
    kernel of the reference builder and of the sort-merge baselines: it
    sorts the pairs and merges duplicates, exactly the "sort-merge"
    strategy of §II-B, implemented with numpy.
    """
    vertex_ids = np.asarray(vertex_ids, dtype=np.uint64).ravel()
    slots = np.asarray(slots, dtype=np.uint64).ravel()
    if vertex_ids.shape != slots.shape:
        raise ValueError("vertex_ids and slots must have equal length")
    if vertex_ids.size == 0:
        return empty_graph(k)
    if slots.size and int(slots.max()) >= N_SLOTS:
        raise ValueError("slot values must be < 9")
    if 2 * k + 4 <= 64:
        # Fast path: pack (vertex, slot) into one uint64 key.
        keys = (vertex_ids << np.uint64(4)) | slots
        unique_keys, key_counts = np.unique(keys, return_counts=True)
        u_vertices = unique_keys >> np.uint64(4)
        u_slots = (unique_keys & np.uint64(0xF)).astype(np.int64)
    else:
        order = np.lexsort((slots, vertex_ids))
        sv, ss = vertex_ids[order], slots[order]
        boundary = np.ones(sv.size, dtype=bool)
        boundary[1:] = (sv[1:] != sv[:-1]) | (ss[1:] != ss[:-1])
        starts = np.nonzero(boundary)[0]
        key_counts = np.diff(np.append(starts, sv.size))
        u_vertices = sv[starts]
        u_slots = ss[starts].astype(np.int64)
    vertices, inverse = np.unique(u_vertices, return_inverse=True)
    counts = np.zeros((vertices.size, N_SLOTS), dtype=np.uint64)
    np.add.at(counts, (inverse, u_slots), key_counts.astype(np.uint64))
    return DeBruijnGraph(k=k, vertices=vertices, counts=counts)
