"""Reference De Bruijn graph construction (ground truth).

Builds the full graph from a read batch in one pass, without any
partitioning, hashing or concurrency — the semantics every other
construction path in this library (MSP + concurrent hashing, the SOAP
and bcalm baselines) must reproduce exactly.  Two implementations:

* :func:`build_reference_graph` — vectorized with numpy, used for
  benchmarks and large tests;
* :func:`build_reference_graph_slow` — a direct, per-read Python
  transliteration of Definition 3, used to validate the vectorized one
  on small inputs.
"""

from __future__ import annotations

import numpy as np

from ..dna.kmer import canonical_int, canonical_with_flip, iter_kmers, kmers_from_reads
from ..dna.reads import ReadBatch
from .dbg import (
    IN_BASE,
    MULT_SLOT,
    N_SLOTS,
    OUT_BASE,
    DeBruijnGraph,
    graph_from_pairs,
    slot_for_predecessor,
    slot_for_successor,
)


def edge_observations(codes: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    """All ``(canonical vertex, counter slot)`` observations of a batch.

    Returns flat parallel arrays covering, for every read: one
    multiplicity observation per kmer instance, one successor
    observation per adjacent kmer pair (charged to the left kmer), and
    one predecessor observation per pair (charged to the right kmer).
    """
    codes = np.asarray(codes, dtype=np.uint8)
    kmers = kmers_from_reads(codes, k)
    can, flip = canonical_with_flip(kmers, k)
    n_kmers = kmers.shape[1]

    mult_v = can.ravel()
    mult_s = np.full(mult_v.size, MULT_SLOT, dtype=np.uint64)
    if n_kmers < 2:
        return mult_v, mult_s

    next_base = codes[:, k:]  # base following kmer j, for j in [0, nk-2]
    prev_base = codes[:, : n_kmers - 1]  # base preceding kmer j+1
    succ_v = can[:, :-1].ravel()
    succ_s = slot_for_successor(flip[:, :-1], next_base).ravel().astype(np.uint64)
    pred_v = can[:, 1:].ravel()
    pred_s = slot_for_predecessor(flip[:, 1:], prev_base).ravel().astype(np.uint64)

    vertex_ids = np.concatenate([mult_v, succ_v, pred_v])
    slots = np.concatenate([mult_s, succ_s, pred_s])
    return vertex_ids, slots


def build_reference_graph(reads: ReadBatch, k: int) -> DeBruijnGraph:
    """Vectorized whole-input De Bruijn graph construction."""
    if reads.n_reads == 0:
        return graph_from_pairs(k, np.zeros(0, dtype=np.uint64), np.zeros(0, dtype=np.uint64))
    vertex_ids, slots = edge_observations(reads.codes, k)
    return build_graph_from_observations(k, vertex_ids, slots)


def build_graph_from_observations(
    k: int, vertex_ids: np.ndarray, slots: np.ndarray
) -> DeBruijnGraph:
    """Aggregate observation pairs into a graph (thin alias for clarity)."""
    return graph_from_pairs(k, vertex_ids, slots)


def build_reference_graph_slow(reads: ReadBatch, k: int) -> DeBruijnGraph:
    """Per-read pure-Python construction; O(N L K), small inputs only."""
    table: dict[int, np.ndarray] = {}

    def counter(v: int) -> np.ndarray:
        row = table.get(v)
        if row is None:
            row = np.zeros(N_SLOTS, dtype=np.uint64)
            table[v] = row
        return row

    for r in range(reads.n_reads):
        codes = reads.codes[r]
        kmer_list = list(iter_kmers(codes, k))
        canon = [canonical_int(km, k) for km in kmer_list]
        flip = [c != km for c, km in zip(canon, kmer_list)]
        for j, c in enumerate(canon):
            counter(c)[MULT_SLOT] += 1
            if j + 1 < len(kmer_list):
                b_next = int(codes[j + k])
                slot = (IN_BASE + (3 - b_next)) if flip[j] else (OUT_BASE + b_next)
                counter(c)[slot] += 1
            if j > 0:
                b_prev = int(codes[j - 1])
                slot = (OUT_BASE + (3 - b_prev)) if flip[j] else (IN_BASE + b_prev)
                counter(c)[slot] += 1

    vertices = np.array(sorted(table), dtype=np.uint64)
    counts = (
        np.stack([table[int(v)] for v in vertices])
        if vertices.size
        else np.zeros((0, N_SLOTS), dtype=np.uint64)
    )
    return DeBruijnGraph(k=k, vertices=vertices, counts=counts)
