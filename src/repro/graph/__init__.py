"""De Bruijn graph structures, reference construction, merging, validation."""

from .build import (
    build_graph_from_observations,
    build_reference_graph,
    build_reference_graph_slow,
    edge_observations,
)
from .dbg import (
    IN_BASE,
    MULT_SLOT,
    N_SLOTS,
    OUT_BASE,
    DeBruijnGraph,
    empty_graph,
    graph_from_pairs,
    slot_for_predecessor,
    slot_for_successor,
)
from .compare import (
    GraphComparison,
    compare_graphs,
    multiplicity_correlation,
    variant_regions,
)
from .compact import (
    Unitig,
    compact_unitigs,
    compaction_stats,
    count_junction_vertices,
)
from .merge import OverlapError, merge_adding, merge_disjoint
from .paths import Contig, assembly_metrics, greedy_contigs
from .serialize import (
    GraphFormatError,
    export_tsv,
    import_tsv,
    load_graph,
    load_subgraphs,
    save_graph,
    save_subgraphs,
)
from .validate import (
    GraphValidationError,
    assert_graphs_equal,
    check_canonical_vertices,
    check_edge_symmetry,
    check_edge_weight_conservation,
    check_genome_coverage,
    check_multiplicity_conservation,
    validate_full_graph,
)

__all__ = [
    "Contig",
    "DeBruijnGraph",
    "GraphComparison",
    "compare_graphs",
    "multiplicity_correlation",
    "variant_regions",
    "GraphFormatError",
    "Unitig",
    "assembly_metrics",
    "export_tsv",
    "greedy_contigs",
    "import_tsv",
    "load_graph",
    "load_subgraphs",
    "save_graph",
    "save_subgraphs",
    "compact_unitigs",
    "compaction_stats",
    "count_junction_vertices",
    "GraphValidationError",
    "IN_BASE",
    "MULT_SLOT",
    "N_SLOTS",
    "OUT_BASE",
    "OverlapError",
    "assert_graphs_equal",
    "build_graph_from_observations",
    "build_reference_graph",
    "build_reference_graph_slow",
    "check_canonical_vertices",
    "check_edge_symmetry",
    "check_edge_weight_conservation",
    "check_genome_coverage",
    "check_multiplicity_conservation",
    "edge_observations",
    "empty_graph",
    "graph_from_pairs",
    "merge_adding",
    "merge_disjoint",
    "slot_for_predecessor",
    "slot_for_successor",
    "validate_full_graph",
]
