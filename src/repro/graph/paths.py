"""Weight-guided greedy contig extraction.

The reason ParaHash records edge multiplicities at all: "Edge weights
are used in determining the traversal paths for assembly" (§II-B).
This module is that consumer — a simple greedy assembler over the
bi-directed graph that, unlike unitig compaction (which stops at every
branch), walks *through* branches by taking the heaviest sufficiently
supported edge.  It is deliberately basic (no bubble popping, no
scaffolding) but turns the constructed graph into contigs and exercises
the weights end to end.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dna.alphabet import decode
from ..dna.encoding import int_to_codes
from ..dna.kmer import revcomp_int
from .compact import SIDE_IN, SIDE_OUT, _GraphIndex, _step
from .dbg import IN_BASE, MULT_SLOT, OUT_BASE, DeBruijnGraph


@dataclass(frozen=True)
class Contig:
    """A greedy walk through the graph."""

    bases: np.ndarray
    n_vertices: int
    mean_multiplicity: float

    def __len__(self) -> int:
        return int(self.bases.size)

    def to_str(self) -> str:
        return decode(self.bases)


def _heaviest_edge(counts_row: np.ndarray, side: int, min_weight: int) -> int | None:
    """Heaviest sufficiently supported edge base on a side, or None.

    Ties break toward the smaller base code (deterministic).
    """
    base_slot = OUT_BASE if side == SIDE_OUT else IN_BASE
    best_base, best_weight = None, min_weight - 1
    for b in range(4):
        weight = int(counts_row[base_slot + b])
        if weight > best_weight:
            best_base, best_weight = b, weight
    return best_base


def _greedy_walk(index: _GraphIndex, start_row: int, start_side: int,
                 visited: np.ndarray, min_weight: int) -> list[tuple[int, int]]:
    """Greedy extension: follow the heaviest edge until stuck."""
    graph = index.graph
    k = graph.k
    path: list[tuple[int, int]] = []
    row, side = start_row, start_side
    while True:
        base = _heaviest_edge(graph.counts[row], side, min_weight)
        if base is None:
            return path
        vertex = int(graph.vertices[row])
        neighbor, entry_side, _ = _step(vertex, side, base, k)
        nrow = index.row(neighbor)
        if nrow is None or visited[nrow]:
            return path
        visited[nrow] = True
        exit_side = SIDE_OUT if entry_side == SIDE_IN else SIDE_IN
        path.append((nrow, exit_side))
        row, side = nrow, exit_side


def _spell_chain(graph: DeBruijnGraph, chain: list[tuple[int, int]]) -> np.ndarray:
    k = graph.k
    first_row, first_exit = chain[0]
    first = int(graph.vertices[first_row])
    if first_exit == SIDE_OUT:
        seq = list(int_to_codes(first, k))
    else:
        seq = list(int_to_codes(revcomp_int(first, k), k))
    for row, exit_side in chain[1:]:
        vertex = int(graph.vertices[row])
        spelled = vertex if exit_side == SIDE_OUT else revcomp_int(vertex, k)
        seq.append(int(spelled & 0x3))
    return np.array(seq, dtype=np.uint8)


def greedy_contigs(graph: DeBruijnGraph, min_edge_weight: int = 2,
                   min_seed_multiplicity: int = 2) -> list[Contig]:
    """Extract contigs by greedy heaviest-edge walks.

    Seeds are unvisited vertices in decreasing multiplicity order (a
    high-multiplicity seed is almost surely genomic); each seed extends
    in both directions through edges of weight >= ``min_edge_weight``.
    Every vertex joins at most one contig.
    """
    if min_edge_weight < 1:
        raise ValueError("min_edge_weight must be >= 1")
    n = graph.n_vertices
    index = _GraphIndex(graph)
    visited = np.zeros(n, dtype=bool)
    seed_order = np.argsort(graph.counts[:, MULT_SLOT])[::-1]
    contigs: list[Contig] = []
    for row in seed_order:
        row = int(row)
        if visited[row]:
            continue
        if int(graph.counts[row, MULT_SLOT]) < min_seed_multiplicity:
            continue
        visited[row] = True
        back = _greedy_walk(index, row, SIDE_IN, visited, min_edge_weight)
        forward = _greedy_walk(index, row, SIDE_OUT, visited, min_edge_weight)
        chain = [
            (r, SIDE_OUT if s == SIDE_IN else SIDE_IN) for r, s in reversed(back)
        ]
        chain.append((row, SIDE_OUT))
        chain.extend(forward)
        bases = _spell_chain(graph, chain)
        rows = [r for r, _ in chain]
        contigs.append(
            Contig(
                bases=bases,
                n_vertices=len(chain),
                mean_multiplicity=float(
                    np.mean([graph.counts[r, MULT_SLOT] for r in rows])
                ),
            )
        )
    return sorted(contigs, key=len, reverse=True)


def assembly_metrics(contigs: list[Contig], genome_size: int) -> dict:
    """NG50-style metrics against a known genome size."""
    lengths = sorted((len(c) for c in contigs), reverse=True)
    total = sum(lengths)
    ng50 = 0
    acc = 0
    for length in lengths:
        acc += length
        if acc >= genome_size / 2:
            ng50 = length
            break
    return {
        "n_contigs": len(contigs),
        "total_bases": total,
        "longest": lengths[0] if lengths else 0,
        "ng50": ng50,
        "genome_fraction_upper": min(1.0, total / genome_size) if genome_size else 0.0,
    }
