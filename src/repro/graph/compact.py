"""Unitig compaction of a bi-directed De Bruijn graph.

bcalm2 — one of the paper's comparison systems — *compacts* the graph
it builds: maximal non-branching paths (unitigs) are collapsed into
single sequences.  This module provides that operation on our graph
store, both as part of the bcalm-style baseline and as a usable
post-processing feature (assemblers traverse unitigs, not raw kmers).

Bi-directed semantics: every canonical vertex has two *sides* — OUT
(the right end of its canonical-forward spelling) and IN (the left
end).  A traversal leaves through a side and enters the neighbor
through the side determined by the neighbor's orientation.  A unitig
extends through a side only when that side has exactly one edge **and**
the neighbor's entry side has exactly one edge (the standard mutual
single-neighbor rule), so compaction never crosses a branch.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dna.alphabet import decode
from ..dna.encoding import int_to_codes
from ..dna.kmer import kmer_mask, revcomp_int
from .dbg import IN_BASE, OUT_BASE, DeBruijnGraph

#: Side identifiers.
SIDE_OUT = 0
SIDE_IN = 1


@dataclass(frozen=True)
class Unitig:
    """A maximal non-branching path.

    Attributes
    ----------
    bases:
        The unitig's spelled sequence (codes); ``len >= k``.
    vertex_rows:
        Graph row indices of the member vertices, in path order.
    mean_multiplicity:
        Average vertex multiplicity along the path (coverage proxy).
    is_cycle:
        True when the path closed on itself.
    """

    bases: np.ndarray
    vertex_rows: tuple[int, ...]
    mean_multiplicity: float
    is_cycle: bool = False

    def __len__(self) -> int:
        return int(self.bases.size)

    def to_str(self) -> str:
        return decode(self.bases)


def _edges_on_side(counts_row: np.ndarray, side: int) -> list[int]:
    base_slot = OUT_BASE if side == SIDE_OUT else IN_BASE
    return [b for b in range(4) if counts_row[base_slot + b] > 0]


def _step(vertex: int, side: int, base: int, k: int) -> tuple[int, int, bool]:
    """Follow one edge; returns (neighbor_canonical, entry_side, flipped).

    Leaving through OUT with base b appends b to the forward spelling;
    leaving through IN with base b prepends b.  The neighbor is entered
    through IN (if it reads forward) or OUT (if reversed).
    """
    mask = kmer_mask(k)
    if side == SIDE_OUT:
        neighbor = ((vertex << 2) | base) & mask
        entry = SIDE_IN
    else:
        neighbor = (base << (2 * (k - 1))) | (vertex >> 2)
        entry = SIDE_OUT
    rc = revcomp_int(neighbor, k)
    if rc < neighbor:
        return rc, SIDE_OUT if entry == SIDE_IN else SIDE_IN, True
    return neighbor, entry, False


class _GraphIndex:
    """Row lookup for traversal (dict is faster than bisect per step)."""

    def __init__(self, graph: DeBruijnGraph) -> None:
        self.graph = graph
        self.rows = {int(v): i for i, v in enumerate(graph.vertices)}

    def row(self, vertex: int) -> int | None:
        return self.rows.get(vertex)


def _walk(index: _GraphIndex, start_row: int, start_side: int,
          visited: np.ndarray) -> list[tuple[int, int]]:
    """Extend from a vertex through one side; returns (row, exit_side) path.

    Path entries are in traversal order starting *after* the start
    vertex.  Stops at branches, dead ends, visited vertices, or when the
    walk closes a cycle.
    """
    graph = index.graph
    k = graph.k
    path: list[tuple[int, int]] = []
    row, side = start_row, start_side
    while True:
        edges = _edges_on_side(graph.counts[row], side)
        if len(edges) != 1:
            return path
        vertex = int(graph.vertices[row])
        base = edges[0]
        neighbor, entry_side, _ = _step(vertex, side, base, k)
        nrow = index.row(neighbor)
        if nrow is None or visited[nrow]:
            return path
        entry_edges = _edges_on_side(graph.counts[nrow], entry_side)
        if len(entry_edges) != 1:
            return path
        visited[nrow] = True
        exit_side = SIDE_OUT if entry_side == SIDE_IN else SIDE_IN
        path.append((nrow, exit_side))
        row, side = nrow, exit_side


def _spell(graph: DeBruijnGraph, rows_and_sides: list[tuple[int, int]]) -> np.ndarray:
    """Spell the unitig sequence from the ordered (row, exit_side) chain.

    The first element's orientation anchors the spelling: a vertex
    exited through OUT is spelled forward, through IN reversed.
    """
    k = graph.k
    first_row, first_exit = rows_and_sides[0]
    first = int(graph.vertices[first_row])
    if first_exit == SIDE_OUT:
        seq = list(int_to_codes(first, k))
    else:
        seq = list(int_to_codes(revcomp_int(first, k), k))
    for row, exit_side in rows_and_sides[1:]:
        vertex = int(graph.vertices[row])
        spelled = vertex if exit_side == SIDE_OUT else revcomp_int(vertex, k)
        seq.append(int(spelled & 0x3))
    return np.array(seq, dtype=np.uint8)


def compact_unitigs(graph: DeBruijnGraph) -> list[Unitig]:
    """Compute all unitigs of the graph.

    Every vertex belongs to exactly one unitig; isolated and branching
    vertices become single-kmer unitigs.
    """
    n = graph.n_vertices
    index = _GraphIndex(graph)
    visited = np.zeros(n, dtype=bool)
    unitigs: list[Unitig] = []
    from .dbg import MULT_SLOT

    for row in range(n):
        if visited[row]:
            continue
        visited[row] = True
        # Walk backward through IN, then forward through OUT.
        back = _walk(index, row, SIDE_IN, visited)
        forward = _walk(index, row, SIDE_OUT, visited)
        # Backward path entries exited through some side; reverse them
        # and flip the exit side so the chain reads left-to-right.
        chain = [
            (r, SIDE_OUT if s == SIDE_IN else SIDE_IN) for r, s in reversed(back)
        ]
        chain.append((row, SIDE_OUT))
        chain.extend(forward)
        bases = _spell(graph, chain)
        rows = tuple(r for r, _ in chain)
        mean_mult = float(np.mean([graph.counts[r, MULT_SLOT] for r in rows]))
        unitigs.append(
            Unitig(bases=bases, vertex_rows=rows, mean_multiplicity=mean_mult)
        )
    return unitigs


def count_junction_vertices(graph: DeBruijnGraph) -> int:
    """Vertices with branching (the 'junction kmers' bcalm2 MPHF-hashes)."""
    out_deg = (graph.counts[:, OUT_BASE : OUT_BASE + 4] > 0).sum(axis=1)
    in_deg = (graph.counts[:, IN_BASE : IN_BASE + 4] > 0).sum(axis=1)
    return int(((out_deg > 1) | (in_deg > 1)).sum())


def compaction_stats(unitigs: list[Unitig], k: int) -> dict:
    """Summary statistics of a compaction (N50 etc.)."""
    lengths = sorted((len(u) for u in unitigs), reverse=True)
    total = sum(lengths)
    n50 = 0
    acc = 0
    for length in lengths:
        acc += length
        if acc >= total / 2:
            n50 = length
            break
    return {
        "n_unitigs": len(unitigs),
        "total_bases": total,
        "longest": lengths[0] if lengths else 0,
        "n50": n50,
        "mean_length": total / len(unitigs) if unitigs else 0.0,
    }
