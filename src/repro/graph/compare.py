"""Comparing De Bruijn graphs: shared and private vertex sets.

A classic application of kmer-level graphs: two related samples (e.g.
two bacterial strains, or assembly before/after error filtering) can be
compared without any alignment — vertices private to one graph mark the
sequence that differs.  Works on the sorted vertex arrays directly, so
comparisons are O(n) and memory-light.

Big-k graphs (:class:`repro.bigk.store.BigDeBruijnGraph`) compare the
same way: their ``(hi, lo)`` plane pairs are viewed as a structured
array whose element order equals the store's (hi-major) sort order, so
every set operation below works unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .dbg import MULT_SLOT, DeBruijnGraph


@dataclass(frozen=True)
class GraphComparison:
    """Vertex-set relationship between two graphs (same k)."""

    n_shared: int
    n_only_a: int
    n_only_b: int
    shared_vertices: np.ndarray
    only_a: np.ndarray
    only_b: np.ndarray

    @property
    def jaccard(self) -> float:
        """Jaccard similarity of the vertex sets."""
        union = self.n_shared + self.n_only_a + self.n_only_b
        return self.n_shared / union if union else 1.0

    @property
    def containment_a_in_b(self) -> float:
        """Fraction of A's vertices also present in B."""
        total_a = self.n_shared + self.n_only_a
        return self.n_shared / total_a if total_a else 1.0


#: Structured view dtype for two-word vertices; hi first so structured
#: comparison order matches BigDeBruijnGraph's lexsort((lo, hi)) order.
_PLANE_PAIR_DTYPE = np.dtype([("hi", "<u8"), ("lo", "<u8")])


def _vertex_view(g) -> np.ndarray:
    """A graph's sorted vertex array, one- or two-word.

    One-word graphs expose ``vertices`` directly; big-k graphs get a
    zero-copy-ish structured view over their ``(hi, lo)`` planes whose
    sort order matches the store's invariant.
    """
    if hasattr(g, "vertices"):
        return g.vertices
    view = np.empty(g.n_vertices, dtype=_PLANE_PAIR_DTYPE)
    view["hi"] = g.vertices_hi
    view["lo"] = g.vertices_lo
    return view


def compare_graphs(a: DeBruijnGraph, b: DeBruijnGraph) -> GraphComparison:
    """Compute shared / private vertex sets of two graphs."""
    if a.k != b.k:
        raise ValueError(f"cannot compare graphs with different k: {a.k} != {b.k}")
    va, vb = _vertex_view(a), _vertex_view(b)
    shared = np.intersect1d(va, vb, assume_unique=True)
    only_a = np.setdiff1d(va, shared, assume_unique=True)
    only_b = np.setdiff1d(vb, shared, assume_unique=True)
    return GraphComparison(
        n_shared=int(shared.size),
        n_only_a=int(only_a.size),
        n_only_b=int(only_b.size),
        shared_vertices=shared,
        only_a=only_a,
        only_b=only_b,
    )


def multiplicity_correlation(a: DeBruijnGraph, b: DeBruijnGraph) -> float:
    """Pearson correlation of shared vertices' multiplicities.

    High correlation indicates the two samples cover the common
    sequence at proportional depth.
    """
    comparison = compare_graphs(a, b)
    if comparison.n_shared < 2:
        return 0.0
    ia = np.searchsorted(_vertex_view(a), comparison.shared_vertices)
    ib = np.searchsorted(_vertex_view(b), comparison.shared_vertices)
    ma = a.counts[ia, MULT_SLOT].astype(float)
    mb = b.counts[ib, MULT_SLOT].astype(float)
    if ma.std() == 0 or mb.std() == 0:
        return 0.0
    return float(np.corrcoef(ma, mb)[0, 1])


def variant_regions(a: DeBruijnGraph, b: DeBruijnGraph,
                    min_multiplicity: int = 2) -> tuple[np.ndarray, np.ndarray]:
    """Private vertices filtered to solid multiplicity (likely variants).

    Returns ``(solid_only_a, solid_only_b)``: vertices private to one
    sample that are *well supported* there — dropping the multiplicity-1
    privates that are usually just that sample's sequencing errors.
    """
    comparison = compare_graphs(a, b)
    ia = np.searchsorted(_vertex_view(a), comparison.only_a)
    solid_a = comparison.only_a[
        a.counts[ia, MULT_SLOT] >= np.uint64(min_multiplicity)
    ]
    ib = np.searchsorted(_vertex_view(b), comparison.only_b)
    solid_b = comparison.only_b[
        b.counts[ib, MULT_SLOT] >= np.uint64(min_multiplicity)
    ]
    return solid_a, solid_b
