"""De Bruijn graph invariants and cross-implementation validation.

Every construction path in the library must produce *identical* graphs;
these checks are used by the test suite and are cheap enough to run
inside examples as sanity assertions.
"""

from __future__ import annotations

import numpy as np

from ..dna.kmer import canonical_int, iter_kmers, kmer_mask, kmer_to_str, revcomp_int
from ..dna.reads import ReadBatch
from .dbg import IN_BASE, OUT_BASE, DeBruijnGraph


class GraphValidationError(AssertionError):
    """Raised when a graph violates an invariant or differs from a reference."""


def assert_graphs_equal(actual: DeBruijnGraph, expected: DeBruijnGraph, label: str = "") -> None:
    """Exact comparison with a human-readable diff on failure."""
    prefix = f"{label}: " if label else ""
    if actual.k != expected.k:
        raise GraphValidationError(f"{prefix}k differs: {actual.k} != {expected.k}")
    if actual.n_vertices != expected.n_vertices:
        missing = np.setdiff1d(expected.vertices, actual.vertices)
        extra = np.setdiff1d(actual.vertices, expected.vertices)
        examples = []
        for v in missing[:3]:
            examples.append(f"missing {kmer_to_str(int(v), expected.k)}")
        for v in extra[:3]:
            examples.append(f"extra {kmer_to_str(int(v), expected.k)}")
        raise GraphValidationError(
            f"{prefix}vertex count differs: {actual.n_vertices} != "
            f"{expected.n_vertices} ({'; '.join(examples)})"
        )
    if not np.array_equal(actual.vertices, expected.vertices):
        i = int(np.nonzero(actual.vertices != expected.vertices)[0][0])
        raise GraphValidationError(
            f"{prefix}vertex sets differ at row {i}: "
            f"{actual.vertex_str(i)} != {expected.vertex_str(i)}"
        )
    if not np.array_equal(actual.counts, expected.counts):
        rows = np.nonzero((actual.counts != expected.counts).any(axis=1))[0]
        i = int(rows[0])
        raise GraphValidationError(
            f"{prefix}counters differ on {len(rows)} vertices; first at "
            f"{actual.vertex_str(i)}: {actual.counts[i].tolist()} != "
            f"{expected.counts[i].tolist()}"
        )


def check_canonical_vertices(graph: DeBruijnGraph) -> None:
    """Every stored vertex must be in canonical form."""
    for i in range(min(graph.n_vertices, 100_000)):
        v = int(graph.vertices[i])
        if canonical_int(v, graph.k) != v:
            raise GraphValidationError(
                f"vertex {kmer_to_str(v, graph.k)} at row {i} is not canonical"
            )


def check_edge_symmetry(graph: DeBruijnGraph) -> None:
    """Each recorded edge must be recorded identically at both endpoints.

    For vertex ``v`` with ``out[b] = c``, the successor vertex must carry
    the reciprocal counter with the same weight ``c`` (and symmetrically
    for ``in[b]``).  Holds for any *complete* graph built from reads
    because each observed pair increments both endpoints; subgraphs in
    isolation do *not* satisfy it (the cut neighbor lives elsewhere).
    """
    k = graph.k
    mask = kmer_mask(k)
    for i in range(graph.n_vertices):
        v = int(graph.vertices[i])
        for b in range(4):
            out_w = int(graph.counts[i, OUT_BASE + b])
            if out_w:
                succ = ((v << 2) | b) & mask
                _check_reciprocal(graph, succ, origin=v, weight=out_w, incoming=True,
                                  connecting_base=v >> (2 * (k - 1)))
            in_w = int(graph.counts[i, IN_BASE + b])
            if in_w:
                pred = (b << (2 * (k - 1))) | (v >> 2)
                _check_reciprocal(graph, pred, origin=v, weight=in_w, incoming=False,
                                  connecting_base=v & 0x3)


def _check_reciprocal(graph: DeBruijnGraph, neighbor: int, origin: int, weight: int,
                      incoming: bool, connecting_base: int) -> None:
    k = graph.k
    rc = revcomp_int(neighbor, k)
    canon = min(neighbor, rc)
    j = graph.index_of(canon)
    if j < 0:
        raise GraphValidationError(
            f"edge from {kmer_to_str(origin, k)} points at absent vertex "
            f"{kmer_to_str(canon, k)}"
        )
    flipped = canon != neighbor
    base = int(connecting_base)
    if incoming:
        slot = (OUT_BASE + (3 - base)) if flipped else (IN_BASE + base)
    else:
        slot = (IN_BASE + (3 - base)) if flipped else (OUT_BASE + base)
    got = int(graph.counts[j, slot])
    if got != weight:
        raise GraphValidationError(
            f"asymmetric edge between {kmer_to_str(origin, k)} and "
            f"{kmer_to_str(canon, k)}: {weight} != {got} (slot {slot})"
        )


def check_multiplicity_conservation(graph: DeBruijnGraph, reads: ReadBatch) -> None:
    """Total vertex multiplicity must equal the number of kmer instances."""
    expected = reads.n_kmers(graph.k)
    actual = graph.total_kmer_instances()
    if actual != expected:
        raise GraphValidationError(
            f"multiplicity sum {actual} != N(L-K+1) = {expected}"
        )


def check_edge_weight_conservation(graph: DeBruijnGraph, reads: ReadBatch) -> None:
    """Total edge weight must equal twice the number of adjacent pairs.

    A read of length L contributes L-K adjacent kmer pairs; every pair
    increments one counter at each endpoint.
    """
    pairs = reads.n_reads * (reads.read_length - graph.k)
    actual = graph.total_edge_weight()
    if actual != 2 * pairs:
        raise GraphValidationError(f"edge weight sum {actual} != 2 * {pairs}")


def check_genome_coverage(graph: DeBruijnGraph, genome: np.ndarray) -> int:
    """Count genome kmers present in the graph; returns how many are missing.

    With error-free, high-coverage reads every genome kmer should be a
    vertex; with errors and finite coverage a few may be missing.
    """
    missing = 0
    for kmer in iter_kmers(np.asarray(genome, dtype=np.uint8), graph.k):
        if canonical_int(kmer, graph.k) not in graph:
            missing += 1
    return missing


def validate_full_graph(graph: DeBruijnGraph, reads: ReadBatch) -> None:
    """Run every whole-graph invariant (for complete graphs, not subgraphs)."""
    check_canonical_vertices(graph)
    check_multiplicity_conservation(graph, reads)
    check_edge_weight_conservation(graph, reads)
    check_edge_symmetry(graph)
