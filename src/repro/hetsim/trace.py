"""Schedule traces and ASCII Gantt rendering for pipeline simulations.

A :class:`StepSimulation` records who processed what and when; this
module turns that into an inspectable event list and a terminal Gantt
chart — the quickest way to *see* the §III-E pipeline overlap (input
stream at the top, devices in the middle, writer at the bottom).
"""

from __future__ import annotations

from dataclasses import dataclass

from .pipeline import StepSimulation, Work


@dataclass(frozen=True)
class ScheduleEvent:
    """One processed partition in the simulated schedule."""

    ticket: int
    device: str
    start: float
    finish: float
    written: float

    @property
    def compute_seconds(self) -> float:
        return self.finish - self.start


def schedule_events(sim: StepSimulation) -> list[ScheduleEvent]:
    """Per-partition events of a simulation, in ticket order."""
    device_of: dict[int, str] = {}
    for usage in sim.usage.values():
        for ticket in usage.partitions:
            device_of[ticket] = usage.name
    return [
        ScheduleEvent(
            ticket=ticket,
            device=device_of[ticket],
            start=sim.start_times[ticket],
            finish=sim.finish_times[ticket],
            written=sim.written_times[ticket],
        )
        for ticket in range(len(sim.finish_times))
    ]


def render_gantt(sim: StepSimulation, width: int = 72) -> str:
    """ASCII Gantt chart of a simulated step.

    One row per device; each partition is drawn as a block of ``#`` up
    to its finish time, annotated with its ticket number when it fits.
    A final row shows write completion ticks (``|``).
    """
    if not sim.finish_times:
        return "(empty schedule)"
    horizon = max(max(sim.written_times), 1e-12)
    scale = (width - 1) / horizon

    def col(t: float) -> int:
        return min(width - 1, int(t * scale))

    lines = [f"0{' ' * (width - 12)}{horizon:.4g}s"]
    events = schedule_events(sim)
    for name in sim.usage:
        row = [" "] * width
        for ev in events:
            if ev.device != name:
                continue
            a, b = col(ev.start), col(ev.finish)
            for x in range(a, max(a + 1, b)):
                row[x] = "#"
            label = str(ev.ticket)
            if b - a > len(label):
                for i, ch in enumerate(label):
                    row[a + i] = ch
        lines.append(f"{name:>8} |{''.join(row)}")
    writer = [" "] * width
    for t in sim.written_times:
        writer[col(t)] = "|"
    lines.append(f"{'writer':>8} |{''.join(writer)}")
    return "\n".join(lines)


def summarize_schedule(sim: StepSimulation, works: list[Work]) -> dict:
    """Aggregate schedule health metrics (for tests and reports)."""
    del works  # shape kept for future per-work metrics
    makespan = sim.elapsed_seconds
    busy = {name: usage.busy_seconds for name, usage in sim.usage.items()}
    utilization = {
        name: (b / makespan if makespan else 0.0) for name, b in busy.items()
    }
    return {
        "makespan": makespan,
        "busy_seconds": busy,
        "utilization": utilization,
        "n_partitions": len(sim.finish_times),
    }
