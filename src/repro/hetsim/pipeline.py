"""Discrete-event simulation of the ParaHash co-processing pipeline.

Each step of ParaHash is a three-stage pipeline (§III-E): a single
input thread loads partitions from disk, idle processors consume them
(work-stealing: a processor that goes idle claims the next queuing id,
exactly the srv/cns protocol), and a single output thread writes the
produced partitions back.  This module replays that schedule on a
simulated clock, with per-partition compute costs supplied by the
:mod:`repro.hetsim.device` models from *measured* kernel work.

The simulation is deterministic: given the same works and devices, the
same schedule falls out.  Besides the pipelined elapsed time it reports
the non-pipelined stage sums (Fig 12's comparison), per-device busy
time and per-device claimed work (Fig 11's workload distribution).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .device import Device, HashWork, MspWork
from .transfer import DiskModel

Work = MspWork | HashWork


class WorkPlacementError(RuntimeError):
    """No device can hold a partition's working set."""


@dataclass
class DeviceUsage:
    """What one device did during a simulated step."""

    name: str
    partitions: list[int] = field(default_factory=list)
    busy_seconds: float = 0.0
    transfer_seconds: float = 0.0
    work_units: int = 0  # reads (Step 1) or kmers (Step 2) claimed


@dataclass
class StepSimulation:
    """Outcome of simulating one step of the workflow."""

    elapsed_seconds: float
    input_seconds: float  # total input-channel busy time
    output_seconds: float  # total output-channel busy time
    usage: dict[str, DeviceUsage]
    finish_times: list[float]
    written_times: list[float]
    start_times: list[float] = field(default_factory=list)

    @property
    def compute_seconds(self) -> float:
        """Total device-busy seconds (compute + transfer), all devices."""
        return sum(u.busy_seconds for u in self.usage.values())

    def non_pipelined_seconds(self) -> float:
        """Stage-sum time had the stages run one after another.

        Input everything, then compute with the same devices (all
        inputs resident), then output everything — the paper's
        "accumulated time of non-pipelined stages".
        """
        compute_elapsed = _compute_only_elapsed(self)
        return self.input_seconds + compute_elapsed + self.output_seconds

    def workload_shares(self) -> dict[str, float]:
        """Fraction of work units each device processed (Fig 11)."""
        total = sum(u.work_units for u in self.usage.values())
        if total == 0:
            return {name: 0.0 for name in self.usage}
        return {name: u.work_units / total for name, u in self.usage.items()}


def _work_units(work: Work) -> int:
    return work.n_reads if isinstance(work, MspWork) else work.n_kmers


def simulate_step(
    works: list[Work],
    devices: list[Device],
    disk: DiskModel,
) -> StepSimulation:
    """Simulate one pipelined step over its partitions.

    Schedule semantics:

    * the input thread reads partitions sequentially; partition ``i``
      becomes available at the cumulative read time;
    * when a device goes idle it claims the next unclaimed queuing id
      (ties broken by device order, matching a deterministic ``cns``
      fetch-and-increment) and starts as soon as both it and the input
      are ready;
    * the output thread writes results in completion order, one at a
      time.
    """
    if not devices:
        raise ValueError("at least one device is required")
    n = len(works)
    usage = {d.name: DeviceUsage(name=d.name) for d in devices}
    if len(usage) != len(devices):
        raise ValueError("device names must be unique")
    if n == 0:
        return StepSimulation(0.0, 0.0, 0.0, usage, [], [])

    # Stage 1: sequential input availability times.
    in_avail: list[float] = []
    t = 0.0
    for work in works:
        t += disk.read_seconds(work.in_bytes)
        in_avail.append(t)
    input_total = t

    # Stage 2: work-stealing compute.  Tickets are claimed in order by
    # the earliest-idle device *whose memory fits the partition* — a
    # GPU cannot claim a table larger than its device memory (§V-B2).
    idle = {d.name: 0.0 for d in devices}
    finish = [0.0] * n
    starts = [0.0] * n
    for ticket in range(n):
        work = works[ticket]
        fitting = [d for d in devices if d.fits(work)]
        if not fitting:
            raise WorkPlacementError(
                f"partition {ticket} fits no device (e.g. its hash table "
                "exceeds every device memory); increase n_partitions"
            )
        device = min(fitting, key=lambda d: idle[d.name])
        start = max(idle[device.name], in_avail[ticket])
        compute = device.total_seconds(work)
        done = start + compute
        idle[device.name] = done
        starts[ticket] = start
        finish[ticket] = done
        record = usage[device.name]
        record.partitions.append(ticket)
        record.busy_seconds += compute
        record.transfer_seconds += device.transfer_seconds(work)
        record.work_units += _work_units(work)

    # Stage 3: single writer, completion order.
    order = sorted(range(n), key=lambda i: finish[i])
    writer_free = 0.0
    written = [0.0] * n
    output_total = 0.0
    for i in order:
        write_cost = disk.write_seconds(works[i].out_bytes)
        output_total += write_cost
        start = max(writer_free, finish[i])
        writer_free = start + write_cost
        written[i] = writer_free

    return StepSimulation(
        elapsed_seconds=max(written),
        input_seconds=input_total,
        output_seconds=output_total,
        usage=usage,
        finish_times=finish,
        written_times=written,
        start_times=starts,
    )


def _compute_only_elapsed(sim: StepSimulation) -> float:
    """Compute-stage elapsed with all inputs resident.

    Approximated from the recorded schedule: per-device busy time with
    no input waits, so the makespan is the maximum device busy time.
    """
    if not sim.usage:
        return 0.0
    return max(u.busy_seconds for u in sim.usage.values())


def simulate_step_non_pipelined(
    works: list[Work],
    devices: list[Device],
    disk: DiskModel,
) -> tuple[float, float, float]:
    """Stage times with no overlap: (input, compute, output).

    Input everything, then compute (work-stealing over resident
    partitions), then write everything.
    """
    input_total = sum(disk.read_seconds(w.in_bytes) for w in works)
    output_total = sum(disk.write_seconds(w.out_bytes) for w in works)
    instant = DiskModel(name="resident", read_bytes_per_sec=1e18,
                        write_bytes_per_sec=1e18, latency_seconds=0.0)
    compute_elapsed = simulate_step(works, devices, instant).elapsed_seconds
    return input_total, compute_elapsed, output_total
