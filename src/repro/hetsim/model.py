"""The §IV performance model — Equations (1) and (2).

The model estimates a step's elapsed time from component times measured
in isolation, under the assumption that asynchronous transfer makes the
CPU computation, GPU computation and disk IO independent:

    T_i = max{T_CPU, T_GPU, T_IO} + (1/n_i)(T_input + T_output)
    T_CPU = T_CPU_compute
    T_GPU = T_GPU_compute + T_DH_transfer
    T_IO  = (n_i - 1)/n_i * max{T_input, T_output}           (Eq. 1)

and, for the compute-bound Case 1 (T_IO << min{T_CPU_only,
T_single_GPU}), the ideal co-processing time with N_GPU devices:

    1 / (1/T_only_CPU + N_GPU / T_single_GPU)                (Eq. 2)

Case 2 (T_IO > max components) degenerates to
``T_IO + (1/n)(T_input + T_output)``.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class StepComponents:
    """Isolated component times of one step (seconds).

    ``t_gpu`` already includes host-device transfer for each GPU, as in
    the paper's measurement convention ("We measure the GPU computation
    time with the host and device data transfer time included").
    """

    t_cpu: float  # CPU compute, 0 when the CPU does not compute
    t_gpus: tuple[float, ...]  # per-GPU compute + DH transfer
    t_input: float
    t_output: float
    n_partitions: int

    def __post_init__(self) -> None:
        if self.n_partitions < 1:
            raise ValueError("n_partitions must be >= 1")
        if min((self.t_cpu, self.t_input, self.t_output) + self.t_gpus, default=0) < 0:
            raise ValueError("component times must be >= 0")


def t_io(components: StepComponents) -> float:
    """``(n-1)/n * max{T_input, T_output}`` (pipelined IO term)."""
    n = components.n_partitions
    return (n - 1) / n * max(components.t_input, components.t_output)


def estimate_step_time(components: StepComponents) -> float:
    """Equation (1): the pipelined elapsed time of one step."""
    t_gpu = max(components.t_gpus, default=0.0)
    overlap = max(components.t_cpu, t_gpu, t_io(components))
    startup = (components.t_input + components.t_output) / components.n_partitions
    return overlap + startup


def ideal_coprocessing_time(
    t_cpu_only: float, t_single_gpu: float, n_gpus: int, use_cpu: bool = True
) -> float:
    """Equation (2): ideal Case 1 elapsed with speed-proportional sharing.

    Speeds add: the CPU contributes ``1/T_CPU_only``, each GPU
    ``1/T_single_GPU``.  ``use_cpu=False`` gives the GPU-only
    configurations of Fig 13.
    """
    if n_gpus < 0:
        raise ValueError("n_gpus must be >= 0")
    speed = 0.0
    if use_cpu:
        if t_cpu_only <= 0:
            raise ValueError("t_cpu_only must be positive when the CPU is used")
        speed += 1.0 / t_cpu_only
    if n_gpus:
        if t_single_gpu <= 0:
            raise ValueError("t_single_gpu must be positive when GPUs are used")
        speed += n_gpus / t_single_gpu
    if speed == 0.0:
        raise ValueError("at least one processor must be enabled")
    return 1.0 / speed


def io_bound_time(components: StepComponents) -> float:
    """Case 2 estimate: ``T_IO + (1/n)(T_input + T_output)``."""
    n = components.n_partitions
    return t_io(components) + (components.t_input + components.t_output) / n


def classify_case(components: StepComponents) -> int:
    """1 when IO is negligible vs every compute component, 2 when IO
    dominates all of them, 0 for the mixed regime."""
    io = max(components.t_input, components.t_output)
    compute = [t for t in (components.t_cpu, *components.t_gpus) if t > 0]
    if not compute:
        return 2
    if io < 0.1 * min(compute):
        return 1
    if io > max(compute):
        return 2
    return 0


def ideal_workload_shares(
    t_cpu_only: float, t_single_gpu: float, n_gpus: int, use_cpu: bool = True
) -> dict[str, float]:
    """Speed-proportional work shares (the dotted ideal line of Fig 11)."""
    speeds: dict[str, float] = {}
    if use_cpu:
        speeds["cpu"] = 1.0 / t_cpu_only
    for i in range(n_gpus):
        speeds[f"gpu{i}"] = 1.0 / t_single_gpu
    total = sum(speeds.values())
    return {name: s / total for name, s in speeds.items()}
