"""Disk transfer models.

The evaluation exercises two IO regimes (§V-C4): a memory-cached file
whose simulated bandwidth of several GB/s makes computation the
bottleneck (Case 1), and a spinning-disk file at ~100 MB/s that
dominates everything (Case 2).  A :class:`DiskModel` captures one such
channel pair; input and output are independent channels that overlap
(the paper overlaps input and output transfer).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DiskModel:
    """Sequential read/write bandwidth with a fixed per-file latency."""

    name: str
    read_bytes_per_sec: float
    write_bytes_per_sec: float
    latency_seconds: float = 1e-4

    def __post_init__(self) -> None:
        if self.read_bytes_per_sec <= 0 or self.write_bytes_per_sec <= 0:
            raise ValueError("bandwidths must be positive")
        if self.latency_seconds < 0:
            raise ValueError("latency must be >= 0")

    def read_seconds(self, n_bytes: int) -> float:
        return self.latency_seconds + n_bytes / self.read_bytes_per_sec

    def write_seconds(self, n_bytes: int) -> float:
        return self.latency_seconds + n_bytes / self.write_bytes_per_sec


def memory_cached_disk() -> DiskModel:
    """Case 1: the input resides in the page cache (several GB/s)."""
    return DiskModel(
        name="memory-cached",
        read_bytes_per_sec=6.0e9,
        write_bytes_per_sec=5.0e9,
        latency_seconds=1e-6,
    )


def spinning_disk() -> DiskModel:
    """Case 2: a commodity HDD (~120 MB/s sequential)."""
    return DiskModel(
        name="hdd",
        read_bytes_per_sec=1.2e8,
        write_bytes_per_sec=1.1e8,
        latency_seconds=5e-3,
    )
