"""Calibrated device cost models (the GPU/CPU substitution substrate).

The paper's testbed is two 10-core Xeon E5-2660 CPUs and two Tesla K40m
GPUs.  Neither is available here, so devices are modeled: each device
converts *measured algorithm work* (bases scanned in MSP, hash-table
operations and probe counts in Step 2 — all produced by really running
the kernels in :mod:`repro.core`) into simulated seconds through a
small set of calibrated rates.

The calibration constants encode the paper's observed ratios rather
than absolute hardware speeds:

* 20 CPU threads hash about as fast as one K40 GPU ("the hashing
  performance on the 20-core CPU is comparable to ... a Nvidia K40",
  §V-C1) — enforced by matching effective op rates;
* the GPU is several times faster than the CPU at the regular,
  bandwidth-bound MSP scan (§III-D offloads minimizer computation);
* per-op hashing cost grows once a table outgrows the device's fast
  memory — the locality effect that makes hashing faster with more,
  smaller partitions (Fig 7) — and the GPU additionally pays a warp
  divergence penalty proportional to probe-length variance (§III-D);
* GPU work pays PCIe transfer at a fixed bandwidth, not overlapped
  with device compute (the paper does not overlap them, §IV).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace

from ..core.hashtable import HashStats

#: Bytes per hash-table entry slot (state + key + 9 counters), used to
#: reason about working-set size.
ENTRY_BYTES = 45


@dataclass(frozen=True)
class MspWork:
    """Measured Step 1 work for one input piece."""

    n_reads: int
    n_bases: int
    n_superkmers: int
    in_bytes: int
    out_bytes: int


@dataclass(frozen=True)
class HashWork:
    """Measured Step 2 work for one superkmer partition."""

    n_kmers: int
    ops: int
    probes: int
    inserts: int
    table_bytes: int
    in_bytes: int
    out_bytes: int

    @classmethod
    def from_stats(cls, stats: HashStats, n_kmers: int, table_bytes: int,
                   in_bytes: int, out_bytes: int) -> "HashWork":
        return cls(
            n_kmers=n_kmers,
            ops=stats.ops,
            probes=stats.probes,
            inserts=stats.inserts,
            table_bytes=table_bytes,
            in_bytes=in_bytes,
            out_bytes=out_bytes,
        )


class Device:
    """Base interface: convert measured work into simulated seconds."""

    name: str

    def msp_seconds(self, work: MspWork) -> float:
        raise NotImplementedError

    def hash_seconds(self, work: HashWork) -> float:
        raise NotImplementedError

    def transfer_seconds(self, work: MspWork | HashWork) -> float:
        """Host<->device transfer cost (zero for host processors)."""
        return 0.0

    def fits(self, work: MspWork | HashWork) -> bool:
        """Whether the work item's memory footprint fits this device.

        The paper's K40m has 12 GB of device memory; a partition whose
        hash table exceeds it cannot be offloaded, which is one of the
        reasons the partition count bounds the per-partition table size
        (§V-B2).  Host processors always fit (host memory holds the data
        anyway).
        """
        return True

    def total_seconds(self, work: MspWork | HashWork) -> float:
        if isinstance(work, MspWork):
            return self.msp_seconds(work) + self.transfer_seconds(work)
        return self.hash_seconds(work) + self.transfer_seconds(work)


def locality_factor(table_bytes: int, fast_bytes: int, miss_penalty: float) -> float:
    """Per-op slowdown once the table exceeds the fast-memory size.

    Fraction of random accesses that miss fast memory is approximately
    ``1 - fast/table`` for a uniformly accessed table; each miss costs
    ``miss_penalty`` times a hit.
    """
    if table_bytes <= fast_bytes:
        return 1.0
    miss_fraction = 1.0 - fast_bytes / table_bytes
    return 1.0 + miss_penalty * miss_fraction


@dataclass(frozen=True)
class CpuDevice(Device):
    """A multi-core CPU.

    ``base_ops_per_sec`` is the per-thread hash-op throughput on an
    in-cache table; MSP scanning is expressed in bases/second per
    thread.  Parallel efficiency < 1 models synchronization overhead
    (the paper measures a log-log scaling slope of about -1, i.e. high
    efficiency).
    """

    name: str = "cpu"
    n_threads: int = 20
    hash_ops_per_sec: float = 6.0e6  # per thread, in-cache
    msp_bases_per_sec: float = 2.5e6  # per thread; O(LKP) scan is heavy
    cache_bytes: int = 8 << 20  # effective per-socket LLC working set
    miss_penalty: float = 2.2
    parallel_efficiency: float = 0.95
    io_share: float = 0.0  # fraction of threads stolen by IO parsing

    def _effective_threads(self) -> float:
        usable = self.n_threads * (1.0 - self.io_share)
        return max(1.0, usable * self.parallel_efficiency)

    def msp_seconds(self, work: MspWork) -> float:
        return work.n_bases / (self.msp_bases_per_sec * self._effective_threads())

    def hash_seconds(self, work: HashWork) -> float:
        factor = locality_factor(work.table_bytes, self.cache_bytes, self.miss_penalty)
        ops = work.ops + work.probes
        return ops * factor / (self.hash_ops_per_sec * self._effective_threads())

    def hash_seconds_with_threads(self, work: HashWork, n_threads: int,
                                  contention_ops: int = 0) -> float:
        """Hashing time at an explicit thread count (the Fig 9 sweep).

        ``contention_ops`` adds serialized work for lock waits; with
        state-transfer locking it is one event per insert, which is why
        scaling stays near-linear.
        """
        if n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        factor = locality_factor(work.table_bytes, self.cache_bytes, self.miss_penalty)
        ops = work.ops + work.probes
        eff = max(1.0, n_threads * self.parallel_efficiency)
        parallel = ops * factor / (self.hash_ops_per_sec * eff)
        serial = contention_ops * factor / self.hash_ops_per_sec
        return parallel + serial * (1.0 - 1.0 / n_threads)


@dataclass(frozen=True)
class GpuDevice(Device):
    """A many-core GPU with PCIe-attached memory.

    ``hash_ops_per_sec`` is the aggregate device throughput on an
    in-fast-memory table.  Divergence: threads of a warp walking
    different probe lengths serialize, modeled as a constant factor on
    probe work (probe lengths are data-dependent and irregular).
    """

    name: str = "gpu0"
    n_sms: int = 15
    hash_ops_per_sec: float = 1.9e8  # aggregate, in fast memory
    msp_bases_per_sec: float = 6.0e7  # aggregate; regular, coalesced scan
    fast_bytes: int = 12 << 20  # L2 + shared memory working set
    miss_penalty: float = 1.4  # high-bandwidth DRAM softens misses
    divergence_factor: float = 1.6  # warp serialization on probes
    pcie_bytes_per_sec: float = 10.0e9
    memory_bytes: int = 12 << 30  # K40m device memory

    def fits(self, work: MspWork | HashWork) -> bool:
        if isinstance(work, HashWork):
            return work.table_bytes + work.in_bytes <= self.memory_bytes
        return work.in_bytes + work.out_bytes <= self.memory_bytes

    def msp_seconds(self, work: MspWork) -> float:
        return work.n_bases / self.msp_bases_per_sec

    def hash_seconds(self, work: HashWork) -> float:
        factor = locality_factor(work.table_bytes, self.fast_bytes, self.miss_penalty)
        ops = work.ops + self.divergence_factor * work.probes
        return ops * factor / self.hash_ops_per_sec

    def transfer_seconds(self, work: MspWork | HashWork) -> float:
        """PCIe cost: ship the input partition down and the result up."""
        if isinstance(work, MspWork):
            moved = work.in_bytes + work.out_bytes
        else:
            moved = work.in_bytes + work.table_bytes
        return moved / self.pcie_bytes_per_sec


def default_cpu(n_threads: int = 20) -> CpuDevice:
    """The paper's dual E5-2660 (2 x 10 cores) as one CPU device."""
    return CpuDevice(name="cpu", n_threads=n_threads)


def default_gpu(index: int = 0) -> GpuDevice:
    """One Tesla K40m-class device."""
    return GpuDevice(name=f"gpu{index}")


# -- host calibration -------------------------------------------------------
#
# The simulated devices above carry the *paper's* ratios; the process
# backend additionally wants rates for the machine it actually runs on,
# so its dispatch weights reflect real kernel throughput.  A short
# warm-up pass runs the real MSP and hashing kernels on a read sample
# and fits the device model to the measured rates.


@dataclass(frozen=True)
class HostCalibration:
    """Single-thread kernel rates measured on this host."""

    msp_bases_per_sec: float
    hash_ops_per_sec: float
    sample_bases: int
    sample_ops: int

    def as_dict(self) -> dict:
        return {
            "msp_bases_per_sec": self.msp_bases_per_sec,
            "hash_ops_per_sec": self.hash_ops_per_sec,
            "sample_bases": self.sample_bases,
            "sample_ops": self.sample_ops,
        }


def measure_host_rates(reads, k: int, p: int, n_partitions: int,
                       max_reads: int = 256) -> HostCalibration:
    """Run both kernels on a sample of ``reads`` and time them.

    The sample is the leading ``max_reads`` reads — enough work to
    amortize interpreter overhead, small enough that calibration stays
    a fraction of a real build.  Rates are floored at 1.0 so a
    degenerate sample can never produce a zero-division downstream.
    """
    from ..core.hashtable import ConcurrentHashTable
    from ..core.subgraph import block_observations
    from ..dna.reads import ReadBatch
    from ..msp.partitioner import partition_reads

    sample = (ReadBatch(codes=reads.codes[:max_reads])
              if reads.n_reads > max_reads else reads)
    t0 = time.perf_counter()
    result = partition_reads(sample, k, p, n_partitions)
    msp_elapsed = time.perf_counter() - t0
    n_bases = sample.n_reads * sample.read_length

    sample_ops = 0
    t1 = time.perf_counter()
    for block in result.blocks:
        if not block.n_superkmers:
            continue
        vertex_ids, slots = block_observations(block)
        if not vertex_ids.size:
            continue
        capacity = 1
        while capacity < 2 * vertex_ids.size:
            capacity *= 2
        table = ConcurrentHashTable(capacity, k)
        table.insert_batch(vertex_ids, slots)
        sample_ops += table.stats.ops + table.stats.probes
    hash_elapsed = time.perf_counter() - t1

    return HostCalibration(
        msp_bases_per_sec=max(1.0, n_bases / max(msp_elapsed, 1e-9)),
        hash_ops_per_sec=max(1.0, sample_ops / max(hash_elapsed, 1e-9)),
        sample_bases=n_bases,
        sample_ops=sample_ops,
    )


def fitted_cpu(calibration: HostCalibration, n_threads: int = 1) -> CpuDevice:
    """A :class:`CpuDevice` whose per-thread rates are this host's."""
    return replace(
        default_cpu(n_threads=n_threads),
        name="host-cpu",
        hash_ops_per_sec=calibration.hash_ops_per_sec,
        msp_bases_per_sec=calibration.msp_bases_per_sec,
    )


def scaled_gpu(calibration: HostCalibration, index: int = 0) -> GpuDevice:
    """A GPU model preserving the paper's GPU:CPU-thread rate ratios.

    The K40's calibrated constants are ratios against one Xeon thread;
    re-anchoring them to this host's measured thread keeps the
    heterogeneous simulation honest on different hardware.
    """
    paper_cpu = default_cpu()
    paper_gpu = default_gpu(index)
    return replace(
        paper_gpu,
        name=f"host-gpu{index}",
        hash_ops_per_sec=calibration.hash_ops_per_sec
        * (paper_gpu.hash_ops_per_sec / paper_cpu.hash_ops_per_sec),
        msp_bases_per_sec=calibration.msp_bases_per_sec
        * (paper_gpu.msp_bases_per_sec / paper_cpu.msp_bases_per_sec),
    )


def claim_weight(device: Device, work: MspWork | HashWork,
                 target_seconds: float = 0.05, max_weight: int = 8) -> int:
    """Tickets one queue visit should claim on ``device``.

    A fast device (or tiny work items) claims several tickets per visit
    so queue synchronization amortizes; a slow device claims one so the
    tail stays balanced (the §III-E work-stealing argument).  The
    weight is how many ``work``-sized items fit in ``target_seconds``
    of device time, clamped to ``[1, max_weight]``.
    """
    seconds = device.total_seconds(work)
    if seconds <= 0.0:
        return max_weight
    return max(1, min(max_weight, int(round(target_seconds / seconds))))
