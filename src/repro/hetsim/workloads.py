"""Measured workloads: run the real kernels, extract simulator inputs.

The simulator never invents work: every :class:`MspWork` /
:class:`HashWork` item is produced by actually executing the Step 1 /
Step 2 kernels of :mod:`repro.msp` and :mod:`repro.core` on the data
and metering them (bases scanned, hash operations, probe counts, table
sizes, encoded partition bytes).  The device models then price that
work in simulated seconds.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..core.config import ParaHashConfig
from ..core.subgraph import SubgraphResult, build_subgraph
from ..dna.reads import ReadBatch
from ..graph.dbg import DeBruijnGraph
from ..graph.merge import merge_disjoint
from ..msp.partitioner import partition_reads
from ..msp.records import SuperkmerBlock, concat_blocks
from .device import CpuDevice, Device, HashWork, MspWork, default_cpu, default_gpu
from .pipeline import StepSimulation, simulate_step
from .transfer import DiskModel, memory_cached_disk

#: Approximate fastq bytes per read: header + sequence + '+' + quality.
FASTQ_OVERHEAD_PER_READ = 14
#: Output bytes per distinct vertex in the final graph file.
GRAPH_BYTES_PER_VERTEX = 16


def fastq_bytes(n_reads: int, read_length: int) -> int:
    """Plain-text fastq size of a read batch."""
    return n_reads * (2 * read_length + FASTQ_OVERHEAD_PER_READ)


@dataclass
class Step1Workload:
    """Measured Step 1 work plus the partition blocks it produced."""

    works: list[MspWork]
    blocks: list[SuperkmerBlock]  # accumulated over pieces, one per partition


@dataclass
class Step2Workload:
    """Measured Step 2 work plus the constructed subgraphs."""

    works: list[HashWork]
    results: list[SubgraphResult]


def measure_step1(reads: ReadBatch, config: ParaHashConfig) -> Step1Workload:
    """Run MSP per input piece and meter each piece's work."""
    works: list[MspWork] = []
    accumulated: list[SuperkmerBlock] | None = None
    for piece in reads.split(config.n_input_pieces):
        result = partition_reads(piece, config.k, config.p, config.n_partitions)
        out_bytes = sum(b.byte_size_encoded() for b in result.blocks)
        works.append(
            MspWork(
                n_reads=piece.n_reads,
                n_bases=piece.total_bases,
                n_superkmers=len(result.superkmers),
                in_bytes=fastq_bytes(piece.n_reads, piece.read_length),
                out_bytes=out_bytes,
            )
        )
        if accumulated is None:
            accumulated = result.blocks
        else:
            accumulated = [
                concat_blocks([a, b]) if b.n_superkmers else a
                for a, b in zip(accumulated, result.blocks)
            ]
    assert accumulated is not None
    return Step1Workload(works=works, blocks=accumulated)


def measure_step2(blocks: list[SuperkmerBlock], config: ParaHashConfig) -> Step2Workload:
    """Build every subgraph for real and meter the hashing work."""
    works: list[HashWork] = []
    results: list[SubgraphResult] = []
    for block in blocks:
        if block.n_superkmers == 0:
            continue
        result = build_subgraph(block, policy=config.sizing)
        results.append(result)
        works.append(
            HashWork.from_stats(
                result.stats,
                n_kmers=result.n_kmers,
                table_bytes=result.table_bytes,
                in_bytes=block.byte_size_encoded(),
                out_bytes=result.graph.n_vertices * GRAPH_BYTES_PER_VERTEX,
            )
        )
    return Step2Workload(works=works, results=results)


def device_set(use_cpu: bool = True, n_gpus: int = 0,
               cpu: CpuDevice | None = None) -> list[Device]:
    """A named device configuration (the Table III / Fig 13 variants)."""
    devices: list[Device] = []
    if use_cpu:
        devices.append(cpu or default_cpu())
    devices.extend(default_gpu(i) for i in range(n_gpus))
    if not devices:
        raise ValueError("at least one device must be enabled")
    return devices


@dataclass
class HetSimReport:
    """A full simulated ParaHash run (both steps) on one device config."""

    step1: StepSimulation
    step2: StepSimulation
    graph: DeBruijnGraph
    config: ParaHashConfig
    devices: list[str]
    disk: str

    @property
    def total_seconds(self) -> float:
        return self.step1.elapsed_seconds + self.step2.elapsed_seconds


#: Fraction of CPU threads consumed by input parsing / output encoding
#: in Step 1 ("the CPU does more input and output data parsing work,
#: e.g., extracting and encoding reads ... hence it spends less time in
#: the computation", §V-C2).
STEP1_CPU_IO_SHARE = 0.3


def simulate_parahash(
    reads: ReadBatch,
    config: ParaHashConfig | None = None,
    use_cpu: bool = True,
    n_gpus: int = 0,
    disk: DiskModel | None = None,
    cpu: CpuDevice | None = None,
    precomputed: tuple[Step1Workload, Step2Workload] | None = None,
) -> HetSimReport:
    """Run both steps for real, then replay them on simulated devices.

    ``precomputed`` lets callers measure the kernels once and sweep many
    device configurations over the same workload (the kernels are the
    expensive part; the simulation is microseconds).
    """
    config = config or ParaHashConfig()
    disk = disk or memory_cached_disk()
    base_cpu = cpu or default_cpu()
    if precomputed is None:
        step1 = measure_step1(reads, config)
        step2 = measure_step2(step1.blocks, config)
    else:
        step1, step2 = precomputed

    step1_cpu = replace(base_cpu, io_share=STEP1_CPU_IO_SHARE)
    devices1 = device_set(use_cpu, n_gpus, cpu=step1_cpu)
    devices2 = device_set(use_cpu, n_gpus, cpu=replace(base_cpu, io_share=0.0))
    sim1 = simulate_step(step1.works, devices1, disk)
    sim2 = simulate_step(step2.works, devices2, disk)
    graph = merge_disjoint([r.graph for r in step2.results])
    return HetSimReport(
        step1=sim1,
        step2=sim2,
        graph=graph,
        config=config,
        devices=[d.name for d in devices2],
        disk=disk.name,
    )


def measure_workloads(
    reads: ReadBatch, config: ParaHashConfig | None = None
) -> tuple[Step1Workload, Step2Workload]:
    """Measure both steps once (for configuration sweeps)."""
    config = config or ParaHashConfig()
    step1 = measure_step1(reads, config)
    step2 = measure_step2(step1.blocks, config)
    return step1, step2
