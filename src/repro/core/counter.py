"""Kmer counting mode (the lighter sibling of graph construction).

The paper distinguishes De Bruijn graph *construction* from kmer
*counting*: "kmer counters [2], [5], [14] do not generate the complete
De Bruijn graph in the output" (§V-A) — they only merge duplicates and
record multiplicities.  Counting is still useful on its own (abundance
filtering, spectra), and ParaHash's machinery does it with the edge
slots simply unused.  This module exposes that mode with a compact
result type.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dna.kmer import canonical_int, canonical_u64, kmers_from_reads
from ..dna.reads import ReadBatch
from ..graph.dbg import MULT_SLOT
from ..msp.partitioner import partition_reads
from .estimator import SizingPolicy



@dataclass
class KmerCountTable:
    """Distinct canonical kmers with occurrence counts, sorted by kmer."""

    k: int
    kmers: np.ndarray  # sorted uint64
    counts: np.ndarray  # parallel uint64

    def __post_init__(self) -> None:
        self.kmers = np.asarray(self.kmers, dtype=np.uint64)
        self.counts = np.asarray(self.counts, dtype=np.uint64)
        if self.kmers.shape != self.counts.shape:
            raise ValueError("kmers and counts must be parallel")

    @property
    def n_distinct(self) -> int:
        return int(self.kmers.size)

    def total_instances(self) -> int:
        return int(self.counts.sum())

    def count(self, kmer: int) -> int:
        """Occurrences of a kmer (canonicalized first); 0 when absent."""
        canon = np.uint64(canonical_int(int(kmer), self.k))
        i = int(np.searchsorted(self.kmers, canon))
        if i < self.kmers.size and self.kmers[i] == canon:
            return int(self.counts[i])
        return 0

    def __contains__(self, kmer: int) -> bool:
        return self.count(kmer) > 0

    def filter_min_count(self, min_count: int) -> "KmerCountTable":
        keep = self.counts >= np.uint64(min_count)
        return KmerCountTable(k=self.k, kmers=self.kmers[keep],
                              counts=self.counts[keep])

    def histogram(self, max_count: int = 256) -> np.ndarray:
        """``hist[c]`` = number of distinct kmers seen exactly c times."""
        capped = np.minimum(self.counts, np.uint64(max_count)).astype(np.int64)
        return np.bincount(capped, minlength=max_count + 1)


def count_kmers(reads: ReadBatch, k: int) -> KmerCountTable:
    """Direct whole-input counting (numpy unique; the sort-merge way)."""
    kmers = kmers_from_reads(reads.codes, k)
    canon = canonical_u64(kmers, k).ravel()
    distinct, counts = np.unique(canon, return_counts=True)
    return KmerCountTable(k=k, kmers=distinct, counts=counts.astype(np.uint64))


def count_kmers_partitioned(
    reads: ReadBatch, k: int, p: int = 11, n_partitions: int = 16,
    policy: SizingPolicy | None = None,
) -> KmerCountTable:
    """MSP + hashing counting (the ParaHash way, memory-bounded).

    Identical results to :func:`count_kmers`, but the working set is one
    partition's table at a time — the counting analogue of the paper's
    construction pipeline (what MSP [2] was originally built for).
    """
    from .subgraph import build_subgraph

    result = partition_reads(reads, k, p, n_partitions)
    pieces = []
    for block in result.blocks:
        if block.n_superkmers == 0:
            continue
        sub = build_subgraph(block, policy=policy)
        pieces.append((sub.graph.vertices, sub.graph.counts[:, MULT_SLOT]))
    if not pieces:
        return KmerCountTable(k=k, kmers=np.zeros(0, dtype=np.uint64),
                              counts=np.zeros(0, dtype=np.uint64))
    kmers = np.concatenate([p_[0] for p_ in pieces])
    counts = np.concatenate([p_[1] for p_ in pieces])
    order = np.argsort(kmers)
    return KmerCountTable(k=k, kmers=kmers[order], counts=counts[order])


def abundance_filter_reads(table: KmerCountTable, reads: ReadBatch,
                           min_count: int) -> np.ndarray:
    """Mark reads all of whose kmers pass the abundance threshold.

    A simple quality filter built on the count table: returns a boolean
    mask of "solid" reads (no kmer below ``min_count``).
    """
    k = table.k
    kmers = kmers_from_reads(reads.codes, k)
    canon = canonical_u64(kmers, k)
    idx = np.searchsorted(table.kmers, canon)
    idx = np.minimum(idx, max(0, table.kmers.size - 1))
    if table.kmers.size == 0:
        return np.zeros(reads.n_reads, dtype=bool)
    found = table.kmers[idx] == canon
    counts = np.where(found, table.counts[idx], 0)
    return (counts >= min_count).all(axis=1)
