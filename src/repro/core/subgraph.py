"""Subgraph construction from superkmer partitions (ParaHash Step 2).

For each superkmer in a partition we "generate multiple <kmer, edge>
pairs according to the superkmer length, and insert the <kmer, edge>
pairs in the hash table" (§III-C2).  Here the pair is a ``(canonical
kmer, counter slot)`` observation:

* every kmer instance contributes one multiplicity observation;
* every adjacent pair *inside* a superkmer contributes a successor
  observation on the left kmer and a predecessor observation on the
  right kmer;
* the partition's **extension bases** contribute the cut edges: the
  first kmer's predecessor and the last kmer's successor, when the
  superkmer did not touch the read boundary.

Because MSP routes all duplicates of a kmer to one partition, the union
of all subgraphs is exactly the reference graph — the test suite checks
this equality bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dna.kmer import canonical_with_flip
from ..graph.dbg import (
    MULT_SLOT,
    DeBruijnGraph,
    graph_from_pairs,
    slot_for_predecessor,
    slot_for_successor,
)
from ..msp.records import SuperkmerBlock
from .estimator import SizingPolicy, next_power_of_two
from .hashtable import ConcurrentHashTable, HashStats, TableFullError


def block_observations(block: SuperkmerBlock) -> tuple[np.ndarray, np.ndarray]:
    """All ``(canonical vertex, counter slot)`` observations of a block.

    Vectorized end to end; returns parallel arrays ready for
    :meth:`ConcurrentHashTable.insert_batch` (or, for the sort-merge
    baselines, :func:`repro.graph.dbg.graph_from_pairs`).
    """
    k = block.k
    if block.n_superkmers == 0:
        empty = np.zeros(0, dtype=np.uint64)
        return empty, empty.copy()
    kmers, positions = block.flat_kmers()
    can, flip = canonical_with_flip(kmers, k)

    per_sk = block.kmers_per_superkmer
    total = int(per_sk.sum())
    sk_ids = np.repeat(np.arange(block.n_superkmers, dtype=np.int64), per_sk)
    ramp = np.arange(total, dtype=np.int64) - np.repeat(
        np.concatenate(([0], np.cumsum(per_sk)[:-1])), per_sk
    )
    is_first = ramp == 0
    is_last = ramp == (per_sk[sk_ids] - 1)

    bases = block.bases
    t = bases.size
    # Successor base: the base after the kmer inside the superkmer, or
    # the right extension for the superkmer's last kmer.
    succ_pos = np.minimum(positions + k, t - 1)
    next_base = bases[succ_pos].astype(np.int16)
    next_base[is_last] = block.right_ext[sk_ids[is_last]].astype(np.int16)
    # Predecessor base: the base before the kmer, or the left extension.
    pred_pos = np.maximum(positions - 1, 0)
    prev_base = bases[pred_pos].astype(np.int16)
    prev_base[is_first] = block.left_ext[sk_ids[is_first]].astype(np.int16)

    mult_v = can
    mult_s = np.full(total, MULT_SLOT, dtype=np.int64)

    has_succ = next_base >= 0
    succ_v = can[has_succ]
    succ_s = slot_for_successor(flip[has_succ], next_base[has_succ]).astype(np.int64)

    has_pred = prev_base >= 0
    pred_v = can[has_pred]
    pred_s = slot_for_predecessor(flip[has_pred], prev_base[has_pred]).astype(np.int64)

    vertex_ids = np.concatenate([mult_v, succ_v, pred_v])
    slots = np.concatenate([mult_s, succ_s, pred_s])
    return vertex_ids, slots


def preaggregate_observations(
    vertex_ids: np.ndarray, slots: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Collapse duplicate ``(vertex, slot)`` observations into counts.

    The paper's inputs carry a ~4-6x kmer duplication ratio (§III-C):
    most observations re-touch a pair the table has already seen.
    Sorting and run-length encoding the observation arrays up front
    means each distinct pair pays exactly one probe walk and one
    counter write in :meth:`ConcurrentHashTable.insert_batch`, instead
    of one per duplicate.

    Returns parallel ``(vertices, slots, counts)`` arrays with
    ``counts >= 1``, ordered by ``(vertex, slot)``.  Feeding them to
    ``insert_batch(..., counts=...)`` produces a table byte-identical
    to the un-aggregated insert, with ``HashStats`` still metered for
    the individual observations (lock-reduction numbers stay honest).
    """
    vertex_ids = np.ascontiguousarray(vertex_ids, dtype=np.uint64).ravel()
    slots = np.ascontiguousarray(slots, dtype=np.int64).ravel()
    if vertex_ids.shape != slots.shape:
        raise ValueError("vertex_ids and slots must be parallel arrays")
    if vertex_ids.size == 0:
        return vertex_ids, slots, np.zeros(0, dtype=np.int64)
    order = np.lexsort((slots, vertex_ids))
    sv = vertex_ids[order]
    ss = slots[order]
    boundary = np.empty(sv.size, dtype=bool)
    boundary[0] = True
    boundary[1:] = (sv[1:] != sv[:-1]) | (ss[1:] != ss[:-1])
    starts = np.nonzero(boundary)[0]
    ends = np.concatenate([starts[1:], [sv.size]])
    counts = (ends - starts).astype(np.int64)
    return sv[starts], ss[starts], counts


@dataclass
class SubgraphResult:
    """One constructed subgraph plus its construction telemetry."""

    graph: DeBruijnGraph
    stats: HashStats
    capacity: int
    n_kmers: int
    table_bytes: int
    n_regrows: int = 0


def build_subgraph(
    block: SuperkmerBlock,
    policy: SizingPolicy | None = None,
    n_threads: int = 1,
    allow_regrow: bool = True,
    preaggregate: bool = False,
    protocol: str = "locked",
    table_layout: str = "flat",
    n_shards: int = 8,
) -> SubgraphResult:
    """Construct one subgraph with the concurrent hash table.

    ``n_threads == 1`` uses the vectorized batch path; more threads run
    the real per-operation state machine concurrently (slow; meant for
    correctness validation, not throughput).

    ``preaggregate`` (batch path only) collapses duplicate
    ``(vertex, slot)`` observations via
    :func:`preaggregate_observations` before touching the table; the
    resulting graph and the metered ``HashStats.lock_reduction`` are
    identical, only the table-touching work shrinks.

    The table is sized once from Property 1 and, on genomic data, never
    resizes — that is the paper's design.  Inputs that violate the
    estimate (e.g. coverage < 1, where nearly every kmer is distinct)
    would overflow the fixed table; with ``allow_regrow`` the build
    retries with doubled capacity and reports ``n_regrows > 0`` so
    callers can see the estimate was breached.  With
    ``allow_regrow=False`` the overflow raises
    :class:`repro.core.hashtable.TableFullError` instead.

    ``protocol`` selects the per-slot insert protocol (``locked`` state
    transfer or ``lockfree`` CAS-publish) and ``table_layout`` the
    table layout (``flat`` or the hash-prefix ``sharded`` wrapper with
    ``n_shards`` shards); every combination produces the identical
    graph.
    """
    policy = policy or SizingPolicy()
    n_kmers = block.total_kmers()
    capacity = policy.capacity_for(max(1, n_kmers))
    vertex_ids, slots = block_observations(block)
    counts = None
    if preaggregate and n_threads == 1:
        vertex_ids, slots, counts = preaggregate_observations(vertex_ids, slots)
    n_regrows = 0
    while True:
        if table_layout == "sharded":
            from ..parallel.sharded import ShardedHashTable

            table = ShardedHashTable(capacity, block.k, n_shards=n_shards,
                                     protocol=protocol)
        else:
            table = ConcurrentHashTable(capacity, block.k, protocol=protocol)
        try:
            if n_threads == 1:
                table.insert_batch(vertex_ids, slots, counts=counts)
            else:
                table.insert_threaded(vertex_ids, slots, n_threads)
            break
        except TableFullError:
            if not allow_regrow:
                raise
            # Hard upper bound: there cannot be more distinct vertices
            # than kmer instances, so capacity n_kmers/alpha always fits.
            if capacity >= next_power_of_two(max(2, int(n_kmers / policy.alpha) + 1)):
                raise
            capacity *= 2
            n_regrows += 1
    return SubgraphResult(
        graph=table.to_graph(),
        stats=table.stats,
        capacity=table.capacity,
        n_kmers=n_kmers,
        table_bytes=table.memory_bytes(),
        n_regrows=n_regrows,
    )


def build_subgraph_sortmerge(block: SuperkmerBlock) -> DeBruijnGraph:
    """Sort-merge construction of the same subgraph (§II-B's alternative).

    Used by baselines and as an independent oracle for the hash path.
    """
    vertex_ids, slots = block_observations(block)
    return graph_from_pairs(block.k, vertex_ids, slots)
