"""The end-to-end ParaHash driver.

Runs the two-step workflow of Fig 3: **MSP** (graph partitioning into
superkmer partitions) then **Hashing** (one subgraph per partition with
the concurrent hash table), either fully in memory or through encoded
partition files on disk.  Partitions can be processed by one worker or
co-processed by several workers through the §III-E work-stealing queue.

The driver reports wall-clock stage timings plus the merged hashing
telemetry, which the benchmark harness feeds to the performance model.
Simulated heterogeneous (CPU + GPU) execution lives in
:mod:`repro.hetsim` and reuses the same kernels.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

from ..concurrentsub.workqueue import WorkerRecord, run_coprocessed
from ..dna.reads import ReadBatch
from ..graph.dbg import DeBruijnGraph, empty_graph
from ..graph.merge import merge_disjoint
from ..msp.partitioner import load_partitions, partition_reads, partition_to_files
from ..msp.records import SuperkmerBlock
from .config import ParaHashConfig
from .hashtable import HashStats
from .subgraph import SubgraphResult, build_subgraph


@dataclass
class StageTimings:
    """Wall-clock seconds per workflow stage."""

    msp_seconds: float = 0.0
    hashing_seconds: float = 0.0
    io_seconds: float = 0.0

    @property
    def total_seconds(self) -> float:
        return self.msp_seconds + self.hashing_seconds + self.io_seconds


@dataclass
class ParaHashResult:
    """Everything a ParaHash run produced.

    For big-k runs (``config.k > 31``) ``graph``/``subgraphs`` hold
    :class:`repro.bigk.store.BigDeBruijnGraph` instances instead; the
    two stores share the counter layout and the describe/compare
    surface.
    """

    graph: DeBruijnGraph
    subgraphs: list[DeBruijnGraph]
    hash_stats: HashStats
    timings: StageTimings
    n_superkmers: int
    n_kmers: int
    partition_bytes: int
    config: ParaHashConfig
    worker_records: dict[str, WorkerRecord] = field(default_factory=dict)

    def describe(self) -> dict:
        return {
            "n_vertices": self.graph.n_vertices,
            "n_duplicates": self.graph.n_duplicate_vertices(),
            "n_superkmers": self.n_superkmers,
            "n_kmers": self.n_kmers,
            "partition_bytes": self.partition_bytes,
            "msp_seconds": round(self.timings.msp_seconds, 4),
            "hashing_seconds": round(self.timings.hashing_seconds, 4),
            "io_seconds": round(self.timings.io_seconds, 4),
            "lock_reduction": round(self.hash_stats.lock_reduction, 4),
        }


class ParaHash:
    """Facade over the two-step construction workflow."""

    def __init__(self, config: ParaHashConfig | None = None) -> None:
        self.config = config or ParaHashConfig()

    # -- Step 1 -----------------------------------------------------------------

    def partition(self, reads: ReadBatch) -> list[SuperkmerBlock]:
        """In-memory Step 1: superkmer blocks, one per partition.

        With ``n_threads > 1`` the input pieces are co-processed through
        the work-stealing queue, mirroring Step 1's pipeline; piece
        results accumulate in input order either way, so the outcome is
        identical to the sequential run.
        """
        cfg = self.config
        pieces = reads.split(cfg.n_input_pieces)
        if cfg.n_threads > 1 and len(pieces) > 1:
            workers = {
                f"cpu{t}": (
                    lambda piece: partition_reads(piece, cfg.k, cfg.p,
                                                  cfg.n_partitions)
                )
                for t in range(cfg.n_threads)
            }
            results, _ = run_coprocessed(pieces, workers,
                                         size_of=lambda piece: piece.n_reads)
        else:
            results = [
                partition_reads(piece, cfg.k, cfg.p, cfg.n_partitions)
                for piece in pieces
            ]
        blocks: list[SuperkmerBlock] | None = None
        for result in results:
            if blocks is None:
                blocks = result.blocks
            else:
                from ..msp.records import concat_blocks

                blocks = [
                    concat_blocks([a, b]) if b.n_superkmers else a
                    for a, b in zip(blocks, result.blocks)
                ]
        assert blocks is not None
        return blocks

    # -- Step 2 -----------------------------------------------------------------

    def construct_subgraphs(
        self, blocks: list[SuperkmerBlock]
    ) -> tuple[list[SubgraphResult], dict[str, WorkerRecord]]:
        """Build one subgraph per partition, optionally co-processed."""
        cfg = self.config
        nonempty = [b for b in blocks if b.n_superkmers]

        def process(block: SuperkmerBlock) -> SubgraphResult:
            return build_subgraph(block, policy=cfg.sizing, n_threads=1,
                                  preaggregate=cfg.preaggregate,
                                  protocol=cfg.insert_protocol,
                                  table_layout=cfg.table_layout,
                                  n_shards=cfg.n_shards)

        if cfg.n_threads == 1 or len(nonempty) <= 1:
            return [process(b) for b in nonempty], {}
        workers = {f"cpu{t}": process for t in range(cfg.n_threads)}
        results, records = run_coprocessed(
            nonempty, workers, size_of=lambda b: b.total_kmers()
        )
        return results, records

    # -- end to end ---------------------------------------------------------------

    def build_graph(
        self,
        reads: ReadBatch,
        workdir: str | Path | None = None,
        output_dir: str | Path | None = None,
    ) -> ParaHashResult:
        """Run both steps and merge the subgraphs into the full graph.

        With ``workdir`` set, Step 1 streams encoded partition files to
        disk and Step 2 reads them back (the paper's measured
        configuration, including the write-out/read-in of superkmer
        partitions); otherwise everything stays in memory.  With
        ``output_dir`` set, Step 2 additionally writes each constructed
        subgraph as a binary file — the workflow's final output stage.

        ``config.backend`` selects the execution backend.  ``serial``
        runs everything in this thread; ``threads`` co-processes both
        steps over ``config.workers()`` threads through the §III-E
        queue; ``processes`` hands the run to the shared-memory process
        backend (:func:`repro.parallel.backend.build_graph_processes`).
        All three produce the identical graph.
        """
        cfg = self.config
        if cfg.backend == "processes":
            from ..parallel.backend import build_graph_processes

            return build_graph_processes(
                reads, cfg, workdir=workdir, output_dir=output_dir
            )
        if cfg.backend == "threads" and cfg.n_threads < cfg.workers():
            threaded = ParaHash(cfg.with_(n_threads=cfg.workers()))
            return threaded.build_graph(reads, workdir=workdir,
                                        output_dir=output_dir)
        if cfg.k > 31:
            return self._build_graph_bigk(reads, workdir=workdir,
                                          output_dir=output_dir)
        t0 = time.perf_counter()
        io_seconds = 0.0
        partition_bytes = 0
        if workdir is None:
            blocks = self.partition(reads)
            n_superkmers = sum(b.n_superkmers for b in blocks)
            n_kmers = sum(b.total_kmers() for b in blocks)
            partition_bytes = sum(b.byte_size_encoded() for b in blocks)
        else:
            report = partition_to_files(
                reads, cfg.k, cfg.p, cfg.n_partitions, workdir,
                n_input_pieces=cfg.n_input_pieces,
            )
            t_io = time.perf_counter()
            blocks = load_partitions(report.paths)
            io_seconds += time.perf_counter() - t_io
            n_superkmers = report.n_superkmers
            n_kmers = report.n_kmers
            partition_bytes = report.bytes_written
        t1 = time.perf_counter()

        subgraph_results, records = self.construct_subgraphs(blocks)
        t2 = time.perf_counter()

        subgraphs = [r.graph for r in subgraph_results]
        if output_dir is not None and subgraphs:
            from ..graph.serialize import save_subgraphs

            t_io = time.perf_counter()
            save_subgraphs(output_dir, subgraphs)
            io_seconds += time.perf_counter() - t_io
        graph = merge_disjoint(subgraphs) if subgraphs else empty_graph(cfg.k)
        stats = HashStats()
        for r in subgraph_results:
            stats = stats.merged_with(r.stats)
        return ParaHashResult(
            graph=graph,
            subgraphs=subgraphs,
            hash_stats=stats,
            timings=StageTimings(
                msp_seconds=(t1 - t0) - io_seconds,
                hashing_seconds=t2 - t1,
                io_seconds=io_seconds,
            ),
            n_superkmers=n_superkmers,
            n_kmers=n_kmers,
            partition_bytes=partition_bytes,
            config=cfg,
            worker_records=records,
        )


    def _build_graph_bigk(
        self,
        reads: ReadBatch,
        workdir: str | Path | None = None,
        output_dir: str | Path | None = None,
    ) -> ParaHashResult:
        """Big-k (k > 31) twin of :meth:`build_graph` for serial/threads.

        Step 1 is unchanged — MSP only looks at one-word P-length
        minimizers — so partitioning (in memory or through PHSK files)
        is shared with the one-word path.  Step 2 runs the two-word
        table (:func:`repro.bigk.construct.build_subgraph_2w`),
        co-processed through the §III-E queue when ``n_threads > 1``.
        The ``processes`` backend never reaches here: its driver
        dispatches on k per partition itself.
        """
        from ..bigk.construct import build_subgraph_2w, merge_bigk_disjoint

        cfg = self.config
        t0 = time.perf_counter()
        io_seconds = 0.0
        if workdir is None:
            blocks = self.partition(reads)
            n_superkmers = sum(b.n_superkmers for b in blocks)
            n_kmers = sum(b.total_kmers() for b in blocks)
            partition_bytes = sum(b.byte_size_encoded() for b in blocks)
        else:
            report = partition_to_files(
                reads, cfg.k, cfg.p, cfg.n_partitions, workdir,
                n_input_pieces=cfg.n_input_pieces,
            )
            t_io = time.perf_counter()
            blocks = load_partitions(report.paths)
            io_seconds += time.perf_counter() - t_io
            n_superkmers = report.n_superkmers
            n_kmers = report.n_kmers
            partition_bytes = report.bytes_written
        t1 = time.perf_counter()

        nonempty = [b for b in blocks if b.n_superkmers]

        def process(block: SuperkmerBlock):
            return build_subgraph_2w(block, policy=cfg.sizing,
                                     preaggregate=cfg.preaggregate,
                                     protocol=cfg.insert_protocol,
                                     table_layout=cfg.table_layout,
                                     n_shards=cfg.n_shards)

        records: dict[str, WorkerRecord] = {}
        if cfg.n_threads > 1 and len(nonempty) > 1:
            workers = {f"cpu{t}": process for t in range(cfg.n_threads)}
            subgraph_results, records = run_coprocessed(
                nonempty, workers, size_of=lambda b: b.total_kmers()
            )
        else:
            subgraph_results = [process(b) for b in nonempty]
        t2 = time.perf_counter()

        subgraphs = [r.graph for r in subgraph_results]
        if output_dir is not None and subgraphs:
            from ..bigk.serialize import save_big_subgraphs

            t_io = time.perf_counter()
            save_big_subgraphs(output_dir, subgraphs)
            io_seconds += time.perf_counter() - t_io
        graph = merge_bigk_disjoint(subgraphs, k=cfg.k)
        stats = HashStats()
        for r in subgraph_results:
            stats = stats.merged_with(r.stats)
        return ParaHashResult(
            graph=graph,
            subgraphs=subgraphs,
            hash_stats=stats,
            timings=StageTimings(
                msp_seconds=(t1 - t0) - io_seconds,
                hashing_seconds=t2 - t1,
                io_seconds=io_seconds,
            ),
            n_superkmers=n_superkmers,
            n_kmers=n_kmers,
            partition_bytes=partition_bytes,
            config=cfg,
            worker_records=records,
        )

    def build_graph_from_files(
        self,
        input_paths: list[str | Path],
        workdir: str | Path,
        output_dir: str | Path | None = None,
    ) -> ParaHashResult:
        """Construct from multiple read files without loading them at once.

        The on-disk analogue of the paper's Step 1 input loop: each file
        is one input piece — loaded, partitioned, appended to the
        partition files, and released before the next file is touched.
        Step 2 then proceeds from the accumulated partitions.  All files
        must contain reads of one common length.
        """
        from ..dna.io import load_read_batch
        from ..msp.binio import PartitionWriter

        if not input_paths:
            raise ValueError("need at least one input file")
        cfg = self.config
        work = Path(workdir)
        work.mkdir(parents=True, exist_ok=True)
        paths = [work / f"partition_{i:04d}.phsk" for i in range(cfg.n_partitions)]
        writers = [PartitionWriter(path, cfg.k) for path in paths]
        t0 = time.perf_counter()
        n_superkmers = 0
        n_kmers = 0
        n_reads = 0
        try:
            for input_path in input_paths:
                piece = load_read_batch(input_path)
                n_reads += piece.n_reads
                result = partition_reads(piece, cfg.k, cfg.p, cfg.n_partitions)
                for writer, block in zip(writers, result.blocks):
                    writer.write_block(block)
                n_superkmers += len(result.superkmers)
                n_kmers += result.total_kmers()
        finally:
            for writer in writers:
                writer.close()
        partition_bytes = sum(p.stat().st_size for p in paths)
        t1 = time.perf_counter()

        blocks = load_partitions(paths)
        subgraph_results, records = self.construct_subgraphs(blocks)
        subgraphs = [r.graph for r in subgraph_results]
        if output_dir is not None and subgraphs:
            from ..graph.serialize import save_subgraphs

            save_subgraphs(output_dir, subgraphs)
        graph = merge_disjoint(subgraphs) if subgraphs else empty_graph(cfg.k)
        t2 = time.perf_counter()
        stats = HashStats()
        for r in subgraph_results:
            stats = stats.merged_with(r.stats)
        return ParaHashResult(
            graph=graph,
            subgraphs=subgraphs,
            hash_stats=stats,
            timings=StageTimings(msp_seconds=t1 - t0, hashing_seconds=t2 - t1),
            n_superkmers=n_superkmers,
            n_kmers=n_kmers,
            partition_bytes=partition_bytes,
            config=cfg,
            worker_records=records,
        )


def build_debruijn_graph(
    reads: ReadBatch,
    k: int = 27,
    p: int = 11,
    n_partitions: int = 32,
    workdir: str | Path | None = None,
) -> DeBruijnGraph:
    """One-call convenience API: reads in, De Bruijn graph out."""
    config = ParaHashConfig(k=k, p=p, n_partitions=n_partitions)
    return ParaHash(config).build_graph(reads, workdir=workdir).graph
