"""ParaHash run configuration.

Defaults follow the paper's experimental setup (§V-A/V-B): K = 27,
minimizer length P = 11 for medium inputs (19 for the big dataset),
λ = 2 and α ∈ [0.5, 0.8] for table sizing, and a partition count that
keeps each hash table comfortably small.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace

from .estimator import SizingPolicy

#: Execution backends of :meth:`repro.core.parahash.ParaHash.build_graph`.
BACKENDS = ("serial", "threads", "processes")

#: Hash-table layouts: one flat table per partition, or the partition's
#: segment sliced by hash prefix into shards with private lock regions
#: (:mod:`repro.parallel.sharded`).
TABLE_LAYOUTS = ("flat", "sharded")

#: Insert protocols: the paper's EMPTY->LOCKED->OCCUPIED state transfer,
#: or the lock-free single-CAS publish (no LOCKED intermediate state).
INSERT_PROTOCOLS = ("locked", "lockfree")


@dataclass(frozen=True)
class ParaHashConfig:
    """Parameters of a ParaHash run.

    Attributes
    ----------
    k:
        Kmer length (vertex size).  The paper uses 27 for both datasets.
        ``k <= 31`` packs into one word; ``31 < k <= 63`` uses the
        split-key two-word substrate (:mod:`repro.bigk`).
    p:
        Minimizer length; larger P balances partitions better but
        fragments superkmers (Fig 6).  Must satisfy ``1 <= p <= k``,
        and ``p <= 31`` always — minimizers stay one-word even for
        big k (superkmer decomposition only looks at P-length
        substrings).
    n_partitions:
        Number of superkmer partitions (and subgraphs).  The paper uses
        512 for gigabyte-scale inputs, 960 for 100 GB+.
    n_input_pieces:
        How many equal pieces Step 1 splits the input into (pipeline
        granularity).
    sizing:
        Hash-table sizing policy (Property 1 parameters λ and α).
    n_threads:
        Worker threads for Step 2's real-thread path; 1 selects the
        vectorized batch path.
    backend:
        Execution backend for the end-to-end driver: ``"serial"`` (one
        process, vectorized kernels), ``"threads"`` (the §III-E
        work-stealing queue across ``n_workers`` threads), or
        ``"processes"`` (worker processes over shared memory — see
        :mod:`repro.parallel.backend`).
    n_workers:
        Worker count for the ``threads``/``processes`` backends;
        0 means auto (the machine's CPU count).
    pipeline:
        ``processes`` backend only: stream Step-2 partition claims
        through the cross-process ready queue while Step 1 is still
        partitioning (§III-E overlap), instead of barriering between
        the steps.
    preaggregate:
        Collapse duplicate ``(vertex, slot)`` observations into counted
        inserts before touching a hash table (one probe walk per
        distinct pair; stats stay protocol-equivalent).
    calibrate:
        ``processes`` backend only: run a short warm-up measurement
        pass, fit the :mod:`repro.hetsim.device` model to this host,
        and size per-worker chunk/partition claim weights from it.
    table_layout:
        ``"flat"`` keeps one table per partition; ``"sharded"`` slices
        each partition's table by hash prefix into ``n_shards`` shards,
        each with a private state plane and lock-stripe region, so
        concurrent inserts mostly stay inside their own shard (see
        :mod:`repro.parallel.sharded`).
    insert_protocol:
        ``"locked"`` runs the paper's EMPTY->LOCKED->OCCUPIED state
        transfer; ``"lockfree"`` claims the slot by CASing the key/tag
        word directly — publication *is* the claim, there is no LOCKED
        intermediate state (counts stay atomic fetch-adds).
    n_shards:
        Shard count for ``table_layout="sharded"``; must be a power of
        two.  Ignored by the flat layout.
    """

    k: int = 27
    p: int = 11
    n_partitions: int = 32
    n_input_pieces: int = 4
    sizing: SizingPolicy = field(default_factory=SizingPolicy)
    n_threads: int = 1
    backend: str = "serial"
    n_workers: int = 0
    pipeline: bool = True
    preaggregate: bool = True
    calibrate: bool = False
    table_layout: str = "flat"
    insert_protocol: str = "locked"
    n_shards: int = 8

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError("k must be >= 1")
        if self.k > 63:
            raise ValueError("k must be <= 63 (two-word packed kmers)")
        if not 1 <= self.p <= self.k:
            raise ValueError(f"need 1 <= p <= k, got p={self.p}, k={self.k}")
        if self.p > 31:
            raise ValueError("minimizer length p must be <= 31 (one word)")
        if self.n_partitions < 1:
            raise ValueError("n_partitions must be >= 1")
        if self.n_input_pieces < 1:
            raise ValueError("n_input_pieces must be >= 1")
        if self.n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        if self.backend not in BACKENDS:
            raise ValueError(
                f"backend must be one of {BACKENDS}, got {self.backend!r}"
            )
        if self.n_workers < 0:
            raise ValueError("n_workers must be >= 0 (0 = auto)")
        if self.table_layout not in TABLE_LAYOUTS:
            raise ValueError(
                f"table_layout must be one of {TABLE_LAYOUTS}, "
                f"got {self.table_layout!r}"
            )
        if self.insert_protocol not in INSERT_PROTOCOLS:
            raise ValueError(
                f"insert_protocol must be one of {INSERT_PROTOCOLS}, "
                f"got {self.insert_protocol!r}"
            )
        if self.n_shards < 1 or self.n_shards & (self.n_shards - 1):
            raise ValueError(
                f"n_shards must be a positive power of two, got {self.n_shards}"
            )

    def workers(self) -> int:
        """Resolved worker count for the parallel backends (>= 1)."""
        if self.n_workers > 0:
            return self.n_workers
        return max(1, os.cpu_count() or 1)

    def with_(self, **changes) -> "ParaHashConfig":
        """A modified copy (convenience for sweeps)."""
        return replace(self, **changes)


#: Paper defaults for a medium dataset (Human Chr14 class).
MEDIUM_GENOME_CONFIG = ParaHashConfig(k=27, p=11, n_partitions=32)

#: Paper defaults for a big dataset (Bumblebee class).
BIG_GENOME_CONFIG = ParaHashConfig(k=27, p=19, n_partitions=64)
