"""ParaHash core: estimator, concurrent hash table, subgraph construction, driver."""

from .config import BIG_GENOME_CONFIG, MEDIUM_GENOME_CONFIG, ParaHashConfig
from .counter import (
    KmerCountTable,
    abundance_filter_reads,
    count_kmers,
    count_kmers_partitioned,
)
from .estimator import (
    SizingPolicy,
    expected_distinct_vertices,
    expected_erroneous_kmers_per_error,
    expected_erroneous_kmers_per_read,
    next_power_of_two,
)
from .hashtable import (
    EMPTY,
    LOCKED,
    OCCUPIED,
    ConcurrentHashTable,
    HashStats,
    TableFullError,
)
from .parahash import (
    ParaHash,
    ParaHashResult,
    StageTimings,
    build_debruijn_graph,
)
from .subgraph import (
    SubgraphResult,
    block_observations,
    build_subgraph,
    build_subgraph_sortmerge,
)

__all__ = [
    "BIG_GENOME_CONFIG",
    "ConcurrentHashTable",
    "KmerCountTable",
    "abundance_filter_reads",
    "count_kmers",
    "count_kmers_partitioned",
    "EMPTY",
    "HashStats",
    "LOCKED",
    "MEDIUM_GENOME_CONFIG",
    "OCCUPIED",
    "ParaHash",
    "ParaHashConfig",
    "ParaHashResult",
    "SizingPolicy",
    "StageTimings",
    "SubgraphResult",
    "TableFullError",
    "block_observations",
    "build_debruijn_graph",
    "build_subgraph",
    "build_subgraph_sortmerge",
    "expected_distinct_vertices",
    "expected_erroneous_kmers_per_error",
    "expected_erroneous_kmers_per_read",
    "next_power_of_two",
]
