"""The concurrent open-addressing hash table (ParaHash §III-C).

One table per subgraph, shared by *all* threads — unlike the
thread-local tables of SOAP-style assemblers whose parallelism is
capped by the table count.  Entries are ``<vertex, list of edges>``:
the key is a canonical kmer, the value is the 9-counter adjacency array
of :mod:`repro.graph.dbg`.

Two properties make the concurrency cheap:

* **No resizing.** Capacity is pre-computed from Property 1
  (:mod:`repro.core.estimator`), so the table never rebuilds.
* **State-transfer partial locking.** Each slot carries an
  ``occupancy`` flag ∈ {EMPTY, LOCKED, OCCUPIED}.  The multi-word key
  is written exactly once: a thread that finds EMPTY CASes it to
  LOCKED, writes the key, then publishes OCCUPIED.  From then on the
  key is immutable and read lock-free; edge counters are plain atomic
  increments.  Locking is therefore paid once per *distinct* vertex
  instead of once per kmer instance — with duplicates ≈ 4-6x the
  distinct count, that is the paper's ~80% lock-contention reduction.

Access paths:

* :meth:`ConcurrentHashTable.insert_batch` — vectorized rounds used by
  the benchmarks and the simulated devices; single-threaded but
  *semantically identical* to the concurrent protocol, and it meters
  every probe/lock/update event into :class:`HashStats`.
* :meth:`ConcurrentHashTable.insert_threaded` — the real state machine
  on real Python threads (striped-lock CAS stand-ins for the hardware
  atomics), used to validate linearizability of the protocol.

Concurrency discipline
----------------------

While real threads run, the authoritative occupancy flags live in
``self._atomic_state`` (an :class:`AtomicInt64Array`); the numpy
``self.state`` array is a **single-threaded mirror** used by the
vectorized batch path and by queries on quiescent tables.  The mirror
is re-synced from the atomic array after every fork-join
(:meth:`insert_threaded`); it must never be read or written while
worker threads are live.  Shared mutable scalars (``stats``,
``n_occupied``) are only touched under their dedicated locks.  These
rules are enforced mechanically by ``python -m repro.checks lint`` (the
R1/R2 rules) and dynamically by the Eraser-style lockset detector in
:mod:`repro.checks.lockset`; the hooks the detector needs are the
``_trace``/``_mon_event`` shim calls below, which are no-ops unless a
monitor is installed via :func:`repro.concurrentsub.atomics.set_monitor`.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from ..concurrentsub import atomics
from ..concurrentsub.atomics import AtomicInt64Array, TracedLock
from ..concurrentsub.hashfunc import mix64, mix64_int
from ..graph.dbg import MULT_SLOT, N_SLOTS, DeBruijnGraph
from .estimator import next_power_of_two

EMPTY = 0
LOCKED = 1
OCCUPIED = 2

#: Number of times a reader spins on a LOCKED flag before it starts
#: yielding its timeslice (``time.sleep(0)``) so a descheduled writer
#: can run and publish.  Bounded spinning keeps the fast path fast (a
#: writer publishes within a handful of instructions) while preventing
#: reader livelock when the writer loses the CPU between LOCKED and
#: OCCUPIED.
SPIN_LIMIT = 64

# -- test-only seeded bugs ------------------------------------------------------
#
# The repo's race-detector test suite re-introduces bugs that were fixed
# in this file (PR 1) to prove the detector catches them.  Each name
# gates the *old* faulty code path; production code never enables them.

_KNOWN_BUGS = frozenset(
    {"shared_stats", "numpy_publish", "tas_claim", "lf_torn_read"}
)
_SEEDED_BUGS: frozenset = frozenset()

#: Insert protocols selectable per table (mirrors
#: :data:`repro.core.config.INSERT_PROTOCOLS`).
PROTOCOLS = ("locked", "lockfree")


@contextmanager
def seed_bugs(*names: str):
    """TEST ONLY: re-enable fixed concurrency bugs for detector validation.

    ``shared_stats``  — restore the plain read-modify-write on the shared
    ``self.stats`` object when no per-thread stats are supplied (lost
    increments under contention; flagged by lint rule R2 and the lockset
    detector).

    ``numpy_publish`` — restore the dual publication of OCCUPIED through
    the numpy ``state`` mirror and route ``lookup`` through that mirror
    (un-synchronized read while threads run; flagged by the lockset
    detector, reproduced by the interleaving scheduler).

    ``tas_claim`` — replace the slot claim's CAS with a load-then-store
    test-and-set: two threads can both observe EMPTY before either
    stores LOCKED, so both enter the exclusive key-write window (the
    ``insert[tas_claim]`` variant of ``repro.checks.model``, reproduced
    deterministically via the ``tas_gap`` control point).

    ``lf_torn_read`` — in the two-word lock-free reader
    (:mod:`repro.bigk.table`), skip the wait on the PUB bit: a reader
    that sees a claimed-but-unpublished tag compares the still-unwritten
    key words, falsely mismatches, and probes on to insert a duplicate
    vertex (the ``cas_publish[torn_read]`` variant of
    ``repro.checks.model``, reproduced via the ``lf_prepub_gap``
    control point).
    """
    unknown = set(names) - _KNOWN_BUGS
    if unknown:
        raise ValueError(f"unknown seeded bugs: {sorted(unknown)}")
    global _SEEDED_BUGS
    previous = _SEEDED_BUGS
    _SEEDED_BUGS = frozenset(previous | set(names))
    try:
        yield
    finally:
        _SEEDED_BUGS = previous


# -- access-recording shim (repro.checks) ---------------------------------------


def _trace(label: str, owner: int, index: int, kind: str) -> None:
    """Report a raw numpy access to the installed monitor, if any."""
    m = atomics.monitor()
    if m is not None:
        m.record(label, owner, index, kind)


def _mon_event(name: str, index: int | None = None, value=None) -> None:
    """Report a named control point (scheduler pause site), if monitored."""
    m = atomics.monitor()
    if m is not None:
        m.event(name, index, value)


class TableFullError(RuntimeError):
    """Raised when probing wraps around a full table.

    ParaHash avoids this by sizing tables from Property 1; hitting it
    means the sizing policy under-estimated the distinct-vertex count.
    """


@dataclass
class HashStats:
    """Metered events of a table's lifetime.

    ``key_locks`` counts multi-word key critical sections (one per
    insertion under state transfer); ``naive_locks`` counts what a
    whole-entry-locking design would pay (one lock per operation) — the
    ratio of the two is the §III-C3 contention-reduction claim.
    """

    ops: int = 0  # observations applied
    inserts: int = 0  # new distinct vertices
    updates: int = 0  # counter increments on existing vertices
    probes: int = 0  # slot visits beyond the first
    key_locks: int = 0  # state EMPTY -> LOCKED -> OCCUPIED transitions
    blocked_reads: int = 0  # times a thread saw LOCKED and had to wait
    cas_failures: int = 0  # lost CAS races on the state flag
    count_increments: int = 0  # atomic adds on the counter array

    @property
    def naive_locks(self) -> int:
        """Locks a design without state transfer would take (1 per op)."""
        return self.ops

    @property
    def lock_reduction(self) -> float:
        """Fraction of entry locks saved by state transfer (≈0.8 in paper)."""
        if self.ops == 0:
            return 0.0
        return 1.0 - self.key_locks / self.ops

    def merged_with(self, other: "HashStats") -> "HashStats":
        return HashStats(
            ops=self.ops + other.ops,
            inserts=self.inserts + other.inserts,
            updates=self.updates + other.updates,
            probes=self.probes + other.probes,
            key_locks=self.key_locks + other.key_locks,
            blocked_reads=self.blocked_reads + other.blocked_reads,
            cas_failures=self.cas_failures + other.cas_failures,
            count_increments=self.count_increments + other.count_increments,
        )


def _check_protocol(protocol: str, k: int) -> None:
    if protocol not in PROTOCOLS:
        raise ValueError(f"protocol must be one of {PROTOCOLS}, got {protocol!r}")
    if protocol == "lockfree" and 2 * k > 62:
        # The lock-free claim CAS installs the biased key (kmer + 1)
        # into a signed 64-bit atomic word, so the key must fit in 62
        # bits.  k = 32 (the one legal width beyond this) takes the
        # two-word table anyway.
        raise ValueError("lockfree protocol needs 2k <= 62 (one-word keys)")


class ConcurrentHashTable:
    """Fixed-capacity open-addressing table with selectable protocol.

    ``protocol="locked"`` (default) runs the paper's state-transfer
    partial locking.  ``protocol="lockfree"`` removes the LOCKED
    intermediate state entirely: the claim CAS installs the *biased key*
    (``kmer + 1``, so 0 stays the EMPTY sentinel) into the atomic word —
    claiming and publishing are one instruction, readers compare the tag
    and never wait.  Lock-free requires one-word keys strictly below
    ``2^63`` (``k <= 31``), which every one-word kmer satisfies.
    """

    def __init__(self, capacity: int, k: int, counts_dtype=np.uint32,
                 protocol: str = "locked") -> None:
        if k < 1:
            raise ValueError("k must be >= 1")
        if 2 * k > 64:
            raise ValueError(
                "this table stores one-word (uint64) keys; need 2k <= 64"
            )
        _check_protocol(protocol, k)
        self.capacity = next_power_of_two(max(2, capacity))
        self._mask = np.uint64(self.capacity - 1)
        self.k = k
        self.state = np.zeros(self.capacity, dtype=np.int8)
        self.keys = np.zeros(self.capacity, dtype=np.uint64)
        self.counts = np.zeros((self.capacity, N_SLOTS), dtype=counts_dtype)
        self.n_occupied = 0
        self._init_runtime(protocol)

    def _init_runtime(self, protocol: str = "locked") -> None:
        """State shared by both constructors (stats + lazy threaded locks)."""
        self.protocol = protocol
        self.stats = HashStats()
        # Threaded-path machinery (created lazily, under _init_lock).
        self._atomic_state: AtomicInt64Array | None = None
        self._count_locks: list[TracedLock] | None = None
        self._occupied_lock = TracedLock("occupied_lock")
        self._stats_lock = TracedLock("stats_lock")
        self._init_lock = threading.Lock()

    @classmethod
    def from_views(cls, k: int, state: np.ndarray, keys: np.ndarray,
                   counts: np.ndarray, n_occupied: int | None = None,
                   protocol: str = "locked") -> "ConcurrentHashTable":
        """Construct a table over externally owned buffers (no copy).

        This is the pickle-free attach path of the process backend: the
        three arrays are typically numpy views over one
        ``multiprocessing.shared_memory`` segment (see
        :func:`repro.parallel.shm.table_over_segment`), so a worker
        process fills the very memory the parent later reads the graph
        from.  The caller owns buffer lifetime — the views must outlive
        the table.  With ``n_occupied=None`` occupancy is recounted from
        ``state`` (attaching to a table another process filled).
        """
        if k < 1 or 2 * k > 64:
            raise ValueError("need 1 <= k and 2k <= 64 for one-word keys")
        _check_protocol(protocol, k)
        capacity = int(state.size)
        if capacity < 2 or capacity & (capacity - 1):
            raise ValueError("state size must be a power of two >= 2")
        if keys.shape != (capacity,) or counts.shape[0] != capacity:
            raise ValueError("state, keys and counts must agree on capacity")
        table = cls.__new__(cls)
        table.capacity = capacity
        table._mask = np.uint64(capacity - 1)
        table.k = k
        table.state = state
        table.keys = keys
        table.counts = counts
        table.n_occupied = (
            int((state == OCCUPIED).sum()) if n_occupied is None
            else int(n_occupied)
        )
        table._init_runtime(protocol)
        return table

    def detach_views(self) -> None:
        """Release the array references (before closing a shared segment).

        Shared-memory buffers cannot unmap while numpy views alias them;
        a table attached via :meth:`from_views` must call this before
        the owning segment is closed.  The table is unusable afterwards.
        """
        self.state = self.keys = self.counts = None  # type: ignore[assignment]
        self._atomic_state = None

    # -- sizing ---------------------------------------------------------------

    @property
    def load_factor(self) -> float:
        return self.n_occupied / self.capacity

    def memory_bytes(self) -> int:
        return int(self.state.nbytes + self.keys.nbytes + self.counts.nbytes)

    # -- vectorized single-threaded path ---------------------------------------

    def insert_batch(self, kmers: np.ndarray, slots: np.ndarray,
                     counts: np.ndarray | None = None,
                     chunk: int = 1 << 20,
                     on_full: str = "raise") -> np.ndarray | None:
        """Apply ``(kmer, counter-slot)`` observations, vectorized.

        Each observation increments ``counts[entry(kmer), slot]``,
        inserting the entry on first sight.  The outcome is identical
        to running the concurrent protocol, and stats are metered as if
        the protocol had run (one key lock per insertion, one atomic
        increment per observation).

        With ``counts`` given (the pre-aggregation path of
        :func:`repro.core.subgraph.preaggregate_observations`), each
        ``(kmer, slot)`` pair carries a multiplicity: the counter is
        bumped by ``counts[i]`` in one touch, while the stats are
        metered for the ``counts[i]`` individual observations the
        un-aggregated concurrent protocol would have executed — one op
        and one atomic increment per observation, one key lock per
        *distinct* vertex, every duplicate beyond the inserting one an
        update.  ``HashStats.lock_reduction`` is therefore unchanged by
        aggregation; what the table actually pays shrinks to one probe
        walk and one counter write per distinct pair.

        Single-threaded only: this path writes the numpy mirror
        directly and must never overlap :meth:`insert_threaded`.

        ``on_full="raise"`` (default) raises :class:`TableFullError`
        when probing wraps a full table.  ``on_full="return"`` instead
        returns the indices (into ``kmers``) of the observations that
        could not be applied, with their upfront op/increment metering
        rolled back — the sharded layout's neighbor-fallback path, which
        re-tries them on the next shard.  Probes and CAS failures paid
        before the wrap stay metered: they really happened.
        """
        if on_full not in ("raise", "return"):
            raise ValueError(f"on_full must be 'raise' or 'return', got {on_full!r}")
        kmers = np.ascontiguousarray(kmers, dtype=np.uint64).ravel()
        slots = np.ascontiguousarray(slots, dtype=np.int64).ravel()
        if kmers.shape != slots.shape:
            raise ValueError("kmers and slots must be parallel arrays")
        if counts is not None:
            counts = np.ascontiguousarray(counts, dtype=np.int64).ravel()
            if counts.shape != kmers.shape:
                raise ValueError("counts must parallel kmers and slots")
            if counts.size and int(counts.min()) < 1:
                raise ValueError("every aggregated count must be >= 1")
        leftovers: list[np.ndarray] = []
        for lo in range(0, kmers.size, chunk):
            left = self._insert_chunk(
                kmers[lo : lo + chunk], slots[lo : lo + chunk],
                None if counts is None else counts[lo : lo + chunk],
                on_full=on_full,
            )
            if left is not None and left.size:
                leftovers.append(left + lo)
        if self._atomic_state is not None:
            # Keep the authoritative threaded-mode flags in sync when a
            # quiescent table mixes batch and threaded insertions.
            self._resync_atomic()
        if on_full == "return":
            return (np.concatenate(leftovers) if leftovers
                    else np.empty(0, dtype=np.int64))
        return None

    def _insert_chunk(self, kmers: np.ndarray, slots: np.ndarray,
                      weights: np.ndarray | None = None,
                      on_full: str = "raise") -> np.ndarray | None:
        stats = self.stats
        n = kmers.size
        n_ops = n if weights is None else int(weights.sum())
        stats.ops += n_ops
        stats.count_increments += n_ops
        home = mix64(kmers) & self._mask
        pending = np.arange(n, dtype=np.int64)
        offset = np.zeros(n, dtype=np.uint64)
        rounds = 0
        while pending.size:
            rounds += 1
            if rounds > self.capacity + 2:
                if on_full == "return":
                    # Roll back the upfront metering for the unplaced
                    # observations so the caller's retry on a neighbor
                    # shard re-meters them exactly once.
                    n_left = (pending.size if weights is None
                              else int(weights[pending].sum()))
                    stats.ops -= n_left
                    stats.count_increments -= n_left
                    return pending.copy()
                raise TableFullError(
                    f"probe wrapped a table of capacity {self.capacity} "
                    f"(occupied {self.n_occupied})"
                )
            pos = (home[pending] + offset[pending]) & self._mask
            st = self.state[pos]
            key_here = self.keys[pos]
            is_occ = st == OCCUPIED
            match = is_occ & (key_here == kmers[pending])
            if match.any():
                rows = pos[match].astype(np.int64)
                cols = slots[pending[match]]
                if weights is None:
                    np.add.at(self.counts, (rows, cols), 1)
                    stats.updates += int(match.sum())
                else:
                    w = weights[pending[match]]
                    np.add.at(self.counts, (rows, cols), w)
                    stats.updates += int(w.sum())
            mismatch = is_occ & ~match
            empty = st == EMPTY
            # Claim empty slots: the first pending op targeting each
            # distinct empty position wins the CAS; others retry.
            winners = np.zeros(pending.size, dtype=bool)
            if empty.any():
                empty_idx = np.nonzero(empty)[0]
                _, first = np.unique(pos[empty_idx], return_index=True)
                win_idx = empty_idx[first]
                winners[win_idx] = True
                wpos = pos[win_idx].astype(np.int64)
                wops = pending[win_idx]
                self.state[wpos] = OCCUPIED
                self.keys[wpos] = kmers[wops]
                if weights is None:
                    np.add.at(self.counts, (wpos, slots[wops]), 1)
                    lost = int(empty.sum()) - wpos.size
                else:
                    w = weights[wops]
                    np.add.at(self.counts, (wpos, slots[wops]), w)
                    # Un-aggregated, the duplicates behind each winning
                    # pair lose the CAS once and then update; pairs that
                    # lost to a different key lose once per observation.
                    stats.updates += int(w.sum()) - wpos.size
                    lost = int(w.sum()) - wpos.size
                    losers = empty & ~winners
                    if losers.any():
                        lost += int(weights[pending[losers]].sum())
                self.n_occupied += wpos.size
                stats.inserts += wpos.size
                if self.protocol == "locked":
                    # Lock-free publishes with the claim CAS itself: no
                    # key critical section is ever taken.
                    stats.key_locks += wpos.size
                stats.cas_failures += lost
            # Advance mismatches; retry CAS losers at the same offset
            # (they will match or mismatch the freshly written key).
            advance = mismatch
            if weights is None:
                stats.probes += int(advance.sum())
            else:
                stats.probes += int(weights[pending[advance]].sum())
            keep = (~match) & (~winners)
            offset_add = advance[keep].astype(np.uint64)
            pending = pending[keep]
            if pending.size:
                offset[pending] += offset_add

    # -- threaded path ----------------------------------------------------------

    def _ensure_threaded(self) -> None:
        if self._atomic_state is not None:
            return
        # Double-checked under a lock: concurrent first calls must not
        # each build their own atomic array (that would give every
        # thread a private "shared" state and break mutual exclusion).
        with self._init_lock:
            if self._atomic_state is not None:
                return
            atomic = AtomicInt64Array(self.capacity, n_stripes=256)
            raw = atomic.raw()  # checks: allow[R3] pre-publication init under _init_lock
            if self.protocol == "lockfree":
                occ = self.state == OCCUPIED
                raw[occ] = (self.keys[occ] + np.uint64(1)).astype(np.int64)
            else:
                raw[:] = self.state.astype(np.int64)
            self._count_locks = [
                TracedLock(f"count_lock[{i}]") for i in range(256)
            ]
            self._atomic_state = atomic

    def insert_one_threadsafe(self, kmer: int, slot: int,
                              local: "HashStats | None" = None) -> None:
        """The per-operation concurrent protocol (real threads).

        Implements the §III-C3 state machine: CAS EMPTY->LOCKED, write
        the key, publish OCCUPIED; concurrent readers seeing LOCKED spin
        (bounded, then yield) until publication; counter updates are
        atomic adds.

        Stats are metered into ``local`` when given (the pattern
        :meth:`insert_threaded` uses — one private ``HashStats`` per
        thread, merged after the join).  Without ``local``, the op is
        metered into a scratch object that is folded into the shared
        ``self.stats`` under ``_stats_lock``: the shared object is never
        the target of a plain read-modify-write from a worker thread.
        """
        self._ensure_threaded()
        if local is not None:
            self._insert_one(kmer, slot, local)
            return
        if "shared_stats" in _SEEDED_BUGS:
            # PR-1 bug, reintroduced for detector tests: non-atomic
            # read-modify-writes on the shared stats object.  The RMW is
            # split across a scheduler control point so the lost-update
            # window is deterministically reproducible.
            _trace("stats", id(self), 0, "write")
            before = self.stats.ops
            _mon_event("stats_rmw", None, before)
            scratch = HashStats()
            self._insert_one(kmer, slot, scratch)
            merged = self.stats.merged_with(scratch)
            merged.ops = before + scratch.ops
            self.stats = merged
            return
        scratch = HashStats()
        self._insert_one(kmer, slot, scratch)
        with self._stats_lock:
            _trace("stats", id(self), 0, "write")
            self.stats = self.stats.merged_with(scratch)

    def _insert_one(self, kmer: int, slot: int, stats: HashStats) -> None:
        if self.protocol == "lockfree":
            self._insert_one_lockfree(kmer, slot, stats)
            return
        atomic = self._atomic_state
        assert atomic is not None and self._count_locks is not None
        stats.ops += 1
        stats.count_increments += 1
        h = mix64_int(kmer) & (self.capacity - 1)
        offset = 0
        spins = 0
        while True:
            if offset >= self.capacity:
                # Un-meter the op before raising: a sharded wrapper
                # catches this and re-runs the op on a neighbor shard,
                # which meters it again.
                stats.ops -= 1
                stats.count_increments -= 1
                raise TableFullError(
                    f"probe wrapped a table of capacity {self.capacity}"
                )
            pos = (h + offset) & (self.capacity - 1)
            st = atomic.load(pos)
            if st == EMPTY:
                if "tas_claim" in _SEEDED_BUGS:
                    # Corpus bug (repro.checks.model insert[tas_claim]):
                    # the claim is a load-then-store test-and-set — the
                    # EMPTY load above is the test, and this store does
                    # not re-check it.  The gap between them is the
                    # window the model checker refutes and the replay
                    # scheduler holds open via the ``tas_gap`` point.
                    _mon_event("tas_gap", pos)
                    atomic.store(pos, LOCKED)
                    won = True
                else:
                    won = atomic.compare_and_swap(pos, EMPTY, LOCKED)
                if won:
                    # Exclusive writer: the key is written exactly once,
                    # inside the LOCKED->OCCUPIED window.
                    _trace("keys", id(self), pos, "write")
                    self.keys[pos] = np.uint64(kmer)
                    stats.key_locks += 1
                    stats.inserts += 1
                    _mon_event("pre_publish", pos)
                    atomic.store(pos, OCCUPIED)
                    if "numpy_publish" in _SEEDED_BUGS:
                        # PR-1 bug, reintroduced for detector tests: a
                        # plain numpy write shadowing the atomic store,
                        # read un-synchronized by lookup().
                        _mon_event("numpy_publish", pos)
                        _trace("state", id(self), pos, "write")
                        self.state[pos] = OCCUPIED
                    self._add_count(pos, slot)
                    with self._occupied_lock:
                        _trace("n_occupied", id(self), 0, "write")
                        self.n_occupied += 1
                    return
                stats.cas_failures += 1
                continue  # retry the same slot
            if st == LOCKED:
                stats.blocked_reads += 1
                spins += 1
                if spins >= SPIN_LIMIT:
                    # The writer that holds this slot LOCKED may be
                    # descheduled; yield so it can run and publish.
                    time.sleep(0)
                continue  # spin until the writer publishes
            # OCCUPIED: the key is immutable, read without locking.  The
            # read is publication-ordered (we observed OCCUPIED through
            # the atomic flag first), hence "read-acq".
            _trace("keys", id(self), pos, "read-acq")
            if int(self.keys[pos]) == kmer:  # checks: allow[R1] immutable after OCCUPIED publication
                stats.updates += 1
                self._add_count(pos, slot)
                return
            offset += 1
            stats.probes += 1

    def _insert_one_lockfree(self, kmer: int, slot: int,
                             stats: HashStats) -> None:
        """The CAS-publish protocol: claim == publication, no LOCKED state.

        The atomic word holds the *biased key* (``kmer + 1``) instead of
        an occupancy flag: a single ``CAS(0 -> kmer + 1)`` both claims
        the slot and publishes the key's identity, so there is no window
        in which a reader must wait — a mismatching tag means "probe
        on", immediately.  The numpy ``keys`` plane is written by the
        claim winner afterwards purely for the quiescent query paths
        (``to_graph``); live readers only ever compare the tag.  Edge
        counters stay atomic fetch-adds, exactly as under ``locked``.

        Consequently ``key_locks`` and ``blocked_reads`` stay zero: the
        protocol never takes a key critical section and never spins.
        """
        atomic = self._atomic_state
        assert atomic is not None and self._count_locks is not None
        stats.ops += 1
        stats.count_increments += 1
        tag = kmer + 1  # biased key: 0 remains the empty sentinel
        h = mix64_int(kmer) & (self.capacity - 1)
        offset = 0
        while True:
            if offset >= self.capacity:
                stats.ops -= 1
                stats.count_increments -= 1
                raise TableFullError(
                    f"probe wrapped a table of capacity {self.capacity}"
                )
            pos = (h + offset) & (self.capacity - 1)
            st = atomic.load(pos)
            if st == EMPTY:
                if atomic.compare_and_swap(pos, EMPTY, tag):
                    stats.inserts += 1
                    # The slot is already published; this write backfills
                    # the quiescent-mode mirror and is unraced (exactly
                    # one claim winner per slot, readers compare tags).
                    _trace("keys", id(self), pos, "write")
                    self.keys[pos] = np.uint64(kmer)
                    self._add_count(pos, slot)
                    with self._occupied_lock:
                        _trace("n_occupied", id(self), 0, "write")
                        self.n_occupied += 1
                    return
                stats.cas_failures += 1
                continue  # retry the same slot against the new tag
            if st == tag:
                stats.updates += 1
                self._add_count(pos, slot)
                return
            offset += 1
            stats.probes += 1

    def _add_count(self, pos: int, slot: int) -> None:
        assert self._count_locks is not None
        with self._count_locks[pos % len(self._count_locks)]:
            _trace("counts", id(self), pos, "write")
            self.counts[pos, slot] += 1

    def insert_threaded(self, kmers: np.ndarray, slots: np.ndarray,
                        n_threads: int) -> list[HashStats]:
        """Partition the observations over real threads and run them.

        Returns per-thread stats; the aggregate is merged into
        ``self.stats``.  After the join, the single-threaded numpy
        mirror of the occupancy flags is re-synced from the atomic
        array.
        """
        if n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        kmers = np.asarray(kmers, dtype=np.uint64).ravel()
        slots = np.asarray(slots, dtype=np.int64).ravel()
        bounds = np.linspace(0, kmers.size, n_threads + 1).astype(int)
        locals_ = [HashStats() for _ in range(n_threads)]
        errors: list[BaseException] = []

        def work(t: int) -> None:
            try:
                for i in range(bounds[t], bounds[t + 1]):
                    self.insert_one_threadsafe(int(kmers[i]), int(slots[i]), locals_[t])
            except BaseException as exc:
                errors.append(exc)

        threads = [threading.Thread(target=work, args=(t,)) for t in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        self._sync_mirror()
        if errors:
            raise errors[0]
        with self._stats_lock:
            _trace("stats", id(self), 0, "write")
            for s in locals_:
                self.stats = self.stats.merged_with(s)
        return locals_

    def _sync_mirror(self) -> None:
        """Re-sync the single-threaded numpy mirror after a fork-join."""
        if self._atomic_state is not None:
            snap = self._atomic_state.snapshot()
            if self.protocol == "lockfree":
                # The atomic plane holds biased keys; any non-zero word
                # is a published entry.
                snap = np.where(snap != 0, OCCUPIED, EMPTY)
            self.state[:] = snap.astype(self.state.dtype)

    def _resync_atomic(self) -> None:
        """Rebuild the authoritative atomic plane from the numpy mirror.

        Only legal on a quiescent table: the batch path calls it after
        mixing vectorized and threaded insertions.  The atomic word's
        encoding is protocol-dependent — occupancy flags under
        ``locked``, biased keys (0 = empty) under ``lockfree``.
        """
        assert self._atomic_state is not None
        raw = self._atomic_state.raw()  # checks: allow[R3] single-threaded resync
        if self.protocol == "lockfree":
            occ = self.state == OCCUPIED
            raw[:] = 0
            raw[occ] = (self.keys[occ] + np.uint64(1)).astype(np.int64)
        else:
            raw[:] = self.state

    # -- queries ------------------------------------------------------------------

    def _load_state(self, pos: int) -> int:
        """One occupancy flag, via the atomic array while threads may run."""
        atomic = self._atomic_state
        if atomic is not None and "numpy_publish" not in _SEEDED_BUGS:
            raw = atomic.load(pos)
            if self.protocol == "lockfree":
                # The word is a biased key; occupancy is its non-zeroness.
                return OCCUPIED if raw != EMPTY else EMPTY
            return raw
        _trace("state", id(self), pos, "read")
        return int(self.state[pos])  # checks: allow[R1] single-threaded or seeded-bug mirror read (atomic path taken while threads run)

    def _state_view(self) -> np.ndarray:
        """All occupancy flags; authoritative in either mode.

        The numpy ``self.state`` array is a single-threaded mirror: it
        is stale while worker threads run, so bulk queries go through an
        atomic snapshot whenever the threaded machinery exists.
        """
        if self._atomic_state is not None:
            snap = self._atomic_state.snapshot()
            if self.protocol == "lockfree":
                snap = np.where(snap != 0, OCCUPIED, EMPTY)
            return snap.astype(np.int8)
        return self.state

    def lookup(self, kmer: int) -> np.ndarray | None:
        """Counter row for a kmer, or ``None`` when absent.

        Safe to call concurrently with :meth:`insert_one_threadsafe`:
        occupancy flags are read through the atomic array (never the
        numpy mirror) while the threaded machinery exists.
        """
        kmer = int(kmer)
        atomic = self._atomic_state
        lockfree_live = self.protocol == "lockfree" and atomic is not None
        h = mix64_int(kmer) & (self.capacity - 1)
        for offset in range(self.capacity):
            pos = (h + offset) & (self.capacity - 1)
            if lockfree_live:
                # The atomic word *is* the biased key: one load both
                # tests occupancy and compares identity — lock-free
                # readers never wait and never touch the keys plane.
                tag = atomic.load(pos)
                if tag == EMPTY:
                    return None
                if tag == kmer + 1:
                    return self.counts[pos].copy()  # checks: allow[R1] racy snapshot of monotonic counters
                continue
            st = self._load_state(pos)
            if st == EMPTY:
                return None
            if st == OCCUPIED and int(self.keys[pos]) == kmer:  # checks: allow[R1] immutable after OCCUPIED publication
                return self.counts[pos].copy()  # checks: allow[R1] racy snapshot of monotonic counters
        return None

    def to_graph(self) -> DeBruijnGraph:
        """Extract the subgraph: occupied entries sorted by vertex."""
        occ = self._state_view() == OCCUPIED
        vertices = self.keys[occ]
        counts = self.counts[occ].astype(np.uint64)
        order = np.argsort(vertices)
        return DeBruijnGraph(k=self.k, vertices=vertices[order], counts=counts[order])

    def multiplicity_histogram(self, max_mult: int = 16) -> np.ndarray:
        """Histogram of vertex multiplicities (error-filtering diagnostics)."""
        occ = self._state_view() == OCCUPIED
        mult = self.counts[occ, MULT_SLOT]
        return np.bincount(
            np.minimum(mult, max_mult).astype(np.int64), minlength=max_mult + 1
        )
