"""Graph-size estimation (the paper's Property 1) and hash-table sizing.

ParaHash avoids hash-table resizing — "rebuilding the hash table is
expensive" — by bounding the number of distinct vertices up front
(§III-C1).  The bound comes from the sequencing-error model: errors per
read are Poisson with mean λ, an error at a random read position
corrupts up to K kmers, and each erroneous kmer is likely a fresh
distinct vertex.  The appendix derives

    E[#erroneous kmers per read] <= λ · Θ(L/4)

so the expected number of distinct vertices is ``Θ(λ/4 · L·N + Ge)``.
Per superkmer partition, the table is sized as ``λ/(4α) · N_kmer_i``
with load ratio α (§IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass


def expected_erroneous_kmers_per_error(read_length: int, k: int) -> float:
    """Exact ``E[Y | X = 1]`` from the appendix proof.

    A single error at a uniform position of a length-L read corrupts as
    many kmers as cover that position.  The two regimes of the proof:

    * ``K <= (L+1)/2``: interior positions are covered by K kmers;
      ``E = K(L-2K+2)/L + 2/L · Σ_{m=1}^{K-1} m``.
    * ``K >= (L+1)/2``: at most ``L-K+1`` kmers exist;
      ``E = (L-K+1)(2K-L)/L + 2/L · Σ_{m=1}^{L-K} m``.

    Both are bounded by Θ(L/4), which is where the paper's λ/4·L factor
    comes from.
    """
    length, kk = read_length, k
    if not 1 <= kk <= length:
        raise ValueError(f"need 1 <= k <= read_length, got k={kk}, L={length}")
    if 2 * kk <= length + 1:
        full = kk * (length - 2 * kk + 2) / length
        tail = kk * (kk - 1) / length  # 2/L * sum_{m=1}^{K-1} m
        return full + tail
    n_kmers = length - kk + 1
    full = n_kmers * (2 * kk - length) / length
    tail = (length - kk) * (length - kk + 1) / length
    return full + tail


def expected_erroneous_kmers_per_read(read_length: int, k: int, lam: float) -> float:
    """``E[Y] <= λ · E[Y | X=1]`` (paper Eq. 3)."""
    if lam < 0:
        raise ValueError("lambda must be >= 0")
    return lam * expected_erroneous_kmers_per_error(read_length, k)


def expected_distinct_vertices(
    n_reads: int, read_length: int, k: int, genome_size: int, lam: float
) -> float:
    """Property 1: expected graph size ``Θ(λ/4·LN + Ge)``.

    Uses the exact per-read expectation rather than the Θ(L/4) bound,
    capped at the trivial upper bound N(L-K+1) (there cannot be more
    distinct vertices than kmer instances).
    """
    erroneous = n_reads * expected_erroneous_kmers_per_read(read_length, k, lam)
    estimate = erroneous + genome_size
    return min(estimate, n_reads * (read_length - k + 1))


@dataclass(frozen=True)
class SizingPolicy:
    """How partition hash tables are sized.

    Attributes
    ----------
    lam:
        λ used in the sizing formula.  The paper sets λ = 2 in all
        experiments, deliberately generous so resizing never happens.
    alpha:
        Load ratio α ∈ [0.5, 0.8]; capacity is the estimate divided by α.
    min_capacity:
        Floor on any table's capacity (keeps tiny partitions sane).
    """

    lam: float = 2.0
    alpha: float = 0.7
    min_capacity: int = 256

    def __post_init__(self) -> None:
        if not 0 < self.alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        if self.lam < 0:
            raise ValueError("lambda must be >= 0")
        if self.min_capacity < 1:
            raise ValueError("min_capacity must be >= 1")

    def estimated_distinct(self, n_kmers_in_partition: int) -> float:
        """The paper's per-partition estimate ``λ/4 · N_kmer_i``."""
        return self.lam / 4.0 * n_kmers_in_partition

    def capacity_for(self, n_kmers_in_partition: int) -> int:
        """Power-of-two capacity ``>= λ/(4α) · N_kmer_i``."""
        raw = self.estimated_distinct(n_kmers_in_partition) / self.alpha
        return next_power_of_two(max(self.min_capacity, int(raw) + 1))

    def table_bytes(self, n_kmers_in_partition: int, n_words: int = 1) -> int:
        """Approximate memory of one sized table (state + keys + counters)."""
        cap = self.capacity_for(n_kmers_in_partition)
        return cap * (1 + 8 * n_words + 4 * 9)


def next_power_of_two(n: int) -> int:
    """Smallest power of two ``>= n``."""
    if n < 1:
        raise ValueError("n must be >= 1")
    return 1 << (n - 1).bit_length()
