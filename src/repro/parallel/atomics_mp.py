"""Cross-process atomic primitives for the state-transfer protocol.

:class:`ProcessAtomicInt64Array` is the process twin of
:class:`repro.concurrentsub.atomics.AtomicInt64Array`: same
``load`` / ``store`` / ``add`` / ``compare_and_swap`` surface, but the
storage is a numpy view over a ``multiprocessing.shared_memory``
segment and the stripe locks are ``multiprocessing.Lock`` objects, so
mutual exclusion holds across *processes*, not just threads.  Plugged
into :class:`~repro.core.hashtable.ConcurrentHashTable`, it lets
several worker processes run the §III-C3 state machine (CAS
EMPTY→LOCKED, write key, publish OCCUPIED) against one table in
genuinely concurrent memory — the configuration the paper's hardware
``atomicCAS`` serves.

The lock bundle is created by the parent (:func:`create_lock_bundle`)
and inherited by workers through ``multiprocessing.Process`` arguments;
the int64 flag array lives in a shared segment described by a picklable
:class:`~repro.parallel.shm.SegmentSpec`.

Unlike the thread-path array this class keeps no operation counters:
cross-process shared counters would serialize every op on one lock,
and the per-op protocol already meters its events into per-worker
:class:`~repro.core.hashtable.HashStats` objects.
"""

from __future__ import annotations

import multiprocessing as mp
from collections.abc import Sequence

import numpy as np


def create_lock_bundle(ctx: mp.context.BaseContext | None = None,
                       n_stripes: int = 64) -> list:
    """Striped cross-process locks, picklable through ``Process`` args."""
    ctx = ctx or mp.get_context()
    if n_stripes < 1:
        raise ValueError("n_stripes must be >= 1")
    return [ctx.Lock() for _ in range(n_stripes)]


class ProcessAtomicInt64Array:
    """Fixed-size int64 array with CAS/add/load/store across processes.

    ``view`` must be an int64 numpy view over shared memory (every
    participating process wraps its own view of the same segment);
    ``locks`` must be the same lock bundle in every process — stripe
    ``i % len(locks)`` guards cell ``i``.
    """

    def __init__(self, view: np.ndarray, locks: Sequence) -> None:
        if view.dtype != np.int64:
            raise ValueError("flag view must be int64")
        if not locks:
            raise ValueError("need at least one stripe lock")
        self._view = view
        self._locks = list(locks)
        self._n_stripes = len(self._locks)

    def __len__(self) -> int:
        return int(self._view.size)

    def _lock_for(self, index: int):
        return self._locks[index % self._n_stripes]

    def load(self, index: int) -> int:
        with self._lock_for(index):
            return int(self._view[index])

    def store(self, index: int, value: int) -> None:
        with self._lock_for(index):
            self._view[index] = value

    def add(self, index: int, delta: int = 1) -> int:
        """Atomic fetch-and-add; returns the *previous* value."""
        with self._lock_for(index):
            old = int(self._view[index])
            self._view[index] = old + delta
        return old

    def compare_and_swap(self, index: int, expected: int, new: int) -> bool:
        """Atomic CAS; returns ``True`` when the swap happened."""
        with self._lock_for(index):
            ok = int(self._view[index]) == expected
            if ok:
                self._view[index] = new
        return ok

    def snapshot(self) -> np.ndarray:
        """Copy of the underlying array (not atomic across cells)."""
        return self._view.copy()
