"""The process-parallel execution backend (``backend="processes"``).

Public surface:

* :func:`build_graph_processes` — the end-to-end driver (Step 1 chunk
  fan-out + Step 2 shared-memory tables across worker processes);
* :func:`concurrent_insert_processes` — several processes running the
  state-transfer protocol against *one* shared table (protocol
  validation on genuinely concurrent memory), with
  :func:`concurrent_insert_processes_2w` as its split-key big-k twin;
* the shared-memory and pool primitives the backend is built from.
"""

from .atomics_mp import ProcessAtomicInt64Array, create_lock_bundle
from .backend import (
    build_graph_processes,
    concurrent_insert_processes,
    concurrent_insert_processes_2w,
)
from .pool import (
    PoolInterrupted,
    WorkerCrashed,
    WorkerFailed,
    default_context,
    run_workers,
)
from .shm import (
    SegmentSpec,
    SharedSegment,
    attach_segment,
    create_segment,
    create_table_segment,
    table_over_segment,
)

__all__ = [
    "PoolInterrupted",
    "ProcessAtomicInt64Array",
    "SegmentSpec",
    "SharedSegment",
    "WorkerCrashed",
    "WorkerFailed",
    "attach_segment",
    "build_graph_processes",
    "concurrent_insert_processes",
    "concurrent_insert_processes_2w",
    "create_lock_bundle",
    "create_segment",
    "create_table_segment",
    "default_context",
    "run_workers",
    "table_over_segment",
]
