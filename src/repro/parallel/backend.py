"""The process-parallel execution backend (``backend="processes"``).

Runs both ParaHash steps across worker *processes* so the pipeline
scales with cores instead of being serialized by the GIL:

* **Step 1** — the read matrix is copied once into shared memory and
  split into chunks; workers claim chunks from a
  :class:`~repro.concurrentsub.workqueue.ProcessTicketQueue` (the
  paper's ``cns`` work stealing, with weighted dispatch) and append
  each chunk's superkmer blocks to their own spill files.  Grouping
  the spill files by partition id — the minimizer-hash class — is the
  merge.
* **Step 2** — the parent pre-creates one shared-memory hash-table
  segment per non-empty partition (sized by Property 1 from the exact
  per-partition kmer counts Step 1 reported); workers claim partitions,
  read their spill group, and run the vectorized insert kernel directly
  into the shared buffers.  The parent then reads each finished table
  *in place* — result transfer is zero-copy, nothing big is pickled.

With ``config.pipeline`` (the default) the two steps run in ONE worker
pool as the §III-E streaming pipeline instead of two pools split by a
global barrier: each worker finishes its share of Step 1, announces its
spill manifest to the parent through the pool's event channel, and
falls through to claiming Step-2 partitions from a
:class:`~repro.concurrentsub.workqueue.ProcessWorkQueue`.  The parent's
merger reacts to the manifests inline with the result-poll loop —
finalizing partitions one at a time (merge spills, create the shared
table segment, publish the work order) so early partitions are being
hashed by some workers while the parent is still finalizing later ones
and slower workers are still partitioning reads.  ``config.calibrate``
sizes both claim weights from a measured
:mod:`repro.hetsim.device` fit of this host.

A table whose Property-1 estimate is breached (``TableFullError``)
falls back to a worker-local regrown table whose graph is returned
through the result queue.

:func:`concurrent_insert_processes` additionally exercises the
§III-C3 state machine itself across processes — several workers CAS
the *same* table's occupancy flags through
:class:`~repro.parallel.atomics_mp.ProcessAtomicInt64Array` — which is
what validates that the state-transfer protocol is sound on genuinely
concurrent memory, not merely under the GIL.

Both drivers and the CAS validation path run at any ``k <= 63``: for
``k > 31`` the table segments carry the split-key two-word planes
(``keys_hi``/``keys_lo``), Step 2 runs the :mod:`repro.bigk` kernels,
and :func:`concurrent_insert_processes_2w` exercises the multi-word
publish (both key words written inside the LOCKED window) across
processes.
"""

from __future__ import annotations

import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..concurrentsub.workqueue import (
    ProcessTicketQueue,
    ProcessWorkQueue,
    WorkerRecord,
)
from ..core.estimator import next_power_of_two
from ..core.hashtable import HashStats, TableFullError
from ..dna.reads import ReadBatch
from ..graph.dbg import DeBruijnGraph, empty_graph
from ..graph.merge import merge_disjoint
from ..msp.partitioner import (
    SpillWriterSet,
    load_partition_group,
    merge_spill_files,
    partition_reads,
    spill_groups,
)
from .atomics_mp import ProcessAtomicInt64Array, create_lock_bundle
from .pool import default_context, run_workers
from .shm import (
    HEADER_N_OCCUPIED,
    SegmentSpec,
    attach_read_batch,
    attach_segment,
    create_segment,
    create_table_segment,
    share_read_batch,
    table_over_segment,
)


@dataclass(frozen=True)
class _Step2Job:
    """One partition's work order, addressable by ticket index."""

    partition: int
    k: int
    table_spec: SegmentSpec
    group: tuple[str, ...]
    layout: str = "flat"
    protocol: str = "locked"
    n_shards: int = 1


# -- worker entry points (top-level: picklable under spawn) ----------------------


def _step1_worker(worker_id: int, batch_spec: SegmentSpec,
                  chunk_bounds: list[tuple[int, int]],
                  tickets: ProcessTicketQueue, weights: list[int], k: int,
                  p: int, n_partitions: int, spill_dir: str) -> dict:
    """Claim read chunks, partition them, spill per-worker files."""

    def consume(batch: ReadBatch, spills: SpillWriterSet) -> dict:
        # Inner frame: every view over the shared codes matrix dies
        # when this returns, so the segment can close cleanly.
        weight = weights[worker_id]
        claimed: list[int] = []
        n_superkmers = 0
        n_reads = 0
        kmers_per_partition = np.zeros(n_partitions, dtype=np.int64)
        while True:
            ids = tickets.claim(weight)
            if not ids:
                break
            for chunk_id in ids:
                lo, hi = chunk_bounds[chunk_id]
                piece = ReadBatch(codes=batch.codes[lo:hi])
                result = partition_reads(piece, k, p, n_partitions)
                spills.write_result(result)
                n_superkmers += len(result.superkmers)
                n_reads += piece.n_reads
                kmers_per_partition += result.kmers_per_partition()
                claimed.append(chunk_id)
        return {
            "claimed": claimed,
            "n_superkmers": n_superkmers,
            "n_reads": n_reads,
            "kmers_per_partition": kmers_per_partition.tolist(),
        }

    batch, seg = attach_read_batch(batch_spec)
    spills = SpillWriterSet(spill_dir, worker_id, k, n_partitions)
    try:
        report = consume(batch, spills)
    finally:
        paths = spills.close()
        del batch
        seg.close()
    report["spills"] = {
        partition: str(path) for partition, path in paths.items()
    }
    return report


def _process_step2_job(job: _Step2Job, sizing, preaggregate: bool) -> dict:
    """Fill one partition's shared table in place; returns its payload.

    Width-agnostic: ``table_over_segment`` hands back the one- or
    two-word table per ``job.k``, and the observation kernels are
    selected to match — the payload protocol (stats + optional
    fallback graph) is identical either way.
    """
    from ..core.subgraph import (
        block_observations,
        build_subgraph,
        preaggregate_observations,
    )

    if job.k > 31:
        return _process_step2_job_2w(job, sizing, preaggregate)
    block = load_partition_group([Path(s) for s in job.group], job.k)
    payload: dict = {"partition": job.partition,
                     "n_kmers": block.total_kmers()}
    seg = attach_segment(job.table_spec)
    table = table_over_segment(seg, job.k, fresh=True, layout=job.layout,
                               n_shards=job.n_shards, protocol=job.protocol)
    try:
        vertex_ids, slots = block_observations(block)
        counts = None
        if preaggregate:
            vertex_ids, slots, counts = preaggregate_observations(
                vertex_ids, slots
            )
        table.insert_batch(vertex_ids, slots, counts=counts)
        seg["header"][HEADER_N_OCCUPIED] = table.n_occupied
        payload["stats"] = table.stats
        payload["fallback"] = None
    except TableFullError:
        # Property-1 estimate breached: regrow locally and ship
        # the (rare) oversized result through the queue instead.
        result = build_subgraph(block, policy=sizing, n_threads=1,
                                preaggregate=preaggregate,
                                protocol=job.protocol,
                                table_layout=job.layout,
                                n_shards=max(1, job.n_shards))
        payload["stats"] = result.stats
        payload["fallback"] = result.graph
    finally:
        table.detach_views()
        seg.close()
    return payload


def _process_step2_job_2w(job: _Step2Job, sizing, preaggregate: bool) -> dict:
    """Big-k (k > 31) twin of :func:`_process_step2_job`.

    Same shared-table-in-place protocol, with the split-key kernels:
    observations come from :func:`block_observations_2w`, duplicates
    pre-aggregate over ``(hi, lo, slot)`` triples, and the
    ``TableFullError`` fallback regrows through
    :func:`build_subgraph_2w` locally.
    """
    from ..bigk.construct import (
        block_observations_2w,
        build_subgraph_2w,
        preaggregate_observations_2w,
    )

    block = load_partition_group([Path(s) for s in job.group], job.k)
    payload: dict = {"partition": job.partition,
                     "n_kmers": block.total_kmers()}
    seg = attach_segment(job.table_spec)
    table = table_over_segment(seg, job.k, fresh=True, layout=job.layout,
                               n_shards=job.n_shards, protocol=job.protocol)
    try:
        hi, lo, slots = block_observations_2w(block)
        counts = None
        if preaggregate:
            hi, lo, slots, counts = preaggregate_observations_2w(
                hi, lo, slots
            )
        table.insert_batch(hi, lo, slots, counts=counts)
        seg["header"][HEADER_N_OCCUPIED] = table.n_occupied
        payload["stats"] = table.stats
        payload["fallback"] = None
    except TableFullError:
        result = build_subgraph_2w(block, policy=sizing,
                                   preaggregate=preaggregate,
                                   protocol=job.protocol,
                                   table_layout=job.layout,
                                   n_shards=max(1, job.n_shards))
        payload["stats"] = result.stats
        payload["fallback"] = result.graph
    finally:
        table.detach_views()
        seg.close()
    return payload


def _step2_worker(worker_id: int, jobs: list[_Step2Job],
                  tickets: ProcessTicketQueue, weights: list[int],
                  sizing, preaggregate: bool) -> list[dict]:
    """Claim partitions and fill their shared tables in place."""
    weight = weights[worker_id]
    out: list[dict] = []
    while True:
        ids = tickets.claim(weight)
        if not ids:
            break
        for ticket in ids:
            out.append(_process_step2_job(jobs[ticket], sizing, preaggregate))
    return out


def _pipeline_worker(worker_id: int, batch_spec: SegmentSpec,
                     chunk_bounds: list[tuple[int, int]],
                     tickets: ProcessTicketQueue, weights: list[int],
                     step2_weights: list[int], ready: ProcessWorkQueue,
                     k: int, p: int, n_partitions: int, spill_dir: str,
                     sizing, preaggregate: bool, *, emit) -> dict:
    """Both steps in one process: partition, announce, then hash.

    The worker drains Step-1 chunk tickets exactly like
    :func:`_step1_worker`, emits its spill manifest through the pool's
    event channel (the parent's merger is listening), and immediately
    starts claiming ready partitions — which the merger publishes as
    soon as *every* worker's manifest has landed, i.e. while this
    worker's slower peers may still be spilling.
    """
    report = _step1_worker(worker_id, batch_spec, chunk_bounds, tickets,
                           weights, k, p, n_partitions, spill_dir)
    emit(("spills", report))
    weight = step2_weights[worker_id]
    out: list[dict] = []
    while True:
        jobs = ready.claim(weight)
        if not jobs:
            break
        for job in jobs:
            out.append(_process_step2_job(job, sizing, preaggregate))
    return {"step2": out}


def _table_axes(cfg) -> tuple[str, str, int]:
    """The config's (layout, protocol, n_shards) with flat-layout folding.

    The flat layout ignores ``n_shards``; folding it to 1 here keeps
    the job orders canonical and the segment layout untouched.
    """
    layout = getattr(cfg, "table_layout", "flat")
    protocol = getattr(cfg, "insert_protocol", "locked")
    n_shards = getattr(cfg, "n_shards", 1) if layout == "sharded" else 1
    return layout, protocol, n_shards


def _merge_partition_subgraphs(subgraphs, k: int):
    """Union the per-partition subgraphs, one- or two-word per ``k``."""
    if k > 31:
        from ..bigk.construct import merge_bigk_disjoint

        return merge_bigk_disjoint(subgraphs, k=k)
    nonempty = [g for g in subgraphs if g.n_vertices]
    return merge_disjoint(nonempty) if nonempty else empty_graph(k)


def _save_partition_subgraphs(output_dir, subgraphs, k: int) -> None:
    """Write subgraph files in the format matching the key width."""
    if k > 31:
        from ..bigk.serialize import save_big_subgraphs

        save_big_subgraphs(output_dir, subgraphs)
    else:
        from ..graph.serialize import save_subgraphs

        save_subgraphs(output_dir, subgraphs)


# -- the driver ------------------------------------------------------------------


class _PipelineMerger:
    """Parent-side Step-1→Step-2 handoff for the pipelined backend.

    Collects every worker's spill manifest (delivered through the
    pool's event channel, so this runs inline with the parent's result
    poll — single-threaded, no locks needed despite feeding a
    cross-process queue).  Once the last manifest lands, partitions are
    finalized ONE AT A TIME — merge the partition's spill group,
    create its shared table segment, publish its work order — so
    workers hash early partitions while later ones are still being
    finalized.  The ready queue is closed after the last publication;
    a merger failure propagates out of ``run_workers`` and tears the
    pool down, so workers can never hang on an unclosed queue.
    """

    def __init__(self, cfg, n_workers: int, ready: ProcessWorkQueue,
                 workdir: str | Path | None) -> None:
        self.cfg = cfg
        self.n_workers = n_workers
        self.ready = ready
        self.workdir = workdir
        self.reports: dict[int, dict] = {}
        self.segments: dict[int, object] = {}
        self.kmers_per_partition = np.zeros(cfg.n_partitions, dtype=np.int64)
        self.live: list[int] = []
        self.n_superkmers = 0
        self.partition_bytes = 0
        self.io_seconds = 0.0
        self.spills_done_at: float | None = None

    def on_event(self, worker_id: int, payload) -> None:
        kind, report = payload
        if kind != "spills":  # pragma: no cover - protocol guard
            raise RuntimeError(f"unexpected pipeline event {kind!r}")
        self.reports[worker_id] = report
        if len(self.reports) == self.n_workers:
            self._finalize_all()

    def _finalize_all(self) -> None:
        from ..msp.binio import concat_partition_files

        cfg = self.cfg
        self.spills_done_at = time.perf_counter()
        reports = [self.reports[w] for w in range(self.n_workers)]
        self.n_superkmers = sum(r["n_superkmers"] for r in reports)
        for r in reports:
            self.kmers_per_partition += np.asarray(  # checks: allow[R2] merger state touched only by the parent's event thread
                r["kmers_per_partition"], dtype=np.int64
            )
        groups = spill_groups([r["spills"] for r in reports],
                              cfg.n_partitions)
        self.partition_bytes = sum(
            os.path.getsize(path) for group in groups for path in group
        )
        self.live = [
            part for part in range(cfg.n_partitions)
            if self.kmers_per_partition[part] > 0
        ]
        # Heaviest partitions first (LPT-style): the long jobs start
        # while the parent is still finalizing the light tail.  Result
        # assembly re-orders by partition id, so the graph is unchanged.
        order = sorted(
            self.live, key=lambda part: -int(self.kmers_per_partition[part])
        )
        merged_bytes = 0
        try:
            for part in order:
                sources = groups[part]
                if self.workdir is not None:
                    t_io = time.perf_counter()
                    dest = Path(self.workdir) / f"partition_{part:04d}.phsk"
                    concat_partition_files(dest, sources, k=cfg.k)
                    self.io_seconds += time.perf_counter() - t_io  # checks: allow[R2] merger state touched only by the parent's event thread
                    sources = [dest]
                    merged_bytes += os.path.getsize(dest)
                capacity = next_power_of_two(max(2, cfg.sizing.capacity_for(
                    max(1, int(self.kmers_per_partition[part]))
                )))
                layout, protocol, n_shards = _table_axes(cfg)
                seg = create_table_segment(capacity, cfg.k, n_shards=n_shards)  # checks: allow[R6] ownership moves to self.segments; unlink_segments() runs in the pipeline teardown
                self.segments[part] = seg
                self.ready.publish(_Step2Job(
                    partition=part, k=cfg.k, table_spec=seg.spec,
                    group=tuple(str(p) for p in sources),
                    layout=layout, protocol=protocol, n_shards=n_shards,
                ))
            if self.workdir is not None:
                # Serial disk-backed runs leave one canonical file per
                # partition, empty partitions included — match that
                # layout file-for-file.
                t_io = time.perf_counter()
                for part in range(cfg.n_partitions):
                    if part in self.segments:
                        continue
                    dest = Path(self.workdir) / f"partition_{part:04d}.phsk"
                    concat_partition_files(dest, groups[part], k=cfg.k)
                    merged_bytes += os.path.getsize(dest)
                self.io_seconds += time.perf_counter() - t_io  # checks: allow[R2] merger state touched only by the parent's event thread
                self.partition_bytes = merged_bytes
        finally:
            self.ready.close()

    def unlink_segments(self) -> None:
        for seg in self.segments.values():
            seg.unlink()
        self.segments.clear()


def _calibrated_weights(reads: ReadBatch, cfg, n_workers: int,
                        n_chunks: int) -> tuple[list[int], list[int], object]:
    """Fit the device model to this host and size both claim weights."""
    from ..hetsim.device import (
        ENTRY_BYTES,
        HashWork,
        MspWork,
        claim_weight,
        fitted_cpu,
        measure_host_rates,
    )

    # The measurement pass runs the one-word kernels; for big-k runs
    # clamp the sample's k to one word — throughput per base is what
    # the fit extracts, and that is width-insensitive to first order.
    calibration = measure_host_rates(reads, min(cfg.k, 31), cfg.p,
                                     cfg.n_partitions)
    device = fitted_cpu(calibration, n_threads=1)
    reads_per_chunk = max(1, reads.n_reads // max(1, n_chunks))
    chunk_bases = reads_per_chunk * reads.read_length
    msp_work = MspWork(
        n_reads=reads_per_chunk, n_bases=chunk_bases, n_superkmers=0,
        in_bytes=chunk_bases, out_bytes=chunk_bases,
    )
    # Per-partition Step-2 work, estimated from the input shape: every
    # kmer instance yields one multiplicity observation and up to two
    # edge observations (~3 ops), with the sample's measured rate
    # already folding in probe cost.
    kmers_per_read = max(1, reads.read_length - cfg.k + 1)
    est_kmers = max(
        1, reads.n_reads * kmers_per_read // max(1, cfg.n_partitions)
    )
    est_ops = 3 * est_kmers
    capacity = cfg.sizing.capacity_for(est_kmers)
    hash_work = HashWork(
        n_kmers=est_kmers, ops=est_ops, probes=est_ops // 4,
        inserts=max(1, est_kmers // 4), table_bytes=capacity * ENTRY_BYTES,
        in_bytes=est_kmers, out_bytes=0,
    )
    step1 = [claim_weight(device, msp_work)] * n_workers
    step2 = [claim_weight(device, hash_work)] * n_workers
    return step1, step2, calibration


def build_graph_processes(
    reads: ReadBatch,
    config,
    workdir: str | Path | None = None,
    output_dir: str | Path | None = None,
    weights: list[int] | None = None,
    step2_weights: list[int] | None = None,
):
    """Run the two-step workflow across worker processes.

    Mirrors :meth:`repro.core.parahash.ParaHash.build_graph` (same
    result type, graph bit-for-bit identical to the serial backend) but
    executes Step 1 and Step 2 on ``config.workers()`` processes.
    ``weights`` / ``step2_weights`` optionally skew the ticket dispatch
    (one entry per worker; a weight-``w`` worker claims ``w`` chunks —
    or ready partitions — per visit, the CPU/GPU-style dispatch knob).
    With ``config.calibrate`` and no explicit weights, both are sized
    from a warm-up measurement fit of :mod:`repro.hetsim.device`.

    ``config.pipeline`` selects the streaming driver (one pool, both
    steps, no barrier); without it the two steps run as separate pools
    with a global barrier between them.  Both produce the identical
    graph and on-disk artifacts.
    """
    from ..core.parahash import ParaHashResult, StageTimings

    cfg = config
    n_workers = cfg.workers()
    n_chunks = max(cfg.n_input_pieces, 2 * n_workers)
    if cfg.calibrate and weights is None and step2_weights is None \
            and reads.n_reads:
        weights, step2_weights, _ = _calibrated_weights(
            reads, cfg, n_workers, n_chunks
        )
    if weights is None:
        weights = [1] * n_workers
    if step2_weights is None:
        step2_weights = [1] * n_workers
    if len(weights) != n_workers or min(weights) < 1:
        raise ValueError("weights must give every worker a weight >= 1")
    if len(step2_weights) != n_workers or min(step2_weights) < 1:
        raise ValueError(
            "step2_weights must give every worker a weight >= 1"
        )
    ctx = default_context()

    tmp: tempfile.TemporaryDirectory | None = None
    if workdir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-parallel-")
        spill_dir = Path(tmp.name)
    else:
        spill_dir = Path(workdir) / "spill"
        spill_dir.mkdir(parents=True, exist_ok=True)

    t0 = time.perf_counter()
    io_seconds = 0.0
    try:
        # ---- Step 1: chunked fan-out over shared read memory --------------
        bounds_arr = np.linspace(0, reads.n_reads, n_chunks + 1).astype(int)
        chunk_bounds = [
            (int(bounds_arr[i]), int(bounds_arr[i + 1]))
            for i in range(n_chunks)
            if bounds_arr[i + 1] > bounds_arr[i]
        ]
        if cfg.pipeline and chunk_bounds:
            return _build_pipelined(
                reads, cfg, chunk_bounds, weights, step2_weights,
                spill_dir, workdir, output_dir, ctx, t0,
            )
        reports: list[dict] = []
        if chunk_bounds:
            tickets1 = ProcessTicketQueue(len(chunk_bounds), ctx)
            batch_seg = share_read_batch(reads)
            try:
                reports = run_workers(
                    _step1_worker, n_workers, ctx=ctx,
                    args=(batch_seg.spec, chunk_bounds, tickets1, weights,
                          cfg.k, cfg.p, cfg.n_partitions, str(spill_dir)),
                )
            finally:
                batch_seg.unlink()

        n_superkmers = sum(r["n_superkmers"] for r in reports)
        kmers_per_partition = np.zeros(cfg.n_partitions, dtype=np.int64)
        for r in reports:
            kmers_per_partition += np.asarray(r["kmers_per_partition"],
                                              dtype=np.int64)
        groups = spill_groups([r["spills"] for r in reports],
                              cfg.n_partitions)
        partition_bytes = sum(
            os.path.getsize(path) for group in groups for path in group
        )
        if workdir is not None:
            # Persist canonical partition files next to the spills so the
            # on-disk layout matches a serial disk-backed run.
            t_io = time.perf_counter()
            merged = merge_spill_files(groups, workdir, cfg.k)
            io_seconds += time.perf_counter() - t_io
            groups = [[path] for path in merged]
            partition_bytes = sum(os.path.getsize(path) for path in merged)
        t1 = time.perf_counter()

        # ---- Step 2: one shared table per non-empty partition -------------
        live = [
            part for part in range(cfg.n_partitions)
            if kmers_per_partition[part] > 0
        ]
        segments = {}
        payload_lists: list[list[dict]] = []
        subgraphs: list[DeBruijnGraph] = []
        stats = HashStats()
        try:
            jobs: list[_Step2Job] = []
            layout, protocol, n_shards = _table_axes(cfg)
            for part in live:
                capacity = next_power_of_two(max(2, cfg.sizing.capacity_for(
                    max(1, int(kmers_per_partition[part]))
                )))
                seg = create_table_segment(capacity, cfg.k, n_shards=n_shards)
                segments[part] = seg
                jobs.append(_Step2Job(
                    partition=part, k=cfg.k, table_spec=seg.spec,
                    group=tuple(str(p) for p in groups[part]),
                    layout=layout, protocol=protocol, n_shards=n_shards,
                ))
            if jobs:
                step2_workers = max(1, min(n_workers, len(jobs)))
                tickets2 = ProcessTicketQueue(len(jobs), ctx)
                payload_lists = run_workers(
                    _step2_worker, step2_workers, ctx=ctx,
                    args=(jobs, tickets2, step2_weights, cfg.sizing,
                          cfg.preaggregate),
                )
            by_partition = {
                payload["partition"]: payload
                for payloads in payload_lists for payload in payloads
            }
            for part in live:
                payload = by_partition[part]
                stats = stats.merged_with(payload["stats"])
                if payload["fallback"] is not None:
                    subgraphs.append(payload["fallback"])
                    continue
                seg = segments[part]
                table = table_over_segment(seg, cfg.k, fresh=False,
                                           layout=layout, n_shards=n_shards,
                                           protocol=protocol)
                table.n_occupied = int(seg["header"][HEADER_N_OCCUPIED])
                subgraphs.append(table.to_graph())
                table.detach_views()
        finally:
            for seg in segments.values():
                seg.unlink()
        t2 = time.perf_counter()

        if output_dir is not None and subgraphs:
            t_io = time.perf_counter()
            _save_partition_subgraphs(output_dir, subgraphs, cfg.k)
            io_seconds += time.perf_counter() - t_io

        graph = _merge_partition_subgraphs(subgraphs, cfg.k)
        return ParaHashResult(
            graph=graph,
            subgraphs=subgraphs,
            hash_stats=stats,
            timings=StageTimings(
                msp_seconds=(t1 - t0) - io_seconds,
                hashing_seconds=t2 - t1,
                io_seconds=io_seconds,
            ),
            n_superkmers=n_superkmers,
            n_kmers=int(kmers_per_partition.sum()),
            partition_bytes=partition_bytes,
            config=cfg,
            worker_records=_worker_records(reports, payload_lists),
        )
    finally:
        if tmp is not None:
            tmp.cleanup()


def _build_pipelined(
    reads: ReadBatch,
    cfg,
    chunk_bounds: list[tuple[int, int]],
    weights: list[int],
    step2_weights: list[int],
    spill_dir: Path,
    workdir: str | Path | None,
    output_dir: str | Path | None,
    ctx,
    t0: float,
):
    """The streaming driver: one pool runs both steps, no barrier.

    Called from :func:`build_graph_processes` (which owns spill-dir
    setup/teardown); returns the same :class:`ParaHashResult`.
    """
    from ..core.parahash import ParaHashResult, StageTimings

    n_workers = cfg.workers()
    tickets1 = ProcessTicketQueue(len(chunk_bounds), ctx)
    ready = ProcessWorkQueue(cfg.n_partitions, ctx=ctx, claim_timeout=600.0)
    merger = _PipelineMerger(cfg, n_workers, ready, workdir)
    batch_seg = share_read_batch(reads)
    try:
        try:
            results = run_workers(
                _pipeline_worker, n_workers, ctx=ctx,
                args=(batch_seg.spec, chunk_bounds, tickets1, weights,
                      step2_weights, ready, cfg.k, cfg.p, cfg.n_partitions,
                      str(spill_dir), cfg.sizing, cfg.preaggregate),
                on_event=merger.on_event,
            )
        finally:
            batch_seg.unlink()
            # On an error path some workers may have been terminated
            # between a reservation and its item pickup; aborting makes
            # any racing claim return instead of wait out its timeout.
            ready.abort()

        by_partition: dict[int, dict] = {}
        for result in results:
            for payload in result["step2"]:
                by_partition[payload["partition"]] = payload
        missing = [p for p in merger.live if p not in by_partition]
        if missing:  # pragma: no cover - queue drain guarantees coverage
            raise RuntimeError(
                f"partitions {missing} were published but never hashed"
            )
        subgraphs: list[DeBruijnGraph] = []
        stats = HashStats()
        for part in merger.live:
            payload = by_partition[part]
            stats = stats.merged_with(payload["stats"])
            if payload["fallback"] is not None:
                subgraphs.append(payload["fallback"])
                continue
            seg = merger.segments[part]
            layout, protocol, n_shards = _table_axes(cfg)
            table = table_over_segment(seg, cfg.k, fresh=False,
                                       layout=layout, n_shards=n_shards,
                                       protocol=protocol)
            table.n_occupied = int(seg["header"][HEADER_N_OCCUPIED])
            subgraphs.append(table.to_graph())
            table.detach_views()
    finally:
        merger.unlink_segments()
    t2 = time.perf_counter()

    io_seconds = merger.io_seconds
    if output_dir is not None and subgraphs:
        t_io = time.perf_counter()
        _save_partition_subgraphs(output_dir, subgraphs, cfg.k)
        io_seconds += time.perf_counter() - t_io

    spills_done = merger.spills_done_at or t2
    graph = _merge_partition_subgraphs(subgraphs, cfg.k)
    step1_reports = [merger.reports[w] for w in sorted(merger.reports)]
    return ParaHashResult(
        graph=graph,
        subgraphs=subgraphs,
        hash_stats=stats,
        timings=StageTimings(
            msp_seconds=spills_done - t0,
            hashing_seconds=max(0.0, (t2 - spills_done) - merger.io_seconds),
            io_seconds=io_seconds,
        ),
        n_superkmers=merger.n_superkmers,
        n_kmers=int(merger.kmers_per_partition.sum()),
        partition_bytes=merger.partition_bytes,
        config=cfg,
        worker_records=_worker_records(
            step1_reports, [r["step2"] for r in results]
        ),
    )


def _worker_records(step1_reports: list[dict],
                    step2_payloads: list[list[dict]]) -> dict[str, WorkerRecord]:
    """Fold both steps' reports into §III-E-style worker records."""
    records: dict[str, WorkerRecord] = {}
    for w, report in enumerate(step1_reports):
        records[f"proc{w}"] = WorkerRecord(
            name=f"proc{w}",
            partitions=[],
            items_processed=report["n_reads"],
        )
    for w, payloads in enumerate(step2_payloads):
        record = records.setdefault(f"proc{w}", WorkerRecord(name=f"proc{w}"))
        for payload in payloads:
            record.partitions.append(payload["partition"])
            record.items_processed += payload["n_kmers"]
    return records


# -- cross-process CAS validation path -------------------------------------------


def _final_capacity(capacity: int, k: int, layout: str,
                    n_shards: int) -> int:
    """The exact slot count the table segment will carry."""
    if layout == "sharded":
        from .sharded import shard_capacity

        return shard_capacity(capacity, n_shards) * n_shards
    return next_power_of_two(max(2, capacity))


def _publish_final_state(table_seg, flags_seg) -> None:
    """Fold the quiescent flags plane into the table's int8 state mirror.

    Protocol-agnostic: under ``locked`` the flags hold state values and
    every LOCKED resolved to OCCUPIED before the workers joined; under
    ``lockfree`` they hold key/fingerprint tags.  Either way a non-zero
    word is exactly a published entry.
    """
    from ..core.hashtable import OCCUPIED

    flags = flags_seg["flags"]
    table_seg["state"][:] = ((flags != 0) * OCCUPIED).astype(np.int8)


def _shard_lock_bundles(ctx, layout: str, n_shards: int,
                        n_stripes: int) -> tuple[list, list]:
    """State/count lock bundles: one pair per shard (one total for flat).

    The sharded layout's private lock regions are what cuts stripe
    contention: ``n_stripes`` is the *total* stripe budget, split so
    each shard carries its own private slice — two workers in different
    shards can never collide on a lock, and the OS lock count (and the
    spawn-pickling cost) stays the same as the flat layout's.
    """
    if layout == "sharded":
        per_shard = max(4, n_stripes // n_shards)
        state = [create_lock_bundle(ctx, per_shard) for _ in range(n_shards)]
        count = [create_lock_bundle(ctx, per_shard) for _ in range(n_shards)]
        return state, count
    return ([create_lock_bundle(ctx, n_stripes)],
            [create_lock_bundle(ctx, n_stripes)])


def _install_shared_atomics(table, flags: np.ndarray, layout: str,
                            state_bundles: list, count_bundles: list) -> None:
    """Arm a worker-side table with the cross-process atomic plane."""
    if layout == "sharded":
        table.install_process_atomics(flags, state_bundles, count_bundles)
    else:
        table._atomic_state = ProcessAtomicInt64Array(flags, state_bundles[0])
        table._count_locks = list(count_bundles[0])


def concurrent_insert_processes(
    kmers: np.ndarray,
    slots: np.ndarray,
    k: int,
    capacity: int,
    n_workers: int,
    n_stripes: int = 64,
    layout: str = "flat",
    protocol: str = "locked",
    n_shards: int = 8,
) -> tuple[DeBruijnGraph, list[HashStats]]:
    """Insert observations into ONE table from several processes.

    This is the insert protocol on genuinely concurrent memory: every
    worker runs the per-operation state machine — CAS EMPTY→LOCKED /
    write-key / publish-OCCUPIED under ``protocol="locked"``, or the
    single CAS-publish under ``protocol="lockfree"`` — against the same
    shared-memory occupancy plane.  ``layout="sharded"`` slices that
    plane into ``n_shards`` shard regions with *private* lock bundles,
    so workers mostly contend only within their own shard.  Returns the
    resulting subgraph and the per-worker stats.  Used by the
    equivalence tests (the outcome must match a serial
    ``insert_batch``); the production pipeline instead gives each
    partition to exactly one process, as the paper does per subgraph.
    """
    kmers = np.ascontiguousarray(kmers, dtype=np.uint64).ravel()
    slots = np.ascontiguousarray(slots, dtype=np.int64).ravel()
    if kmers.shape != slots.shape:
        raise ValueError("kmers and slots must be parallel arrays")
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    if layout != "sharded":
        n_shards = 1
    ctx = default_context()
    cap = _final_capacity(capacity, k, layout, n_shards)
    # Each `with` owns its segment from the moment of creation: if the
    # flags segment or a lock bundle fails to build, the table segment
    # is already inside its context and still unlinks (no shm leak on
    # partially-constructed runs).
    with create_table_segment(cap, k, n_shards=n_shards) as table_seg, \
            create_segment([("flags", (cap,), "int64")]) as flags_seg:
        state_bundles, count_bundles = _shard_lock_bundles(
            ctx, layout, n_shards, n_stripes
        )
        bounds = np.linspace(0, kmers.size, n_workers + 1).astype(int).tolist()
        stats = run_workers(
            _cas_worker, n_workers, ctx=ctx,
            args=(table_seg.spec, flags_seg.spec, state_bundles,
                  count_bundles, kmers, slots, bounds, k, layout, protocol,
                  n_shards),
        )
        # Publish the final flags into the table's int8 mirror, then
        # read the graph straight out of shared memory.
        _publish_final_state(table_seg, flags_seg)
        table = table_over_segment(table_seg, k, fresh=False, layout=layout,
                                   n_shards=n_shards, protocol=protocol)
        graph = table.to_graph()
        table.detach_views()
        return graph, stats


def _cas_worker(worker_id: int, table_spec: SegmentSpec,
                flags_spec: SegmentSpec, state_bundles, count_bundles,
                kmers: np.ndarray, slots: np.ndarray,
                bounds: list[int], k: int, layout: str, protocol: str,
                n_shards: int) -> HashStats:
    """One process of the cross-process state-machine run."""
    seg = attach_segment(table_spec)
    flags_seg = attach_segment(flags_spec)
    table = table_over_segment(seg, k, fresh=True, layout=layout,
                               n_shards=n_shards, protocol=protocol)
    # Swap the thread-path machinery for its cross-process twins: the
    # occupancy flags live in the shared int64 plane and every stripe
    # lock is a multiprocessing lock, so the CAS window and the counter
    # updates are mutually exclusive across processes.
    _install_shared_atomics(table, flags_seg["flags"], layout,
                            state_bundles, count_bundles)
    local = HashStats()
    b0, b1 = bounds[worker_id], bounds[worker_id + 1]
    try:
        if layout == "sharded":
            # Routing is one vectorized hash pass over the span.
            table.insert_ops_threadsafe(kmers[b0:b1], slots[b0:b1], local)
        else:
            for i in range(b0, b1):
                table.insert_one_threadsafe(int(kmers[i]), int(slots[i]),
                                            local)
    finally:
        table.detach_views()
        seg.close()
        flags_seg.close()
    return local


def concurrent_insert_processes_2w(
    hi: np.ndarray,
    lo: np.ndarray,
    slots: np.ndarray,
    k: int,
    capacity: int,
    n_workers: int,
    n_stripes: int = 64,
    layout: str = "flat",
    protocol: str = "locked",
    n_shards: int = 8,
):
    """Two-word twin of :func:`concurrent_insert_processes` (k > 31).

    Several processes CAS the same occupancy plane and publish BOTH key
    words (``keys_hi`` then ``keys_lo``) — inside the LOCKED window
    under ``protocol="locked"`` (the multi-word case the state-transfer
    protocol exists for; paper §III, multi-word ablation), or between
    the claim CAS and the publication-bit store under
    ``protocol="lockfree"``.  ``layout="sharded"`` gives each shard a
    private flags region and lock bundles.  Returns the resulting
    :class:`~repro.bigk.store.BigDeBruijnGraph` and per-worker stats.
    """
    hi = np.ascontiguousarray(hi, dtype=np.uint64).ravel()
    lo = np.ascontiguousarray(lo, dtype=np.uint64).ravel()
    slots = np.ascontiguousarray(slots, dtype=np.int64).ravel()
    if not (hi.shape == lo.shape == slots.shape):
        raise ValueError("hi, lo and slots must be parallel arrays")
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    if k <= 31:
        raise ValueError("use concurrent_insert_processes for k <= 31")
    if layout != "sharded":
        n_shards = 1
    ctx = default_context()
    cap = _final_capacity(capacity, k, layout, n_shards)
    # Same ownership discipline as the one-word path: each `with` owns
    # its segment from creation, so a failed lock-bundle build still
    # unlinks everything (no shm leak on partially-constructed runs).
    with create_table_segment(cap, k, n_shards=n_shards) as table_seg, \
            create_segment([("flags", (cap,), "int64")]) as flags_seg:
        state_bundles, count_bundles = _shard_lock_bundles(
            ctx, layout, n_shards, n_stripes
        )
        bounds = np.linspace(0, hi.size, n_workers + 1).astype(int).tolist()
        stats = run_workers(
            _cas_worker_2w, n_workers, ctx=ctx,
            args=(table_seg.spec, flags_seg.spec, state_bundles,
                  count_bundles, hi, lo, slots, bounds, k, layout, protocol,
                  n_shards),
        )
        _publish_final_state(table_seg, flags_seg)
        table = table_over_segment(table_seg, k, fresh=False, layout=layout,
                                   n_shards=n_shards, protocol=protocol)
        graph = table.to_graph()
        table.detach_views()
        return graph, stats


def _cas_worker_2w(worker_id: int, table_spec: SegmentSpec,
                   flags_spec: SegmentSpec, state_bundles, count_bundles,
                   hi: np.ndarray, lo: np.ndarray, slots: np.ndarray,
                   bounds: list[int], k: int, layout: str, protocol: str,
                   n_shards: int) -> HashStats:
    """One process of the two-word cross-process state-machine run."""
    from ..bigk.kmer2w import join_planes

    seg = attach_segment(table_spec)
    flags_seg = attach_segment(flags_spec)
    table = table_over_segment(seg, k, fresh=True, layout=layout,
                               n_shards=n_shards, protocol=protocol)
    _install_shared_atomics(table, flags_seg["flags"], layout,
                            state_bundles, count_bundles)
    local = HashStats()
    b0, b1 = bounds[worker_id], bounds[worker_id + 1]
    try:
        if layout == "sharded":
            table.insert_ops_threadsafe(hi[b0:b1], lo[b0:b1],
                                        slots[b0:b1], local)
        else:
            for i in range(b0, b1):
                kmer = join_planes(hi[i], lo[i])
                table.insert_one_threadsafe(kmer, int(slots[i]), local)
    finally:
        table.detach_views()
        seg.close()
        flags_seg.close()
    return local
