"""The process-parallel execution backend (``backend="processes"``).

Runs both ParaHash steps across worker *processes* so the pipeline
scales with cores instead of being serialized by the GIL:

* **Step 1** — the read matrix is copied once into shared memory and
  split into chunks; workers claim chunks from a
  :class:`~repro.concurrentsub.workqueue.ProcessTicketQueue` (the
  paper's ``cns`` work stealing, with weighted dispatch) and append
  each chunk's superkmer blocks to their own spill files.  Grouping
  the spill files by partition id — the minimizer-hash class — is the
  merge.
* **Step 2** — the parent pre-creates one shared-memory hash-table
  segment per non-empty partition (sized by Property 1 from the exact
  per-partition kmer counts Step 1 reported); workers claim partitions,
  read their spill group, and run the vectorized insert kernel directly
  into the shared buffers.  The parent then reads each finished table
  *in place* — result transfer is zero-copy, nothing big is pickled.

A table whose Property-1 estimate is breached (``TableFullError``)
falls back to a worker-local regrown table whose graph is returned
through the result queue.

:func:`concurrent_insert_processes` additionally exercises the
§III-C3 state machine itself across processes — several workers CAS
the *same* table's occupancy flags through
:class:`~repro.parallel.atomics_mp.ProcessAtomicInt64Array` — which is
what validates that the state-transfer protocol is sound on genuinely
concurrent memory, not merely under the GIL.
"""

from __future__ import annotations

import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..concurrentsub.workqueue import ProcessTicketQueue, WorkerRecord
from ..core.estimator import next_power_of_two
from ..core.hashtable import HashStats, TableFullError
from ..dna.reads import ReadBatch
from ..graph.dbg import DeBruijnGraph, empty_graph
from ..graph.merge import merge_disjoint
from ..msp.partitioner import (
    SpillWriterSet,
    load_partition_group,
    merge_spill_files,
    partition_reads,
    spill_groups,
)
from .atomics_mp import ProcessAtomicInt64Array, create_lock_bundle
from .pool import default_context, run_workers
from .shm import (
    HEADER_N_OCCUPIED,
    SegmentSpec,
    attach_read_batch,
    attach_segment,
    create_segment,
    create_table_segment,
    share_read_batch,
    table_over_segment,
)


@dataclass(frozen=True)
class _Step2Job:
    """One partition's work order, addressable by ticket index."""

    partition: int
    k: int
    table_spec: SegmentSpec
    group: tuple[str, ...]


# -- worker entry points (top-level: picklable under spawn) ----------------------


def _step1_worker(worker_id: int, batch_spec: SegmentSpec,
                  chunk_bounds: list[tuple[int, int]],
                  tickets: ProcessTicketQueue, weights: list[int], k: int,
                  p: int, n_partitions: int, spill_dir: str) -> dict:
    """Claim read chunks, partition them, spill per-worker files."""

    def consume(batch: ReadBatch, spills: SpillWriterSet) -> dict:
        # Inner frame: every view over the shared codes matrix dies
        # when this returns, so the segment can close cleanly.
        weight = weights[worker_id]
        claimed: list[int] = []
        n_superkmers = 0
        n_reads = 0
        kmers_per_partition = np.zeros(n_partitions, dtype=np.int64)
        while True:
            ids = tickets.claim(weight)
            if not ids:
                break
            for chunk_id in ids:
                lo, hi = chunk_bounds[chunk_id]
                piece = ReadBatch(codes=batch.codes[lo:hi])
                result = partition_reads(piece, k, p, n_partitions)
                spills.write_result(result)
                n_superkmers += len(result.superkmers)
                n_reads += piece.n_reads
                kmers_per_partition += result.kmers_per_partition()
                claimed.append(chunk_id)
        return {
            "claimed": claimed,
            "n_superkmers": n_superkmers,
            "n_reads": n_reads,
            "kmers_per_partition": kmers_per_partition.tolist(),
        }

    batch, seg = attach_read_batch(batch_spec)
    spills = SpillWriterSet(spill_dir, worker_id, k, n_partitions)
    try:
        report = consume(batch, spills)
    finally:
        paths = spills.close()
        del batch
        seg.close()
    report["spills"] = {
        partition: str(path) for partition, path in paths.items()
    }
    return report


def _step2_worker(worker_id: int, jobs: list[_Step2Job],
                  tickets: ProcessTicketQueue, weights: list[int],
                  sizing) -> list[dict]:
    """Claim partitions and fill their shared tables in place."""
    from ..core.subgraph import block_observations, build_subgraph

    weight = weights[worker_id]
    out: list[dict] = []
    while True:
        ids = tickets.claim(weight)
        if not ids:
            break
        for ticket in ids:
            job = jobs[ticket]
            block = load_partition_group([Path(s) for s in job.group], job.k)
            payload: dict = {"partition": job.partition,
                             "n_kmers": block.total_kmers()}
            seg = attach_segment(job.table_spec)
            table = table_over_segment(seg, job.k, fresh=True)
            try:
                vertex_ids, slots = block_observations(block)
                table.insert_batch(vertex_ids, slots)
                seg["header"][HEADER_N_OCCUPIED] = table.n_occupied
                payload["stats"] = table.stats
                payload["fallback"] = None
            except TableFullError:
                # Property-1 estimate breached: regrow locally and ship
                # the (rare) oversized result through the queue instead.
                result = build_subgraph(block, policy=sizing, n_threads=1)
                payload["stats"] = result.stats
                payload["fallback"] = result.graph
            finally:
                table.detach_views()
                seg.close()
            out.append(payload)
    return out


# -- the driver ------------------------------------------------------------------


def build_graph_processes(
    reads: ReadBatch,
    config,
    workdir: str | Path | None = None,
    output_dir: str | Path | None = None,
    weights: list[int] | None = None,
):
    """Run the two-step workflow across worker processes.

    Mirrors :meth:`repro.core.parahash.ParaHash.build_graph` (same
    result type, graph bit-for-bit identical to the serial backend) but
    executes Step 1 and Step 2 on ``config.workers()`` processes.
    ``weights`` optionally skews the ticket dispatch (one entry per
    worker; a weight-``w`` worker claims ``w`` chunks per visit — the
    CPU/GPU-style dispatch knob).
    """
    from ..core.parahash import ParaHashResult, StageTimings

    cfg = config
    n_workers = cfg.workers()
    if weights is None:
        weights = [1] * n_workers
    if len(weights) != n_workers or min(weights) < 1:
        raise ValueError("weights must give every worker a weight >= 1")
    ctx = default_context()

    tmp: tempfile.TemporaryDirectory | None = None
    if workdir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-parallel-")
        spill_dir = Path(tmp.name)
    else:
        spill_dir = Path(workdir) / "spill"
        spill_dir.mkdir(parents=True, exist_ok=True)

    t0 = time.perf_counter()
    io_seconds = 0.0
    try:
        # ---- Step 1: chunked fan-out over shared read memory --------------
        n_chunks = max(cfg.n_input_pieces, 2 * n_workers)
        bounds_arr = np.linspace(0, reads.n_reads, n_chunks + 1).astype(int)
        chunk_bounds = [
            (int(bounds_arr[i]), int(bounds_arr[i + 1]))
            for i in range(n_chunks)
            if bounds_arr[i + 1] > bounds_arr[i]
        ]
        reports: list[dict] = []
        if chunk_bounds:
            tickets1 = ProcessTicketQueue(len(chunk_bounds), ctx)
            batch_seg = share_read_batch(reads)
            try:
                reports = run_workers(
                    _step1_worker, n_workers, ctx=ctx,
                    args=(batch_seg.spec, chunk_bounds, tickets1, weights,
                          cfg.k, cfg.p, cfg.n_partitions, str(spill_dir)),
                )
            finally:
                batch_seg.unlink()

        n_superkmers = sum(r["n_superkmers"] for r in reports)
        kmers_per_partition = np.zeros(cfg.n_partitions, dtype=np.int64)
        for r in reports:
            kmers_per_partition += np.asarray(r["kmers_per_partition"],
                                              dtype=np.int64)
        groups = spill_groups([r["spills"] for r in reports],
                              cfg.n_partitions)
        partition_bytes = sum(
            os.path.getsize(path) for group in groups for path in group
        )
        if workdir is not None:
            # Persist canonical partition files next to the spills so the
            # on-disk layout matches a serial disk-backed run.
            t_io = time.perf_counter()
            merged = merge_spill_files(groups, workdir, cfg.k)
            io_seconds += time.perf_counter() - t_io
            groups = [[path] for path in merged]
            partition_bytes = sum(os.path.getsize(path) for path in merged)
        t1 = time.perf_counter()

        # ---- Step 2: one shared table per non-empty partition -------------
        live = [
            part for part in range(cfg.n_partitions)
            if kmers_per_partition[part] > 0
        ]
        segments = {}
        payload_lists: list[list[dict]] = []
        subgraphs: list[DeBruijnGraph] = []
        stats = HashStats()
        try:
            jobs: list[_Step2Job] = []
            for part in live:
                capacity = next_power_of_two(max(2, cfg.sizing.capacity_for(
                    max(1, int(kmers_per_partition[part]))
                )))
                seg = create_table_segment(capacity, cfg.k)
                segments[part] = seg
                jobs.append(_Step2Job(
                    partition=part, k=cfg.k, table_spec=seg.spec,
                    group=tuple(str(p) for p in groups[part]),
                ))
            if jobs:
                step2_workers = max(1, min(n_workers, len(jobs)))
                tickets2 = ProcessTicketQueue(len(jobs), ctx)
                payload_lists = run_workers(
                    _step2_worker, step2_workers, ctx=ctx,
                    args=(jobs, tickets2, weights, cfg.sizing),
                )
            by_partition = {
                payload["partition"]: payload
                for payloads in payload_lists for payload in payloads
            }
            for part in live:
                payload = by_partition[part]
                stats = stats.merged_with(payload["stats"])
                if payload["fallback"] is not None:
                    subgraphs.append(payload["fallback"])
                    continue
                seg = segments[part]
                table = table_over_segment(seg, cfg.k, fresh=False)
                table.n_occupied = int(seg["header"][HEADER_N_OCCUPIED])
                subgraphs.append(table.to_graph())
                table.detach_views()
        finally:
            for seg in segments.values():
                seg.unlink()
        t2 = time.perf_counter()

        if output_dir is not None and subgraphs:
            from ..graph.serialize import save_subgraphs

            t_io = time.perf_counter()
            save_subgraphs(output_dir, subgraphs)
            io_seconds += time.perf_counter() - t_io

        nonempty = [g for g in subgraphs if g.n_vertices]
        graph = merge_disjoint(nonempty) if nonempty else empty_graph(cfg.k)
        return ParaHashResult(
            graph=graph,
            subgraphs=subgraphs,
            hash_stats=stats,
            timings=StageTimings(
                msp_seconds=(t1 - t0) - io_seconds,
                hashing_seconds=t2 - t1,
                io_seconds=io_seconds,
            ),
            n_superkmers=n_superkmers,
            n_kmers=int(kmers_per_partition.sum()),
            partition_bytes=partition_bytes,
            config=cfg,
            worker_records=_worker_records(reports, payload_lists),
        )
    finally:
        if tmp is not None:
            tmp.cleanup()


def _worker_records(step1_reports: list[dict],
                    step2_payloads: list[list[dict]]) -> dict[str, WorkerRecord]:
    """Fold both steps' reports into §III-E-style worker records."""
    records: dict[str, WorkerRecord] = {}
    for w, report in enumerate(step1_reports):
        records[f"proc{w}"] = WorkerRecord(
            name=f"proc{w}",
            partitions=[],
            items_processed=report["n_reads"],
        )
    for w, payloads in enumerate(step2_payloads):
        record = records.setdefault(f"proc{w}", WorkerRecord(name=f"proc{w}"))
        for payload in payloads:
            record.partitions.append(payload["partition"])
            record.items_processed += payload["n_kmers"]
    return records


# -- cross-process CAS validation path -------------------------------------------


def concurrent_insert_processes(
    kmers: np.ndarray,
    slots: np.ndarray,
    k: int,
    capacity: int,
    n_workers: int,
    n_stripes: int = 64,
) -> tuple[DeBruijnGraph, list[HashStats]]:
    """Insert observations into ONE table from several processes.

    This is the state-transfer protocol on genuinely concurrent memory:
    every worker runs CAS EMPTY→LOCKED / write-key / publish-OCCUPIED
    against the same shared-memory occupancy plane.  Returns the
    resulting subgraph and the per-worker stats.  Used by the
    equivalence tests (the outcome must match a serial
    ``insert_batch``); the production pipeline instead gives each
    partition to exactly one process, as the paper does per subgraph.
    """
    kmers = np.ascontiguousarray(kmers, dtype=np.uint64).ravel()
    slots = np.ascontiguousarray(slots, dtype=np.int64).ravel()
    if kmers.shape != slots.shape:
        raise ValueError("kmers and slots must be parallel arrays")
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    ctx = default_context()
    cap = next_power_of_two(max(2, capacity))
    table_seg = create_table_segment(cap, k)
    flags_seg = create_segment([("flags", (cap,), "int64")])
    state_locks = create_lock_bundle(ctx, n_stripes)
    count_locks = create_lock_bundle(ctx, n_stripes)
    bounds = np.linspace(0, kmers.size, n_workers + 1).astype(int).tolist()
    try:
        stats = run_workers(
            _cas_worker, n_workers, ctx=ctx,
            args=(table_seg.spec, flags_seg.spec, state_locks, count_locks,
                  kmers, slots, bounds, k),
        )
        # Publish the final flags into the table's int8 mirror, then
        # read the graph straight out of shared memory.
        table_seg["state"][:] = flags_seg["flags"].astype(np.int8)
        table = table_over_segment(table_seg, k, fresh=False)
        graph = table.to_graph()
        table.detach_views()
        return graph, stats
    finally:
        table_seg.unlink()
        flags_seg.unlink()


def _cas_worker(worker_id: int, table_spec: SegmentSpec,
                flags_spec: SegmentSpec, state_locks, count_locks,
                kmers: np.ndarray, slots: np.ndarray,
                bounds: list[int], k: int) -> HashStats:
    """One process of the cross-process state-machine run."""
    seg = attach_segment(table_spec)
    flags_seg = attach_segment(flags_spec)
    table = table_over_segment(seg, k, fresh=True)
    # Swap the thread-path machinery for its cross-process twins: the
    # occupancy flags live in the shared int64 plane and every stripe
    # lock is a multiprocessing lock, so the CAS window and the counter
    # updates are mutually exclusive across processes.
    table._atomic_state = ProcessAtomicInt64Array(flags_seg["flags"],
                                                  state_locks)
    table._count_locks = list(count_locks)
    local = HashStats()
    try:
        for i in range(bounds[worker_id], bounds[worker_id + 1]):
            table.insert_one_threadsafe(int(kmers[i]), int(slots[i]), local)
    finally:
        table.detach_views()
        seg.close()
        flags_seg.close()
    return local
