"""A small crash-safe process fan-out.

``concurrent.futures`` is deliberately not used: the backend's workers
claim their own work from a shared ticket counter (work stealing), so
the pool's only jobs are (1) start one process per worker, (2) collect
one result message per worker, and (3) **never hang** — a worker that
dies without reporting (segfault, ``os._exit``, OOM kill) must surface
as a clean :class:`WorkerCrashed` error, with the remaining workers
terminated, instead of a parent blocked on a queue forever.

Workers send ``("ok", worker_id, payload)`` or ``("error", worker_id,
traceback_text)`` through a queue; the parent polls the queue with a
short timeout and watches process liveness between polls.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_mod
import signal
import threading
import traceback
from typing import Any, Callable


class WorkerCrashed(RuntimeError):
    """A worker process exited without reporting a result."""


class WorkerFailed(RuntimeError):
    """A worker process raised; carries the worker's traceback text."""


class PoolInterrupted(RuntimeError):
    """The parent received SIGTERM/SIGINT while workers were running.

    Raised *synchronously* inside :func:`run_workers`' poll loop so the
    normal teardown runs: workers are terminated, and every enclosing
    ``try/finally`` in the caller — which is where shared-memory
    segments are owned — unlinks its segments before the process exits.
    Without this conversion a SIGTERM would kill the parent mid-run and
    orphan every live segment in ``/dev/shm``.
    """


def _install_signal_handlers() -> dict | None:
    """Convert SIGTERM/SIGINT into :class:`PoolInterrupted` for the
    duration of a pool run; returns the previous handlers (or ``None``
    when not on the main thread, where handlers cannot be changed)."""
    if threading.current_thread() is not threading.main_thread():
        return None

    def handler(signum: int, frame) -> None:
        raise PoolInterrupted(
            f"received signal {signum} while running workers; pool torn "
            f"down and owned segments unlinked"
        )

    previous: dict = {}
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            previous[sig] = signal.signal(sig, handler)
        except (ValueError, OSError):  # pragma: no cover - exotic host
            pass
    return previous


def _restore_signal_handlers(previous: dict | None) -> None:
    if not previous:
        return
    for sig, old in previous.items():
        try:
            signal.signal(sig, old)
        except (ValueError, OSError):  # pragma: no cover - exotic host
            pass


def default_context() -> mp.context.BaseContext:
    """The start method the backend uses.

    ``fork`` when the platform offers it (cheap on Linux, and lock
    bundles / numpy state inherit for free), else the platform default
    (``spawn`` on macOS/Windows — every worker entry point in this
    package is a top-level picklable function for exactly that case).
    """
    try:
        return mp.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platform
        return mp.get_context()


def _worker_shell(fn: Callable, args: tuple, out: mp.queues.Queue,
                  worker_id: int, pass_emit: bool) -> None:
    try:
        # The parent converts SIGTERM to PoolInterrupted for *its own*
        # cleanup; a forked worker inherits that handler, which would
        # turn the pool's terminate() into a slow graceful unwind.
        # Workers die promptly: restore the default disposition.
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
    except (ValueError, OSError):  # pragma: no cover - exotic host
        pass
    try:
        if pass_emit:
            def emit(payload: Any) -> None:
                out.put(("event", worker_id, payload))

            payload = fn(worker_id, *args, emit=emit)
        else:
            payload = fn(worker_id, *args)
        out.put(("ok", worker_id, payload))
    except BaseException:
        out.put(("error", worker_id, traceback.format_exc()))


def run_workers(
    fn: Callable,
    n_workers: int,
    args: tuple = (),
    ctx: mp.context.BaseContext | None = None,
    poll_seconds: float = 0.25,
    timeout: float | None = 600.0,
    on_event: Callable[[int, Any], None] | None = None,
) -> list[Any]:
    """Run ``fn(worker_id, *args)`` in ``n_workers`` processes.

    Returns the workers' payloads indexed by worker id.  Raises
    :class:`WorkerFailed` when any worker raised (all others are joined
    first so shared resources quiesce) and :class:`WorkerCrashed` when a
    worker vanished without a result; in both cases surviving workers
    are terminated before the error propagates, so the caller can
    release shared segments safely.

    With ``on_event`` set, workers are additionally handed an
    ``emit(payload)`` keyword callable; every emitted payload is
    delivered to ``on_event(worker_id, payload)`` *in the parent*,
    inline with the result-poll loop.  This is the pipelined backend's
    mid-run channel: workers announce spill completion while still
    running, and the parent's merger reacts between liveness polls.  An
    exception from ``on_event`` tears the pool down like any parent
    failure (workers are terminated in the ``finally``), so a failing
    merger can never strand workers.
    """
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    ctx = ctx or default_context()
    # From here to the final restore, SIGTERM/SIGINT raise
    # PoolInterrupted in this (main) thread: the poll loop below exits
    # through its finally (workers terminated) and the caller's own
    # finally blocks run (owned shm segments unlinked) before the
    # process dies — a clean drain-or-abort instead of an orphaned run.
    previous_handlers = _install_signal_handlers()
    out: mp.queues.Queue = ctx.Queue()
    procs = [
        ctx.Process(target=_worker_shell,
                    args=(fn, args, out, w, on_event is not None),
                    name=f"repro-worker-{w}", daemon=True)
        for w in range(n_workers)
    ]
    results: list[Any] = [None] * n_workers
    reported = [False] * n_workers
    failure: tuple[str, int, str] | None = None
    waited = 0.0
    try:
        for p in procs:
            p.start()
        while not all(reported):
            try:
                kind, worker_id, payload = out.get(timeout=poll_seconds)
            except queue_mod.Empty:
                waited += poll_seconds
                if timeout is not None and waited > timeout:
                    raise WorkerCrashed(
                        f"workers {_pending(reported)} produced no result "
                        f"within {timeout:.0f}s"
                    )
                dead = [
                    w for w, p in enumerate(procs)
                    if not reported[w] and not p.is_alive()
                ]
                # A dead worker may still have a message in flight;
                # drain once more before declaring the crash.
                if dead and _queue_idle(out):
                    codes = {w: procs[w].exitcode for w in dead}
                    raise WorkerCrashed(
                        f"worker(s) died without reporting a result "
                        f"(exit codes {codes}); inputs may be partially "
                        f"processed"
                    )
                continue
            if kind == "event":
                if on_event is not None:
                    on_event(worker_id, payload)
                continue
            reported[worker_id] = True
            if kind == "ok":
                results[worker_id] = payload
            elif failure is None:
                failure = (kind, worker_id, payload)
        if failure is not None:
            _, worker_id, tb = failure
            raise WorkerFailed(
                f"worker {worker_id} raised:\n{tb.rstrip()}"
            )
        return results
    finally:
        try:
            for p in procs:
                if p.is_alive():
                    p.terminate()
            for p in procs:
                p.join(timeout=10.0)
            out.close()
        finally:
            _restore_signal_handlers(previous_handlers)


def _pending(reported: list[bool]) -> list[int]:
    return [w for w, done in enumerate(reported) if not done]


def _queue_idle(out: mp.queues.Queue) -> bool:
    """True when one final grace poll finds the result queue empty."""
    try:
        # Peek is impossible on mp queues; a short blocking get that
        # times out is the reliable emptiness test.  A message arriving
        # here is pushed back via the internal buffer-free path by
        # returning False and letting the main loop re-poll.
        item = out.get(timeout=0.5)
    except queue_mod.Empty:
        return True
    out.put(item)
    return False
