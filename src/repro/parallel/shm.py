"""Shared-memory segments for the process backend.

The process backend (:mod:`repro.parallel.backend`) moves the big
arrays of a ParaHash run — the read-code matrix and the hash-table
arrays (``state``, ``keys``, ``counts``; for k > 31 the split-key
planes ``keys_hi``/``keys_lo``) — into
:mod:`multiprocessing.shared_memory` segments so that

* worker processes operate on the *same* physical memory the parent
  reads results from (no pickling of multi-megabyte arrays), and
* the state-transfer protocol's occupancy flags live in genuinely
  concurrent memory when several processes insert into one table
  (see :mod:`repro.parallel.atomics_mp`).

Lifetime rules
--------------

Exactly one process *owns* each segment: the owner creates it, hands
the picklable :class:`SegmentSpec` to workers, and calls
:meth:`SharedSegment.unlink` once every attacher has exited (or no
longer needs the data).  Attachers call :func:`attach_segment` and
:meth:`SharedSegment.close` — never ``unlink``.  Both directions are
context managers, and the backend keeps every create inside a
``try/finally`` so segments cannot leak past a run even on error.

CPython's ``resource_tracker`` registers *attached* segments too
(bpo-38119).  The backend's workers inherit the parent's tracker
process (fork and spawn both pass the tracker fd down), so the
registration cache is shared and keyed by name: a worker's re-register
is a no-op and the owner's ``unlink`` removes the single entry.  No
unregister calls are needed — and none must be made from workers, as
that would delete the *owner's* registration out from under it.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

#: Byte alignment of every array inside a segment (cache-line friendly,
#: and satisfies any dtype's alignment requirement).
_ALIGN = 64


def _aligned(n: int) -> int:
    return (n + _ALIGN - 1) // _ALIGN * _ALIGN


@dataclass(frozen=True)
class ArrayField:
    """One named array inside a segment (picklable layout metadata)."""

    name: str
    shape: tuple[int, ...]
    dtype: str
    offset: int

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) * np.dtype(self.dtype).itemsize


@dataclass(frozen=True)
class SegmentSpec:
    """Picklable description of a shared-memory segment and its arrays.

    This is the only thing that crosses the process boundary — workers
    reconstruct zero-copy numpy views from it via :func:`attach_segment`.
    """

    segment: str
    nbytes: int
    fields: tuple[ArrayField, ...]

    def field(self, name: str) -> ArrayField:
        for f in self.fields:
            if f.name == name:
                return f
        raise KeyError(f"segment {self.segment} has no field {name!r}")


class SharedSegment:
    """A shared-memory segment plus numpy views over its arrays."""

    def __init__(self, spec: SegmentSpec, shm: shared_memory.SharedMemory,
                 owner: bool) -> None:
        self.spec = spec
        self._shm = shm
        self._owner = owner
        self.arrays: dict[str, np.ndarray] = {
            f.name: np.frombuffer(
                shm.buf, dtype=np.dtype(f.dtype),
                count=int(np.prod(f.shape, dtype=np.int64)), offset=f.offset,
            ).reshape(f.shape)
            for f in spec.fields
        }

    def __getitem__(self, name: str) -> np.ndarray:
        return self.arrays[name]

    def close(self) -> None:
        """Drop this process's mapping (views become invalid)."""
        # The views hold references into shm.buf; numpy must release
        # them before the buffer can be closed.
        self.arrays = {}
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - view still referenced
            pass

    def unlink(self) -> None:
        """Destroy the segment (owner only); implies :meth:`close`."""
        if not self._owner:
            raise RuntimeError(
                f"segment {self.spec.segment} is attached, not owned; "
                "only the creating process may unlink it"
            )
        self.close()
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def __enter__(self) -> "SharedSegment":
        return self

    def __exit__(self, *exc) -> None:
        if self._owner:
            self.unlink()
        else:
            self.close()


def create_segment(fields: list[tuple[str, tuple[int, ...], str]]) -> SharedSegment:
    """Allocate a zero-filled segment holding the given arrays.

    ``fields`` is a list of ``(name, shape, dtype-string)``; the arrays
    are laid out back to back at 64-byte-aligned offsets.
    """
    laid_out: list[ArrayField] = []
    offset = 0
    for name, shape, dtype in fields:
        f = ArrayField(name=name, shape=tuple(int(s) for s in shape),
                       dtype=dtype, offset=offset)
        laid_out.append(f)
        offset = _aligned(offset + f.nbytes)
    total = max(1, offset)
    shm = shared_memory.SharedMemory(create=True, size=total)
    spec = SegmentSpec(segment=shm.name, nbytes=total, fields=tuple(laid_out))
    return SharedSegment(spec, shm, owner=True)


def attach_segment(spec: SegmentSpec) -> SharedSegment:
    """Attach to an existing segment by spec (worker side).

    The attacher must :meth:`SharedSegment.close` (never ``unlink``)
    when done, after dropping every array view it took — see the
    lifetime rules in the module docstring.
    """
    shm = shared_memory.SharedMemory(name=spec.segment)
    return SharedSegment(spec, shm, owner=False)


# -- read batches ---------------------------------------------------------------


def share_read_batch(batch) -> SharedSegment:
    """Copy a :class:`~repro.dna.reads.ReadBatch` into shared memory.

    Ownership of the segment transfers to the caller on success; if the
    copy itself fails (e.g. a dtype/shape surprise mid-write) the
    half-filled segment is unlinked here rather than leaked — the
    caller never learns its name, so nobody else could.
    """
    seg = create_segment([("codes", batch.codes.shape, "uint8")])
    try:
        seg["codes"][:] = batch.codes
    except BaseException:
        seg.unlink()
        raise
    return seg


def attach_read_batch(spec: SegmentSpec):
    """Zero-copy :class:`ReadBatch` over an attached segment.

    Returns ``(batch, segment)``; the caller must keep ``segment`` alive
    while the batch is in use and ``close()`` it afterwards.
    """
    from ..dna.reads import ReadBatch

    seg = attach_segment(spec)
    return ReadBatch(codes=seg["codes"]), seg


# -- hash tables ----------------------------------------------------------------

#: Header slots of a table segment (int64): occupied-entry count,
#: patched by the process that filled the table.
HEADER_N_OCCUPIED = 0
_HEADER_LEN = 2


def create_table_segment(capacity: int, k: int,
                         n_shards: int = 1) -> SharedSegment:
    """Zero-filled backing store for one hash table (one- or two-word).

    Layout matches the table's arrays plus a small int64 header the
    filling worker patches (``n_occupied``).  ``capacity`` must already
    be the table's true (power-of-two) capacity for the flat layout;
    with ``n_shards > 1`` it is rounded so each of the ``n_shards``
    contiguous slices is itself a power of two (the sharded layout of
    :mod:`repro.parallel.sharded` slices these very planes by shard).

    For ``k <= 31`` the layout backs a
    :class:`~repro.core.hashtable.ConcurrentHashTable` (one ``keys``
    plane); for ``k > 31`` it is the split-key two-word layout of
    :class:`~repro.bigk.table.TwoWordHashTable` — ``keys_hi`` and
    ``keys_lo`` uint64 planes holding the ``k - 32`` leftmost and 32
    rightmost bases.  Either way :func:`table_over_segment` rebuilds
    the matching table over the views, so backend call sites stay
    width-agnostic.
    """
    from ..graph.dbg import N_SLOTS

    if n_shards > 1:
        from .sharded import shard_capacity

        capacity = shard_capacity(capacity, n_shards) * n_shards
    if k > 31:
        from ..bigk.kmer2w import check_2w_k

        check_2w_k(k)
        return create_segment([
            ("header", (_HEADER_LEN,), "int64"),
            ("state", (capacity,), "int8"),
            ("keys_hi", (capacity,), "uint64"),
            ("keys_lo", (capacity,), "uint64"),
            ("counts", (capacity, N_SLOTS), "uint32"),
        ])
    return create_segment([
        ("header", (_HEADER_LEN,), "int64"),
        ("state", (capacity,), "int8"),
        ("keys", (capacity,), "uint64"),
        ("counts", (capacity, N_SLOTS), "uint32"),
    ])


def table_over_segment(seg: SharedSegment, k: int, fresh: bool = False,
                       layout: str = "flat", n_shards: int = 1,
                       protocol: str = "locked"):
    """A hash table whose arrays are the segment's views (zero-copy).

    Returns a :class:`~repro.core.hashtable.ConcurrentHashTable` over a
    one-word segment or a :class:`~repro.bigk.table.TwoWordHashTable`
    over a two-word one, keyed off ``k`` — which must match the layout
    the segment was created with.  ``layout="sharded"`` wraps the same
    planes in the sharded wrappers of :mod:`repro.parallel.sharded`
    (``n_shards`` must match :func:`create_table_segment`); ``protocol``
    selects the per-slot insert protocol either way.

    With ``fresh=True`` the segment is assumed zero-filled (a new table);
    otherwise occupancy is recounted from the ``state`` array, so a
    parent can attach *after* a worker filled the table and read the
    result without any copy.
    """
    if layout == "sharded":
        from .sharded import ShardedHashTable, ShardedTwoWordHashTable

        if k > 31:
            return ShardedTwoWordHashTable.from_views(
                k=k, state=seg["state"], keys_hi=seg["keys_hi"],
                keys_lo=seg["keys_lo"], counts=seg["counts"],
                n_shards=n_shards, n_occupied=0 if fresh else None,
                protocol=protocol,
            )
        return ShardedHashTable.from_views(
            k=k, state=seg["state"], keys=seg["keys"], counts=seg["counts"],
            n_shards=n_shards, n_occupied=0 if fresh else None,
            protocol=protocol,
        )
    if layout != "flat":
        raise ValueError(f"layout must be 'flat' or 'sharded', got {layout!r}")
    if k > 31:
        from ..bigk.table import TwoWordHashTable

        return TwoWordHashTable.from_views(
            k=k, state=seg["state"], keys_hi=seg["keys_hi"],
            keys_lo=seg["keys_lo"], counts=seg["counts"],
            n_occupied=0 if fresh else None, protocol=protocol,
        )
    from ..core.hashtable import ConcurrentHashTable

    return ConcurrentHashTable.from_views(
        k=k, state=seg["state"], keys=seg["keys"], counts=seg["counts"],
        n_occupied=0 if fresh else None, protocol=protocol,
    )
