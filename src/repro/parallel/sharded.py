"""Sharded table layout: hash-prefix shards under one table interface.

The flat layout gives every partition one table whose atomic plane and
lock stripes are shared by *all* workers; cross-process cache traffic on
those stripes grows with worker count.  The sharded layout slices the
partition's buffers by hash prefix into ``n_shards`` inner tables, each
with a private state plane and its own lock-stripe/CAS region, so
concurrent inserts mostly stay inside their own shard ("Scalable Hash
Table for NUMA Systems", PAPERS.md).

Routing is by the *top* bits of the same 64-bit mix the inner tables
hash with (``hash(key) >> shift``): the inner home slot uses the low
bits, so the two are independent.  A key's home shard is deterministic;
when the home shard is completely full the insert falls back to the
next shard (``home+1, home+2, ...`` mod S) and raises
:class:`~repro.core.hashtable.TableFullError` only when **all** shards
are exhausted.  Because a shard can never un-fill, the fallback walk is
deterministic for every later insert and lookup of the same key, and a
key can materialize in exactly one shard — shard subgraphs stay
vertex-disjoint, so the partition graph is their disjoint merge.

Both insert protocols (``locked`` state transfer and ``lockfree``
CAS-publish) run unchanged inside each shard; the wrappers here add
layout only, never touching the slot protocol.
"""

from __future__ import annotations

import threading

import numpy as np

from ..bigk.construct import merge_bigk_disjoint
from ..bigk.kmer2w import join_planes, split_int
from ..bigk.store import BigDeBruijnGraph
from ..bigk.table import TwoWordHashTable, hash_planes, hash_planes_int
from ..concurrentsub.hashfunc import mix64, mix64_int
from ..core.hashtable import (
    ConcurrentHashTable,
    HashStats,
    TableFullError,
)
from ..graph.dbg import DeBruijnGraph
from ..graph.merge import merge_disjoint
from .atomics_mp import ProcessAtomicInt64Array


def check_n_shards(n_shards: int) -> None:
    """Shard counts must be positive powers of two (prefix routing)."""
    if n_shards < 1 or n_shards & (n_shards - 1):
        raise ValueError(
            f"n_shards must be a positive power of two, got {n_shards}"
        )


def shard_capacity(capacity: int, n_shards: int) -> int:
    """Per-shard capacity: the smallest power of two >= capacity/S (>= 2)."""
    check_n_shards(n_shards)
    per = -(-int(capacity) // n_shards)  # ceil division
    size = 2
    while size < per:
        size <<= 1
    return size


class _ShardedTable:
    """Layout-only wrapper: routes operations over ``n_shards`` inner tables.

    Subclasses bind the key width (one-word or two-word inner tables)
    and the routing hash; everything layout-level — fallback rounds,
    merged stats, occupancy accounting, the process-atomics hook — lives
    here.
    """

    layout = "sharded"

    #: Inner table class; bound by subclasses.
    _inner_cls: type = None  # type: ignore[assignment]

    def _init_shards(self, shards: list, k: int, protocol: str) -> None:
        self.shards = shards
        self.n_shards = len(shards)
        self.k = k
        self.protocol = protocol
        self._shard_bits = self.n_shards.bit_length() - 1
        self._extra_stats = HashStats()
        self._extra_stats_lock = threading.Lock()

    # -- sizing / introspection ----------------------------------------------

    @property
    def capacity(self) -> int:
        return sum(sh.capacity for sh in self.shards)

    @property
    def n_occupied(self) -> int:
        return sum(sh.n_occupied for sh in self.shards)

    @n_occupied.setter
    def n_occupied(self, value: int) -> None:
        # The process backend round-trips occupancy through the segment
        # header (``table.n_occupied = header[...]``).  Shard occupancy
        # is authoritative here, so the store only validates agreement —
        # a mismatch means the header and the state planes disagree.
        have = sum(sh.n_occupied for sh in self.shards)
        if int(value) != have:
            raise ValueError(
                f"n_occupied readback {int(value)} disagrees with the "
                f"shard state planes ({have})"
            )

    @property
    def load_factor(self) -> float:
        return self.n_occupied / self.capacity

    def memory_bytes(self) -> int:
        return sum(sh.memory_bytes() for sh in self.shards)

    @property
    def stats(self) -> HashStats:
        """Merged view over per-shard stats plus wrapper-level threaded stats."""
        with self._extra_stats_lock:
            merged = self._extra_stats
        for sh in self.shards:
            merged = merged.merged_with(sh.stats)
        return merged

    def detach_views(self) -> None:
        for sh in self.shards:
            sh.detach_views()

    # -- routing --------------------------------------------------------------

    def _home_shard(self, kmer: int) -> int:
        raise NotImplementedError

    # -- per-operation (real-thread) path -------------------------------------

    def insert_one_threadsafe(self, kmer: int, slot: int,
                              local: HashStats | None = None) -> None:
        """Route one observation shard-first with neighbor fallback.

        Each attempt runs the inner table's full per-operation protocol;
        a shard that wraps raises ``TableFullError``, whose per-attempt
        metering (probes stay, ops roll back) keeps ``HashStats``
        attribution exact across the fallback — only the shard that
        finally lands the observation counts its op.
        """
        home = self._home_shard(int(kmer))
        try:
            self.shards[home].insert_one_threadsafe(kmer, slot, local)
        except TableFullError:
            self._insert_fallback(kmer, slot, home, local)

    def _insert_fallback(self, kmer: int, slot: int, home: int,
                         local: HashStats | None) -> None:
        """Walk the neighbor shards after a full home shard."""
        for r in range(1, self.n_shards):
            sh = self.shards[(home + r) & (self.n_shards - 1)]
            try:
                sh.insert_one_threadsafe(kmer, slot, local)
                return
            except TableFullError:
                continue
        raise TableFullError(
            f"all {self.n_shards} shards exhausted "
            f"({self.n_occupied}/{self.capacity} occupied)"
        )

    def lookup(self, kmer: int):
        """Counter row for a kmer, or ``None`` when absent.

        A miss in a shard that still has an EMPTY slot is definitive
        (linear probing reaches an EMPTY before wrapping), so the walk
        stops there on the quiescent path; while threaded machinery is
        live the occupancy count may lag publication, so the walk
        conservatively continues through the fallback sequence.
        """
        home = self._home_shard(int(kmer))
        for r in range(self.n_shards):
            sh = self.shards[(home + r) & (self.n_shards - 1)]
            row = sh.lookup(kmer)
            if row is not None:
                return row
            if sh._atomic_state is None and sh.n_occupied < sh.capacity:
                return None
        return None

    def _sync_mirror(self) -> None:
        for sh in self.shards:
            sh._sync_mirror()

    def _merge_thread_stats(self, locals_: list[HashStats]) -> None:
        with self._extra_stats_lock:
            merged = self._extra_stats
            for st in locals_:
                merged = merged.merged_with(st)
            self._extra_stats = merged

    # -- process backend hook --------------------------------------------------

    def install_process_atomics(self, flags: np.ndarray,
                                state_bundles: list,
                                count_bundles: list) -> None:
        """Arm every shard with its slice of the cross-process planes.

        ``flags`` is the full-capacity int64 plane of the flags segment;
        each shard gets the contiguous slice matching its buffer slice,
        guarded by its **own** lock bundle — this private-stripe split is
        the layout's contention lever on the processes backend.
        """
        if flags.size != self.capacity:
            raise ValueError(
                f"flags plane has {flags.size} slots, table has "
                f"{self.capacity}"
            )
        if len(state_bundles) != self.n_shards \
                or len(count_bundles) != self.n_shards:
            raise ValueError("need one state and one count bundle per shard")
        start = 0
        for sh, state_locks, count_locks in zip(
                self.shards, state_bundles, count_bundles):
            view = flags[start:start + sh.capacity]
            sh._atomic_state = ProcessAtomicInt64Array(view, state_locks)
            sh._count_locks = list(count_locks)
            start += sh.capacity


class ShardedHashTable(_ShardedTable):
    """Sharded layout over one-word inner tables (``2k <= 64``)."""

    _inner_cls = ConcurrentHashTable

    def __init__(self, capacity: int, k: int, n_shards: int = 8,
                 counts_dtype=np.uint32, protocol: str = "locked") -> None:
        check_n_shards(n_shards)
        per = shard_capacity(capacity, n_shards)
        shards = [
            ConcurrentHashTable(per, k, counts_dtype=counts_dtype,
                                protocol=protocol)
            for _ in range(n_shards)
        ]
        self._init_shards(shards, k, protocol)

    @classmethod
    def from_views(cls, k: int, state: np.ndarray, keys: np.ndarray,
                   counts: np.ndarray, n_shards: int,
                   n_occupied: int | None = None,
                   protocol: str = "locked") -> "ShardedHashTable":
        """Slice externally owned planes into per-shard views (no copy)."""
        check_n_shards(n_shards)
        capacity = int(state.size)
        if capacity % n_shards:
            raise ValueError(
                f"capacity {capacity} not divisible by n_shards {n_shards}"
            )
        per = capacity // n_shards
        shards = []
        for s in range(n_shards):
            sl = slice(s * per, (s + 1) * per)
            shards.append(ConcurrentHashTable.from_views(
                k, state[sl], keys[sl], counts[sl],
                n_occupied=None, protocol=protocol))
        table = cls.__new__(cls)
        table._init_shards(shards, k, protocol)
        if n_occupied is not None:
            table.n_occupied = int(n_occupied)  # validates against planes
        return table

    # -- routing --------------------------------------------------------------

    def _home_shard(self, kmer: int) -> int:
        if self._shard_bits == 0:
            return 0
        return mix64_int(kmer) >> (64 - self._shard_bits)

    def _home_shards(self, kmers: np.ndarray) -> np.ndarray:
        if self._shard_bits == 0:
            return np.zeros(kmers.size, dtype=np.int64)
        shift = np.uint64(64 - self._shard_bits)
        return (mix64(kmers) >> shift).astype(np.int64)

    # -- vectorized batch path -------------------------------------------------

    def insert_batch(self, kmers: np.ndarray, slots: np.ndarray,
                     counts: np.ndarray | None = None,
                     chunk: int = 1 << 20,
                     on_full: str = "raise") -> np.ndarray | None:
        """Shard-route the batch, retrying leftovers on neighbor shards.

        Round ``r`` offers every still-pending observation to shard
        ``home + r``; the inner tables run with ``on_full="return"`` so
        a full shard hands its leftovers back instead of raising, and
        ``TableFullError`` fires only once all ``n_shards`` rounds ran
        dry.  With ``on_full="return"`` the surviving leftovers'
        batch-relative indices come back instead.
        """
        if on_full not in ("raise", "return"):
            raise ValueError(
                f"on_full must be 'raise' or 'return', got {on_full!r}"
            )
        kmers = np.ascontiguousarray(kmers, dtype=np.uint64).ravel()
        slots = np.ascontiguousarray(slots, dtype=np.int64).ravel()
        if kmers.shape != slots.shape:
            raise ValueError("kmers and slots must have the same length")
        if counts is not None:
            counts = np.ascontiguousarray(counts, dtype=np.int64).ravel()
        if kmers.size == 0:
            return np.empty(0, dtype=np.int64) if on_full == "return" else None
        target = self._home_shards(kmers)
        idx = np.arange(kmers.size, dtype=np.int64)
        for _round in range(self.n_shards):
            if idx.size == 0:
                break
            carry = []
            for s in range(self.n_shards):
                sel = idx[target[idx] == s]
                if sel.size == 0:
                    continue
                left = self.shards[s].insert_batch(
                    kmers[sel], slots[sel],
                    None if counts is None else counts[sel],
                    chunk=chunk, on_full="return")
                if left is not None and left.size:
                    carry.append(sel[left])
            if not carry:
                idx = idx[:0]
                break
            idx = np.concatenate(carry)
            target[idx] = (target[idx] + 1) % self.n_shards
        if idx.size == 0:
            return np.empty(0, dtype=np.int64) if on_full == "return" else None
        if on_full == "return":
            return np.sort(idx)
        raise TableFullError(
            f"all {self.n_shards} shards exhausted "
            f"({self.n_occupied}/{self.capacity} occupied)"
        )

    def insert_ops_threadsafe(self, kmers: np.ndarray, slots: np.ndarray,
                              local: HashStats | None = None) -> None:
        """Per-op protocol over an observation span, routing vectorized.

        The hot loop of the threaded/process workers: home shards come
        from one vectorized hash pass instead of a per-op ``mix64``, so
        the layout's routing cost is a list index, and the fallback walk
        runs only on the (rare) full-shard exception.
        """
        kmers = np.ascontiguousarray(kmers, dtype=np.uint64).ravel()
        slots = np.asarray(slots, dtype=np.int64).ravel()
        if kmers.shape != slots.shape:
            raise ValueError("kmers and slots must have the same length")
        shards = self.shards
        homes = self._home_shards(kmers).tolist()
        for kmer, slot, home in zip(kmers.tolist(), slots.tolist(), homes):
            try:
                shards[home].insert_one_threadsafe(kmer, slot, local)
            except TableFullError:
                self._insert_fallback(kmer, slot, home, local)

    def insert_threaded(self, kmers: np.ndarray, slots: np.ndarray,
                        n_threads: int) -> list[HashStats]:
        """Run the per-op protocol from real threads, shard-routed."""
        if n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        kmers = np.ascontiguousarray(kmers, dtype=np.uint64).ravel()
        slots = np.asarray(slots, dtype=np.int64).ravel()
        if kmers.shape != slots.shape:
            raise ValueError("kmers and slots must have the same length")
        locals_ = [HashStats() for _ in range(n_threads)]

        def run(t: int) -> None:
            self.insert_ops_threadsafe(kmers[t::n_threads],
                                       slots[t::n_threads], locals_[t])

        threads = [threading.Thread(target=run, args=(t,))
                   for t in range(n_threads)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        self._sync_mirror()
        self._merge_thread_stats(locals_)
        return locals_

    def to_graph(self) -> DeBruijnGraph:
        """Disjoint merge of the shard subgraphs (one vertex, one shard)."""
        return merge_disjoint([sh.to_graph() for sh in self.shards])


class ShardedTwoWordHashTable(_ShardedTable):
    """Sharded layout over two-word inner tables (``31 < k <= 63``)."""

    _inner_cls = TwoWordHashTable

    def __init__(self, capacity: int, k: int, n_shards: int = 8,
                 protocol: str = "locked") -> None:
        check_n_shards(n_shards)
        per = shard_capacity(capacity, n_shards)
        shards = [
            TwoWordHashTable(per, k, protocol=protocol)
            for _ in range(n_shards)
        ]
        self._init_shards(shards, k, protocol)

    @classmethod
    def from_views(cls, k: int, state: np.ndarray, keys_hi: np.ndarray,
                   keys_lo: np.ndarray, counts: np.ndarray, n_shards: int,
                   n_occupied: int | None = None,
                   protocol: str = "locked") -> "ShardedTwoWordHashTable":
        """Slice externally owned planes into per-shard views (no copy)."""
        check_n_shards(n_shards)
        capacity = int(state.size)
        if capacity % n_shards:
            raise ValueError(
                f"capacity {capacity} not divisible by n_shards {n_shards}"
            )
        per = capacity // n_shards
        shards = []
        for s in range(n_shards):
            sl = slice(s * per, (s + 1) * per)
            shards.append(TwoWordHashTable.from_views(
                k, state[sl], keys_hi[sl], keys_lo[sl], counts[sl],
                n_occupied=None, protocol=protocol))
        table = cls.__new__(cls)
        table._init_shards(shards, k, protocol)
        if n_occupied is not None:
            table.n_occupied = int(n_occupied)  # validates against planes
        return table

    # -- routing --------------------------------------------------------------

    def _home_shard(self, kmer: int) -> int:
        if self._shard_bits == 0:
            return 0
        hi, lo = split_int(int(kmer), self.k)
        return hash_planes_int(hi, lo) >> (64 - self._shard_bits)

    def _home_shards(self, hi: np.ndarray, lo: np.ndarray) -> np.ndarray:
        if self._shard_bits == 0:
            return np.zeros(hi.size, dtype=np.int64)
        shift = np.uint64(64 - self._shard_bits)
        return (hash_planes(hi, lo) >> shift).astype(np.int64)

    # -- vectorized batch path -------------------------------------------------

    def insert_batch(self, hi: np.ndarray, lo: np.ndarray, slots: np.ndarray,
                     counts: np.ndarray | None = None,
                     chunk: int = 1 << 20,
                     on_full: str = "raise") -> np.ndarray | None:
        """Shard-route ``(hi, lo, slot)`` observations with fallback rounds."""
        if on_full not in ("raise", "return"):
            raise ValueError(
                f"on_full must be 'raise' or 'return', got {on_full!r}"
            )
        hi = np.ascontiguousarray(hi, dtype=np.uint64).ravel()
        lo = np.ascontiguousarray(lo, dtype=np.uint64).ravel()
        slots = np.ascontiguousarray(slots, dtype=np.int64).ravel()
        if not (hi.shape == lo.shape == slots.shape):
            raise ValueError("hi, lo and slots must have the same length")
        if counts is not None:
            counts = np.ascontiguousarray(counts, dtype=np.int64).ravel()
        if hi.size == 0:
            return np.empty(0, dtype=np.int64) if on_full == "return" else None
        target = self._home_shards(hi, lo)
        idx = np.arange(hi.size, dtype=np.int64)
        for _round in range(self.n_shards):
            if idx.size == 0:
                break
            carry = []
            for s in range(self.n_shards):
                sel = idx[target[idx] == s]
                if sel.size == 0:
                    continue
                left = self.shards[s].insert_batch(
                    hi[sel], lo[sel], slots[sel],
                    None if counts is None else counts[sel],
                    chunk=chunk, on_full="return")
                if left is not None and left.size:
                    carry.append(sel[left])
            if not carry:
                idx = idx[:0]
                break
            idx = np.concatenate(carry)
            target[idx] = (target[idx] + 1) % self.n_shards
        if idx.size == 0:
            return np.empty(0, dtype=np.int64) if on_full == "return" else None
        if on_full == "return":
            return np.sort(idx)
        raise TableFullError(
            f"all {self.n_shards} shards exhausted "
            f"({self.n_occupied}/{self.capacity} occupied)"
        )

    def insert_ops_threadsafe(self, hi: np.ndarray, lo: np.ndarray,
                              slots: np.ndarray,
                              local: HashStats | None = None) -> None:
        """Per-op protocol over ``(hi, lo, slot)`` spans, routing vectorized."""
        hi = np.ascontiguousarray(hi, dtype=np.uint64).ravel()
        lo = np.ascontiguousarray(lo, dtype=np.uint64).ravel()
        slots = np.asarray(slots, dtype=np.int64).ravel()
        if not (hi.shape == lo.shape == slots.shape):
            raise ValueError("hi, lo and slots must have the same length")
        shards = self.shards
        homes = self._home_shards(hi, lo).tolist()
        for h, l, slot, home in zip(hi.tolist(), lo.tolist(),
                                    slots.tolist(), homes):
            kmer = join_planes(h, l)
            try:
                shards[home].insert_one_threadsafe(kmer, slot, local)
            except TableFullError:
                self._insert_fallback(kmer, slot, home, local)

    def insert_threaded(self, kmers: list[int], slots: np.ndarray,
                        n_threads: int) -> list[HashStats]:
        """Run the per-op protocol from real threads over int kmers."""
        if n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        slots = np.asarray(slots, dtype=np.int64).ravel()
        if len(kmers) != slots.size:
            raise ValueError("kmers and slots must have the same length")
        locals_ = [HashStats() for _ in range(n_threads)]

        def run(t: int) -> None:
            for i in range(t, len(kmers), n_threads):
                self.insert_one_threadsafe(int(kmers[i]), int(slots[i]),
                                           locals_[t])

        threads = [threading.Thread(target=run, args=(t,))
                   for t in range(n_threads)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        self._sync_mirror()
        self._merge_thread_stats(locals_)
        return locals_

    def to_graph(self) -> BigDeBruijnGraph:
        """Disjoint merge of the shard subgraphs (one vertex, one shard)."""
        return merge_bigk_disjoint(
            [sh.to_graph() for sh in self.shards], k=self.k)
