"""2-bit encoded superkmer partition files.

ParaHash encodes its MSP output with bit values — 2 bits per base —
cutting the partition files "to about 1/4 of the size of the
non-encoded counterpart" (§III-B) and with them the disk IO that
dominates big-genome runs.

File layout (little-endian):

* header: magic ``b"PHSK"``, format version ``u8``, kmer length ``u8``,
  reserved ``u16``, record count ``u64`` (patched on close);
* per record: base count ``u16``, extension byte ``u8`` (bit 0 = has
  left extension, bit 1 = has right, bits 2-3 = left base code, bits
  4-5 = right base code), then ``ceil(n/4)`` bytes of packed bases.

The extension byte carries the paper's "two extra base pairs" in packed
form; semantically the record is the extended superkmer.
"""

from __future__ import annotations

import io
import os
import struct
from pathlib import Path

import numpy as np

from ..dna.encoding import pack_codes
from .records import NO_EXT, SuperkmerBlock

MAGIC = b"PHSK"
FORMAT_VERSION = 1
_HEADER = struct.Struct("<4sBBHQ")
_REC_HEAD = struct.Struct("<HB")


class PartitionFormatError(ValueError):
    """Raised on a malformed partition file."""


def _ext_byte(left_ext: int, right_ext: int) -> int:
    flags = 0
    if left_ext != NO_EXT:
        flags |= 0x01 | ((left_ext & 0x3) << 2)
    if right_ext != NO_EXT:
        flags |= 0x02 | ((right_ext & 0x3) << 4)
    return flags


def _ext_from_byte(flags: int) -> tuple[int, int]:
    left = (flags >> 2) & 0x3 if flags & 0x01 else NO_EXT
    right = (flags >> 4) & 0x3 if flags & 0x02 else NO_EXT
    return left, right


class PartitionWriter:
    """Streams superkmer records into one partition file."""

    def __init__(self, path: str | os.PathLike, k: int) -> None:
        if not 1 <= k <= 255:
            raise ValueError("k must fit in one byte")
        self.path = Path(path)
        self.k = k
        self._count = 0
        self._fh: io.BufferedWriter | None = open(self.path, "wb")
        self._fh.write(_HEADER.pack(MAGIC, FORMAT_VERSION, k, 0, 0))

    def write_record(self, bases: np.ndarray, left_ext: int, right_ext: int) -> None:
        """Append one superkmer (codes + extensions)."""
        if self._fh is None:
            raise ValueError("writer already closed")
        n = len(bases)
        if n < self.k:
            raise ValueError(f"superkmer of {n} bases is shorter than k={self.k}")
        if n > 0xFFFF:
            raise ValueError("superkmer too long for u16 length field")
        self._fh.write(_REC_HEAD.pack(n, _ext_byte(left_ext, right_ext)))
        self._fh.write(pack_codes(bases))
        self._count += 1

    def write_block(self, block: SuperkmerBlock) -> None:
        """Append every record of a block (vectorized encoding)."""
        if self._fh is None:
            raise ValueError("writer already closed")
        if block.k != self.k:
            raise ValueError(f"block k={block.k} does not match writer k={self.k}")
        if block.n_superkmers == 0:
            return
        self._fh.write(encode_block(block))
        self._count += block.n_superkmers

    def close(self) -> int:
        """Patch the record count into the header; returns the count."""
        if self._fh is None:
            return self._count
        self._fh.seek(0)
        self._fh.write(_HEADER.pack(MAGIC, FORMAT_VERSION, self.k, 0, self._count))
        self._fh.close()
        self._fh = None
        return self._count

    def __enter__(self) -> "PartitionWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def encode_block(block: SuperkmerBlock) -> bytes:
    """Encode a whole block's records at once (no per-record loop).

    Produces exactly the bytes the record-at-a-time
    :meth:`PartitionWriter.write_record` path would: little-endian
    ``u16`` length, extension byte, then the bases packed 4-per-byte
    MSB-first (matching :func:`repro.dna.encoding.pack_codes`).  The
    payload bytes of all records are assembled with one scatter per bit
    lane, which is what makes spilling the full superkmer stream to
    disk cheap enough for the process backend.
    """
    lens = block.lengths
    n = lens.size
    if n == 0:
        return b""
    if int(lens.max()) > 0xFFFF:
        raise ValueError("superkmer too long for u16 length field")
    packed = (lens + 3) // 4
    rec_sizes = 3 + packed
    starts = np.concatenate(([0], np.cumsum(rec_sizes)[:-1]))
    out = np.zeros(int(rec_sizes.sum()), dtype=np.uint8)
    out[starts] = (lens & 0xFF).astype(np.uint8)
    out[starts + 1] = ((lens >> 8) & 0xFF).astype(np.uint8)
    left = block.left_ext
    right = block.right_ext
    flags = np.zeros(n, dtype=np.uint8)
    has_l = left != NO_EXT
    has_r = right != NO_EXT
    flags[has_l] |= 0x01 | ((left[has_l].astype(np.uint8) & 0x3) << 2)
    flags[has_r] |= 0x02 | ((right[has_r].astype(np.uint8) & 0x3) << 4)
    out[starts + 2] = flags
    # Payload: for packed byte j of record i, gather bases
    # 4j .. 4j+3 (first base in the most significant bit pair).
    total_packed = int(packed.sum())
    rec_of = np.repeat(np.arange(n, dtype=np.int64), packed)
    within = np.arange(total_packed, dtype=np.int64) - np.repeat(
        np.concatenate(([0], np.cumsum(packed)[:-1])), packed
    )
    base0 = block.offsets[:-1][rec_of] + 4 * within
    bases = block.bases
    vals = np.zeros(total_packed, dtype=np.uint8)
    for lane in range(4):
        valid = (4 * within + lane) < lens[rec_of]
        idx = np.minimum(base0 + lane, max(0, bases.size - 1))
        lane_vals = np.where(valid, bases[idx], 0).astype(np.uint8)
        vals |= lane_vals << (6 - 2 * lane)
    out[starts[rec_of] + 3 + within] = vals
    return out.tobytes()


def read_partition_header(path: str | os.PathLike) -> tuple[int, int]:
    """Return ``(k, record_count)`` from a partition file header."""
    with open(path, "rb") as fh:
        raw = fh.read(_HEADER.size)
    if len(raw) < _HEADER.size:
        raise PartitionFormatError(f"{path}: truncated header")
    magic, version, k, _reserved, count = _HEADER.unpack(raw)
    if magic != MAGIC:
        raise PartitionFormatError(f"{path}: bad magic {magic!r}")
    if version != FORMAT_VERSION:
        raise PartitionFormatError(f"{path}: unsupported version {version}")
    return k, count


def read_partition(path: str | os.PathLike) -> SuperkmerBlock:
    """Load a partition file back into a :class:`SuperkmerBlock`.

    The record scan is the only sequential part (each record's length
    determines the next record's position); headers, extensions and
    base unpacking are decoded with vectorized gathers over the whole
    payload.
    """
    with open(path, "rb") as fh:
        data = fh.read()
    if len(data) < _HEADER.size:
        raise PartitionFormatError(f"{path}: truncated header")
    magic, version, k, _reserved, count = _HEADER.unpack_from(data, 0)
    if magic != MAGIC:
        raise PartitionFormatError(f"{path}: bad magic {magic!r}")
    if version != FORMAT_VERSION:
        raise PartitionFormatError(f"{path}: unsupported version {version}")
    starts = np.empty(count, dtype=np.int64)
    lens = np.empty(count, dtype=np.int64)
    pos = _HEADER.size
    i = 0
    try:
        for i in range(count):
            n = data[pos] | (data[pos + 1] << 8)
            starts[i] = pos
            lens[i] = n
            pos += 3 + ((n + 3) >> 2)
    except IndexError:
        raise PartitionFormatError(f"{path}: truncated at record {i}") from None
    if pos > len(data):
        raise PartitionFormatError(f"{path}: truncated bases at record {count - 1}")
    if pos != len(data):
        raise PartitionFormatError(f"{path}: {len(data) - pos} trailing bytes")
    if count and int(lens.min()) < k:
        short = int(np.argmin(lens))
        raise PartitionFormatError(f"{path}: record {short} shorter than k={k}")
    raw = np.frombuffer(data, dtype=np.uint8)
    flags = raw[starts + 2] if count else np.zeros(0, dtype=np.uint8)
    left_ext = np.where(
        flags & 0x01, (flags >> 2) & 0x3, NO_EXT
    ).astype(np.int8)
    right_ext = np.where(
        flags & 0x02, (flags >> 4) & 0x3, NO_EXT
    ).astype(np.int8)
    offsets = np.concatenate(([0], np.cumsum(lens))).astype(np.int64)
    total = int(offsets[-1])
    rec_of = np.repeat(np.arange(count, dtype=np.int64), lens)
    within = np.arange(total, dtype=np.int64) - np.repeat(offsets[:-1], lens)
    byte_pos = starts[rec_of] + 3 + (within >> 2)
    shift = 6 - 2 * (within & 3)
    bases = ((raw[byte_pos] >> shift) & 0x3).astype(np.uint8)
    return SuperkmerBlock(
        k=k, bases=bases, offsets=offsets,
        left_ext=left_ext, right_ext=right_ext,
    )


def partition_file_size(block: SuperkmerBlock) -> int:
    """Exact on-disk size of a block in this format, in bytes."""
    return _HEADER.size + block.byte_size_encoded()


def write_partition(path: str | os.PathLike, block: SuperkmerBlock) -> int:
    """Write a whole block as one partition file; returns bytes written."""
    with PartitionWriter(path, block.k) as writer:
        writer.write_block(block)
    return os.path.getsize(path)


def concat_partition_files(
    dest: str | os.PathLike, sources: list[Path] | list[str],
    k: int | None = None,
) -> int:
    """Merge partition files record-for-record at the byte level.

    Records are self-delimiting, so merging is a header rewrite plus a
    raw payload copy — no decode/re-encode.  This is how the process
    backend folds per-worker spill files into one canonical partition
    file (all sources share a partition id, hence a minimizer-hash
    class).  Returns the merged record count.
    """
    total = 0
    with open(dest, "wb") as out:
        out.write(_HEADER.pack(MAGIC, FORMAT_VERSION, 0, 0, 0))
        for src in sources:
            src_k, count = read_partition_header(src)
            if k is None:
                k = src_k
            elif src_k != k:
                raise PartitionFormatError(
                    f"{src}: k={src_k} does not match merge k={k}"
                )
            total += count
            with open(src, "rb") as fh:
                fh.seek(_HEADER.size)
                while True:
                    chunk = fh.read(1 << 20)
                    if not chunk:
                        break
                    out.write(chunk)
        out.seek(0)
        if k is None:
            raise PartitionFormatError(
                f"{dest}: merging zero sources needs an explicit k"
            )
        out.write(_HEADER.pack(MAGIC, FORMAT_VERSION, k, 0, total))
    return total
