"""2-bit encoded superkmer partition files.

ParaHash encodes its MSP output with bit values — 2 bits per base —
cutting the partition files "to about 1/4 of the size of the
non-encoded counterpart" (§III-B) and with them the disk IO that
dominates big-genome runs.

File layout (little-endian):

* header: magic ``b"PHSK"``, format version ``u8``, kmer length ``u8``,
  reserved ``u16``, record count ``u64`` (patched on close);
* per record: base count ``u16``, extension byte ``u8`` (bit 0 = has
  left extension, bit 1 = has right, bits 2-3 = left base code, bits
  4-5 = right base code), then ``ceil(n/4)`` bytes of packed bases.

The extension byte carries the paper's "two extra base pairs" in packed
form; semantically the record is the extended superkmer.
"""

from __future__ import annotations

import io
import os
import struct
from pathlib import Path

import numpy as np

from ..dna.encoding import pack_codes, packed_size, unpack_codes
from .records import NO_EXT, SuperkmerBlock, SuperkmerRecord, block_from_records

MAGIC = b"PHSK"
FORMAT_VERSION = 1
_HEADER = struct.Struct("<4sBBHQ")
_REC_HEAD = struct.Struct("<HB")


class PartitionFormatError(ValueError):
    """Raised on a malformed partition file."""


def _ext_byte(left_ext: int, right_ext: int) -> int:
    flags = 0
    if left_ext != NO_EXT:
        flags |= 0x01 | ((left_ext & 0x3) << 2)
    if right_ext != NO_EXT:
        flags |= 0x02 | ((right_ext & 0x3) << 4)
    return flags


def _ext_from_byte(flags: int) -> tuple[int, int]:
    left = (flags >> 2) & 0x3 if flags & 0x01 else NO_EXT
    right = (flags >> 4) & 0x3 if flags & 0x02 else NO_EXT
    return left, right


class PartitionWriter:
    """Streams superkmer records into one partition file."""

    def __init__(self, path: str | os.PathLike, k: int) -> None:
        if not 1 <= k <= 255:
            raise ValueError("k must fit in one byte")
        self.path = Path(path)
        self.k = k
        self._count = 0
        self._fh: io.BufferedWriter | None = open(self.path, "wb")
        self._fh.write(_HEADER.pack(MAGIC, FORMAT_VERSION, k, 0, 0))

    def write_record(self, bases: np.ndarray, left_ext: int, right_ext: int) -> None:
        """Append one superkmer (codes + extensions)."""
        if self._fh is None:
            raise ValueError("writer already closed")
        n = len(bases)
        if n < self.k:
            raise ValueError(f"superkmer of {n} bases is shorter than k={self.k}")
        if n > 0xFFFF:
            raise ValueError("superkmer too long for u16 length field")
        self._fh.write(_REC_HEAD.pack(n, _ext_byte(left_ext, right_ext)))
        self._fh.write(pack_codes(bases))
        self._count += 1

    def write_block(self, block: SuperkmerBlock) -> None:
        """Append every record of a block."""
        if block.k != self.k:
            raise ValueError(f"block k={block.k} does not match writer k={self.k}")
        for i in range(block.n_superkmers):
            lo, hi = int(block.offsets[i]), int(block.offsets[i + 1])
            self.write_record(
                block.bases[lo:hi], int(block.left_ext[i]), int(block.right_ext[i])
            )

    def close(self) -> int:
        """Patch the record count into the header; returns the count."""
        if self._fh is None:
            return self._count
        self._fh.seek(0)
        self._fh.write(_HEADER.pack(MAGIC, FORMAT_VERSION, self.k, 0, self._count))
        self._fh.close()
        self._fh = None
        return self._count

    def __enter__(self) -> "PartitionWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_partition_header(path: str | os.PathLike) -> tuple[int, int]:
    """Return ``(k, record_count)`` from a partition file header."""
    with open(path, "rb") as fh:
        raw = fh.read(_HEADER.size)
    if len(raw) < _HEADER.size:
        raise PartitionFormatError(f"{path}: truncated header")
    magic, version, k, _reserved, count = _HEADER.unpack(raw)
    if magic != MAGIC:
        raise PartitionFormatError(f"{path}: bad magic {magic!r}")
    if version != FORMAT_VERSION:
        raise PartitionFormatError(f"{path}: unsupported version {version}")
    return k, count


def read_partition(path: str | os.PathLike) -> SuperkmerBlock:
    """Load a partition file back into a :class:`SuperkmerBlock`."""
    with open(path, "rb") as fh:
        data = fh.read()
    if len(data) < _HEADER.size:
        raise PartitionFormatError(f"{path}: truncated header")
    magic, version, k, _reserved, count = _HEADER.unpack_from(data, 0)
    if magic != MAGIC:
        raise PartitionFormatError(f"{path}: bad magic {magic!r}")
    if version != FORMAT_VERSION:
        raise PartitionFormatError(f"{path}: unsupported version {version}")
    records: list[SuperkmerRecord] = []
    pos = _HEADER.size
    for i in range(count):
        if pos + _REC_HEAD.size > len(data):
            raise PartitionFormatError(f"{path}: truncated at record {i}")
        n, flags = _REC_HEAD.unpack_from(data, pos)
        pos += _REC_HEAD.size
        nbytes = packed_size(n)
        if pos + nbytes > len(data):
            raise PartitionFormatError(f"{path}: truncated bases at record {i}")
        bases = unpack_codes(data[pos : pos + nbytes], n)
        pos += nbytes
        left, right = _ext_from_byte(flags)
        if n < k:
            raise PartitionFormatError(f"{path}: record {i} shorter than k={k}")
        records.append(SuperkmerRecord(bases=bases, left_ext=left, right_ext=right))
    if pos != len(data):
        raise PartitionFormatError(f"{path}: {len(data) - pos} trailing bytes")
    return block_from_records(k, records)


def partition_file_size(block: SuperkmerBlock) -> int:
    """Exact on-disk size of a block in this format, in bytes."""
    return _HEADER.size + block.byte_size_encoded()


def write_partition(path: str | os.PathLike, block: SuperkmerBlock) -> int:
    """Write a whole block as one partition file; returns bytes written."""
    with PartitionWriter(path, block.k) as writer:
        writer.write_block(block)
    return os.path.getsize(path)
