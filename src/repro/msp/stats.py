"""Partition statistics: the quantities behind Fig 6 and Table II.

The minimizer length P controls how fragmented superkmers are and how
evenly kmers spread over partitions; the number of partitions controls
the per-partition hash-table size.  These statistics quantify both.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dna.reads import ReadBatch
from .partitioner import MspResult, partition_reads


@dataclass(frozen=True)
class PartitionDistribution:
    """Distribution of superkmers/kmers over the partitions of one run."""

    p: int
    n_partitions: int
    superkmers: np.ndarray  # per-partition superkmer counts
    kmers: np.ndarray  # per-partition kmer counts
    total_superkmers: int
    total_kmers: int
    mean_superkmer_length: float

    @property
    def kmer_variance(self) -> float:
        """Variance of the per-partition kmer counts (balance metric)."""
        return float(np.var(self.kmers))

    @property
    def kmer_cv(self) -> float:
        """Coefficient of variation of per-partition kmer counts."""
        mean = float(np.mean(self.kmers))
        return float(np.std(self.kmers) / mean) if mean else 0.0

    @property
    def max_kmers(self) -> int:
        return int(self.kmers.max()) if self.kmers.size else 0


def distribution_of(result: MspResult) -> PartitionDistribution:
    """Summarize an MSP result's partition distribution."""
    sk_counts = result.superkmers_per_partition()
    kmer_counts = result.kmers_per_partition()
    total_sk = int(sk_counts.sum())
    total_bases = sum(b.total_bases() for b in result.blocks)
    return PartitionDistribution(
        p=result.p,
        n_partitions=result.n_partitions,
        superkmers=sk_counts,
        kmers=kmer_counts,
        total_superkmers=total_sk,
        total_kmers=int(kmer_counts.sum()),
        mean_superkmer_length=(total_bases / total_sk) if total_sk else 0.0,
    )


def sweep_minimizer_length(
    reads: ReadBatch, k: int, p_values: list[int], n_partitions: int
) -> list[PartitionDistribution]:
    """Fig 6 sweep: distribution vs minimizer length P at fixed NP."""
    return [
        distribution_of(partition_reads(reads, k, p, n_partitions))
        for p in p_values
    ]


def sweep_n_partitions(
    reads: ReadBatch, k: int, p: int, np_values: list[int]
) -> list[PartitionDistribution]:
    """Table II sweep: distribution vs number of partitions at fixed P."""
    return [
        distribution_of(partition_reads(reads, k, p, n))
        for n in np_values
    ]
