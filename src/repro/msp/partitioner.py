"""The MSP graph-partitioning step (ParaHash Step 1).

Each read is decomposed into superkmers; every superkmer is routed to
partition ``hash(minimizer) % n_partitions`` together with its two
adjacency extension bases.  Identical kmers share their minimizer, so
all duplicates of a vertex land in the same partition — the partitions
are vertex-disjoint subgraph descriptions (§III-B).

The in-memory kernel is fully vectorized (no per-read Python loop); the
disk-backed driver accumulates partition files over input pieces the
way the paper's Step 1 accumulates superkmer partitions as the input is
processed.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from ..concurrentsub.hashfunc import partition_ids
from ..dna.minimizer import SuperkmerSet, superkmers_for_reads
from ..dna.reads import ReadBatch
from .binio import PartitionWriter, read_partition
from .records import NO_EXT, SuperkmerBlock


@dataclass(frozen=True)
class MspResult:
    """Output of the in-memory MSP kernel.

    Attributes
    ----------
    blocks:
        One :class:`SuperkmerBlock` per partition (possibly empty).
    superkmers:
        The raw superkmer decomposition (for statistics).
    k, p, n_partitions:
        The parameters the run used.
    """

    blocks: list[SuperkmerBlock]
    superkmers: SuperkmerSet
    k: int
    p: int
    n_partitions: int

    def total_kmers(self) -> int:
        return sum(b.total_kmers() for b in self.blocks)

    def kmers_per_partition(self) -> np.ndarray:
        return np.array([b.total_kmers() for b in self.blocks], dtype=np.int64)

    def superkmers_per_partition(self) -> np.ndarray:
        return np.array([b.n_superkmers for b in self.blocks], dtype=np.int64)


def _check_params(k: int, p: int, n_partitions: int, read_length: int) -> None:
    if not 1 <= p <= k:
        raise ValueError(f"need 1 <= p <= k, got p={p}, k={k}")
    if k > read_length:
        raise ValueError(f"k={k} exceeds read length {read_length}")
    if n_partitions < 1:
        raise ValueError("n_partitions must be >= 1")


def partition_reads(
    reads: ReadBatch, k: int, p: int, n_partitions: int
) -> MspResult:
    """Partition a read batch into superkmer blocks (vectorized).

    This is the computational core the paper offloads to the GPU in
    Step 1 (computing superkmer ids and offsets) followed by the
    irregular gather the paper leaves on the CPU.
    """
    _check_params(k, p, n_partitions, reads.read_length)
    codes = reads.codes
    length = reads.read_length
    sk = superkmers_for_reads(codes, k, p)
    pids = partition_ids(sk.minimizer, n_partitions)

    base_lengths = (sk.n_kmers.astype(np.int64) + (k - 1))
    start = sk.start.astype(np.int64)
    read_idx = sk.read_idx

    # Adjacency extensions: the read base just before / after the span.
    left_ext = np.where(
        start > 0,
        codes[read_idx, np.maximum(start - 1, 0)].astype(np.int8),
        np.int8(NO_EXT),
    )
    end = start + base_lengths  # one past the last base
    right_ext = np.where(
        end < length,
        codes[read_idx, np.minimum(end, length - 1)].astype(np.int8),
        np.int8(NO_EXT),
    )

    # Group superkmers by partition id (stable keeps read order within
    # a partition, matching the sequential writer).
    order = np.argsort(pids, kind="stable")
    bounds = np.searchsorted(pids[order], np.arange(n_partitions + 1))

    flat_codes = codes.ravel()
    base_start_flat = read_idx * length + start

    blocks: list[SuperkmerBlock] = []
    for part in range(n_partitions):
        sel = order[bounds[part] : bounds[part + 1]]
        lens = base_lengths[sel]
        total = int(lens.sum())
        offsets = np.concatenate(([0], np.cumsum(lens))).astype(np.int64)
        if total:
            gather = np.repeat(base_start_flat[sel], lens) + (
                np.arange(total, dtype=np.int64) - np.repeat(offsets[:-1], lens)
            )
            bases = flat_codes[gather]
        else:
            bases = np.zeros(0, dtype=np.uint8)
        blocks.append(
            SuperkmerBlock(
                k=k,
                bases=bases,
                offsets=offsets,
                left_ext=left_ext[sel],
                right_ext=right_ext[sel],
            )
        )
    return MspResult(blocks=blocks, superkmers=sk, k=k, p=p, n_partitions=n_partitions)


@dataclass(frozen=True)
class MspRunReport:
    """Disk-backed MSP run summary."""

    paths: list[Path]
    n_superkmers: int
    n_kmers: int
    bytes_written: int
    k: int
    p: int
    n_partitions: int


def partition_to_files(
    reads: ReadBatch,
    k: int,
    p: int,
    n_partitions: int,
    out_dir: str | os.PathLike,
    n_input_pieces: int = 1,
) -> MspRunReport:
    """Full Step 1: split input, partition each piece, stream to disk.

    The input batch is split into ``n_input_pieces`` equal pieces (the
    paper partitions the input file to equal size); each piece's
    superkmers are appended to the ``n_partitions`` open partition
    files, so partitions accumulate as the input is consumed.
    """
    _check_params(k, p, n_partitions, reads.read_length)
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    paths = [out / f"partition_{i:04d}.phsk" for i in range(n_partitions)]
    writers = [PartitionWriter(path, k) for path in paths]
    n_superkmers = 0
    n_kmers = 0
    try:
        for piece in reads.split(n_input_pieces):
            result = partition_reads(piece, k, p, n_partitions)
            for writer, block in zip(writers, result.blocks):
                writer.write_block(block)
            n_superkmers += len(result.superkmers)
            n_kmers += result.total_kmers()
    finally:
        for writer in writers:
            writer.close()
    bytes_written = sum(os.path.getsize(path) for path in paths)
    return MspRunReport(
        paths=paths,
        n_superkmers=n_superkmers,
        n_kmers=n_kmers,
        bytes_written=bytes_written,
        k=k,
        p=p,
        n_partitions=n_partitions,
    )


def load_partitions(paths: list[Path] | list[str]) -> list[SuperkmerBlock]:
    """Read partition files back into blocks (Step 2's input stage)."""
    return [read_partition(path) for path in paths]


# -- per-worker spill files (process backend) ------------------------------------


def spill_path(spill_dir: Path, worker_id: int, partition: int) -> Path:
    """Naming convention for one worker's spill file of one partition."""
    return Path(spill_dir) / f"spill_w{worker_id:03d}_p{partition:04d}.phsk"


class SpillWriterSet:
    """One worker's spill files — a private partition-file set.

    Step 1's process fan-out gives every worker its *own* output files
    (no cross-process file locking): the worker appends each processed
    read chunk's superkmer blocks here, and the parent later merges all
    workers' spills partition by partition.  Files are created lazily,
    so partitions a worker never touched leave no file behind.
    """

    def __init__(self, spill_dir: str | os.PathLike, worker_id: int, k: int,
                 n_partitions: int) -> None:
        self.spill_dir = Path(spill_dir)
        self.worker_id = worker_id
        self.k = k
        self.n_partitions = n_partitions
        self._writers: dict[int, PartitionWriter] = {}

    def write_result(self, result: MspResult) -> None:
        """Append one chunk's blocks to this worker's spill files."""
        for partition, block in enumerate(result.blocks):
            if not block.n_superkmers:
                continue
            writer = self._writers.get(partition)
            if writer is None:
                writer = PartitionWriter(
                    spill_path(self.spill_dir, self.worker_id, partition),
                    self.k,
                )
                self._writers[partition] = writer
            writer.write_block(block)

    def close(self) -> dict[int, Path]:
        """Close all files; returns ``{partition: path}`` actually written."""
        paths = {}
        for partition, writer in sorted(self._writers.items()):
            writer.close()
            paths[partition] = writer.path
        self._writers = {}
        return paths


def spill_groups(
    spill_paths: list[dict[int, Path]] | list[dict[int, str]],
    n_partitions: int,
) -> list[list[Path]]:
    """Group per-worker spill files by partition id.

    ``spill_paths[w]`` maps partition id to worker ``w``'s spill file.
    Because MSP routes every duplicate of a kmer to one partition id
    (the minimizer-hash class), grouping by that id *is* the merge key:
    ``groups[p]`` lists every worker's contribution to partition ``p``.
    """
    groups: list[list[Path]] = [[] for _ in range(n_partitions)]
    for per_worker in spill_paths:
        for partition, path in per_worker.items():
            groups[int(partition)].append(Path(path))
    return groups


def load_partition_group(paths: list[Path], k: int) -> SuperkmerBlock:
    """Concatenate one partition's spill files into a single block."""
    from .records import block_from_records, concat_blocks

    if not paths:
        return block_from_records(k, [])
    blocks = [read_partition(path) for path in paths]
    return blocks[0] if len(blocks) == 1 else concat_blocks(blocks)


def merge_spill_files(
    groups: list[list[Path]], out_dir: str | os.PathLike, k: int
) -> list[Path]:
    """Fold spill groups into canonical ``partition_%04d.phsk`` files.

    Byte-level concatenation (see
    :func:`repro.msp.binio.concat_partition_files`) — used when the
    caller asked for a persistent ``workdir``, so the on-disk layout
    matches a serial :func:`partition_to_files` run file-for-file.
    """
    from .binio import concat_partition_files

    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    merged: list[Path] = []
    for partition, sources in enumerate(groups):
        dest = out / f"partition_{partition:04d}.phsk"
        concat_partition_files(dest, sources, k=k)
        merged.append(dest)
    return merged
