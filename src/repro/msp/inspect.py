"""Inspection of superkmer partition directories.

Operational tooling for the on-disk intermediate state: summarize a
directory of ``.phsk`` partition files (the Step 1 output / Step 2
input) without loading the superkmers — only headers and sizes — plus a
deep scan that loads each partition for exact kmer counts.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from .binio import read_partition, read_partition_header


@dataclass(frozen=True)
class PartitionFileInfo:
    """Cheap (header-only) facts about one partition file."""

    path: Path
    k: int
    n_superkmers: int
    file_bytes: int


@dataclass(frozen=True)
class PartitionDirSummary:
    """Aggregate view of a partition directory."""

    files: list[PartitionFileInfo]
    k: int
    total_superkmers: int
    total_bytes: int

    @property
    def n_partitions(self) -> int:
        return len(self.files)

    def superkmer_counts(self) -> np.ndarray:
        return np.array([f.n_superkmers for f in self.files], dtype=np.int64)

    def balance_cv(self) -> float:
        """Coefficient of variation of per-partition superkmer counts."""
        counts = self.superkmer_counts()
        mean = counts.mean() if counts.size else 0.0
        return float(counts.std() / mean) if mean else 0.0


def list_partition_files(directory: str | os.PathLike) -> list[Path]:
    """The ``.phsk`` files of a directory, sorted by name."""
    return sorted(Path(directory).glob("*.phsk"))


def inspect_partition_dir(directory: str | os.PathLike) -> PartitionDirSummary:
    """Header-only summary of every partition file in a directory."""
    paths = list_partition_files(directory)
    if not paths:
        raise FileNotFoundError(f"no .phsk partition files in {directory}")
    files = []
    ks = set()
    for path in paths:
        k, count = read_partition_header(path)
        ks.add(k)
        files.append(PartitionFileInfo(
            path=path, k=k, n_superkmers=count,
            file_bytes=path.stat().st_size,
        ))
    if len(ks) != 1:
        raise ValueError(f"{directory}: mixed k values {sorted(ks)}")
    return PartitionDirSummary(
        files=files,
        k=ks.pop(),
        total_superkmers=sum(f.n_superkmers for f in files),
        total_bytes=sum(f.file_bytes for f in files),
    )


def deep_scan_partition(path: str | os.PathLike) -> dict:
    """Load one partition and report exact contents."""
    block = read_partition(path)
    lengths = block.lengths
    return {
        "path": str(path),
        "k": block.k,
        "n_superkmers": block.n_superkmers,
        "n_kmers": block.total_kmers(),
        "total_bases": block.total_bases(),
        "mean_superkmer_length": float(lengths.mean()) if lengths.size else 0.0,
        "max_superkmer_length": int(lengths.max()) if lengths.size else 0,
        "n_with_left_ext": int((block.left_ext >= 0).sum()),
        "n_with_right_ext": int((block.right_ext >= 0).sum()),
    }
