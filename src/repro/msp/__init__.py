"""Step 1: Minimum Substring Partitioning with adjacency extensions."""

from .binio import (
    FORMAT_VERSION,
    MAGIC,
    PartitionFormatError,
    PartitionWriter,
    partition_file_size,
    read_partition,
    read_partition_header,
    write_partition,
)
from .inspect import (
    PartitionDirSummary,
    PartitionFileInfo,
    deep_scan_partition,
    inspect_partition_dir,
    list_partition_files,
)
from .partitioner import (
    MspResult,
    MspRunReport,
    load_partitions,
    partition_reads,
    partition_to_files,
)
from .records import (
    NO_EXT,
    SuperkmerBlock,
    SuperkmerRecord,
    block_from_records,
    concat_blocks,
    empty_block,
)
from .stats import (
    PartitionDistribution,
    distribution_of,
    sweep_minimizer_length,
    sweep_n_partitions,
)

__all__ = [
    "FORMAT_VERSION",
    "MAGIC",
    "MspResult",
    "MspRunReport",
    "NO_EXT",
    "PartitionDirSummary",
    "PartitionDistribution",
    "PartitionFileInfo",
    "deep_scan_partition",
    "inspect_partition_dir",
    "list_partition_files",
    "PartitionFormatError",
    "PartitionWriter",
    "SuperkmerBlock",
    "SuperkmerRecord",
    "block_from_records",
    "concat_blocks",
    "distribution_of",
    "empty_block",
    "load_partitions",
    "partition_file_size",
    "partition_reads",
    "partition_to_files",
    "read_partition",
    "read_partition_header",
    "sweep_minimizer_length",
    "sweep_n_partitions",
    "write_partition",
]
