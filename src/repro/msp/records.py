"""Superkmer records and partition blocks.

A superkmer partition holds superkmers plus **two extra base pairs** of
adjacency context (§III-B): the read base immediately before and
immediately after the superkmer, when they exist.  The original MSP
algorithm lost this adjacency information, so the final graph could not
be constructed from its partitions; carrying the extensions is
ParaHash's fix.

In memory a partition is a :class:`SuperkmerBlock` — a structure of
arrays (flat base codes + offsets + extension bases) so that kmer and
edge generation over a whole partition is vectorizable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dna.alphabet import decode
from ..dna.kmer import kmer_mask

#: Extension sentinel: the superkmer touches the read boundary.
NO_EXT = -1


@dataclass(frozen=True)
class SuperkmerRecord:
    """One superkmer with its adjacency extensions (row form, for tests)."""

    bases: np.ndarray  # uint8 codes, length >= k
    left_ext: int  # base code before the superkmer, or NO_EXT
    right_ext: int  # base code after the superkmer, or NO_EXT

    def n_kmers(self, k: int) -> int:
        return len(self.bases) - k + 1

    def to_str(self) -> str:
        return decode(self.bases)


class SuperkmerBlock:
    """A partition's superkmers as a structure of arrays.

    Attributes
    ----------
    k:
        Kmer length.
    bases:
        Flat uint8 array: all superkmer base codes, concatenated.
    offsets:
        int64 array of length ``n + 1``; superkmer ``i`` occupies
        ``bases[offsets[i] : offsets[i + 1]]``.
    left_ext / right_ext:
        int8 arrays of length ``n``: extension base codes or
        :data:`NO_EXT`.
    """

    def __init__(
        self,
        k: int,
        bases: np.ndarray,
        offsets: np.ndarray,
        left_ext: np.ndarray,
        right_ext: np.ndarray,
    ) -> None:
        self.k = int(k)
        self.bases = np.asarray(bases, dtype=np.uint8)
        self.offsets = np.asarray(offsets, dtype=np.int64)
        self.left_ext = np.asarray(left_ext, dtype=np.int8)
        self.right_ext = np.asarray(right_ext, dtype=np.int8)
        self._validate()

    def _validate(self) -> None:
        if self.offsets.size == 0 or self.offsets[0] != 0:
            raise ValueError("offsets must start at 0")
        if int(self.offsets[-1]) != self.bases.size:
            raise ValueError("offsets must end at len(bases)")
        lengths = np.diff(self.offsets)
        if lengths.size and int(lengths.min()) < self.k:
            raise ValueError(f"every superkmer must have >= k={self.k} bases")
        n = lengths.size
        if self.left_ext.shape != (n,) or self.right_ext.shape != (n,):
            raise ValueError("extension arrays must have one entry per superkmer")

    # -- sizes ---------------------------------------------------------------

    @property
    def n_superkmers(self) -> int:
        return int(self.offsets.size - 1)

    @property
    def lengths(self) -> np.ndarray:
        """Base length of each superkmer."""
        return np.diff(self.offsets)

    @property
    def kmers_per_superkmer(self) -> np.ndarray:
        return self.lengths - (self.k - 1)

    def total_kmers(self) -> int:
        return int(self.kmers_per_superkmer.sum())

    def total_bases(self) -> int:
        return int(self.bases.size)

    def __len__(self) -> int:
        return self.n_superkmers

    # -- access ----------------------------------------------------------------

    def record(self, i: int) -> SuperkmerRecord:
        """Row form of superkmer ``i``."""
        lo, hi = int(self.offsets[i]), int(self.offsets[i + 1])
        return SuperkmerRecord(
            bases=self.bases[lo:hi].copy(),
            left_ext=int(self.left_ext[i]),
            right_ext=int(self.right_ext[i]),
        )

    def iter_records(self):
        for i in range(self.n_superkmers):
            yield self.record(i)

    # -- kmer generation --------------------------------------------------------

    def flat_kmers(self) -> tuple[np.ndarray, np.ndarray]:
        """All kmers of the block with their flat base positions.

        Returns ``(kmers, positions)`` where ``kmers[i]`` is the packed
        uint64 kmer starting at ``bases[positions[i]]``.  Kmers never
        span superkmer boundaries.  Vectorized as a k-tap shifted-add
        over the flat base array (no per-superkmer Python loop).
        """
        k = self.k
        if self.n_superkmers == 0:
            empty = np.zeros(0, dtype=np.uint64)
            return empty, np.zeros(0, dtype=np.int64)
        per_sk = self.kmers_per_superkmer
        total = int(per_sk.sum())
        # positions of every valid kmer start, grouped by superkmer
        starts = np.repeat(self.offsets[:-1], per_sk)
        ramp = np.arange(total, dtype=np.int64) - np.repeat(
            np.concatenate(([0], np.cumsum(per_sk)[:-1])), per_sk
        )
        positions = starts + ramp
        # k-tap evaluation over the flat array: kmer[i] = sum b[i+j] << 2(k-1-j)
        t = self.bases.size
        flat = self.bases.astype(np.uint64)
        values = np.zeros(t - k + 1, dtype=np.uint64)
        for j in range(k):
            shift = np.uint64(2 * (k - 1 - j))
            values |= flat[j : t - k + 1 + j] << shift
        return values[positions], positions

    def packed_mask(self) -> int:
        return kmer_mask(self.k)

    def byte_size_encoded(self) -> int:
        """Bytes this block occupies in the 2-bit partition file format.

        Per record: 2-byte length + 1-byte extension flags + packed
        bases (4 per byte).  Used for the encoding-ablation benchmark.
        """
        lengths = self.lengths
        return int((3 + (lengths + 3) // 4).sum())

    def byte_size_text(self) -> int:
        """Bytes of the equivalent plain-text representation (1 byte per
        base, extensions as 2 extra characters, newline terminator)."""
        lengths = self.lengths
        return int((lengths + 3).sum())


def block_from_records(k: int, records: list[SuperkmerRecord]) -> SuperkmerBlock:
    """Assemble a block from row-form records (test helper)."""
    if records:
        bases = np.concatenate([r.bases for r in records])
        offsets = np.concatenate(
            ([0], np.cumsum([len(r.bases) for r in records]))
        ).astype(np.int64)
        left = np.array([r.left_ext for r in records], dtype=np.int8)
        right = np.array([r.right_ext for r in records], dtype=np.int8)
    else:
        bases = np.zeros(0, dtype=np.uint8)
        offsets = np.zeros(1, dtype=np.int64)
        left = np.zeros(0, dtype=np.int8)
        right = np.zeros(0, dtype=np.int8)
    return SuperkmerBlock(k=k, bases=bases, offsets=offsets, left_ext=left, right_ext=right)


def empty_block(k: int) -> SuperkmerBlock:
    return block_from_records(k, [])


def concat_blocks(blocks: list[SuperkmerBlock]) -> SuperkmerBlock:
    """Concatenate blocks of the same k (accumulating a partition across
    input pieces, as Step 1 does over the whole input)."""
    blocks = [b for b in blocks if b.n_superkmers]
    if not blocks:
        raise ValueError("need at least one non-empty block (or use empty_block)")
    k = blocks[0].k
    if any(b.k != k for b in blocks):
        raise ValueError("all blocks must share k")
    bases = np.concatenate([b.bases for b in blocks])
    sizes = [b.offsets[-1] for b in blocks]
    shifts = np.concatenate(([0], np.cumsum(sizes)[:-1]))
    offsets = np.concatenate(
        [np.asarray([0], dtype=np.int64)]
        + [b.offsets[1:] + shift for b, shift in zip(blocks, shifts)]
    )
    return SuperkmerBlock(
        k=k,
        bases=bases,
        offsets=offsets,
        left_ext=np.concatenate([b.left_ext for b in blocks]),
        right_ext=np.concatenate([b.right_ext for b in blocks]),
    )
