"""Baselines: SOAP-style, plain sort-merge and bcalm2-style construction."""

from .bcalm import (
    BcalmResult,
    BcalmWork,
    build_bcalm,
    simulate_bcalm,
)
from .soap import (
    SoapResult,
    SoapTiming,
    SoapWork,
    build_soap,
    simulate_soap_hashing,
    soap_memory_required,
)
from .sortmerge import (
    SortMergeResult,
    SortMergeWork,
    build_sortmerge,
    simulate_sortmerge,
)

__all__ = [
    "BcalmResult",
    "BcalmWork",
    "SoapResult",
    "SoapTiming",
    "SoapWork",
    "SortMergeResult",
    "SortMergeWork",
    "build_bcalm",
    "build_soap",
    "build_sortmerge",
    "simulate_bcalm",
    "simulate_soap_hashing",
    "simulate_sortmerge",
    "soap_memory_required",
]
