"""Plain sort-merge De Bruijn graph construction (§II-B's second method).

Kmers and their adjacencies are generated as ``<vertex, edge>`` pairs,
sorted by vertex, and duplicates merged — the strategy GPU assemblers
adopted because no concurrent hashing solution existed (§II-C).  The
multi-pass variant partitions the pair stream first so each run fits a
memory budget, then merges, paying the inter-partition communication
cost the paper criticizes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dna.reads import ReadBatch
from ..graph.build import edge_observations
from ..graph.dbg import DeBruijnGraph, graph_from_pairs
from ..graph.merge import merge_adding
from ..hetsim.device import CpuDevice


@dataclass(frozen=True)
class SortMergeWork:
    """Metered work of a sort-merge run."""

    n_observations: int
    n_passes: int  # partition passes over the pair stream
    comparisons: float  # ~ n log2 n per sorted run
    staging_bytes: int

    @property
    def peak_memory_bytes(self) -> int:
        return self.staging_bytes


@dataclass
class SortMergeResult:
    graph: DeBruijnGraph
    work: SortMergeWork


def build_sortmerge(
    reads: ReadBatch, k: int, memory_budget_pairs: int | None = None
) -> SortMergeResult:
    """Sort-merge construction, optionally in memory-bounded runs.

    ``memory_budget_pairs`` caps how many pairs one sorted run may hold;
    runs are merged pairwise at the end (counts add, so the result is
    exact).
    """
    vertex_ids, slots = edge_observations(reads.codes, k)
    n_obs = int(vertex_ids.size)
    if memory_budget_pairs is None or n_obs <= memory_budget_pairs:
        graph = graph_from_pairs(k, vertex_ids, slots)
        work = SortMergeWork(
            n_observations=n_obs,
            n_passes=1,
            comparisons=n_obs * max(1.0, np.log2(max(2, n_obs))),
            staging_bytes=n_obs * 9,
        )
        return SortMergeResult(graph=graph, work=work)
    if memory_budget_pairs < 1:
        raise ValueError("memory_budget_pairs must be >= 1")
    runs = []
    comparisons = 0.0
    for lo in range(0, n_obs, memory_budget_pairs):
        hi = min(lo + memory_budget_pairs, n_obs)
        runs.append(graph_from_pairs(k, vertex_ids[lo:hi], slots[lo:hi]))
        run_n = hi - lo
        comparisons += run_n * max(1.0, np.log2(max(2, run_n)))
    graph = merge_adding(runs)
    work = SortMergeWork(
        n_observations=n_obs,
        n_passes=len(runs),
        comparisons=comparisons,
        staging_bytes=memory_budget_pairs * 9,
    )
    return SortMergeResult(graph=graph, work=work)


#: Cost of one sort comparison relative to one hash operation.
COMPARISON_COST_RATIO = 0.35
#: Cost of streaming one pair during merge, relative to a hash op.
MERGE_COST_RATIO = 0.2


def simulate_sortmerge(work: SortMergeWork, cpu: CpuDevice) -> float:
    """Price a sort-merge run on a simulated CPU (all threads sorting)."""
    eff = max(1.0, cpu.n_threads * cpu.parallel_efficiency)
    rate = cpu.hash_ops_per_sec * eff
    sort_seconds = work.comparisons * COMPARISON_COST_RATIO / rate
    merge_seconds = (
        work.n_observations * work.n_passes * MERGE_COST_RATIO / rate
        if work.n_passes > 1
        else 0.0
    )
    return sort_seconds + merge_seconds
