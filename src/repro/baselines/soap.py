"""SOAPdenovo-style baseline: thread-local hash tables over in-memory kmers.

The paper characterizes SOAP's construction (§II-C): all kmers are
generated in main memory; each of T threads then *reads every kmer*
and inserts into its own local table the kmers that hash to it.  Two
consequences ParaHash attacks:

* **memory**: the whole kmer multiset plus all T tables must fit in
  RAM at once (SOAP cannot run Bumblebee on 64 GB, Table III);
* **read amplification**: every thread scans the full kmer stream, so
  the "Read data" portion of hashing is T times the useful volume
  (Fig 10), and parallelism is capped by the table count.

The implementation is faithful at the algorithmic level — kmers are
hash-partitioned into per-thread tables and each table aggregates its
share — and produces a graph identical to the reference builder.  Work
is metered so the simulated CPU can price it for Table III / Fig 10.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..concurrentsub.hashfunc import mix64
from ..dna.reads import ReadBatch
from ..graph.build import edge_observations
from ..graph.dbg import DeBruijnGraph, graph_from_pairs
from ..graph.merge import merge_disjoint
from ..hetsim.device import ENTRY_BYTES, CpuDevice, locality_factor


@dataclass(frozen=True)
class SoapWork:
    """Metered work of a SOAP-style run."""

    n_threads: int
    n_observations: int  # kmer/edge observations generated in memory
    read_ops_per_thread: int  # every thread scans the full stream
    insert_ops_per_thread: int  # only its hash share is inserted
    table_bytes_total: int
    staging_bytes: int  # the in-memory kmer stream

    @property
    def peak_memory_bytes(self) -> int:
        return self.table_bytes_total + self.staging_bytes


@dataclass
class SoapResult:
    graph: DeBruijnGraph
    work: SoapWork


def build_soap(reads: ReadBatch, k: int, n_threads: int = 20) -> SoapResult:
    """Run the SOAP-style construction and meter it."""
    if n_threads < 1:
        raise ValueError("n_threads must be >= 1")
    vertex_ids, slots = edge_observations(reads.codes, k)
    n_obs = int(vertex_ids.size)

    # Hash-partition observations to the thread-local tables.
    owner = (mix64(vertex_ids) % np.uint64(n_threads)).astype(np.int64)
    tables = []
    distinct_total = 0
    per_thread_share = 0
    for t in range(n_threads):
        sel = owner == t
        per_thread_share = max(per_thread_share, int(sel.sum()))
        sub = graph_from_pairs(k, vertex_ids[sel], slots[sel])
        distinct_total += sub.n_vertices
        tables.append(sub)
    graph = merge_disjoint(tables)

    work = SoapWork(
        n_threads=n_threads,
        n_observations=n_obs,
        read_ops_per_thread=n_obs,
        insert_ops_per_thread=per_thread_share,
        table_bytes_total=distinct_total * ENTRY_BYTES,
        staging_bytes=n_obs * 9,  # packed kmer + slot per observation
    )
    return SoapResult(graph=graph, work=work)


@dataclass(frozen=True)
class SoapTiming:
    """Simulated hashing-time breakdown (the Fig 10 bars)."""

    read_data_seconds: float
    insert_update_seconds: float

    @property
    def total_seconds(self) -> float:
        return self.read_data_seconds + self.insert_update_seconds


#: Reading a <vertex, edge> pair from the in-memory stream is cheaper
#: than a hash insert; this is the ops-per-read/ops-per-insert ratio.
READ_COST_RATIO = 0.12


def simulate_soap_hashing(work: SoapWork, cpu: CpuDevice) -> SoapTiming:
    """Price a SOAP run's hashing phase on a simulated CPU.

    All threads run in parallel, so the elapsed read time is one full
    stream scan (every thread does one concurrently) and the elapsed
    insert time is the largest per-thread share.  The locality factor is
    taken over the *combined* footprint of all thread-local tables: the
    threads run concurrently and share the last-level cache, so the
    whole-graph working set (not one table) determines the hit rate —
    the architectural weakness ParaHash's partition-at-a-time tables
    avoid.
    """
    ops_per_sec = cpu.hash_ops_per_sec
    read_seconds = work.read_ops_per_thread * READ_COST_RATIO / ops_per_sec
    factor = locality_factor(work.table_bytes_total, cpu.cache_bytes,
                             cpu.miss_penalty)
    insert_seconds = work.insert_ops_per_thread * factor / ops_per_sec
    return SoapTiming(read_data_seconds=read_seconds, insert_update_seconds=insert_seconds)


def soap_memory_required(reads: ReadBatch, k: int) -> int:
    """SOAP's whole-input memory demand, for the Table III NA check."""
    n_obs = reads.n_kmers(k) * 3  # mult + successor + predecessor streams
    return n_obs * 9  # staging only; tables come on top
