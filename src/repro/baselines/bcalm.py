"""bcalm2-style baseline: minimizer partitioning + sort-merge + MPHF pass.

bcalm2 [Chikhi, Limasset, Medvedev 2016] is the paper's
memory-efficiency champion: it partitions kmers by minimizer, counts
them with disk-backed sort-merge passes, builds a minimal perfect hash
(MPHF) over junction kmers, and compacts unitigs.  It trades time for
memory — Table III shows it 9-20x slower than ParaHash while using the
least host memory.

This reimplementation keeps the algorithmic structure (the graph it
produces is identical to the reference) and meters the defining costs:

* a partitioning pass that writes the full kmer-pair stream to disk
  and reads it back (no compact superkmer+extension encoding — that is
  ParaHash's improvement);
* per-partition sort-merge counting (``n log n`` comparisons);
* an MPHF construction pass over the distinct vertices (several
  scans with hashing per scan, matching the paper's measurement note
  that bcalm2's time "includes kmer counting time and the MPHF hashing
  time for junction kmers").

The simulated pricing reflects bcalm2's limited effective parallelism
(its pipeline stages serialize on disk).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.config import ParaHashConfig
from ..core.subgraph import build_subgraph_sortmerge
from ..dna.reads import ReadBatch
from ..graph.compact import count_junction_vertices
from ..graph.dbg import DeBruijnGraph
from ..graph.merge import merge_disjoint
from ..hetsim.device import CpuDevice
from ..hetsim.transfer import DiskModel
from ..msp.partitioner import partition_reads

#: Bytes per <kmer, edge> pair in bcalm-style intermediate files
#: (one packed kmer word + slot byte; no superkmer compaction).
PAIR_BYTES = 9


@dataclass(frozen=True)
class BcalmWork:
    """Metered work of a bcalm-style run."""

    n_observations: int
    n_distinct: int
    n_junctions: int
    comparisons: float
    intermediate_bytes: int
    mphf_pass_ops: int
    peak_memory_bytes: int


@dataclass
class BcalmResult:
    graph: DeBruijnGraph
    work: BcalmWork


def build_bcalm(
    reads: ReadBatch, k: int, p: int = 11, n_partitions: int = 32
) -> BcalmResult:
    """Run the bcalm-style pipeline and meter it."""
    result = partition_reads(reads, k, p, n_partitions)
    subgraphs = []
    comparisons = 0.0
    n_obs = 0
    peak_partition_obs = 0
    for block in result.blocks:
        if block.n_superkmers == 0:
            continue
        sub = build_subgraph_sortmerge(block)
        subgraphs.append(sub)
        # Every observation materializes as a pair in bcalm's stream.
        part_obs = block.total_kmers() * 3  # mult + succ + pred pairs
        n_obs += part_obs
        peak_partition_obs = max(peak_partition_obs, part_obs)
        comparisons += part_obs * max(1.0, np.log2(max(2, part_obs)))
    graph = merge_disjoint(subgraphs)
    n_junctions = count_junction_vertices(graph)
    #: MPHF needs ~3 scans over the keys, hashing each time.
    mphf_pass_ops = 3 * graph.n_vertices + 2 * n_junctions
    work = BcalmWork(
        n_observations=n_obs,
        n_distinct=graph.n_vertices,
        n_junctions=n_junctions,
        comparisons=comparisons,
        intermediate_bytes=n_obs * PAIR_BYTES,
        mphf_pass_ops=mphf_pass_ops,
        # bcalm holds one partition's pairs plus the MPHF bit arrays.
        peak_memory_bytes=peak_partition_obs * PAIR_BYTES + graph.n_vertices // 2,
    )
    return BcalmResult(graph=graph, work=work)


#: Effective parallel threads of the bcalm-style pipeline; the stages
#: serialize on disk so scaling is far below the machine's 20 threads.
EFFECTIVE_THREADS = 5.0
#: Sort comparison cost relative to a hash operation.
COMPARISON_COST_RATIO = 0.3
#: MPHF op cost relative to a hash operation.
MPHF_COST_RATIO = 1.5


def simulate_bcalm(work: BcalmWork, cpu: CpuDevice, disk: DiskModel) -> float:
    """Price a bcalm-style run on the simulated machine.

    Disk: the uncompacted pair stream is written once and read once
    (ParaHash's encoded superkmers move ~4x less).  Compute: sort-merge
    comparisons plus the MPHF passes at bcalm's effective parallelism.
    """
    rate = cpu.hash_ops_per_sec * EFFECTIVE_THREADS
    sort_seconds = work.comparisons * COMPARISON_COST_RATIO / rate
    mphf_seconds = work.mphf_pass_ops * MPHF_COST_RATIO / rate
    disk_seconds = (
        disk.write_seconds(work.intermediate_bytes)
        + disk.read_seconds(work.intermediate_bytes)
    )
    return sort_seconds + mphf_seconds + disk_seconds


def bcalm_config_equivalent(config: ParaHashConfig) -> tuple[int, int]:
    """The (p, n_partitions) a comparable bcalm run would use."""
    return config.p, config.n_partitions
