"""ParaHash reproduction: parallel big De Bruijn graph construction.

This package reimplements the system described in *Parallelizing Big De
Bruijn Graph Construction on Heterogeneous Processors* (Qiu & Luo,
ICDCS 2017) as a pure-Python library with a simulated heterogeneous
(CPU + GPU) substrate.  See ``DESIGN.md`` for the system inventory and
``EXPERIMENTS.md`` for the reproduced tables and figures.

Public entry points
-------------------
- :mod:`repro.dna` — sequences, k-mers, minimizers, read simulation.
- :mod:`repro.msp` — Step 1: minimum substring partitioning.
- :mod:`repro.core` — Step 2: concurrent hashing and the ParaHash driver.
- :mod:`repro.graph` — De Bruijn graph structures and validation.
- :mod:`repro.hetsim` — heterogeneous processor / pipeline simulator.
- :mod:`repro.baselines` — SOAP-style and bcalm2-style baselines.
"""

__version__ = "1.0.0"
