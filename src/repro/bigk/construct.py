"""End-to-end big-K construction: MSP + two-word concurrent hashing.

The MSP step is K-agnostic as long as the minimizer length P fits one
word (P <= 31): superkmer decomposition and partition routing only look
at P-length substrings.  What changes for K > 31 is kmer generation
from the partition blocks and the hash table's key width — both
provided here over the two-word substrate.

The union of all subgraphs is validated (in the test suite) against the
pure-Python big-K reference builder.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.estimator import SizingPolicy
from ..core.hashtable import HashStats, TableFullError
from ..dna.reads import ReadBatch
from ..graph.dbg import MULT_SLOT, N_SLOTS, slot_for_predecessor, slot_for_successor
from ..msp.partitioner import partition_reads
from ..msp.records import SuperkmerBlock
from .kmer2w import LO_BASES, canonical2w_with_flip, check_2w_k, hi_bases
from .store import BigDeBruijnGraph, graph_from_plane_pairs
from .table import TwoWordHashTable


def flat_kmers_2w(block: SuperkmerBlock) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """All two-word kmers of a block with their flat base positions.

    Two-plane k-tap evaluation over the flat base array (the big-K twin
    of :meth:`SuperkmerBlock.flat_kmers`).
    """
    k = block.k
    check_2w_k(k)
    if block.n_superkmers == 0:
        empty = np.zeros(0, dtype=np.uint64)
        return empty, empty.copy(), np.zeros(0, dtype=np.int64)
    per_sk = block.kmers_per_superkmer
    total = int(per_sk.sum())
    starts = np.repeat(block.offsets[:-1], per_sk)
    ramp = np.arange(total, dtype=np.int64) - np.repeat(
        np.concatenate(([0], np.cumsum(per_sk)[:-1])), per_sk
    )
    positions = starts + ramp
    t = block.bases.size
    flat = block.bases.astype(np.uint64)
    hb = hi_bases(k)
    hi = np.zeros(t - k + 1, dtype=np.uint64)
    lo = np.zeros(t - k + 1, dtype=np.uint64)
    for j in range(hb):
        hi |= flat[j : t - k + 1 + j] << np.uint64(2 * (hb - 1 - j))
    for j in range(LO_BASES):
        lo |= flat[hb + j : t - k + 1 + hb + j] << np.uint64(2 * (LO_BASES - 1 - j))
    return hi[positions], lo[positions], positions


def block_observations_2w(
    block: SuperkmerBlock,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """``(hi, lo, slot)`` observations of a block (big-K Step 2 input)."""
    k = block.k
    if block.n_superkmers == 0:
        empty = np.zeros(0, dtype=np.uint64)
        return empty, empty.copy(), np.zeros(0, dtype=np.int64)
    hi, lo, positions = flat_kmers_2w(block)
    can_hi, can_lo, flip = canonical2w_with_flip(hi, lo, k)

    per_sk = block.kmers_per_superkmer
    total = int(per_sk.sum())
    sk_ids = np.repeat(np.arange(block.n_superkmers, dtype=np.int64), per_sk)
    ramp = np.arange(total, dtype=np.int64) - np.repeat(
        np.concatenate(([0], np.cumsum(per_sk)[:-1])), per_sk
    )
    is_first = ramp == 0
    is_last = ramp == (per_sk[sk_ids] - 1)

    bases = block.bases
    t = bases.size
    next_base = bases[np.minimum(positions + k, t - 1)].astype(np.int16)
    next_base[is_last] = block.right_ext[sk_ids[is_last]].astype(np.int16)
    prev_base = bases[np.maximum(positions - 1, 0)].astype(np.int16)
    prev_base[is_first] = block.left_ext[sk_ids[is_first]].astype(np.int16)

    mult_slots = np.full(total, MULT_SLOT, dtype=np.int64)
    has_succ = next_base >= 0
    has_pred = prev_base >= 0
    succ_slots = slot_for_successor(flip[has_succ], next_base[has_succ]).astype(np.int64)
    pred_slots = slot_for_predecessor(flip[has_pred], prev_base[has_pred]).astype(np.int64)

    out_hi = np.concatenate([can_hi, can_hi[has_succ], can_hi[has_pred]])
    out_lo = np.concatenate([can_lo, can_lo[has_succ], can_lo[has_pred]])
    out_slots = np.concatenate([mult_slots, succ_slots, pred_slots])
    return out_hi, out_lo, out_slots


def preaggregate_observations_2w(
    hi: np.ndarray, lo: np.ndarray, slots: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Collapse duplicate ``(hi, lo, slot)`` triples into counted triples.

    The two-word twin of
    :func:`repro.core.subgraph.preaggregate_observations`: lexsort by
    ``(hi, lo, slot)`` and run-length-encode the boundaries, so each
    distinct (vertex, slot) pair pays a single probe walk in
    :meth:`TwoWordHashTable.insert_batch` regardless of its
    multiplicity.  Returns ``(hi, lo, slots, counts)``.
    """
    hi = np.ascontiguousarray(hi, dtype=np.uint64).ravel()
    lo = np.ascontiguousarray(lo, dtype=np.uint64).ravel()
    slots = np.ascontiguousarray(slots, dtype=np.int64).ravel()
    if not (hi.shape == lo.shape == slots.shape):
        raise ValueError("hi, lo and slots must be parallel arrays")
    if hi.size == 0:
        return hi, lo, slots, np.zeros(0, dtype=np.int64)
    order = np.lexsort((slots, lo, hi))
    shi, slo, ss = hi[order], lo[order], slots[order]
    boundary = np.ones(shi.size, dtype=bool)
    boundary[1:] = (
        (shi[1:] != shi[:-1]) | (slo[1:] != slo[:-1]) | (ss[1:] != ss[:-1])
    )
    starts = np.nonzero(boundary)[0]
    ends = np.concatenate([starts[1:], [shi.size]])
    counts = (ends - starts).astype(np.int64)
    return shi[starts], slo[starts], ss[starts], counts


@dataclass
class BigKSubgraphResult:
    graph: BigDeBruijnGraph
    stats: HashStats
    capacity: int


def build_subgraph_2w(
    block: SuperkmerBlock, policy: SizingPolicy | None = None,
    allow_regrow: bool = True, preaggregate: bool = False,
    protocol: str = "locked", table_layout: str = "flat",
    n_shards: int = 8,
) -> BigKSubgraphResult:
    """One subgraph through the two-word concurrent hash table.

    ``protocol``/``table_layout``/``n_shards`` select the insert
    protocol and table layout exactly like
    :func:`repro.core.subgraph.build_subgraph`; every combination
    produces the identical graph.
    """
    policy = policy or SizingPolicy()
    n_kmers = block.total_kmers()
    capacity = policy.capacity_for(max(1, n_kmers))
    hi, lo, slots = block_observations_2w(block)
    counts = None
    if preaggregate:
        hi, lo, slots, counts = preaggregate_observations_2w(hi, lo, slots)
    n_regrow_cap = policy.capacity_for(max(1, n_kmers)) * 64
    while True:
        if table_layout == "sharded":
            from ..parallel.sharded import ShardedTwoWordHashTable

            table = ShardedTwoWordHashTable(capacity, block.k,
                                            n_shards=n_shards,
                                            protocol=protocol)
        else:
            table = TwoWordHashTable(capacity, block.k, protocol=protocol)
        try:
            table.insert_batch(hi, lo, slots, counts=counts)
            break
        except TableFullError:
            if not allow_regrow or capacity > n_regrow_cap:
                raise
            capacity *= 2
    return BigKSubgraphResult(graph=table.to_graph(), stats=table.stats,
                              capacity=table.capacity)


def build_subgraph_2w_sortmerge(block: SuperkmerBlock) -> BigDeBruijnGraph:
    """Sort-merge oracle for the two-word hash path."""
    hi, lo, slots = block_observations_2w(block)
    return graph_from_plane_pairs(block.k, hi, lo, slots)


def merge_bigk_disjoint(
    subgraphs: list[BigDeBruijnGraph], k: int | None = None
) -> BigDeBruijnGraph:
    """Union of vertex-disjoint big-K subgraphs.

    ``k`` pins the k of an all-empty merge (defaults to 33 for
    backwards compatibility when no subgraph carries one).
    """
    subgraphs = [g for g in subgraphs if g.n_vertices]
    if not subgraphs:
        from .store import empty_bigk_graph

        return empty_bigk_graph(33 if k is None else k)
    k = subgraphs[0].k
    if any(g.k != k for g in subgraphs):
        raise ValueError("cannot merge graphs with different k")
    hi = np.concatenate([g.vertices_hi for g in subgraphs])
    lo = np.concatenate([g.vertices_lo for g in subgraphs])
    counts = np.concatenate([g.counts for g in subgraphs], axis=0)
    order = np.lexsort((lo, hi))
    hi, lo, counts = hi[order], lo[order], counts[order]
    if hi.size > 1:
        dup = (hi[1:] == hi[:-1]) & (lo[1:] == lo[:-1])
        if dup.any():
            raise ValueError("big-K subgraphs share vertices; partitioning bug")
    return BigDeBruijnGraph(k=k, vertices_hi=hi, vertices_lo=lo, counts=counts)


def build_debruijn_graph_bigk(
    reads: ReadBatch, k: int, p: int = 15, n_partitions: int = 16,
    policy: SizingPolicy | None = None, n_threads: int = 1,
    preaggregate: bool = False,
) -> BigDeBruijnGraph:
    """Full big-K pipeline: MSP partitioning + two-word hashing + merge.

    ``n_threads > 1`` co-processes the partition blocks through the
    §III-E work-stealing queue (the ``threads`` backend's big-k path);
    the merged graph is identical to the sequential run.
    """
    check_2w_k(k)
    if not 1 <= p <= 31:
        raise ValueError("minimizer length p must be in [1, 31]")
    if n_threads < 1:
        raise ValueError("n_threads must be >= 1")
    result = partition_reads(reads, k, p, n_partitions)
    nonempty = [block for block in result.blocks if block.n_superkmers]
    if n_threads > 1 and len(nonempty) > 1:
        from ..concurrentsub.workqueue import run_coprocessed

        workers = {
            f"cpu{t}": (lambda block: build_subgraph_2w(
                block, policy=policy, preaggregate=preaggregate).graph)
            for t in range(n_threads)
        }
        subgraphs, _ = run_coprocessed(
            nonempty, workers, size_of=lambda b: b.total_kmers()
        )
    else:
        subgraphs = [
            build_subgraph_2w(block, policy=policy,
                              preaggregate=preaggregate).graph
            for block in nonempty
        ]
    return merge_bigk_disjoint(subgraphs, k=k)
