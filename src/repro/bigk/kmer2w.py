"""Two-word (128-bit) kmer operations for 31 < K <= 63.

The paper stresses that ParaHash's hash entries are **not limited to a
machine word** (§I: "the type of our hash table entry is not limited by
the machine word size"), unlike CAS-based GPU tables [Alcantara et al.]
— kmer lengths of "several base pairs to tens of base pairs" need
multi-word keys (§II-C).

This module is the vectorized two-word substrate: a kmer is a pair of
uint64 *planes* ``(hi, lo)`` where ``lo`` holds the 32 rightmost bases
and ``hi`` the remaining ``k - 32`` leftmost ones.  All operations
(batch extraction, reverse complement, canonical form, lexicographic
comparison) work on parallel plane arrays.  Scalar Python-int
equivalents in :mod:`repro.dna.kmer` serve as the ground truth.
"""

from __future__ import annotations

import numpy as np

from ..dna.kmer import revcomp_u64

#: Bases held by the low plane.
LO_BASES = 32
#: Largest K supported by the two-word representation.
MAX_2W_K = 63


def check_2w_k(k: int) -> None:
    if not LO_BASES < k <= MAX_2W_K:
        raise ValueError(
            f"two-word kmers require {LO_BASES} < k <= {MAX_2W_K}, got {k}"
        )


def hi_bases(k: int) -> int:
    """Bases held by the high plane."""
    check_2w_k(k)
    return k - LO_BASES


def split_int(kmer: int, k: int) -> tuple[int, int]:
    """Split a Python-int kmer into (hi, lo) plane values."""
    check_2w_k(k)
    lo_mask = (1 << (2 * LO_BASES)) - 1
    return kmer >> (2 * LO_BASES), kmer & lo_mask


def join_planes(hi: int, lo: int) -> int:
    """Inverse of :func:`split_int`."""
    return (int(hi) << (2 * LO_BASES)) | int(lo)


def kmers2w_from_reads(codes: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Extract all two-word kmers from a batch of equal-length reads.

    Returns ``(hi, lo)`` plane matrices of shape
    ``(n_reads, L - k + 1)``.  Rolling update: appending a base shifts
    the low plane left and carries its top base into the high plane.
    """
    check_2w_k(k)
    codes = np.asarray(codes, dtype=np.uint8)
    if codes.ndim != 2:
        raise ValueError("codes must be a 2-D (n_reads, L) matrix")
    n, length = codes.shape
    if length < k:
        raise ValueError(f"read length {length} shorter than k={k}")
    n_kmers = length - k + 1
    hi = np.empty((n, n_kmers), dtype=np.uint64)
    lo = np.empty((n, n_kmers), dtype=np.uint64)
    two = np.uint64(2)
    hi_mask = np.uint64((1 << (2 * hi_bases(k))) - 1)
    carry_shift = np.uint64(2 * (LO_BASES - 1))
    cur_hi = np.zeros(n, dtype=np.uint64)
    cur_lo = np.zeros(n, dtype=np.uint64)
    for j in range(k):
        carry = cur_lo >> carry_shift  # top base leaving the low plane
        cur_hi = ((cur_hi << two) | carry) & hi_mask
        cur_lo = (cur_lo << two) | codes[:, j].astype(np.uint64)
    hi[:, 0], lo[:, 0] = cur_hi, cur_lo
    for j in range(k, length):
        carry = cur_lo >> carry_shift
        cur_hi = ((cur_hi << two) | carry) & hi_mask
        cur_lo = (cur_lo << two) | codes[:, j].astype(np.uint64)
        hi[:, j - k + 1], lo[:, j - k + 1] = cur_hi, cur_lo
    return hi, lo


def revcomp2w(hi: np.ndarray, lo: np.ndarray, k: int) -> tuple[np.ndarray, np.ndarray]:
    """Reverse complement of two-word kmers, vectorized.

    The reverse complement of the concatenation ``hi ++ lo`` is
    ``rc(lo) ++ rc(hi)``, realigned to the plane split: ``rc(lo)`` (32
    bases) supplies the new high plane's ``k - 32`` bases plus the top
    of the new low plane, and ``rc(hi)`` fills the remainder.
    """
    check_2w_k(k)
    hb = hi_bases(k)
    rc_lo = revcomp_u64(np.asarray(lo, dtype=np.uint64), LO_BASES)  # 32 bases
    rc_hi = revcomp_u64(np.asarray(hi, dtype=np.uint64), hb)  # hb bases
    # New sequence: rc_lo's 32 bases followed by rc_hi's hb bases.
    # High plane = first hb bases of rc_lo.
    new_hi = rc_lo >> np.uint64(2 * (LO_BASES - hb))
    # Low plane = remaining (32 - hb) bases of rc_lo then all of rc_hi.
    keep = LO_BASES - hb
    keep_mask = np.uint64((1 << (2 * keep)) - 1) if keep else np.uint64(0)
    new_lo = ((rc_lo & keep_mask) << np.uint64(2 * hb)) | rc_hi
    return new_hi, new_lo


def less2w(a_hi: np.ndarray, a_lo: np.ndarray,
           b_hi: np.ndarray, b_lo: np.ndarray) -> np.ndarray:
    """Elementwise lexicographic ``a < b`` on plane pairs."""
    return (a_hi < b_hi) | ((a_hi == b_hi) & (a_lo < b_lo))


def canonical2w_with_flip(
    hi: np.ndarray, lo: np.ndarray, k: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Canonical plane pair plus the flipped flag, vectorized."""
    rc_hi, rc_lo = revcomp2w(hi, lo, k)
    flipped = less2w(rc_hi, rc_lo, hi, lo)
    can_hi = np.where(flipped, rc_hi, hi)
    can_lo = np.where(flipped, rc_lo, lo)
    return can_hi, can_lo, flipped


def planes_to_ints(hi: np.ndarray, lo: np.ndarray) -> list[int]:
    """Plane arrays to Python-int kmers (test/debug helper)."""
    return [join_planes(h, l) for h, l in zip(np.ravel(hi), np.ravel(lo))]
