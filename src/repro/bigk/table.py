"""Concurrent hash table with two-word keys (31 < K <= 63).

This is the configuration the state-transfer protocol exists for: the
key spans **two machine words**, so it cannot be claimed with a single
hardware CAS — which is exactly the limitation of word-sized CAS tables
the paper calls out (§I, §II-C).  Instead the per-slot ``occupancy``
flag is CASed EMPTY→LOCKED, *both* key words are written under the
lock, and OCCUPIED is published; from then on the two words are
immutable and read without synchronization.

The vectorized batch path and the real-thread path produce identical
tables; telemetry uses the same :class:`repro.core.hashtable.HashStats`.
"""

from __future__ import annotations

import threading
import time

import numpy as np

from ..concurrentsub.atomics import AtomicInt64Array, TracedLock
from ..concurrentsub.hashfunc import mix64, mix64_int
from ..core import hashtable as _ht
from ..core.hashtable import PROTOCOLS, SPIN_LIMIT, _mon_event, _trace
from ..core.estimator import next_power_of_two
from ..core.hashtable import EMPTY, LOCKED, OCCUPIED, HashStats, TableFullError
from ..graph.dbg import N_SLOTS
from .kmer2w import check_2w_k, split_int
from .store import BigDeBruijnGraph

_GOLDEN = np.uint64(0x9E3779B97F4A7C15)
_GOLDEN_INT = 0x9E3779B97F4A7C15
_MASK64 = (1 << 64) - 1

# Lock-free tag-plane encoding.  A two-word key cannot live in one
# atomic word, so the claim CAS installs a *fingerprint* of the key
# plus a claim bit; the publish store sets the publication bit after
# both key words are written.  All bits stay below 2^63 so the tag is a
# non-negative int64.
_FP_MASK = (1 << 61) - 1  # fingerprint: bits 0..60 of hash_planes
_CLAIM_BIT = 1 << 61
_PUB_BIT = 1 << 62


def hash_planes(hi: np.ndarray, lo: np.ndarray) -> np.ndarray:
    """64-bit mix of a two-word key (vectorized)."""
    with np.errstate(over="ignore"):
        return mix64(np.asarray(lo, dtype=np.uint64) ^ (mix64(hi) + _GOLDEN))


def hash_planes_int(hi: int, lo: int) -> int:
    """Scalar twin of :func:`hash_planes`."""
    return mix64_int(lo ^ ((mix64_int(hi) + _GOLDEN_INT) & _MASK64))


class TwoWordHashTable:
    """Fixed-capacity open-addressing table over (hi, lo) uint64 keys.

    ``protocol="locked"`` (default) runs the paper's state-transfer
    partial locking.  ``protocol="lockfree"`` removes the LOCKED state:
    the claim CAS installs a 61-bit key fingerprint (plus a claim bit)
    into the atomic word, the winner writes both key words plainly, and
    a publication bit is set last.  Readers whose fingerprint mismatches
    probe on *immediately* — they never wait; only a fingerprint match
    without the publication bit (the claim winner still writing its key
    words) waits for publication before the full key compare.
    """

    def __init__(self, capacity: int, k: int, protocol: str = "locked") -> None:
        check_2w_k(k)
        if protocol not in PROTOCOLS:
            raise ValueError(
                f"protocol must be one of {PROTOCOLS}, got {protocol!r}"
            )
        self.capacity = next_power_of_two(max(2, capacity))
        self._mask = np.uint64(self.capacity - 1)
        self.k = k
        self.state = np.zeros(self.capacity, dtype=np.int8)  # checks: allow[R1] construction: arrays are private until the table is shared
        self.keys_hi = np.zeros(self.capacity, dtype=np.uint64)  # checks: allow[R1] construction: arrays are private until the table is shared
        self.keys_lo = np.zeros(self.capacity, dtype=np.uint64)  # checks: allow[R1] construction: arrays are private until the table is shared
        self.counts = np.zeros((self.capacity, N_SLOTS), dtype=np.uint32)  # checks: allow[R1] construction: arrays are private until the table is shared
        self.n_occupied = 0
        self._init_runtime(protocol)

    def _init_runtime(self, protocol: str = "locked") -> None:
        """State shared by both constructors (stats + lazy threaded locks)."""
        self.protocol = protocol
        self.stats = HashStats()
        self._atomic_state: AtomicInt64Array | None = None
        self._count_locks: list[TracedLock] | None = None
        self._occupied_lock = TracedLock("occupied_lock")
        self._stats_lock = TracedLock("stats_lock")
        self._init_lock = threading.Lock()

    @classmethod
    def from_views(cls, k: int, state: np.ndarray, keys_hi: np.ndarray,
                   keys_lo: np.ndarray, counts: np.ndarray,
                   n_occupied: int | None = None,
                   protocol: str = "locked") -> "TwoWordHashTable":
        """Construct a table over externally owned buffers (no copy).

        Two-word twin of
        :meth:`repro.core.hashtable.ConcurrentHashTable.from_views`:
        the four arrays are typically views over one shared-memory
        segment, so the process backend can fill and read big-K tables
        without pickling.  The caller owns buffer lifetime.
        """
        check_2w_k(k)
        if protocol not in PROTOCOLS:
            raise ValueError(
                f"protocol must be one of {PROTOCOLS}, got {protocol!r}"
            )
        capacity = int(state.size)
        if capacity < 2 or capacity & (capacity - 1):
            raise ValueError("state size must be a power of two >= 2")
        if keys_hi.shape != (capacity,) or keys_lo.shape != (capacity,) \
                or counts.shape[0] != capacity:
            raise ValueError("state, keys and counts must agree on capacity")
        table = cls.__new__(cls)
        table.capacity = capacity
        table._mask = np.uint64(capacity - 1)
        table.k = k
        table.state = state
        table.keys_hi = keys_hi
        table.keys_lo = keys_lo
        table.counts = counts
        table.n_occupied = (
            int((state == OCCUPIED).sum()) if n_occupied is None
            else int(n_occupied)
        )
        table._init_runtime(protocol)
        return table

    def detach_views(self) -> None:
        """Release array references before the owning segment closes."""
        self.state = self.keys_hi = self.keys_lo = self.counts = None  # type: ignore[assignment]  # checks: allow[R1] teardown: runs after every worker detached
        self._atomic_state = None

    @property
    def load_factor(self) -> float:
        return self.n_occupied / self.capacity

    def memory_bytes(self) -> int:
        return int(
            self.state.nbytes + self.keys_hi.nbytes + self.keys_lo.nbytes  # checks: allow[R1] size metadata only, no element access
            + self.counts.nbytes  # checks: allow[R1] size metadata only, no element access
        )

    # -- vectorized batch path -------------------------------------------------

    def insert_batch(self, hi: np.ndarray, lo: np.ndarray, slots: np.ndarray,
                     counts: np.ndarray | None = None,
                     chunk: int = 1 << 20,
                     on_full: str = "raise") -> np.ndarray | None:
        """Apply ``(hi, lo, slot)`` observations, vectorized.

        With ``counts`` given (the pre-aggregation path of
        :func:`repro.bigk.construct.preaggregate_observations_2w`) each
        ``(hi, lo, slot)`` triple carries a multiplicity: the counter is
        bumped by ``counts[i]`` in one touch while the stats are metered
        for the individual observations the un-aggregated concurrent
        protocol would have executed, exactly as the one-word
        :meth:`repro.core.hashtable.ConcurrentHashTable.insert_batch`
        does — ``HashStats.lock_reduction`` is unchanged by aggregation.

        ``on_full="return"`` mirrors the one-word table: instead of
        raising on a full table, the unplaced observation indices are
        returned with their upfront metering rolled back (the sharded
        layout's neighbor-fallback path).
        """
        if on_full not in ("raise", "return"):
            raise ValueError(f"on_full must be 'raise' or 'return', got {on_full!r}")
        hi = np.ascontiguousarray(hi, dtype=np.uint64).ravel()
        lo = np.ascontiguousarray(lo, dtype=np.uint64).ravel()
        slots = np.ascontiguousarray(slots, dtype=np.int64).ravel()
        if not (hi.shape == lo.shape == slots.shape):
            raise ValueError("hi, lo and slots must be parallel arrays")
        if counts is not None:
            counts = np.ascontiguousarray(counts, dtype=np.int64).ravel()
            if counts.shape != hi.shape:
                raise ValueError("counts must parallel hi, lo and slots")
            if counts.size and int(counts.min()) < 1:
                raise ValueError("every aggregated count must be >= 1")
        leftovers: list[np.ndarray] = []
        for start in range(0, hi.size, chunk):
            left = self._insert_chunk(
                hi[start:start + chunk], lo[start:start + chunk],
                slots[start:start + chunk],
                None if counts is None else counts[start:start + chunk],
                on_full=on_full,
            )
            if left is not None and left.size:
                leftovers.append(left + start)
        if self._atomic_state is not None:
            # Keep threaded-mode flags in sync when a quiescent table
            # mixes batch and threaded insertions.
            self._resync_atomic()
        if on_full == "return":
            return (np.concatenate(leftovers) if leftovers
                    else np.empty(0, dtype=np.int64))
        return None

    def _resync_atomic(self) -> None:
        """Rebuild the atomic plane from the mirror (quiescent tables only).

        Protocol-dependent encoding: occupancy flags under ``locked``,
        published fingerprint tags under ``lockfree``.
        """
        assert self._atomic_state is not None
        raw = self._atomic_state.raw()  # checks: allow[R3] single-threaded resync
        if self.protocol == "lockfree":
            occ = self.state == OCCUPIED  # checks: allow[R1] single-threaded resync
            fp = hash_planes(self.keys_hi[occ], self.keys_lo[occ])  # checks: allow[R1] single-threaded resync
            raw[:] = 0
            raw[occ] = ((fp & np.uint64(_FP_MASK))
                        | np.uint64(_CLAIM_BIT | _PUB_BIT)).astype(np.int64)
        else:
            raw[:] = self.state  # checks: allow[R1] single-threaded resync

    def _insert_chunk(self, hi, lo, slots, weights=None,
                      on_full: str = "raise") -> np.ndarray | None:
        stats = self.stats
        n = hi.size
        n_ops = n if weights is None else int(weights.sum())
        stats.ops += n_ops  # checks: allow[R2] single-owner batch path: each partition's table is filled by exactly one process/thread
        stats.count_increments += n_ops  # checks: allow[R2] single-owner batch path: each partition's table is filled by exactly one process/thread
        home = hash_planes(hi, lo) & self._mask
        pending = np.arange(n, dtype=np.int64)
        offset = np.zeros(n, dtype=np.uint64)
        rounds = 0
        while pending.size:
            rounds += 1
            if rounds > self.capacity + 2:
                if on_full == "return":
                    n_left = (pending.size if weights is None
                              else int(weights[pending].sum()))
                    stats.ops -= n_left  # checks: allow[R2] single-owner batch path: each partition's table is filled by exactly one process/thread
                    stats.count_increments -= n_left  # checks: allow[R2] single-owner batch path: each partition's table is filled by exactly one process/thread
                    return pending.copy()
                raise TableFullError(
                    f"probe wrapped a table of capacity {self.capacity}"
                )
            pos = (home[pending] + offset[pending]) & self._mask
            st = self.state[pos]  # checks: allow[R1] single-owner batch path: each partition's table is filled by exactly one process/thread
            is_occ = st == OCCUPIED
            match = is_occ & (self.keys_hi[pos] == hi[pending]) & (  # checks: allow[R1] single-owner batch path: each partition's table is filled by exactly one process/thread
                self.keys_lo[pos] == lo[pending]  # checks: allow[R1] single-owner batch path: each partition's table is filled by exactly one process/thread
            )
            if match.any():
                rows = pos[match].astype(np.int64)
                cols = slots[pending[match]]
                if weights is None:
                    np.add.at(self.counts, (rows, cols), 1)  # checks: allow[R1] single-owner batch path: each partition's table is filled by exactly one process/thread
                    stats.updates += int(match.sum())  # checks: allow[R2] single-owner batch path: each partition's table is filled by exactly one process/thread
                else:
                    w = weights[pending[match]]
                    np.add.at(self.counts, (rows, cols), w)  # checks: allow[R1] single-owner batch path: each partition's table is filled by exactly one process/thread
                    stats.updates += int(w.sum())  # checks: allow[R2] single-owner batch path: each partition's table is filled by exactly one process/thread
            mismatch = is_occ & ~match
            empty = st == EMPTY
            winners = np.zeros(pending.size, dtype=bool)
            if empty.any():
                empty_idx = np.nonzero(empty)[0]
                _, first = np.unique(pos[empty_idx], return_index=True)
                win = empty_idx[first]
                winners[win] = True
                wpos = pos[win].astype(np.int64)
                wops = pending[win]
                self.state[wpos] = OCCUPIED  # checks: allow[R1] single-owner batch path: each partition's table is filled by exactly one process/thread
                self.keys_hi[wpos] = hi[wops]  # checks: allow[R1] single-owner batch path: each partition's table is filled by exactly one process/thread
                self.keys_lo[wpos] = lo[wops]  # checks: allow[R1] single-owner batch path: each partition's table is filled by exactly one process/thread
                if weights is None:
                    np.add.at(self.counts, (wpos, slots[wops]), 1)  # checks: allow[R1] single-owner batch path: each partition's table is filled by exactly one process/thread
                    lost = int(empty.sum()) - wpos.size
                else:
                    w = weights[wops]
                    np.add.at(self.counts, (wpos, slots[wops]), w)  # checks: allow[R1] single-owner batch path: each partition's table is filled by exactly one process/thread
                    # Un-aggregated, the duplicates behind each winning
                    # triple lose the CAS once and then update; triples
                    # that lost to a different key lose once per
                    # observation (same accounting as the one-word path).
                    stats.updates += int(w.sum()) - wpos.size  # checks: allow[R2] single-owner batch path: each partition's table is filled by exactly one process/thread
                    lost = int(w.sum()) - wpos.size
                    losers = empty & ~winners
                    if losers.any():
                        lost += int(weights[pending[losers]].sum())
                self.n_occupied += wpos.size  # checks: allow[R2] single-owner batch path: each partition's table is filled by exactly one process/thread
                stats.inserts += wpos.size  # checks: allow[R2] single-owner batch path: each partition's table is filled by exactly one process/thread
                if self.protocol == "locked":
                    stats.key_locks += wpos.size  # checks: allow[R2] single-owner batch path: each partition's table is filled by exactly one process/thread
                stats.cas_failures += lost  # checks: allow[R2] single-owner batch path: each partition's table is filled by exactly one process/thread
            if weights is None:
                stats.probes += int(mismatch.sum())  # checks: allow[R2] single-owner batch path: each partition's table is filled by exactly one process/thread
            else:
                stats.probes += int(weights[pending[mismatch]].sum())  # checks: allow[R2] single-owner batch path: each partition's table is filled by exactly one process/thread
            keep = (~match) & (~winners)
            advance = mismatch[keep].astype(np.uint64)
            pending = pending[keep]
            if pending.size:
                offset[pending] += advance

    # -- real-thread path --------------------------------------------------------

    def _ensure_threaded(self) -> None:
        if self._atomic_state is not None:
            return
        # Double-checked locking: see ConcurrentHashTable._ensure_threaded.
        with self._init_lock:
            if self._atomic_state is not None:
                return
            atomic = AtomicInt64Array(self.capacity, n_stripes=256)
            raw = atomic.raw()  # checks: allow[R3] pre-publication init under _init_lock
            if self.protocol == "lockfree":
                occ = self.state == OCCUPIED
                fp = hash_planes(self.keys_hi[occ], self.keys_lo[occ])
                raw[:] = 0
                raw[occ] = ((fp & np.uint64(_FP_MASK))
                            | np.uint64(_CLAIM_BIT | _PUB_BIT)).astype(np.int64)
            else:
                raw[:] = self.state.astype(np.int64)
            self._count_locks = [
                TracedLock(f"count_lock[{i}]") for i in range(256)
            ]
            self._atomic_state = atomic

    def insert_one_threadsafe(self, kmer: int, slot: int,
                              local: HashStats | None = None) -> None:
        """Per-operation state machine with a genuinely multi-word key.

        Stats discipline matches the one-word table: per-thread stats
        when ``local`` is given, otherwise a scratch object merged into
        the shared ``self.stats`` under ``_stats_lock``.
        """
        self._ensure_threaded()
        if local is not None:
            self._insert_one(kmer, slot, local)
            return
        scratch = HashStats()
        self._insert_one(kmer, slot, scratch)
        with self._stats_lock:
            _trace("stats", id(self), 0, "write")
            self.stats = self.stats.merged_with(scratch)

    def _insert_one(self, kmer: int, slot: int, stats: HashStats) -> None:
        atomic = self._atomic_state
        assert atomic is not None and self._count_locks is not None
        stats.ops += 1
        stats.count_increments += 1
        hi, lo = split_int(int(kmer), self.k)
        if self.protocol == "lockfree":
            self._insert_one_lockfree(hi, lo, slot, stats)
            return
        h = hash_planes_int(hi, lo) & (self.capacity - 1)
        offset = 0
        spins = 0
        while True:
            if offset >= self.capacity:
                stats.ops -= 1
                stats.count_increments -= 1
                raise TableFullError(
                    f"probe wrapped a table of capacity {self.capacity}"
                )
            pos = (h + offset) & (self.capacity - 1)
            st = atomic.load(pos)
            if st == EMPTY:
                if atomic.compare_and_swap(pos, EMPTY, LOCKED):
                    # Both words written inside the single lock window.
                    _trace("keys_hi", id(self), pos, "write")
                    _trace("keys_lo", id(self), pos, "write")
                    self.keys_hi[pos] = np.uint64(hi)
                    self.keys_lo[pos] = np.uint64(lo)
                    stats.key_locks += 1
                    stats.inserts += 1
                    _mon_event("pre_publish", pos)
                    atomic.store(pos, OCCUPIED)
                    self._add_count(pos, slot)
                    with self._occupied_lock:
                        _trace("n_occupied", id(self), 0, "write")
                        self.n_occupied += 1
                    return
                stats.cas_failures += 1
                continue
            if st == LOCKED:
                stats.blocked_reads += 1
                spins += 1
                if spins >= SPIN_LIMIT:
                    # Yield so a descheduled writer can publish.
                    time.sleep(0)
                continue
            _trace("keys_hi", id(self), pos, "read-acq")
            _trace("keys_lo", id(self), pos, "read-acq")
            if int(self.keys_hi[pos]) == hi and int(self.keys_lo[pos]) == lo:  # checks: allow[R1] immutable after OCCUPIED publication
                stats.updates += 1
                self._add_count(pos, slot)
                return
            offset += 1
            stats.probes += 1

    def _insert_one_lockfree(self, hi: int, lo: int, slot: int,
                             stats: HashStats) -> None:
        """CAS-publish protocol for a genuinely multi-word key.

        The atomic word cannot hold the key, so the claim CAS installs
        ``_CLAIM_BIT | fingerprint`` (61 bits of the slot hash).  The
        winner writes both key words plainly — the claim CAS already
        serialized ownership of the slot — then stores ``_PUB_BIT`` as
        the release fence.  Readers whose fingerprint mismatches probe
        on immediately (no waiting on other keys' publications); only a
        fingerprint match without the publication bit spins, and only
        until the winner's single publish store lands.  There is no
        LOCKED state and no unlock path.
        """
        atomic = self._atomic_state
        assert atomic is not None
        hv = hash_planes_int(hi, lo)
        fp = hv & _FP_MASK
        claim = _CLAIM_BIT | fp
        pub = claim | _PUB_BIT
        h = hv & (self.capacity - 1)
        offset = 0
        spins = 0
        while True:
            if offset >= self.capacity:
                stats.ops -= 1
                stats.count_increments -= 1
                raise TableFullError(
                    f"probe wrapped a table of capacity {self.capacity}"
                )
            pos = (h + offset) & (self.capacity - 1)
            st = atomic.load(pos)
            if st == EMPTY:
                if atomic.compare_and_swap(pos, EMPTY, claim):
                    stats.inserts += 1
                    _trace("keys_hi", id(self), pos, "write")
                    _trace("keys_lo", id(self), pos, "write")
                    self.keys_hi[pos] = np.uint64(hi)
                    # Torn window: keys_hi is visible, keys_lo is not;
                    # only the _PUB_BIT wait below keeps readers out.
                    _mon_event("lf_prepub_gap", pos)
                    self.keys_lo[pos] = np.uint64(lo)
                    atomic.store(pos, pub)
                    self._add_count(pos, slot)
                    with self._occupied_lock:
                        _trace("n_occupied", id(self), 0, "write")
                        self.n_occupied += 1
                    return
                stats.cas_failures += 1
                continue
            if (st & _FP_MASK) != fp:
                offset += 1
                stats.probes += 1
                continue
            if not (st & _PUB_BIT) and "lf_torn_read" not in _ht._SEEDED_BUGS:
                stats.blocked_reads += 1
                spins += 1
                if spins >= SPIN_LIMIT:
                    # Yield so a descheduled claim winner can publish.
                    time.sleep(0)
                continue
            _trace("keys_hi", id(self), pos, "read-acq")
            _trace("keys_lo", id(self), pos, "read-acq")
            if int(self.keys_hi[pos]) == hi and int(self.keys_lo[pos]) == lo:  # checks: allow[R1] immutable after publication-bit store
                stats.updates += 1
                self._add_count(pos, slot)
                return
            # Fingerprint collision with a different key: probe on.
            offset += 1
            stats.probes += 1

    def _add_count(self, pos: int, slot: int) -> None:
        assert self._count_locks is not None
        with self._count_locks[pos % len(self._count_locks)]:
            _trace("counts", id(self), pos, "write")
            self.counts[pos, slot] += 1

    def insert_threaded(self, kmers: list[int], slots: np.ndarray,
                        n_threads: int) -> list[HashStats]:
        """Run the per-op protocol from real threads over int kmers."""
        if n_threads < 1:
            raise ValueError("n_threads must be >= 1")
        slots = np.asarray(slots, dtype=np.int64).ravel()
        bounds = np.linspace(0, len(kmers), n_threads + 1).astype(int)
        locals_ = [HashStats() for _ in range(n_threads)]
        errors: list[BaseException] = []

        def work(t: int) -> None:
            try:
                for i in range(bounds[t], bounds[t + 1]):
                    self.insert_one_threadsafe(kmers[i], int(slots[i]), locals_[t])
            except BaseException as exc:
                errors.append(exc)

        threads = [threading.Thread(target=work, args=(t,)) for t in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        self._sync_mirror()
        if errors:
            raise errors[0]
        with self._stats_lock:
            _trace("stats", id(self), 0, "write")
            for s in locals_:
                self.stats = self.stats.merged_with(s)
        return locals_

    def _sync_mirror(self) -> None:
        """Re-sync the single-threaded numpy mirror after a fork-join."""
        if self._atomic_state is not None:
            snap = self._atomic_state.snapshot()
            if self.protocol == "lockfree":
                # Tag plane -> occupancy flags (any nonzero tag is a
                # published slot once all writers joined).
                snap = np.where(snap != 0, OCCUPIED, EMPTY)
            self.state[:] = snap.astype(self.state.dtype)  # checks: allow[R1] single-threaded resync after fork-join

    # -- queries --------------------------------------------------------------------

    def _load_state(self, pos: int) -> int:
        """One occupancy flag, via the atomic array while threads may run."""
        atomic = self._atomic_state
        if atomic is not None:
            raw = atomic.load(pos)
            if self.protocol == "lockfree":
                return OCCUPIED if raw != EMPTY else EMPTY
            return raw
        return int(self.state[pos])  # checks: allow[R1] single-threaded mode only (atomic path taken while threads run)

    def _state_view(self) -> np.ndarray:
        """All occupancy flags; see ConcurrentHashTable._state_view."""
        if self._atomic_state is not None:
            snap = self._atomic_state.snapshot()
            if self.protocol == "lockfree":
                snap = np.where(snap != 0, OCCUPIED, EMPTY)
            return snap.astype(np.int8)
        return self.state  # checks: allow[R1] single-threaded mode only (atomic snapshot taken while threads run)

    def lookup(self, kmer: int) -> np.ndarray | None:
        hi, lo = split_int(int(kmer), self.k)
        if self.protocol == "lockfree" and self._atomic_state is not None:
            return self._lookup_lockfree(hi, lo)
        h = hash_planes_int(hi, lo) & (self.capacity - 1)
        for offset in range(self.capacity):
            pos = (h + offset) & (self.capacity - 1)
            st = self._load_state(pos)
            if st == EMPTY:
                return None
            if st == OCCUPIED:
                if (int(self.keys_hi[pos]) == hi  # checks: allow[R1] immutable after OCCUPIED publication
                        and int(self.keys_lo[pos]) == lo):  # checks: allow[R1] immutable after OCCUPIED publication
                    return self.counts[pos].copy()  # checks: allow[R1] racy snapshot of monotonic counters
        return None

    def _lookup_lockfree(self, hi: int, lo: int) -> np.ndarray | None:
        """Live lock-free probe over the fingerprint tag plane."""
        atomic = self._atomic_state
        assert atomic is not None
        hv = hash_planes_int(hi, lo)
        fp = hv & _FP_MASK
        h = hv & (self.capacity - 1)
        offset = 0
        spins = 0
        while True:
            if offset >= self.capacity:
                return None
            pos = (h + offset) & (self.capacity - 1)
            st = atomic.load(pos)
            if st == EMPTY:
                return None
            if (st & _FP_MASK) != fp:
                # Another key's slot: probe on without waiting on its
                # publication.
                offset += 1
                continue
            if not (st & _PUB_BIT):
                # Fingerprint match but the claim winner is still
                # writing its key words; wait for the publication bit.
                spins += 1
                if spins >= SPIN_LIMIT:
                    time.sleep(0)
                continue
            if (int(self.keys_hi[pos]) == hi  # checks: allow[R1] immutable after publication-bit store
                    and int(self.keys_lo[pos]) == lo):  # checks: allow[R1] immutable after publication-bit store
                return self.counts[pos].copy()  # checks: allow[R1] racy snapshot of monotonic counters
            offset += 1

    def to_graph(self) -> BigDeBruijnGraph:
        occ = self._state_view() == OCCUPIED
        hi = self.keys_hi[occ]  # checks: allow[R1] quiescent read-out after all inserts joined
        lo = self.keys_lo[occ]  # checks: allow[R1] quiescent read-out after all inserts joined
        counts = self.counts[occ].astype(np.uint64)  # checks: allow[R1] quiescent read-out after all inserts joined
        order = np.lexsort((lo, hi))
        return BigDeBruijnGraph(
            k=self.k, vertices_hi=hi[order], vertices_lo=lo[order],
            counts=counts[order],
        )
