"""De Bruijn graph store for two-word (K > 31) vertices.

Mirrors :class:`repro.graph.dbg.DeBruijnGraph` with vertices kept as
parallel ``(hi, lo)`` uint64 plane arrays, sorted lexicographically by
plane pair.  The counter layout (4 out / 4 in / multiplicity) and all
semantics are identical to the one-word store.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dna.kmer import canonical_int, kmer_to_str
from ..graph.dbg import MULT_SLOT, N_SLOTS
from .kmer2w import join_planes, split_int


@dataclass
class BigDeBruijnGraph:
    """A graph over two-word canonical kmer vertices."""

    k: int
    vertices_hi: np.ndarray
    vertices_lo: np.ndarray
    counts: np.ndarray

    def __post_init__(self) -> None:
        self.vertices_hi = np.asarray(self.vertices_hi, dtype=np.uint64)
        self.vertices_lo = np.asarray(self.vertices_lo, dtype=np.uint64)
        self.counts = np.asarray(self.counts, dtype=np.uint64)  # checks: allow[R1] immutable result store: graphs are built once, then only read
        n = self.vertices_hi.size
        if self.vertices_lo.shape != (n,):
            raise ValueError("plane arrays must be parallel")
        if self.counts.shape != (n, N_SLOTS):  # checks: allow[R1] immutable result store: graphs are built once, then only read
            raise ValueError(f"counts must be ({n}, {N_SLOTS})")
        if n > 1:
            hi, lo = self.vertices_hi, self.vertices_lo
            ordered = (hi[:-1] < hi[1:]) | ((hi[:-1] == hi[1:]) & (lo[:-1] < lo[1:]))
            if not ordered.all():
                raise ValueError("vertices must be strictly sorted by (hi, lo)")

    @property
    def n_vertices(self) -> int:
        return int(self.vertices_hi.size)

    def __len__(self) -> int:
        return self.n_vertices

    def total_kmer_instances(self) -> int:
        return int(self.counts[:, MULT_SLOT].sum())  # checks: allow[R1] immutable result store: graphs are built once, then only read

    def n_duplicate_vertices(self) -> int:
        return self.total_kmer_instances() - self.n_vertices

    def total_edge_weight(self) -> int:
        return int(self.counts[:, :MULT_SLOT].sum())  # checks: allow[R1] immutable result store: graphs are built once, then only read

    def index_of(self, kmer: int) -> int:
        """Row of a canonical kmer (Python int), or -1."""
        hi, lo = split_int(int(kmer), self.k)
        left = int(np.searchsorted(self.vertices_hi, np.uint64(hi), side="left"))
        right = int(np.searchsorted(self.vertices_hi, np.uint64(hi), side="right"))
        if left == right:
            return -1
        sub = self.vertices_lo[left:right]
        j = int(np.searchsorted(sub, np.uint64(lo)))
        if j < sub.size and int(sub[j]) == lo:
            return left + j
        return -1

    def __contains__(self, kmer: int) -> bool:
        return self.index_of(kmer) >= 0

    def multiplicity(self, kmer: int) -> int:
        i = self.index_of(kmer)
        return int(self.counts[i, MULT_SLOT]) if i >= 0 else 0  # checks: allow[R1] immutable result store: graphs are built once, then only read

    def vertex_int(self, i: int) -> int:
        """Vertex row ``i`` as a Python-int kmer."""
        return join_planes(self.vertices_hi[i], self.vertices_lo[i])

    def vertex_str(self, i: int) -> str:
        return kmer_to_str(self.vertex_int(i), self.k)

    def successors(self, kmer: int) -> list[tuple[int, int]]:
        """``(canonical neighbor, weight)`` per non-zero out slot."""
        return self._neighbors(kmer, out_side=True)

    def predecessors(self, kmer: int) -> list[tuple[int, int]]:
        return self._neighbors(kmer, out_side=False)

    def _neighbors(self, kmer: int, out_side: bool) -> list[tuple[int, int]]:
        i = self.index_of(kmer)
        if i < 0:
            return []
        mask = (1 << (2 * self.k)) - 1
        base_slot = 0 if out_side else 4
        result = []
        for b in range(4):
            weight = int(self.counts[i, base_slot + b])  # checks: allow[R1] immutable result store: graphs are built once, then only read
            if not weight:
                continue
            if out_side:
                neighbor = ((int(kmer) << 2) | b) & mask
            else:
                neighbor = (b << (2 * (self.k - 1))) | (int(kmer) >> 2)
            result.append((canonical_int(neighbor, self.k), weight))
        return result

    def equals(self, other: "BigDeBruijnGraph") -> bool:
        return (
            self.k == other.k
            and bool(np.array_equal(self.vertices_hi, other.vertices_hi))
            and bool(np.array_equal(self.vertices_lo, other.vertices_lo))
            and bool(np.array_equal(self.counts, other.counts))  # checks: allow[R1] immutable result store: graphs are built once, then only read
        )

    def describe(self) -> dict:
        return {
            "k": self.k,
            "n_vertices": self.n_vertices,
            "n_duplicates": self.n_duplicate_vertices(),
            "total_edge_weight": self.total_edge_weight(),
        }


def empty_bigk_graph(k: int) -> BigDeBruijnGraph:
    """A zero-vertex two-word graph pinned to ``k``."""
    return BigDeBruijnGraph(
        k=k,
        vertices_hi=np.zeros(0, dtype=np.uint64),
        vertices_lo=np.zeros(0, dtype=np.uint64),
        counts=np.zeros((0, N_SLOTS), dtype=np.uint64),
    )


def graph_from_plane_pairs(
    k: int, hi: np.ndarray, lo: np.ndarray, slots: np.ndarray
) -> BigDeBruijnGraph:
    """Aggregate ``(hi, lo, slot)`` observations (two-word sort-merge)."""
    hi = np.asarray(hi, dtype=np.uint64).ravel()
    lo = np.asarray(lo, dtype=np.uint64).ravel()
    slots = np.asarray(slots, dtype=np.int64).ravel()
    if not (hi.shape == lo.shape == slots.shape):
        raise ValueError("hi, lo and slots must be parallel arrays")
    if slots.size and (slots.min() < 0 or slots.max() >= N_SLOTS):
        raise ValueError("slot values must be in [0, 9)")
    if hi.size == 0:
        return BigDeBruijnGraph(
            k=k,
            vertices_hi=np.zeros(0, dtype=np.uint64),
            vertices_lo=np.zeros(0, dtype=np.uint64),
            counts=np.zeros((0, N_SLOTS), dtype=np.uint64),
        )
    order = np.lexsort((lo, hi))
    shi, slo = hi[order], lo[order]
    boundary = np.ones(shi.size, dtype=bool)
    boundary[1:] = (shi[1:] != shi[:-1]) | (slo[1:] != slo[:-1])
    group = np.cumsum(boundary) - 1  # group id per sorted observation
    starts = np.nonzero(boundary)[0]
    n_groups = starts.size
    counts = np.zeros((n_groups, N_SLOTS), dtype=np.uint64)
    np.add.at(counts, (group, slots[order]), 1)
    return BigDeBruijnGraph(
        k=k, vertices_hi=shi[starts], vertices_lo=slo[starts], counts=counts
    )


def build_reference_bigk_slow(reads, k: int) -> BigDeBruijnGraph:
    """Pure-Python reference construction for K > 31 (ground truth)."""
    from ..dna.kmer import iter_kmers
    from ..graph.dbg import IN_BASE, OUT_BASE

    table: dict[int, np.ndarray] = {}

    def row(v: int) -> np.ndarray:
        r = table.get(v)
        if r is None:
            r = np.zeros(N_SLOTS, dtype=np.uint64)
            table[v] = r
        return r

    for r_i in range(reads.n_reads):
        codes = reads.codes[r_i]
        kmers = list(iter_kmers(codes, k))
        canon = [canonical_int(km, k) for km in kmers]
        flip = [c != km for c, km in zip(canon, kmers)]
        for j, c in enumerate(canon):
            row(c)[MULT_SLOT] += 1
            if j + 1 < len(kmers):
                b = int(codes[j + k])
                slot = (IN_BASE + (3 - b)) if flip[j] else (OUT_BASE + b)
                row(c)[slot] += 1
            if j > 0:
                b = int(codes[j - 1])
                slot = (OUT_BASE + (3 - b)) if flip[j] else (IN_BASE + b)
                row(c)[slot] += 1

    vertices = sorted(table)
    hi = np.array([split_int(v, k)[0] for v in vertices], dtype=np.uint64)
    lo = np.array([split_int(v, k)[1] for v in vertices], dtype=np.uint64)
    counts = (
        np.stack([table[v] for v in vertices])
        if vertices
        else np.zeros((0, N_SLOTS), dtype=np.uint64)
    )
    return BigDeBruijnGraph(k=k, vertices_hi=hi, vertices_lo=lo, counts=counts)
