"""Binary files for two-word (K > 31) graphs.

Same layout philosophy as :mod:`repro.graph.serialize` with a distinct
magic (``PHB2``): header, then the hi plane, the lo plane, and the
counter matrix as little-endian uint64 arrays.
"""

from __future__ import annotations

import os
import struct

import numpy as np

from ..graph.dbg import N_SLOTS
from ..graph.serialize import GraphFormatError
from .store import BigDeBruijnGraph

MAGIC_2W = b"PHB2"
FORMAT_VERSION = 1
_HEADER = struct.Struct("<4sBBHQ")


def save_big_graph(path: str | os.PathLike, graph: BigDeBruijnGraph) -> int:
    """Write a big-K graph; returns bytes written."""
    with open(path, "wb") as fh:
        fh.write(_HEADER.pack(MAGIC_2W, FORMAT_VERSION, graph.k, 0,
                              graph.n_vertices))
        fh.write(np.ascontiguousarray(graph.vertices_hi, dtype="<u8").tobytes())
        fh.write(np.ascontiguousarray(graph.vertices_lo, dtype="<u8").tobytes())
        fh.write(np.ascontiguousarray(graph.counts, dtype="<u8").tobytes())
    return os.path.getsize(path)


def load_big_graph(path: str | os.PathLike) -> BigDeBruijnGraph:
    """Read a big-K graph file back."""
    with open(path, "rb") as fh:
        raw = fh.read()
    if len(raw) < _HEADER.size:
        raise GraphFormatError(f"{path}: truncated header")
    magic, version, k, _reserved, n = _HEADER.unpack_from(raw, 0)
    if magic != MAGIC_2W:
        raise GraphFormatError(f"{path}: bad magic {magic!r} (expected PHB2)")
    if version != FORMAT_VERSION:
        raise GraphFormatError(f"{path}: unsupported version {version}")
    need = _HEADER.size + n * 8 * 2 + n * N_SLOTS * 8
    if len(raw) != need:
        raise GraphFormatError(
            f"{path}: expected {need} bytes for {n} vertices, got {len(raw)}"
        )
    pos = _HEADER.size
    hi = np.frombuffer(raw, dtype="<u8", count=n, offset=pos).copy()
    pos += n * 8
    lo = np.frombuffer(raw, dtype="<u8", count=n, offset=pos).copy()
    pos += n * 8
    counts = (
        np.frombuffer(raw, dtype="<u8", count=n * N_SLOTS, offset=pos)
        .reshape(n, N_SLOTS)
        .copy()
    )
    return BigDeBruijnGraph(k=k, vertices_hi=hi, vertices_lo=lo, counts=counts)


def save_big_subgraphs(out_dir: str | os.PathLike,
                       subgraphs: list[BigDeBruijnGraph]) -> list[str]:
    """Write each big-K subgraph to ``out_dir`` (created if missing).

    The two-word twin of :func:`repro.graph.serialize.save_subgraphs`:
    one ``subgraph_%04d.phdbg`` file per subgraph, PHB2 format.
    """
    os.makedirs(out_dir, exist_ok=True)
    paths = []
    for i, g in enumerate(subgraphs):
        path = os.path.join(os.fspath(out_dir), f"subgraph_{i:04d}.phdbg")
        save_big_graph(path, g)
        paths.append(path)
    return paths


def detect_graph_format(path: str | os.PathLike) -> str:
    """Return ``"1w"`` / ``"2w"`` by a file's magic, or raise."""
    with open(path, "rb") as fh:
        magic = fh.read(4)
    if magic == b"PHDB":
        return "1w"
    if magic == MAGIC_2W:
        return "2w"
    raise GraphFormatError(f"{path}: unrecognized magic {magic!r}")
