"""Unitig compaction for big-K graphs.

The traversal logic in :mod:`repro.graph.compact` only needs integer
vertices, the counter matrix and k; a lightweight view adapts the
two-word store to that interface, so big-K graphs compact with the
same (tested) walker.
"""

from __future__ import annotations

from ..graph.compact import Unitig, compact_unitigs
from .store import BigDeBruijnGraph


class _IntVertexView:
    """Duck-typed view of a BigDeBruijnGraph with Python-int vertices."""

    def __init__(self, graph: BigDeBruijnGraph) -> None:
        self.k = graph.k
        self.counts = graph.counts  # checks: allow[R1] immutable result store: reads a finished graph's counters
        self.n_vertices = graph.n_vertices
        self.vertices = [graph.vertex_int(i) for i in range(graph.n_vertices)]


def compact_unitigs_bigk(graph: BigDeBruijnGraph) -> list[Unitig]:
    """All unitigs of a two-word graph (semantics of ``compact_unitigs``)."""
    return compact_unitigs(_IntVertexView(graph))
