"""Big-K support: two-word (31 < K <= 63) kmers, tables and construction.

The paper's hash entries are explicitly not limited to a machine word;
this subpackage provides the multi-word configuration end to end — the
two-plane kmer substrate, a concurrent hash table whose key spans two
words (the case the state-transfer protocol exists for), and the full
MSP + hashing pipeline for K up to 63.
"""

from .compact import compact_unitigs_bigk
from .construct import (
    BigKSubgraphResult,
    block_observations_2w,
    build_debruijn_graph_bigk,
    build_subgraph_2w,
    build_subgraph_2w_sortmerge,
    flat_kmers_2w,
    merge_bigk_disjoint,
    preaggregate_observations_2w,
)
from .kmer2w import (
    LO_BASES,
    MAX_2W_K,
    canonical2w_with_flip,
    hi_bases,
    join_planes,
    kmers2w_from_reads,
    less2w,
    revcomp2w,
    split_int,
)
from .serialize import (
    detect_graph_format,
    load_big_graph,
    save_big_graph,
    save_big_subgraphs,
)
from .store import (
    BigDeBruijnGraph,
    build_reference_bigk_slow,
    empty_bigk_graph,
    graph_from_plane_pairs,
)
from .table import TwoWordHashTable, hash_planes, hash_planes_int

__all__ = [
    "BigDeBruijnGraph",
    "BigKSubgraphResult",
    "LO_BASES",
    "MAX_2W_K",
    "TwoWordHashTable",
    "block_observations_2w",
    "build_debruijn_graph_bigk",
    "build_reference_bigk_slow",
    "build_subgraph_2w",
    "build_subgraph_2w_sortmerge",
    "canonical2w_with_flip",
    "compact_unitigs_bigk",
    "detect_graph_format",
    "empty_bigk_graph",
    "flat_kmers_2w",
    "load_big_graph",
    "preaggregate_observations_2w",
    "save_big_graph",
    "save_big_subgraphs",
    "graph_from_plane_pairs",
    "hash_planes",
    "hash_planes_int",
    "hi_bases",
    "join_planes",
    "kmers2w_from_reads",
    "less2w",
    "merge_bigk_disjoint",
    "revcomp2w",
    "split_int",
]
