"""Command-line interface.

Exposes the library's main workflows as ``python -m repro <command>``:

* ``simulate`` — generate a synthetic genome + read set (FASTA/FASTQ);
* ``build`` — construct a De Bruijn graph from reads (the full ParaHash
  pipeline), optionally through partition files on disk;
* ``stats`` — inspect a constructed graph (sizes, spectrum, degrees);
* ``unitigs`` — filter a graph and write its unitigs as FASTA;
* ``hetsim`` — replay the construction on simulated CPU/GPU devices and
  report elapsed times and workload shares;
* ``checks`` — concurrency static analysis (R1-R5) and the dynamic
  lockset race detector (delegates to ``python -m repro.checks``);
* ``serve`` / ``submit`` / ``jobs`` / ``resume`` — the job service:
  a daemon running checkpointed, resumable builds for many tenants
  over one shared process pool (see :mod:`repro.service`).

All commands are deterministic given their ``--seed``.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .analysis import analyze_spectrum, degree_summary, estimate_error_rate
from .core.config import ParaHashConfig
from .core.parahash import ParaHash
from .dna.io import load_read_batch, save_read_batch, write_fasta
from .dna.io import SequenceRecord
from .dna.simulate import PROFILES, DatasetProfile, genome_to_str
from .graph.compact import compact_unitigs, compaction_stats
from .graph.serialize import export_tsv, load_graph, save_graph
from .hetsim.transfer import memory_cached_disk, spinning_disk
from .hetsim.workloads import measure_workloads, simulate_parahash
from .util.tables import render_table


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ParaHash reproduction: parallel De Bruijn graph construction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("simulate", help="generate a synthetic genome and reads")
    p.add_argument("--profile", choices=sorted(PROFILES),
                   help="built-in dataset profile")
    p.add_argument("--genome-size", type=int, default=10_000)
    p.add_argument("--read-length", type=int, default=100)
    p.add_argument("--coverage", type=float, default=20.0)
    p.add_argument("--errors", type=float, default=1.0,
                   help="mean substitution errors per read (lambda)")
    p.add_argument("--seed", type=int, default=2017)
    p.add_argument("--output", required=True, help="reads file (.fastq/.fasta)")
    p.add_argument("--genome-out", help="also write the genome as FASTA")
    p.set_defaults(func=cmd_simulate)

    p = sub.add_parser("build", help="construct a De Bruijn graph from reads")
    p.add_argument("--input", required=True, help="FASTA/FASTQ reads")
    p.add_argument("--k", type=int, default=27)
    p.add_argument("--p", type=int, default=11, help="minimizer length")
    p.add_argument("--partitions", type=int, default=32)
    p.add_argument("--threads", type=int, default=1,
                   help="co-processing worker threads for Step 2")
    p.add_argument("--backend", choices=["serial", "threads", "processes"],
                   default="serial",
                   help="execution backend for the pipeline (any k <= 63)")
    p.add_argument("--workers", type=int, default=0,
                   help="worker count for --backend threads/processes "
                        "(0 = all cores)")
    p.add_argument("--workdir",
                   help="directory for encoded partition files (disk-backed run)")
    p.add_argument("--pipeline", dest="pipeline", action="store_true",
                   default=True,
                   help="stream Step 2 while Step 1 runs "
                        "(processes backend; default)")
    p.add_argument("--no-pipeline", dest="pipeline", action="store_false",
                   help="barrier between the steps (processes backend)")
    p.add_argument("--preaggregate", dest="preaggregate",
                   action="store_true", default=True,
                   help="collapse duplicate observations into counted "
                        "inserts before hashing (default)")
    p.add_argument("--no-preaggregate", dest="preaggregate",
                   action="store_false",
                   help="insert every observation individually")
    p.add_argument("--calibrate", action="store_true",
                   help="measure this host's kernel rates and size claim "
                        "weights from the fitted device model "
                        "(processes backend)")
    p.add_argument("--table-layout", choices=["flat", "sharded"],
                   default="flat",
                   help="hash-table layout: one flat table per partition, "
                        "or hash-prefix shards with private lock regions")
    p.add_argument("--insert-protocol", choices=["locked", "lockfree"],
                   default="locked",
                   help="per-slot insert protocol: the paper's "
                        "EMPTY->LOCKED->OCCUPIED state transfer, or the "
                        "single-CAS lock-free publish")
    p.add_argument("--shards", type=int, default=8,
                   help="shard count for --table-layout sharded "
                        "(power of two)")
    p.add_argument("--output", required=True, help="graph file (.phdbg)")
    p.add_argument("--tsv", help="also export adjacency lists as TSV")
    p.add_argument("--min-multiplicity", type=int, default=1,
                   help="drop vertices seen fewer times before writing")
    p.set_defaults(func=cmd_build)

    p = sub.add_parser("stats", help="inspect a constructed graph")
    p.add_argument("--graph", required=True, help=".phdbg file")
    p.add_argument("--reads", type=int, help="#reads (enables error-rate estimate)")
    p.add_argument("--read-length", type=int,
                   help="read length (enables error-rate estimate)")
    p.set_defaults(func=cmd_stats)

    p = sub.add_parser("unitigs", help="compact a graph into unitigs (FASTA)")
    p.add_argument("--graph", required=True, help=".phdbg file")
    p.add_argument("--min-multiplicity", type=int, default=2)
    p.add_argument("--min-edge-weight", type=int, default=2)
    p.add_argument("--output", required=True, help="unitig FASTA file")
    p.set_defaults(func=cmd_unitigs)

    p = sub.add_parser("validate", help="run graph invariants on a .phdbg file")
    p.add_argument("--graph", required=True)
    p.add_argument("--full", action="store_true",
                   help="also check per-edge symmetry (slow on big graphs)")
    p.set_defaults(func=cmd_validate)

    p = sub.add_parser("partitions", help="summarize a .phsk partition directory")
    p.add_argument("--dir", required=True, help="directory of partition files")
    p.add_argument("--deep", action="store_true",
                   help="load each partition for exact kmer counts")
    p.set_defaults(func=cmd_partitions)

    p = sub.add_parser("count", help="count kmers (no edges), print the spectrum")
    p.add_argument("--input", required=True, help="FASTA/FASTQ reads")
    p.add_argument("--k", type=int, default=27)
    p.add_argument("--min-count", type=int, default=1,
                   help="drop kmers below this abundance from the summary")
    p.add_argument("--histogram-max", type=int, default=30)
    p.set_defaults(func=cmd_count)

    p = sub.add_parser(
        "checks",
        help="concurrency lint + lockset race detector (see repro.checks)",
        add_help=False,
    )
    p.add_argument("rest", nargs=argparse.REMAINDER)
    p.set_defaults(func=cmd_checks)

    from .service.cli import add_service_commands

    add_service_commands(sub)

    p = sub.add_parser("hetsim", help="simulate heterogeneous co-processing")
    p.add_argument("--input", required=True, help="FASTA/FASTQ reads")
    p.add_argument("--k", type=int, default=27)
    p.add_argument("--p", type=int, default=11)
    p.add_argument("--partitions", type=int, default=32)
    p.add_argument("--gpus", type=int, default=2)
    p.add_argument("--no-cpu", action="store_true",
                   help="GPU-only configuration")
    p.add_argument("--disk", choices=["ram", "hdd"], default="ram")
    p.add_argument("--gantt", action="store_true",
                   help="draw the hashing schedule as an ASCII Gantt chart")
    p.set_defaults(func=cmd_hetsim)

    return parser


def cmd_simulate(args: argparse.Namespace) -> int:
    if args.profile:
        profile = PROFILES[args.profile]
    else:
        profile = DatasetProfile(
            name="cli",
            genome_size=args.genome_size,
            read_length=args.read_length,
            coverage=args.coverage,
            mean_errors=args.errors,
            seed=args.seed,
        )
    genome, reads = profile.generate()
    fmt = "fasta" if str(args.output).endswith((".fasta", ".fa")) else "fastq"
    save_read_batch(args.output, reads, fmt=fmt)
    print(f"wrote {reads.n_reads} reads x {reads.read_length} bp to {args.output}")
    if args.genome_out:
        write_fasta(args.genome_out,
                    [SequenceRecord(name=profile.name, sequence=genome_to_str(genome))])
        print(f"wrote genome ({genome.size} bp) to {args.genome_out}")
    return 0


def cmd_build(args: argparse.Namespace) -> int:
    reads = load_read_batch(args.input)
    if args.k > 31:
        return _build_bigk(args, reads)
    config = ParaHashConfig(
        k=args.k, p=args.p, n_partitions=args.partitions,
        n_threads=args.threads, backend=args.backend, n_workers=args.workers,
        pipeline=args.pipeline, preaggregate=args.preaggregate,
        calibrate=args.calibrate, table_layout=args.table_layout,
        insert_protocol=args.insert_protocol, n_shards=args.shards,
    )
    result = ParaHash(config).build_graph(
        reads, workdir=Path(args.workdir) if args.workdir else None
    )
    graph = result.graph
    if args.min_multiplicity > 1:
        graph = graph.filter_min_multiplicity(args.min_multiplicity)
    n_bytes = save_graph(args.output, graph)
    print(f"{graph.n_vertices:,} vertices "
          f"({result.graph.n_duplicate_vertices():,} duplicates merged) "
          f"-> {args.output} ({n_bytes:,} bytes)")
    print(f"stages: MSP {result.timings.msp_seconds:.2f}s, "
          f"hashing {result.timings.hashing_seconds:.2f}s, "
          f"IO {result.timings.io_seconds:.2f}s; "
          f"lock reduction {100 * result.hash_stats.lock_reduction:.0f}%")
    if args.tsv:
        rows = export_tsv(args.tsv, graph)
        print(f"exported {rows:,} rows to {args.tsv}")
    return 0


def _build_bigk(args: argparse.Namespace, reads) -> int:
    """Two-word construction path for 31 < K <= 63 (any backend)."""
    from .bigk import save_big_graph

    if args.min_multiplicity > 1:
        print("error: --min-multiplicity is only supported for k <= 31",
              file=sys.stderr)
        return 2
    if args.tsv:
        print("error: --tsv export is only supported for k <= 31",
              file=sys.stderr)
        return 2
    config = ParaHashConfig(
        k=args.k, p=min(args.p, 31), n_partitions=args.partitions,
        n_threads=args.threads, backend=args.backend, n_workers=args.workers,
        pipeline=args.pipeline, preaggregate=args.preaggregate,
        calibrate=args.calibrate, table_layout=args.table_layout,
        insert_protocol=args.insert_protocol, n_shards=args.shards,
    )
    result = ParaHash(config).build_graph(
        reads, workdir=Path(args.workdir) if args.workdir else None
    )
    graph = result.graph
    n_bytes = save_big_graph(args.output, graph)
    print(f"{graph.n_vertices:,} vertices (two-word keys, k={args.k}) "
          f"-> {args.output} ({n_bytes:,} bytes)")
    print(f"stages: MSP {result.timings.msp_seconds:.2f}s, "
          f"hashing {result.timings.hashing_seconds:.2f}s, "
          f"IO {result.timings.io_seconds:.2f}s; "
          f"lock reduction {100 * result.hash_stats.lock_reduction:.0f}%")
    return 0


def cmd_stats(args: argparse.Namespace) -> int:
    from .bigk import detect_graph_format, load_big_graph

    if detect_graph_format(args.graph) == "2w":
        graph = load_big_graph(args.graph)
        print(render_table(
            ["property", "value"],
            [[key, value] for key, value in graph.describe().items()],
            title=f"graph {args.graph} (two-word keys)",
        ))
        return 0
    graph = load_graph(args.graph)
    d = graph.describe()
    print(render_table(
        ["property", "value"],
        [[key, value] for key, value in d.items()],
        title=f"graph {args.graph}",
    ))
    spectrum = analyze_spectrum(graph)
    degrees = degree_summary(graph)
    print(render_table(
        ["property", "value"],
        [
            ["coverage peak (x)", spectrum.coverage_peak],
            ["error threshold", spectrum.error_threshold],
            ["est. genome size", spectrum.estimated_genome_size],
            ["error vertices", spectrum.n_error_vertices],
            ["junction vertices", degrees.n_junctions],
            ["tip vertices", degrees.n_tips],
            ["simple vertices", degrees.n_simple],
        ],
        title="analysis",
    ))
    if args.reads and args.read_length:
        est = estimate_error_rate(graph, args.reads, args.read_length)
        print(f"\nestimated error rate: lambda = {est.lam:.2f} errors/read "
              f"({est.per_base_rate * 100:.3f}% per base)")
    return 0


def cmd_unitigs(args: argparse.Namespace) -> int:
    graph = load_graph(args.graph)
    cleaned = graph.filter_min_multiplicity(args.min_multiplicity)
    cleaned = cleaned.filter_min_edge_weight(args.min_edge_weight)
    unitigs = compact_unitigs(cleaned)
    records = [
        SequenceRecord(
            name=f"unitig_{i} length={len(u)} mean_mult={u.mean_multiplicity:.1f}",
            sequence=u.to_str(),
        )
        for i, u in enumerate(sorted(unitigs, key=len, reverse=True))
    ]
    write_fasta(args.output, records)
    stats = compaction_stats(unitigs, graph.k)
    print(f"wrote {stats['n_unitigs']:,} unitigs to {args.output} "
          f"(longest {stats['longest']:,} bp, N50 {stats['n50']:,} bp)")
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    from .graph.validate import (
        GraphValidationError,
        check_canonical_vertices,
        check_edge_symmetry,
    )

    graph = load_graph(args.graph)
    checks = [("canonical vertices", check_canonical_vertices)]
    if args.full:
        checks.append(("edge symmetry", check_edge_symmetry))
    failures = 0
    for name, check in checks:
        try:
            check(graph)
            print(f"  ok: {name}")
        except GraphValidationError as exc:
            failures += 1
            print(f"FAIL: {name}: {exc}")
    print(f"{graph.n_vertices:,} vertices checked; "
          f"{'all invariants hold' if not failures else f'{failures} failed'}")
    return 1 if failures else 0


def cmd_partitions(args: argparse.Namespace) -> int:
    from .msp.inspect import deep_scan_partition, inspect_partition_dir

    summary = inspect_partition_dir(args.dir)
    print(f"{summary.n_partitions} partitions, k={summary.k}, "
          f"{summary.total_superkmers:,} superkmers, "
          f"{summary.total_bytes:,} bytes, "
          f"balance CV {summary.balance_cv():.3f}")
    if args.deep:
        rows = [deep_scan_partition(f.path) for f in summary.files]
        print(render_table(
            ["partition", "superkmers", "kmers", "mean len", "left ext", "right ext"],
            [
                [Path(r["path"]).name, r["n_superkmers"], r["n_kmers"],
                 f"{r['mean_superkmer_length']:.1f}", r["n_with_left_ext"],
                 r["n_with_right_ext"]]
                for r in rows
            ],
        ))
    return 0


def cmd_count(args: argparse.Namespace) -> int:
    from .core.counter import count_kmers

    reads = load_read_batch(args.input)
    table = count_kmers(reads, args.k)
    solid = table.filter_min_count(args.min_count)
    print(f"{table.n_distinct:,} distinct kmers "
          f"({table.total_instances():,} instances); "
          f"{solid.n_distinct:,} at abundance >= {args.min_count}")
    hist = table.histogram(max_count=args.histogram_max)
    peak = max(1, int(hist[1:].max()))
    width = 40
    print("\nabundance histogram:")
    for m in range(1, args.histogram_max + 1):
        bar = "#" * int(width * int(hist[m]) / peak)
        tail = "+" if m == args.histogram_max else " "
        print(f"  {m:>3}{tail}| {bar} {int(hist[m])}")
    return 0


def cmd_checks(args: argparse.Namespace) -> int:
    """Delegate to the concurrency-checks driver (same as
    ``python -m repro.checks``)."""
    from .checks.cli import main as checks_main

    return checks_main(args.rest)


def cmd_hetsim(args: argparse.Namespace) -> int:
    reads = load_read_batch(args.input)
    config = ParaHashConfig(k=args.k, p=args.p, n_partitions=args.partitions)
    disk = memory_cached_disk() if args.disk == "ram" else spinning_disk()
    workloads = measure_workloads(reads, config)
    report = simulate_parahash(
        reads, config, use_cpu=not args.no_cpu, n_gpus=args.gpus,
        disk=disk, precomputed=workloads,
    )
    print(render_table(
        ["step", "elapsed (s)", "input (s)", "output (s)"],
        [
            ["MSP", f"{report.step1.elapsed_seconds:.4f}",
             f"{report.step1.input_seconds:.4f}",
             f"{report.step1.output_seconds:.4f}"],
            ["hashing", f"{report.step2.elapsed_seconds:.4f}",
             f"{report.step2.input_seconds:.4f}",
             f"{report.step2.output_seconds:.4f}"],
        ],
        title=f"devices={report.devices} disk={report.disk}",
    ))
    shares = report.step2.workload_shares()
    print(render_table(
        ["device", "hashing share"],
        [[name, f"{share:.3f}"] for name, share in sorted(shares.items())],
        title="workload distribution",
    ))
    if args.gantt:
        from .hetsim.trace import render_gantt

        print("\nhashing schedule:")
        print(render_gantt(report.step2))
    print(f"\ntotal simulated time: {report.total_seconds:.4f} s; "
          f"graph: {report.graph.n_vertices:,} vertices")
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    # The checks driver owns its whole argument vector (argparse's
    # REMAINDER would refuse a leading optional like `checks --help`).
    if argv[:1] == ["checks"]:
        return cmd_checks(argparse.Namespace(rest=argv[1:]))
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
