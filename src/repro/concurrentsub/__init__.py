"""Concurrency substrate: atomics, hash mixing, work-stealing queues."""

from .atomics import AtomicInt64Array, SharedCounter
from .hashfunc import hash_words, mix64, mix64_int, partition_ids, table_slots
from .workqueue import (
    InputQueue,
    OutputQueue,
    ProcessTicketQueue,
    ProcessWorkQueue,
    QueueClosed,
    WorkerRecord,
    run_coprocessed,
)

__all__ = [
    "AtomicInt64Array",
    "InputQueue",
    "OutputQueue",
    "ProcessTicketQueue",
    "ProcessWorkQueue",
    "QueueClosed",
    "SharedCounter",
    "WorkerRecord",
    "hash_words",
    "mix64",
    "mix64_int",
    "partition_ids",
    "run_coprocessed",
    "table_slots",
]
