"""Work-stealing partition queues (the paper's §III-E protocol).

ParaHash synchronizes its three pipeline stages with four shared
counters:

* ``srv`` — tail of the input queue, advanced only by the thread that
  loads partitions from disk;
* ``cns`` — head of the input queue; a processor takes a *queuing id*
  by fetch-incrementing ``cns`` and may consume partition ``id`` once
  ``srv >= id + 1`` (the paper's ``srv >= cns`` availability test);
* ``prd`` — number of output partitions produced;
* ``wrt`` — head of the output queue, advanced by the writer thread
  once ``prd`` covers it.

:class:`InputQueue` and :class:`OutputQueue` implement exactly this
protocol with blocking waits; :func:`run_coprocessed` drives a set of
worker callables (one per processor) over a partition list the way the
ParaHash pipeline does, recording which processor consumed which
partition — the measurement behind the paper's Fig 11 workload
distribution study.
"""

from __future__ import annotations

import multiprocessing as mp
import queue as queue_mod
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable

from . import atomics
from .atomics import SharedCounter


class QueueClosed(RuntimeError):
    """Raised when taking from an input queue that finished early."""


# -- test-only seeded bugs ------------------------------------------------------
#
# Broken variants of the srv/cns protocol, gated exactly like the
# hashtable's seeded bugs: the model checker refutes their abstract
# models (repro.checks.protocols.workqueue) and the replay layer
# (repro.checks.replay) re-enables them here to reproduce each
# counterexample against this real implementation.

_KNOWN_QUEUE_BUGS = frozenset({"split_claim", "early_srv"})
_SEEDED_QUEUE_BUGS: frozenset = frozenset()


@contextmanager
def seed_queue_bugs(*names: str):
    """TEST ONLY: re-enable broken claim/publish variants.

    ``split_claim`` — the consumer claim becomes a read of ``cns``
    followed by a separate increment instead of one fetch-increment:
    two claimers can read the same ticket (double-consume; the
    ``workqueue[split_claim]`` model variant).

    ``early_srv`` — the producer advances ``srv`` *before* storing the
    slot: a claim can reserve a partition that is not there yet (the
    ``workqueue[early_srv]`` model variant).
    """
    unknown = set(names) - _KNOWN_QUEUE_BUGS
    if unknown:
        raise ValueError(f"unknown seeded queue bugs: {sorted(unknown)}")
    global _SEEDED_QUEUE_BUGS
    previous = _SEEDED_QUEUE_BUGS
    _SEEDED_QUEUE_BUGS = frozenset(previous | set(names))
    try:
        yield
    finally:
        _SEEDED_QUEUE_BUGS = previous


def _mon_event(name: str, index: int | None = None, value=None) -> None:
    """Report a named control point to the installed monitor, if any."""
    m = atomics.monitor()
    if m is not None:
        m.event(name, index, value)


class InputQueue:
    """The srv/cns input side: a producer publishes, consumers claim ids."""

    def __init__(self, n_items: int) -> None:
        if n_items < 0:
            raise ValueError("n_items must be >= 0")
        self.n_items = n_items
        self.srv = SharedCounter(0)
        self.cns = SharedCounter(0)
        self._slots: list[Any] = [None] * n_items

    def publish(self, item: Any) -> int:
        """Producer: place the next partition and advance ``srv``.

        Returns the published index.  Only one producer thread may call
        this (matching the paper: "srv is incremented only by the thread
        that inputs partitions").
        """
        index = self.srv.value
        if index >= self.n_items:
            raise IndexError("publish beyond declared n_items")
        if "early_srv" in _SEEDED_QUEUE_BUGS:
            # Corpus bug (workqueue[early_srv]): srv advances before the
            # slot store, so a consumer whose take() is released by srv
            # reads a slot that is still empty.  The ``early_srv`` point
            # lets the replay scheduler park the producer in the gap.
            self.srv.increment()
            _mon_event("early_srv", index)
            self._slots[index] = item
            return index
        self._slots[index] = item
        self.srv.increment()
        return index

    def try_claim(self) -> int | None:
        """Consumer: take a queuing id, or ``None`` when all are claimed."""
        if "split_claim" in _SEEDED_QUEUE_BUGS:
            # Corpus bug (workqueue[split_claim]): the claim reads cns
            # and increments it as two separate steps — two claimers
            # that interleave at the ``claim_rmw`` point read the same
            # ticket and double-consume the partition.
            ticket = self.cns.value
            _mon_event("claim_rmw", ticket)
            self.cns.increment()
        else:
            ticket = self.cns.fetch_increment()
        if ticket >= self.n_items:
            return None
        return ticket

    def take(self, ticket: int, timeout: float | None = None) -> Any:
        """Block until partition ``ticket`` is available, then return it."""
        if not self.srv.wait_for(ticket + 1, timeout=timeout):
            raise QueueClosed(f"partition {ticket} never became available")
        return self._slots[ticket]


class OutputQueue:
    """The prd/wrt output side: producers publish, one writer drains in order."""

    def __init__(self, n_items: int) -> None:
        if n_items < 0:
            raise ValueError("n_items must be >= 0")
        self.n_items = n_items
        self.prd = SharedCounter(0)
        self.wrt = SharedCounter(0)
        self._slots: list[Any] = [None] * n_items
        self._done = [False] * n_items
        self._lock = threading.Lock()

    def publish(self, index: int, item: Any) -> None:
        """A processor finished partition ``index``; advance ``prd``."""
        with self._lock:
            if self._done[index]:
                raise ValueError(f"output {index} published twice")
            self._slots[index] = item
            self._done[index] = True
        self.prd.increment()

    def drain(self, timeout: float | None = None):
        """Writer: yield outputs in *completion-count* order.

        The writer dequeues as soon as ``prd >= wrt + 1`` — outputs are
        written as they become available; completion order is whatever
        the processors produced.
        """
        emitted = 0
        while emitted < self.n_items:
            if not self.prd.wait_for(emitted + 1, timeout=timeout):
                raise QueueClosed(f"only {emitted}/{self.n_items} outputs produced")
            with self._lock:
                pending = [
                    i for i in range(self.n_items)
                    if self._done[i] and self._slots[i] is not _EMITTED
                ]
            for i in pending:
                with self._lock:
                    item = self._slots[i]
                    self._slots[i] = _EMITTED
                self.wrt.increment()
                emitted += 1
                yield i, item


_EMITTED = object()


@dataclass
class WorkerRecord:
    """What one processor did during a co-processed run."""

    name: str
    partitions: list[int] = field(default_factory=list)
    items_processed: int = 0


def run_coprocessed(
    items: list[Any],
    workers: dict[str, Callable[[Any], Any]],
    size_of: Callable[[Any], int] | None = None,
) -> tuple[list[Any], dict[str, WorkerRecord]]:
    """Process ``items`` with one thread per worker, work-stealing style.

    Every worker loops: claim the next queuing id from the shared
    ``cns`` counter, wait for the producer to publish it, process it,
    publish the result.  Faster workers naturally claim more partitions,
    which is the paper's dynamic workload distribution.

    Parameters
    ----------
    items:
        The input partitions.
    workers:
        Mapping of processor name to its processing callable.
    size_of:
        Optional item-size measure accumulated per worker (e.g. number
        of reads or kmers), for workload-share reporting.

    Returns
    -------
    (results, records):
        ``results[i]`` is the output for ``items[i]``; ``records`` maps
        worker name to its :class:`WorkerRecord`.
    """
    if not workers:
        raise ValueError("at least one worker is required")
    n = len(items)
    in_q = InputQueue(n)
    out_q = OutputQueue(n)
    records = {name: WorkerRecord(name=name) for name in workers}
    errors: list[BaseException] = []
    error_lock = threading.Lock()

    def producer() -> None:
        for item in items:
            in_q.publish(item)

    def consumer(name: str, fn: Callable[[Any], Any]) -> None:
        record = records[name]
        while True:
            ticket = in_q.try_claim()
            if ticket is None:
                return
            try:
                item = in_q.take(ticket, timeout=60.0)
                result = fn(item)
                out_q.publish(ticket, result)
            except BaseException as exc:  # propagate to caller
                with error_lock:
                    errors.append(exc)
                out_q.publish(ticket, None)
                # Fail fast: drain the tickets this worker would have
                # processed so the writer is not left waiting on them.
                while True:
                    leftover = in_q.try_claim()
                    if leftover is None:
                        return
                    out_q.publish(leftover, None)
            record.partitions.append(ticket)
            record.items_processed += size_of(item) if size_of else 1

    threads = [threading.Thread(target=producer, name="producer")]
    threads += [
        threading.Thread(target=consumer, args=(name, fn), name=name)
        for name, fn in workers.items()
    ]
    for t in threads:
        t.start()
    results: list[Any] = [None] * n
    for index, item in out_q.drain(timeout=120.0):
        results[index] = item
    for t in threads:
        t.join()
    if errors:
        raise errors[0]
    return results, records


# -- process-safe work stealing --------------------------------------------------


class ProcessTicketQueue:
    """The ``cns`` ticket dispenser across *processes*, with weights.

    The thread-path :class:`InputQueue` holds its items in Python
    memory, which processes cannot share; in the process backend the
    items (read chunks, partition files, shared tables) are addressable
    by index from every worker, so the only state that must be shared
    is the claim counter itself.  This class is exactly that: a
    ``multiprocessing.Value`` fetch-add ticket dispenser implementing
    the paper's ``cns`` protocol.

    **Weighted dispatch** generalizes §III-E's CPU/GPU dispatch: a
    worker standing in for a throughput-``w`` device claims up to ``w``
    *consecutive* tickets per visit, so faster devices drain
    proportionally more of the queue while the claim itself stays one
    atomic fetch-add.  Weight 1 recovers plain work stealing.

    Instances are created by the parent and passed to workers through
    ``Process`` arguments (picklable via the multiprocessing context on
    every start method).
    """

    def __init__(self, n_items: int,
                 ctx: mp.context.BaseContext | None = None) -> None:
        if n_items < 0:
            raise ValueError("n_items must be >= 0")
        ctx = ctx or mp.get_context()
        self.n_items = n_items
        self._cns = ctx.Value("q", 0)

    def claim(self, weight: int = 1) -> list[int]:
        """Claim up to ``weight`` consecutive tickets; ``[]`` when drained."""
        if weight < 1:
            raise ValueError("weight must be >= 1")
        with self._cns.get_lock():
            start = int(self._cns.value)
            take = min(weight, self.n_items - start)
            if take <= 0:
                return []
            self._cns.value = start + take
        return list(range(start, start + take))

    def claimed(self) -> int:
        """Tickets handed out so far (for progress reporting)."""
        with self._cns.get_lock():
            return min(self.n_items, int(self._cns.value))


# -- cross-process publish/claim (the pipelined srv/cns protocol) -----------------

_WQ_OPEN = 0
_WQ_CLOSED = 1
_WQ_ABORTED = 2


class ProcessWorkQueue:
    """Bounded cross-process publish/claim queue — the srv/cns protocol
    with a *live producer*.

    This generalizes :class:`ProcessTicketQueue`: where the ticket queue
    dispenses ids for a work list fully known at construction, this
    queue lets the parent **publish** work items while consumer
    processes are already claiming — the handoff that makes the
    Step-1→Step-2 pipeline of :mod:`repro.parallel.backend` stream
    instead of barrier.  ``ProcessTicketQueue`` is the degenerate case
    where every index is published up front, kept as the cheaper
    counter-only fast path.

    Protocol (mirrors :class:`InputQueue` across processes):

    * ``publish(item)`` — producer side; advances ``srv`` after the item
      is enqueued, so a claim never reserves an item that has not been
      handed to the transport yet.
    * ``claim(weight)`` — consumer side; atomically reserves up to
      ``weight`` published-but-unclaimed items (the weighted ``cns``
      fetch-add) and returns them.  Blocks while the queue is open and
      empty; returns ``[]`` once the queue is closed and drained.
    * ``close()`` — no more publishes; blocked claimers drain and exit.
    * ``abort()`` — poison the queue: every pending and future claim
      returns ``[]`` immediately.  The crash-containment hatch — a
      parent whose merger fails (or that is tearing down after a worker
      crash) aborts so no consumer is ever left waiting on a queue
      nobody will fill.

    The queue is **bounded**: ``capacity`` is the most items that may
    ever be published (they are addressable work units, not an
    unbounded stream), which keeps the shared counters meaningful and
    turns producer bugs into an immediate ``IndexError`` instead of an
    unbounded pile-up.

    **No condition variables — by design.**  Empty-queue claimers use a
    short timed-sleep poll under a plain lock instead of
    ``multiprocessing.Condition.wait``.  A ``Condition`` keeps a
    sleeper count in shared semaphores; a consumer *terminated* while
    blocked in ``wait`` leaves that count incremented forever, after
    which any ``notify`` blocks waiting for the dead sleeper to
    acknowledge — so a crash-containment path that kills workers (as
    :func:`repro.parallel.pool.run_workers` does on failure) would
    deadlock the parent's own ``abort``/``publish``.  With polling, a
    killed consumer is simply gone: the lock is only ever held for a
    few straight-line statements, never across a blocking wait, so
    every other participant keeps making progress.
    """

    #: Seconds between availability polls while the queue is empty.
    POLL_SECONDS = 0.02

    def __init__(self, capacity: int,
                 ctx: mp.context.BaseContext | None = None,
                 claim_timeout: float = 120.0) -> None:
        if capacity < 0:
            raise ValueError("capacity must be >= 0")
        ctx = ctx or mp.get_context()
        self.capacity = capacity
        self.claim_timeout = claim_timeout
        self._lock = ctx.Lock()
        self._srv = ctx.Value("q", 0, lock=False)
        self._cns = ctx.Value("q", 0, lock=False)
        self._state = ctx.Value("b", _WQ_OPEN, lock=False)
        self._items = ctx.Queue()

    def publish(self, item) -> int:
        """Enqueue one item and advance ``srv``; returns its index."""
        with self._lock:
            if self._state.value != _WQ_OPEN:
                raise QueueClosed("publish on a closed or aborted queue")
            index = int(self._srv.value)
            if index >= self.capacity:
                raise IndexError(
                    f"publish beyond declared capacity {self.capacity}"
                )
            self._items.put(item)
            self._srv.value = index + 1
        return index

    def close(self) -> None:
        """Producer is done; drained claimers get ``[]`` from now on."""
        with self._lock:
            if self._state.value == _WQ_OPEN:
                self._state.value = _WQ_CLOSED

    def abort(self) -> None:
        """Poison the queue: all claims return ``[]`` immediately."""
        with self._lock:
            self._state.value = _WQ_ABORTED

    def published(self) -> int:
        """Items published so far."""
        with self._lock:
            return int(self._srv.value)

    def try_claim(self, weight: int = 1) -> list:
        """Non-blocking claim: up to ``weight`` items, ``[]`` when empty.

        The service pool's visit primitive: a worker touring many job
        lanes must never park on one empty lane while another has work,
        so this variant returns immediately instead of polling.  The
        reservation itself is the same weighted ``cns`` fetch-add as
        :meth:`claim`; an empty, closed, or aborted queue all yield
        ``[]`` (callers that must distinguish check :meth:`published`).
        """
        if weight < 1:
            raise ValueError("weight must be >= 1")
        with self._lock:
            if int(self._state.value) == _WQ_ABORTED:
                return []
            avail = int(self._srv.value) - int(self._cns.value)
            take = min(weight, avail)
            if take <= 0:
                return []
            self._cns.value += take
        out = []
        for _ in range(take):
            try:
                out.append(
                    self._items.get(timeout=max(1.0, self.claim_timeout))
                )
            except queue_mod.Empty:
                raise QueueClosed(
                    "reserved item never arrived (queue torn down?)"
                ) from None
        return out

    def reset(self) -> None:
        """Return a fully drained queue to its initial open state.

        Lane reuse for the job service: one queue outlives many jobs.
        Only legal once every published item has been claimed
        (``srv == cns`` — the producer drains leftovers with
        :meth:`try_claim` first); otherwise raises ``RuntimeError``.
        Safe against concurrent claimers because the drained check and
        the rewind happen under the same lock every claim reserves
        under.
        """
        with self._lock:
            if int(self._srv.value) != int(self._cns.value):
                raise RuntimeError(
                    "reset on a queue with unclaimed items; drain via "
                    "try_claim first"
                )
            self._srv.value = 0
            self._cns.value = 0
            self._state.value = _WQ_OPEN

    def claim(self, weight: int = 1, timeout: float | None = None) -> list:
        """Reserve and return up to ``weight`` items (``[]`` = no more).

        Blocks (polling) while the queue is open but empty.  ``timeout``
        bounds the total wait (default: the queue's ``claim_timeout``);
        a claimer that outlives it raises :class:`QueueClosed` rather
        than hanging on a producer that died without closing.
        """
        if weight < 1:
            raise ValueError("weight must be >= 1")
        timeout = self.claim_timeout if timeout is None else timeout
        deadline = time.monotonic() + timeout
        take = 0
        while True:
            with self._lock:
                state = int(self._state.value)
                if state == _WQ_ABORTED:
                    return []
                avail = int(self._srv.value) - int(self._cns.value)
                if avail > 0:
                    take = min(weight, avail)
                    self._cns.value += take
                    break
                if state == _WQ_CLOSED:
                    return []
            if time.monotonic() >= deadline:
                raise QueueClosed(
                    f"no publish within {timeout:.0f}s on an open "
                    "queue (producer gone?)"
                )
            time.sleep(self.POLL_SECONDS)
        # The reserved count never exceeds completed puts (puts happen
        # under the lock *before* srv advances), so these gets cannot
        # starve; the timeout guards against a torn-down queue.
        out = []
        for _ in range(take):
            try:
                out.append(self._items.get(timeout=max(1.0, timeout)))
            except queue_mod.Empty:
                raise QueueClosed(
                    "reserved item never arrived (queue torn down?)"
                ) from None
        return out
