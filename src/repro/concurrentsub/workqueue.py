"""Work-stealing partition queues (the paper's §III-E protocol).

ParaHash synchronizes its three pipeline stages with four shared
counters:

* ``srv`` — tail of the input queue, advanced only by the thread that
  loads partitions from disk;
* ``cns`` — head of the input queue; a processor takes a *queuing id*
  by fetch-incrementing ``cns`` and may consume partition ``id`` once
  ``srv >= id + 1`` (the paper's ``srv >= cns`` availability test);
* ``prd`` — number of output partitions produced;
* ``wrt`` — head of the output queue, advanced by the writer thread
  once ``prd`` covers it.

:class:`InputQueue` and :class:`OutputQueue` implement exactly this
protocol with blocking waits; :func:`run_coprocessed` drives a set of
worker callables (one per processor) over a partition list the way the
ParaHash pipeline does, recording which processor consumed which
partition — the measurement behind the paper's Fig 11 workload
distribution study.
"""

from __future__ import annotations

import multiprocessing as mp
import threading
from dataclasses import dataclass, field
from typing import Any, Callable

from .atomics import SharedCounter


class QueueClosed(RuntimeError):
    """Raised when taking from an input queue that finished early."""


class InputQueue:
    """The srv/cns input side: a producer publishes, consumers claim ids."""

    def __init__(self, n_items: int) -> None:
        if n_items < 0:
            raise ValueError("n_items must be >= 0")
        self.n_items = n_items
        self.srv = SharedCounter(0)
        self.cns = SharedCounter(0)
        self._slots: list[Any] = [None] * n_items

    def publish(self, item: Any) -> int:
        """Producer: place the next partition and advance ``srv``.

        Returns the published index.  Only one producer thread may call
        this (matching the paper: "srv is incremented only by the thread
        that inputs partitions").
        """
        index = self.srv.value
        if index >= self.n_items:
            raise IndexError("publish beyond declared n_items")
        self._slots[index] = item
        self.srv.increment()
        return index

    def try_claim(self) -> int | None:
        """Consumer: take a queuing id, or ``None`` when all are claimed."""
        ticket = self.cns.fetch_increment()
        if ticket >= self.n_items:
            return None
        return ticket

    def take(self, ticket: int, timeout: float | None = None) -> Any:
        """Block until partition ``ticket`` is available, then return it."""
        if not self.srv.wait_for(ticket + 1, timeout=timeout):
            raise QueueClosed(f"partition {ticket} never became available")
        return self._slots[ticket]


class OutputQueue:
    """The prd/wrt output side: producers publish, one writer drains in order."""

    def __init__(self, n_items: int) -> None:
        if n_items < 0:
            raise ValueError("n_items must be >= 0")
        self.n_items = n_items
        self.prd = SharedCounter(0)
        self.wrt = SharedCounter(0)
        self._slots: list[Any] = [None] * n_items
        self._done = [False] * n_items
        self._lock = threading.Lock()

    def publish(self, index: int, item: Any) -> None:
        """A processor finished partition ``index``; advance ``prd``."""
        with self._lock:
            if self._done[index]:
                raise ValueError(f"output {index} published twice")
            self._slots[index] = item
            self._done[index] = True
        self.prd.increment()

    def drain(self, timeout: float | None = None):
        """Writer: yield outputs in *completion-count* order.

        The writer dequeues as soon as ``prd >= wrt + 1`` — outputs are
        written as they become available; completion order is whatever
        the processors produced.
        """
        emitted = 0
        while emitted < self.n_items:
            if not self.prd.wait_for(emitted + 1, timeout=timeout):
                raise QueueClosed(f"only {emitted}/{self.n_items} outputs produced")
            with self._lock:
                pending = [
                    i for i in range(self.n_items)
                    if self._done[i] and self._slots[i] is not _EMITTED
                ]
            for i in pending:
                with self._lock:
                    item = self._slots[i]
                    self._slots[i] = _EMITTED
                self.wrt.increment()
                emitted += 1
                yield i, item


_EMITTED = object()


@dataclass
class WorkerRecord:
    """What one processor did during a co-processed run."""

    name: str
    partitions: list[int] = field(default_factory=list)
    items_processed: int = 0


def run_coprocessed(
    items: list[Any],
    workers: dict[str, Callable[[Any], Any]],
    size_of: Callable[[Any], int] | None = None,
) -> tuple[list[Any], dict[str, WorkerRecord]]:
    """Process ``items`` with one thread per worker, work-stealing style.

    Every worker loops: claim the next queuing id from the shared
    ``cns`` counter, wait for the producer to publish it, process it,
    publish the result.  Faster workers naturally claim more partitions,
    which is the paper's dynamic workload distribution.

    Parameters
    ----------
    items:
        The input partitions.
    workers:
        Mapping of processor name to its processing callable.
    size_of:
        Optional item-size measure accumulated per worker (e.g. number
        of reads or kmers), for workload-share reporting.

    Returns
    -------
    (results, records):
        ``results[i]`` is the output for ``items[i]``; ``records`` maps
        worker name to its :class:`WorkerRecord`.
    """
    if not workers:
        raise ValueError("at least one worker is required")
    n = len(items)
    in_q = InputQueue(n)
    out_q = OutputQueue(n)
    records = {name: WorkerRecord(name=name) for name in workers}
    errors: list[BaseException] = []
    error_lock = threading.Lock()

    def producer() -> None:
        for item in items:
            in_q.publish(item)

    def consumer(name: str, fn: Callable[[Any], Any]) -> None:
        record = records[name]
        while True:
            ticket = in_q.try_claim()
            if ticket is None:
                return
            try:
                item = in_q.take(ticket, timeout=60.0)
                result = fn(item)
                out_q.publish(ticket, result)
            except BaseException as exc:  # propagate to caller
                with error_lock:
                    errors.append(exc)
                out_q.publish(ticket, None)
                # Fail fast: drain the tickets this worker would have
                # processed so the writer is not left waiting on them.
                while True:
                    leftover = in_q.try_claim()
                    if leftover is None:
                        return
                    out_q.publish(leftover, None)
            record.partitions.append(ticket)
            record.items_processed += size_of(item) if size_of else 1

    threads = [threading.Thread(target=producer, name="producer")]
    threads += [
        threading.Thread(target=consumer, args=(name, fn), name=name)
        for name, fn in workers.items()
    ]
    for t in threads:
        t.start()
    results: list[Any] = [None] * n
    for index, item in out_q.drain(timeout=120.0):
        results[index] = item
    for t in threads:
        t.join()
    if errors:
        raise errors[0]
    return results, records


# -- process-safe work stealing --------------------------------------------------


class ProcessTicketQueue:
    """The ``cns`` ticket dispenser across *processes*, with weights.

    The thread-path :class:`InputQueue` holds its items in Python
    memory, which processes cannot share; in the process backend the
    items (read chunks, partition files, shared tables) are addressable
    by index from every worker, so the only state that must be shared
    is the claim counter itself.  This class is exactly that: a
    ``multiprocessing.Value`` fetch-add ticket dispenser implementing
    the paper's ``cns`` protocol.

    **Weighted dispatch** generalizes §III-E's CPU/GPU dispatch: a
    worker standing in for a throughput-``w`` device claims up to ``w``
    *consecutive* tickets per visit, so faster devices drain
    proportionally more of the queue while the claim itself stays one
    atomic fetch-add.  Weight 1 recovers plain work stealing.

    Instances are created by the parent and passed to workers through
    ``Process`` arguments (picklable via the multiprocessing context on
    every start method).
    """

    def __init__(self, n_items: int,
                 ctx: mp.context.BaseContext | None = None) -> None:
        if n_items < 0:
            raise ValueError("n_items must be >= 0")
        ctx = ctx or mp.get_context()
        self.n_items = n_items
        self._cns = ctx.Value("q", 0)

    def claim(self, weight: int = 1) -> list[int]:
        """Claim up to ``weight`` consecutive tickets; ``[]`` when drained."""
        if weight < 1:
            raise ValueError("weight must be >= 1")
        with self._cns.get_lock():
            start = int(self._cns.value)
            take = min(weight, self.n_items - start)
            if take <= 0:
                return []
            self._cns.value = start + take
        return list(range(start, start + take))

    def claimed(self) -> int:
        """Tickets handed out so far (for progress reporting)."""
        with self._cns.get_lock():
            return min(self.n_items, int(self._cns.value))
