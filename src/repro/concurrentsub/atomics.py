"""Atomic primitives over shared numpy arrays.

CPython has no public compare-and-swap on array cells, so atomicity is
provided by an array of striped locks: slot ``i`` is guarded by lock
``i % n_stripes``.  Under the GIL this gives the same linearizable
semantics as the hardware ``atomicCAS`` / atomic-increment instructions
the paper's implementation uses on the CPU and the GPU (§III-D), at the
cost of lock overhead — which is fine, because the *performance* of the
concurrent algorithms is evaluated on the simulated-device substrate
(``repro.hetsim``), while these primitives establish *correctness* under
real thread interleavings.

All operations count events, so callers can report contention
statistics (the paper's 80%-lock-reduction claim is measured from these
counters).
"""

from __future__ import annotations

import threading

import numpy as np


class AtomicInt64Array:
    """A fixed-size int64 array with CAS / add / load / store.

    Thread-safe via striped locks.  Also tracks operation counts:
    ``n_cas``, ``n_cas_failed``, ``n_add``, ``n_load``, ``n_store``.
    """

    def __init__(self, size: int, n_stripes: int = 64) -> None:
        if size < 0:
            raise ValueError("size must be >= 0")
        if n_stripes < 1:
            raise ValueError("n_stripes must be >= 1")
        self._data = np.zeros(size, dtype=np.int64)
        self._locks = [threading.Lock() for _ in range(n_stripes)]
        self._n_stripes = n_stripes
        self._stats_lock = threading.Lock()
        self.n_cas = 0
        self.n_cas_failed = 0
        self.n_add = 0
        self.n_load = 0
        self.n_store = 0

    def __len__(self) -> int:
        return int(self._data.size)

    def _lock_for(self, index: int) -> threading.Lock:
        return self._locks[index % self._n_stripes]

    def load(self, index: int) -> int:
        """Atomically read one cell."""
        with self._lock_for(index):
            value = int(self._data[index])
        with self._stats_lock:
            self.n_load += 1
        return value

    def store(self, index: int, value: int) -> None:
        """Atomically write one cell."""
        with self._lock_for(index):
            self._data[index] = value
        with self._stats_lock:
            self.n_store += 1

    def add(self, index: int, delta: int = 1) -> int:
        """Atomic fetch-and-add; returns the *previous* value."""
        with self._lock_for(index):
            old = int(self._data[index])
            self._data[index] = old + delta
        with self._stats_lock:
            self.n_add += 1
        return old

    def compare_and_swap(self, index: int, expected: int, new: int) -> bool:
        """Atomic CAS; returns ``True`` when the swap happened."""
        with self._lock_for(index):
            ok = int(self._data[index]) == expected
            if ok:
                self._data[index] = new
        with self._stats_lock:
            self.n_cas += 1
            if not ok:
                self.n_cas_failed += 1
        return ok

    def snapshot(self) -> np.ndarray:
        """Copy of the underlying array (not atomic across cells)."""
        return self._data.copy()

    def raw(self) -> np.ndarray:
        """The underlying array; only safe to touch when no threads run."""
        return self._data

    def reset_stats(self) -> None:
        with self._stats_lock:
            self.n_cas = self.n_cas_failed = 0
            self.n_add = self.n_load = self.n_store = 0


class SharedCounter:
    """A monotonically increasing shared counter with blocking waits.

    Implements the synchronization variables of the paper's
    work-stealing pipeline (§III-E): ``srv``, ``cns``, ``prd`` and
    ``wrt`` are all instances of this counter.
    """

    def __init__(self, initial: int = 0) -> None:
        self._value = initial
        self._cond = threading.Condition()

    @property
    def value(self) -> int:
        with self._cond:
            return self._value

    def increment(self, delta: int = 1) -> int:
        """Advance the counter, waking waiters; returns the new value."""
        if delta < 0:
            raise ValueError("SharedCounter is monotonic; delta must be >= 0")
        with self._cond:
            self._value += delta
            self._cond.notify_all()
            return self._value

    def fetch_increment(self, delta: int = 1) -> int:
        """Advance and return the *previous* value (ticket dispenser)."""
        if delta < 0:
            raise ValueError("SharedCounter is monotonic; delta must be >= 0")
        with self._cond:
            old = self._value
            self._value += delta
            self._cond.notify_all()
            return old

    def wait_for(self, threshold: int, timeout: float | None = None) -> bool:
        """Block until ``value >= threshold``; ``False`` on timeout."""
        with self._cond:
            return self._cond.wait_for(lambda: self._value >= threshold, timeout=timeout)
