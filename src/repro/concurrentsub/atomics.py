"""Atomic primitives over shared numpy arrays.

CPython has no public compare-and-swap on array cells, so atomicity is
provided by an array of striped locks: slot ``i`` is guarded by lock
``i % n_stripes``.  Under the GIL this gives the same linearizable
semantics as the hardware ``atomicCAS`` / atomic-increment instructions
the paper's implementation uses on the CPU and the GPU (§III-D), at the
cost of lock overhead — which is fine, because the *performance* of the
concurrent algorithms is evaluated on the simulated-device substrate
(``repro.hetsim``), while these primitives establish *correctness* under
real thread interleavings.

All operations count events, so callers can report contention
statistics (the paper's 80%-lock-reduction claim is measured from these
counters).

Instrumented mode
-----------------

The module carries a process-global *access monitor* hook used by the
concurrency tooling in :mod:`repro.checks`.  When no monitor is
installed (the default) every hook is a single ``is None`` test; when
one is installed (see :func:`set_monitor`), each atomic operation
reports

* the stripe lock it acquires and releases (``lock_acquired`` /
  ``lock_released``),
* the cell it touches and whether the touch is a read or a write
  (``record``), and
* a named control point after the operation (``event``), which the
  deterministic interleaving scheduler uses to pause threads at
  adversarial moments (e.g. between a won CAS and the publication
  store).

``record`` is invoked while the stripe lock is held, so a lockset
analysis sees the stripe in the candidate set; ``event`` is invoked
*outside* the lock so a scheduler that blocks the thread there cannot
deadlock other stripes.
"""

from __future__ import annotations

import threading

import numpy as np

_MONITOR = None


def set_monitor(monitor):
    """Install ``monitor`` as the global access monitor; returns the old one.

    ``monitor`` must provide ``lock_acquired(lock_id)``,
    ``lock_released(lock_id)``, ``record(label, owner, index, kind)`` and
    ``event(name, index, value)`` (see ``repro.checks.lockset.Monitor``).
    Pass ``None`` to uninstall.
    """
    global _MONITOR
    previous = _MONITOR
    _MONITOR = monitor
    return previous


def monitor():
    """The currently installed access monitor, or ``None``."""
    return _MONITOR


class TracedLock:
    """A ``threading.Lock`` wrapper that reports to the access monitor.

    Drop-in for the ``with lock:`` idiom; adds one global read per
    acquire/release when no monitor is installed.  The lock identity
    reported to the monitor is ``("lock", name, id(self))`` so two locks
    with the same name on different objects stay distinct.
    """

    __slots__ = ("_lock", "name")

    def __init__(self, name: str) -> None:
        self._lock = threading.Lock()
        self.name = name

    def _lock_id(self):
        return ("lock", self.name, id(self))

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        got = self._lock.acquire(blocking, timeout)  # checks: allow[R4] delegation shim
        if got:
            m = _MONITOR
            if m is not None:
                m.lock_acquired(self._lock_id())
        return got

    def release(self) -> None:
        m = _MONITOR
        if m is not None:
            m.lock_released(self._lock_id())
        self._lock.release()  # checks: allow[R4] delegation shim

    def locked(self) -> bool:
        return self._lock.locked()

    def __enter__(self) -> "TracedLock":
        self.acquire()  # checks: allow[R4] delegation shim
        return self

    def __exit__(self, *exc) -> None:
        self.release()  # checks: allow[R4] delegation shim

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TracedLock({self.name!r})"


class AtomicInt64Array:
    """A fixed-size int64 array with CAS / add / load / store.

    Thread-safe via striped locks.  Also tracks operation counts:
    ``n_cas``, ``n_cas_failed``, ``n_add``, ``n_load``, ``n_store``.
    """

    def __init__(self, size: int, n_stripes: int = 64) -> None:
        if size < 0:
            raise ValueError("size must be >= 0")
        if n_stripes < 1:
            raise ValueError("n_stripes must be >= 1")
        self._data = np.zeros(size, dtype=np.int64)
        self._locks = [threading.Lock() for _ in range(n_stripes)]
        self._n_stripes = n_stripes
        self._stats_lock = threading.Lock()
        self.n_cas = 0
        self.n_cas_failed = 0
        self.n_add = 0
        self.n_load = 0
        self.n_store = 0

    def __len__(self) -> int:
        return int(self._data.size)

    def _lock_for(self, index: int) -> threading.Lock:
        return self._locks[index % self._n_stripes]

    def _stripe_id(self, index: int):
        return ("stripe", id(self), index % self._n_stripes)

    def load(self, index: int) -> int:
        """Atomically read one cell."""
        m = _MONITOR
        sid = self._stripe_id(index) if m is not None else None
        with self._lock_for(index):
            if m is not None:
                m.lock_acquired(sid)
                m.record("atomic-state", id(self), index, "read")
            value = int(self._data[index])
        if m is not None:
            m.lock_released(sid)
        with self._stats_lock:
            self.n_load += 1
        if m is not None:
            m.event("load", index, value)
        return value

    def store(self, index: int, value: int) -> None:
        """Atomically write one cell."""
        m = _MONITOR
        sid = self._stripe_id(index) if m is not None else None
        with self._lock_for(index):
            if m is not None:
                m.lock_acquired(sid)
                m.record("atomic-state", id(self), index, "write")
            self._data[index] = value
        if m is not None:
            m.lock_released(sid)
        with self._stats_lock:
            self.n_store += 1
        if m is not None:
            m.event("store", index, value)

    def add(self, index: int, delta: int = 1) -> int:
        """Atomic fetch-and-add; returns the *previous* value."""
        m = _MONITOR
        sid = self._stripe_id(index) if m is not None else None
        with self._lock_for(index):
            if m is not None:
                m.lock_acquired(sid)
                m.record("atomic-state", id(self), index, "write")
            old = int(self._data[index])
            self._data[index] = old + delta
        if m is not None:
            m.lock_released(sid)
        with self._stats_lock:
            self.n_add += 1
        if m is not None:
            m.event("add", index, old)
        return old

    def compare_and_swap(self, index: int, expected: int, new: int) -> bool:
        """Atomic CAS; returns ``True`` when the swap happened."""
        m = _MONITOR
        if m is not None:
            # Control point *before* the CAS: the scheduler's CAS-storm
            # scenario gathers every contender here and releases them
            # together to force a maximal cluster of lost races.
            m.event("pre_cas", index, expected)
        sid = self._stripe_id(index) if m is not None else None
        with self._lock_for(index):
            if m is not None:
                m.lock_acquired(sid)
            ok = int(self._data[index]) == expected
            if ok:
                self._data[index] = new
            if m is not None:
                m.record("atomic-state", id(self), index, "write" if ok else "read")
        if m is not None:
            m.lock_released(sid)
        with self._stats_lock:
            self.n_cas += 1
            if not ok:
                self.n_cas_failed += 1
        if m is not None:
            m.event("cas", index, 1 if ok else 0)
        return ok

    def snapshot(self) -> np.ndarray:
        """Copy of the underlying array (not atomic across cells).

        Deliberately *not* reported to the access monitor: bulk
        snapshots are a fork-join convenience read outside the per-cell
        lockset model (Eraser's known fork/join limitation).
        """
        return self._data.copy()

    def raw(self) -> np.ndarray:
        """The underlying array; only safe to touch when no threads run."""
        return self._data

    def reset_stats(self) -> None:
        with self._stats_lock:
            self.n_cas = self.n_cas_failed = 0
            self.n_add = self.n_load = self.n_store = 0


class SharedCounter:
    """A monotonically increasing shared counter with blocking waits.

    Implements the synchronization variables of the paper's
    work-stealing pipeline (§III-E): ``srv``, ``cns``, ``prd`` and
    ``wrt`` are all instances of this counter.
    """

    def __init__(self, initial: int = 0) -> None:
        self._value = initial
        self._cond = threading.Condition()

    @property
    def value(self) -> int:
        with self._cond:
            return self._value

    def increment(self, delta: int = 1) -> int:
        """Advance the counter, waking waiters; returns the new value."""
        if delta < 0:
            raise ValueError("SharedCounter is monotonic; delta must be >= 0")
        with self._cond:
            self._value += delta
            self._cond.notify_all()
            return self._value

    def fetch_increment(self, delta: int = 1) -> int:
        """Advance and return the *previous* value (ticket dispenser)."""
        if delta < 0:
            raise ValueError("SharedCounter is monotonic; delta must be >= 0")
        with self._cond:
            old = self._value
            self._value += delta
            self._cond.notify_all()
            return old

    def wait_for(self, threshold: int, timeout: float | None = None) -> bool:
        """Block until ``value >= threshold``; ``False`` on timeout."""
        with self._cond:
            return self._cond.wait_for(lambda: self._value >= threshold, timeout=timeout)
