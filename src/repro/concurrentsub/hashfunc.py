"""Hash functions for kmers, minimizers and multi-word keys.

The same 64-bit mixer is used for (a) routing superkmers to partitions
("a value computed from the minimizer's hash bit value with a modulo of
the number of partitions", §III-B) and (b) indexing the open-addressing
hash tables of Step 2.  The mixer is the splitmix64 finalizer — a full
avalanche bijection on 64-bit words, so distinct minimizers spread
uniformly over partitions and table slots.
"""

from __future__ import annotations

import numpy as np

_M1 = np.uint64(0xBF58476D1CE4E5B9)
_M2 = np.uint64(0x94D049BB133111EB)
_GOLDEN = np.uint64(0x9E3779B97F4A7C15)

_M1_INT = 0xBF58476D1CE4E5B9
_M2_INT = 0x94D049BB133111EB
_GOLDEN_INT = 0x9E3779B97F4A7C15
_MASK64 = (1 << 64) - 1


def mix64(values: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer over a uint64 array."""
    x = np.asarray(values, dtype=np.uint64).copy()
    with np.errstate(over="ignore"):
        x ^= x >> np.uint64(30)
        x *= _M1
        x ^= x >> np.uint64(27)
        x *= _M2
        x ^= x >> np.uint64(31)
    return x


def mix64_int(value: int) -> int:
    """Scalar splitmix64 finalizer (matches :func:`mix64` bit-for-bit)."""
    x = value & _MASK64
    x ^= x >> 30
    x = (x * _M1_INT) & _MASK64
    x ^= x >> 27
    x = (x * _M2_INT) & _MASK64
    x ^= x >> 31
    return x


def hash_words(words: tuple[int, ...] | list[int]) -> int:
    """Hash a multi-word key by folding mixed words.

    ParaHash keys are not limited to one machine word (§I); the fold
    keeps the full key's entropy while producing a single 64-bit index.
    """
    acc = 0
    for w in words:
        acc = mix64_int((acc + _GOLDEN_INT + (w & _MASK64)) & _MASK64)
    return acc


def partition_ids(minimizers: np.ndarray, n_partitions: int) -> np.ndarray:
    """Superkmer partition id: ``mix64(minimizer) % n_partitions``."""
    if n_partitions < 1:
        raise ValueError("n_partitions must be >= 1")
    return (mix64(minimizers) % np.uint64(n_partitions)).astype(np.int64)


def table_slots(kmers: np.ndarray, capacity: int) -> np.ndarray:
    """Initial probe slot for each kmer in a power-of-two sized table."""
    if capacity < 1 or capacity & (capacity - 1):
        raise ValueError(f"capacity must be a positive power of two, got {capacity}")
    return (mix64(kmers) & np.uint64(capacity - 1)).astype(np.int64)
