"""On-disk job state: specs, status, and the per-job directory layout.

A *job* is one graph build owned by the service.  Everything the job
ever learns lives under one directory, so a job survives any process
death and can be resumed, inspected, or garbage-collected by path
alone::

    <root>/jobs/<job-id>/
        job.json          # the immutable JobSpec the job was submitted with
        status.json       # mutable: state machine + progress + error text
        manifests/        # one StageManifest per finished stage/partition
        spill/            # Step 1 per-task superkmer spill files (.phsk)
        partitions/       # merged canonical partition files (.phsk)
        subgraphs/        # per-partition graph files (.phdbg)
        graph.phdbg       # the final merged De Bruijn graph

``job.json`` is written once at submit and never mutated — a resume
re-reads it and must reproduce the identical stage parameters, which is
what makes manifest validation meaningful.  ``status.json`` is advisory
(progress reporting); the *authoritative* completion evidence is the
manifests, so a stale status after SIGKILL cannot confuse a resume.
"""

from __future__ import annotations

import os
import secrets
import time
from dataclasses import asdict, dataclass, replace
from pathlib import Path

from ..util.bytesize import human2bytes
from .manifest import read_json, write_json_atomic

#: Job lifecycle states.  ``queued -> running -> done|failed|cancelled``;
#: a crashed/killed job is found as ``running`` with a dead owner and is
#: resumable.
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

MAX_K_2W = 63  # two-word big-k ceiling (repro.bigk)


class JobError(ValueError):
    """A malformed job spec or an operation on a missing job."""


@dataclass(frozen=True)
class JobSpec:
    """The immutable description of one graph build.

    ``claim_weight`` is the multi-tenancy QoS knob: a pool worker
    visiting this job's lane claims up to this many tasks per visit, so
    relative weights set relative throughput when jobs compete for the
    shared pool (the weighted-claim scheme of the process work queue).

    ``step2_delay`` stretches each Step-2 partition build by sleeping
    that many seconds first — a fault-injection knob so tests (and
    demos) can reliably SIGKILL a run *mid-Step-2* and exercise resume.
    """

    input: str
    k: int = 15
    p: int = 4
    n_partitions: int = 8
    n_step1_tasks: int = 2
    preaggregate: bool = False
    claim_weight: int = 1
    max_memory: int = 0  # bytes; 0 = unlimited
    step2_delay: float = 0.0
    lam: float = 2.0
    alpha: float = 0.7
    table_layout: str = "flat"
    insert_protocol: str = "locked"
    n_shards: int = 8

    def __post_init__(self) -> None:
        if not 1 <= self.k <= MAX_K_2W:
            raise JobError(f"need 1 <= k <= {MAX_K_2W}, got k={self.k}")
        if not 1 <= self.p <= self.k:
            raise JobError(f"need 1 <= p <= k, got p={self.p}, k={self.k}")
        if self.n_partitions < 1:
            raise JobError("n_partitions must be >= 1")
        if self.n_step1_tasks < 1:
            raise JobError("n_step1_tasks must be >= 1")
        if self.claim_weight < 1:
            raise JobError("claim_weight must be >= 1")
        if self.step2_delay < 0:
            raise JobError("step2_delay must be >= 0")
        if self.max_memory < 0:
            raise JobError("max_memory must be >= 0")
        from ..core.config import INSERT_PROTOCOLS, TABLE_LAYOUTS

        if self.table_layout not in TABLE_LAYOUTS:
            raise JobError(
                f"table_layout must be one of {TABLE_LAYOUTS}, "
                f"got {self.table_layout!r}"
            )
        if self.insert_protocol not in INSERT_PROTOCOLS:
            raise JobError(
                f"insert_protocol must be one of {INSERT_PROTOCOLS}, "
                f"got {self.insert_protocol!r}"
            )
        if self.n_shards < 1 or self.n_shards & (self.n_shards - 1):
            raise JobError(
                f"n_shards must be a positive power of two, got {self.n_shards}"
            )

    @property
    def big_k(self) -> bool:
        """Does this job take the two-word (31 < k <= 63) path?"""
        return self.k > 31

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "JobSpec":
        """Build a spec from submitted JSON, tolerating human-readable
        sizes (``"max_memory": "4G"``) and unknown keys (rejected)."""
        if not isinstance(d, dict):
            raise JobError(f"job spec must be an object, got {type(d).__name__}")
        known = {f for f in cls.__dataclass_fields__}
        unknown = sorted(set(d) - known)
        if unknown:
            raise JobError(f"unknown job spec fields: {', '.join(unknown)}")
        if "input" not in d:
            raise JobError("job spec requires 'input'")
        kwargs = dict(d)
        if "max_memory" in kwargs:
            try:
                kwargs["max_memory"] = human2bytes(kwargs["max_memory"])
            except (ValueError, TypeError) as exc:
                raise JobError(f"bad max_memory: {exc}") from exc
        try:
            return cls(**kwargs)
        except TypeError as exc:
            raise JobError(f"bad job spec: {exc}") from exc

    def with_weight(self, claim_weight: int) -> "JobSpec":
        return replace(self, claim_weight=claim_weight)


def new_job_id() -> str:
    """Sortable-by-creation, collision-resistant job id."""
    stamp = time.strftime("%Y%m%d-%H%M%S", time.gmtime())
    return f"{stamp}-{secrets.token_hex(3)}"


class JobRecord:
    """Handle over one job directory: spec (immutable) + status (mutable).

    Status writes go through :func:`write_json_atomic`, so observers
    (the HTTP API, ``repro jobs``) always parse a complete document.
    """

    def __init__(self, job_id: str, job_dir: Path, spec: JobSpec) -> None:
        self.job_id = job_id
        self.job_dir = Path(job_dir)
        self.spec = spec

    # -- layout ------------------------------------------------------------------

    @property
    def spec_path(self) -> Path:
        return self.job_dir / "job.json"

    @property
    def status_path(self) -> Path:
        return self.job_dir / "status.json"

    @property
    def manifest_dir(self) -> Path:
        return self.job_dir / "manifests"

    @property
    def spill_dir(self) -> Path:
        return self.job_dir / "spill"

    @property
    def partition_dir(self) -> Path:
        return self.job_dir / "partitions"

    @property
    def subgraph_dir(self) -> Path:
        return self.job_dir / "subgraphs"

    @property
    def graph_path(self) -> Path:
        return self.job_dir / "graph.phdbg"

    def manifest_path(self, stage: str) -> Path:
        return self.manifest_dir / f"{stage}.json"

    # -- status ------------------------------------------------------------------

    def read_status(self) -> dict:
        status = read_json(self.status_path)
        if not isinstance(status, dict):
            # Missing/corrupt status is recoverable: the manifests are
            # the durable truth, status is just reporting.
            status = {"status": "queued", "created": 0.0}
        return status

    def write_status(self, **updates) -> dict:
        """Merge ``updates`` into status.json; returns the new document."""
        status = self.read_status()
        status.update(updates)
        status["updated"] = time.time()
        write_json_atomic(self.status_path, status)
        return status

    def set_state(self, state: str, **extra) -> dict:
        if state not in JOB_STATES:
            raise JobError(f"unknown job state {state!r}")
        return self.write_status(status=state, **extra)

    @property
    def status(self) -> str:
        return str(self.read_status().get("status", "queued"))

    def describe(self) -> dict:
        """The API/CLI view: id + spec + current status document."""
        doc = self.read_status()
        doc["id"] = self.job_id
        doc["spec"] = self.spec.to_dict()
        return doc


class JobStore:
    """The collection of job directories under one service root."""

    def __init__(self, root: str | os.PathLike) -> None:
        self.root = Path(root)
        self.jobs_dir = self.root / "jobs"
        self.jobs_dir.mkdir(parents=True, exist_ok=True)

    def create(self, spec: JobSpec) -> JobRecord:
        """Allocate a job directory and persist the spec (once, ever)."""
        job_id = new_job_id()
        job_dir = self.jobs_dir / job_id
        while job_dir.exists():  # pragma: no cover - 24-bit collision
            job_id = new_job_id()
            job_dir = self.jobs_dir / job_id
        for sub in ("manifests", "spill", "partitions", "subgraphs"):
            (job_dir / sub).mkdir(parents=True, exist_ok=True)
        record = JobRecord(job_id, job_dir, spec)
        write_json_atomic(record.spec_path, spec.to_dict())
        record.write_status(status="queued", created=time.time(),
                            claim_weight=spec.claim_weight)
        return record

    def load(self, job_id: str) -> JobRecord:
        job_dir = self.jobs_dir / job_id
        spec_doc = read_json(job_dir / "job.json")
        if spec_doc is None:
            raise JobError(f"no such job: {job_id}")
        return JobRecord(job_id, job_dir, JobSpec.from_dict(spec_doc))

    def list_jobs(self) -> list[JobRecord]:
        records = []
        for job_dir in sorted(self.jobs_dir.iterdir()):
            if (job_dir / "job.json").is_file():
                records.append(self.load(job_dir.name))
        return records
