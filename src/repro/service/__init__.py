"""The job service: a daemonized, checkpointed, multi-tenant builder.

Everything above the one-shot pipeline: durable job directories
(:mod:`jobstore`), stage manifests that make kills resumable
(:mod:`manifest`, :mod:`runner`), the shared weighted process pool
serving many jobs at once (:mod:`pool`), and the asyncio HTTP front end
plus CLI (:mod:`server`, :mod:`cli`).
"""

from .jobstore import JobError, JobRecord, JobSpec, JobStore
from .manifest import Artifact, StageManifest, file_digest, write_json_atomic
from .pool import (
    LaneSession,
    LaneStalled,
    ServicePool,
    SessionCancelled,
    TasksFailed,
)
from .runner import JobFailed, run_job

__all__ = [
    "Artifact",
    "JobError",
    "JobFailed",
    "JobRecord",
    "JobSpec",
    "JobStore",
    "LaneSession",
    "LaneStalled",
    "ServicePool",
    "SessionCancelled",
    "StageManifest",
    "TasksFailed",
    "file_digest",
    "run_job",
    "write_json_atomic",
]
