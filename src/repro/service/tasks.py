"""The work units pool workers execute for the job service.

Service tasks are deliberately *file-based*: a task reads its inputs
from the job directory and writes its outputs back there (atomically,
temp + rename, where a torn file could be mistaken for a finished one).
No shared memory crosses the process boundary — a task description is
a plain picklable dict, and everything a worker produces is durable the
moment the task returns.  That is what makes the service's checkpoints
real: a SIGKILL between two tasks loses *nothing*, and a SIGKILL inside
a task loses only that task.

Task kinds
----------

``step1``  one input piece -> per-partition superkmer spill files.
           The worker loads the reads file, takes its contiguous piece
           (``ReadBatch.split``), runs the MSP kernel, and spills with
           the piece id as the writer id, so file names are
           deterministic and a re-run overwrites a dead attempt's
           partial spills.

``step2``  one merged partition file -> one subgraph ``.phdbg`` file.
           Builds the partition's hash table (one- or two-word by k)
           and saves the subgraph atomically.  ``delay`` sleeps first —
           the fault-injection window tests SIGKILL into.

The merge between the two (spills -> canonical partition files) and the
final subgraph union run in the *parent* (they are cheap, sequential
file folds); see :mod:`repro.service.runner`.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

from ..core.estimator import SizingPolicy
from ..core.subgraph import build_subgraph
from ..dna.io import load_read_batch
from ..msp.partitioner import SpillWriterSet, load_partition_group, partition_reads


class TaskFailed(RuntimeError):
    """A task raised; carries the task description for attribution."""


def atomic_replace(tmp: Path, final: Path) -> None:
    """Publish a finished artifact: readers see nothing or all of it."""
    os.replace(tmp, final)


def run_task(task: dict) -> dict:
    """Execute one task description; returns its result document."""
    kind = task.get("kind")
    if kind == "step1":
        return _run_step1(task)
    if kind == "step2":
        return _run_step2(task)
    raise TaskFailed(f"unknown task kind {kind!r}")


def _run_step1(task: dict) -> dict:
    reads = load_read_batch(task["input"])
    pieces = reads.split(int(task["n_pieces"]))
    piece_id = int(task["piece"])
    k, p = int(task["k"]), int(task["p"])
    n_partitions = int(task["n_partitions"])
    writer = SpillWriterSet(task["spill_dir"], piece_id, k, n_partitions)
    if piece_id < len(pieces):  # split() may return fewer pieces than asked
        result = partition_reads(pieces[piece_id], k, p, n_partitions)
        writer.write_result(result)
        n_reads = pieces[piece_id].n_reads
        n_superkmers = sum(b.n_superkmers for b in result.blocks)
    else:
        n_reads = 0
        n_superkmers = 0
    spills = writer.close()
    return {
        "kind": "step1",
        "piece": piece_id,
        "n_reads": int(n_reads),
        "n_superkmers": int(n_superkmers),
        "spills": {int(part): str(path) for part, path in spills.items()},
    }


def _run_step2(task: dict) -> dict:
    delay = float(task.get("delay", 0.0))
    if delay > 0:
        # Fault-injection window: a SIGKILL landing here leaves the
        # partition unfinished (no manifest, no subgraph file) and a
        # resume re-runs exactly this partition.
        time.sleep(delay)
    k = int(task["k"])
    partition = int(task["partition"])
    block = load_partition_group([Path(task["partition_file"])], k)
    policy = SizingPolicy(lam=float(task.get("lam", 2.0)),
                          alpha=float(task.get("alpha", 0.7)))
    preaggregate = bool(task.get("preaggregate", False))
    table_layout = str(task.get("table_layout", "flat"))
    insert_protocol = str(task.get("insert_protocol", "locked"))
    n_shards = int(task.get("n_shards", 8))
    out_path = Path(task["out_path"])
    if k > 31:
        from ..bigk import build_subgraph_2w
        from ..bigk.serialize import save_big_graph
        built = build_subgraph_2w(block, policy, preaggregate=preaggregate,
                                  protocol=insert_protocol,
                                  table_layout=table_layout,
                                  n_shards=n_shards)
        tmp = out_path.with_name(out_path.name + ".tmp")
        n_bytes = save_big_graph(tmp, built.graph)
    else:
        from ..graph.serialize import save_graph
        built = build_subgraph(block, policy, preaggregate=preaggregate,
                               protocol=insert_protocol,
                               table_layout=table_layout,
                               n_shards=n_shards)
        tmp = out_path.with_name(out_path.name + ".tmp")
        n_bytes = save_graph(tmp, built.graph)
    atomic_replace(tmp, out_path)
    return {
        "kind": "step2",
        "partition": partition,
        "path": str(out_path),
        "bytes": int(n_bytes),
        "n_vertices": int(built.graph.n_vertices),
        "n_kmers": int(built.stats.ops),
    }
