"""Service subcommands: ``serve``, ``submit``, ``jobs``, ``resume``.

``serve`` runs the daemon (pool + HTTP API) in the foreground.
``submit`` talks to a running daemon over HTTP (stdlib ``urllib``).
``jobs`` prefers the daemon when ``--url`` is given, else reads job
directories straight off disk — status is durable, so listing works
against a dead service too.  ``resume`` re-runs a killed/failed job's
unfinished stages inline (no daemon required), which is the recovery
path after the machine itself went down.
"""

from __future__ import annotations

import argparse
import json
import sys
import urllib.error
import urllib.request
from pathlib import Path

from ..util.bytesize import bytes2human
from ..util.tables import render_table
from .jobstore import JobError, JobSpec, JobStore
from .pool import ServicePool
from .runner import JobFailed, run_job
from .server import ServiceApp, serve_in_thread


def add_service_commands(sub) -> None:
    """Register the service subcommands on the main repro parser."""
    p = sub.add_parser("serve", help="run the job service daemon (HTTP API)")
    p.add_argument("--root", required=True,
                   help="service state directory (jobs live under it)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8541)
    p.add_argument("--workers", type=int, default=2,
                   help="pool worker processes shared by all jobs")
    p.add_argument("--lanes", type=int, default=4,
                   help="max concurrently running jobs")
    p.set_defaults(func=cmd_serve)

    p = sub.add_parser("submit", help="submit a build job to a running daemon")
    p.add_argument("--url", default="http://127.0.0.1:8541",
                   help="daemon base URL")
    p.add_argument("--input", required=True, help="FASTA/FASTQ reads")
    p.add_argument("--k", type=int, default=15)
    p.add_argument("--p", type=int, default=4, help="minimizer length")
    p.add_argument("--partitions", type=int, default=8)
    p.add_argument("--step1-tasks", type=int, default=2)
    p.add_argument("--weight", type=int, default=1,
                   help="claim weight (relative share of the pool)")
    p.add_argument("--max-memory", default="0",
                   help="memory budget, human units ok (e.g. 4G)")
    p.add_argument("--table-layout", choices=["flat", "sharded"],
                   default="flat", help="hash-table layout for the build")
    p.add_argument("--insert-protocol", choices=["locked", "lockfree"],
                   default="locked", help="per-slot insert protocol")
    p.add_argument("--shards", type=int, default=8,
                   help="shard count for --table-layout sharded "
                        "(power of two)")
    p.set_defaults(func=cmd_submit)

    p = sub.add_parser("jobs", help="list jobs (from a daemon or from disk)")
    p.add_argument("--root", help="service state directory (offline listing)")
    p.add_argument("--url", help="daemon base URL (live listing)")
    p.set_defaults(func=cmd_jobs)

    p = sub.add_parser("resume",
                       help="re-run a killed/failed job's unfinished stages")
    p.add_argument("job_id")
    p.add_argument("--root", required=True,
                   help="service state directory the job lives under")
    p.add_argument("--workers", type=int, default=0,
                   help="run stage tasks across this many pool processes "
                        "(0 = inline, single process)")
    p.set_defaults(func=cmd_resume)


def cmd_serve(args: argparse.Namespace) -> int:
    store = JobStore(args.root)
    with ServicePool(n_workers=args.workers, n_lanes=args.lanes) as pool:
        app = ServiceApp(store, pool)
        handle = serve_in_thread(app, host=args.host, port=args.port)
        print(f"serving jobs from {store.root} on {handle.url} "
              f"({args.workers} workers, {args.lanes} lanes); Ctrl-C stops")
        try:
            handle._thread.join()
        except KeyboardInterrupt:
            print("\nshutting down")
            handle.stop()
    return 0


def _http(url: str, method: str = "GET", doc: dict | None = None) -> dict:
    data = json.dumps(doc).encode() if doc is not None else None
    req = urllib.request.Request(url, data=data, method=method,
                                 headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(req, timeout=30) as resp:
            return json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        try:
            detail = json.loads(exc.read()).get("error", "")
        except Exception:
            detail = ""
        raise SystemExit(f"error: {exc.code} {exc.reason}"
                         + (f": {detail}" if detail else ""))
    except urllib.error.URLError as exc:
        raise SystemExit(f"error: cannot reach {url}: {exc.reason}")


def cmd_submit(args: argparse.Namespace) -> int:
    spec = {
        "input": str(Path(args.input).resolve()),
        "k": args.k, "p": args.p,
        "n_partitions": args.partitions,
        "n_step1_tasks": args.step1_tasks,
        "claim_weight": args.weight,
        "max_memory": args.max_memory,
        "table_layout": args.table_layout,
        "insert_protocol": args.insert_protocol,
        "n_shards": args.shards,
    }
    reply = _http(f"{args.url.rstrip('/')}/jobs", "POST", spec)
    print(reply["id"])
    return 0


def _job_rows(docs: list[dict]) -> list[list[str]]:
    rows = []
    for doc in docs:
        spec = doc.get("spec", {})
        rows.append([
            doc.get("id", "?"),
            doc.get("status", "?"),
            str(spec.get("k", "?")),
            str(spec.get("n_partitions", "?")),
            str(doc.get("claim_weight", spec.get("claim_weight", "?"))),
            doc.get("stage", "-") or "-",
            bytes2human(int(spec["max_memory"]))
            if spec.get("max_memory") else "-",
        ])
    return rows


def cmd_jobs(args: argparse.Namespace) -> int:
    if args.url:
        docs = _http(f"{args.url.rstrip('/')}/jobs")["jobs"]
    elif args.root:
        docs = [r.describe() for r in JobStore(args.root).list_jobs()]
    else:
        print("error: pass --url (live) or --root (offline)",
              file=sys.stderr)
        return 2
    if not docs:
        print("no jobs")
        return 0
    print(render_table(
        ["job", "status", "k", "parts", "weight", "stage", "mem"],
        _job_rows(docs),
    ))
    return 0


def cmd_resume(args: argparse.Namespace) -> int:
    store = JobStore(args.root)
    try:
        record = store.load(args.job_id)
    except JobError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if record.status == "done":
        print(f"{record.job_id}: already done -> {record.graph_path}")
        return 0
    print(f"resuming {record.job_id} (was: {record.status})")
    try:
        if args.workers > 0:
            with ServicePool(n_workers=args.workers, n_lanes=1) as pool:
                session = pool.open_session(
                    claim_weight=record.spec.claim_weight)
                try:
                    path = run_job(record, session)
                finally:
                    pool.release(session)
        else:
            path = run_job(record)
    except JobFailed as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    status = record.read_status()
    print(f"{record.job_id}: done -> {path} "
          f"(stages re-run where stale; "
          f"{status.get('step2_skipped', 0)} partition(s) skipped)")
    return 0
